"""Quickstart: train CamAL on a synthetic UK-DALE-like corpus and localize
kettle activations in unseen houses.

Run:  python examples/quickstart.py        (~1 minute on a laptop CPU)

Steps shown:
 1. build a simulated corpus (5 houses, 1-minute sampling, Table-I params);
 2. preprocess into non-overlapping windows with weak (window-level) labels;
 3. train the CamAL ResNet ensemble (Algorithm 1) on weak labels only;
 4. localize per-timestamp activations on held-out houses;
 5. reconstruct appliance power and print the §V-D metrics;
 6. serve a full unseen household series through the InferenceEngine
    (overlapping windows, stitched per-timestamp status, 100 % coverage).
"""

import os

import numpy as np

import repro.experiments as ex
from repro import simdata as sd
from repro.serving import EngineConfig, InferenceEngine

APPLIANCE = "kettle"

#: REPRO_SMOKE=1 shrinks the run to CI scale (same code paths, seconds).
SMOKE = bool(os.environ.get("REPRO_SMOKE"))


def ascii_strip(values, width=80, symbol="#"):
    """Tiny terminal sparkline: mark positions where values > 0."""
    values = np.asarray(values)
    bins = np.array_split(values, min(width, len(values)))
    return "".join(symbol if chunk.max() > 0 else "." for chunk in bins)


def main():
    if SMOKE:
        preset = ex.smoke_preset()
    else:
        preset = ex.scaled(ex.get_preset("fast"), corpus_days={"ukdale": 6.0, "refit": 4.0,
                           "ideal": 4.0, "edf_ev": 30.0, "edf_weak": 20.0})
    print(f"Building UK-DALE-like corpus ({preset.corpus_days['ukdale']:.0f} days/house)...")
    corpus = ex.build_corpus("ukdale", preset)
    case = ex.case_windows(corpus, APPLIANCE, preset.window, split_seed=0)
    print(
        f"  train/val/test windows: {len(case.train)}/{len(case.val)}/{len(case.test)}"
        f"  (window = {preset.window} minutes, weak labels only)"
    )

    print("Training the CamAL ensemble (Algorithm 1)...")
    result, camal = ex.run_camal(case, preset, seed=0)

    print("\n=== CamAL results on unseen houses ===")
    print(f"  detection balanced accuracy : {result.balanced_accuracy:.3f}")
    print(f"  localization F1 / Pr / Rc   : {result.f1:.3f} / {result.precision:.3f} / {result.recall:.3f}")
    print(f"  energy MAE / RMSE (Watts)   : {result.mae_watts:.1f} / {result.rmse_watts:.1f}")
    print(f"  matching ratio              : {result.matching_ratio:.3f}")
    print(f"  labels used for training    : {result.n_labels} (one per window)")
    strong_equivalent = result.n_labels * preset.window
    print(f"  strong-label equivalent     : {strong_equivalent} (one per timestamp)")

    # Visualize one positive test window.
    output = camal.localize(case.test.inputs)
    positives = np.flatnonzero(case.test.weak == 1)
    if len(positives):
        i = int(positives[0])
        print(f"\nWindow {i} (appliance present):")
        print(f"  truth : {ascii_strip(case.test.strong[i])}")
        print(f"  CamAL : {ascii_strip(output.status[i])}")
        print(f"  CAM   : {ascii_strip(np.maximum(output.cam[i] - 0.5, 0), symbol='^')}")

    # Serve a full unseen household series through the engine: overlapping
    # windows (stride = window/2), stitched status, no dropped tail.
    split = sd.split_houses(corpus, seed=0)
    house = corpus.house(split.test[0])
    aggregate = np.nan_to_num(
        sd.forward_fill(house.aggregate, corpus.max_ffill_samples), nan=0.0
    )
    engine = InferenceEngine(
        EngineConfig(window=preset.window, stride=max(1, preset.window // 2))
    )
    engine.register(APPLIANCE, camal)
    inference = engine.run(aggregate)
    result = inference.per_appliance[APPLIANCE]
    plan = inference.plan
    print(f"\nServed household {house.house_id} with the InferenceEngine:")
    print(f"  {plan.series_length} samples -> {plan.n_windows} windows "
          f"(stride {plan.stride}, tail padded by {plan.pad_right})")
    print(f"  windows detected : {result.detection_rate:.0%}")
    print(f"  stitched status  : {ascii_strip(result.status)}")


if __name__ == "__main__":
    main()
