"""The unified estimator API: one interface from CamAL to every baseline.

Run:  python examples/estimator_api.py     (~1 minute on a laptop CPU)

Every model in this repo — the paper's CamAL pipeline and all §V-C
baselines — speaks the same five verbs through ``repro.api``:

    fit / detect / localize / save / load

This example lists the registry, trains two estimators with *different
supervision* (CamAL on weak window labels, TPNILM on strong per-timestamp
labels) through identical code, round-trips both through the generic
manifest persistence, and serves the mixed fleet from disk with one
:class:`repro.serving.InferenceEngine`.
"""

import os
import tempfile

import numpy as np

import repro.experiments as ex
from repro import api
from repro import simdata as sd
from repro.metrics import f1_score
from repro.serving import EngineConfig, InferenceEngine

MODELS = ("camal", "tpnilm")

#: REPRO_SMOKE=1 shrinks the run to CI scale (same code paths, seconds).
SMOKE = bool(os.environ.get("REPRO_SMOKE"))


def main():
    print("Registered estimators:")
    for name in api.available_models():
        entry = api.get_entry(name)
        print(f"  {name:10s} [{entry.supervision:6s}] scales: "
              f"{'/'.join(sorted(entry.scales))}")

    preset = ex.smoke_preset() if SMOKE else ex.get_preset("bench")
    corpus = ex.build_corpus("ukdale", preset)
    case = ex.case_windows(corpus, "kettle", preset.window, split_seed=0)

    # Same code path for weak and strong supervision: the adapter routes
    # the labels (est.labels_for picks .weak or .strong).
    fleet = {}
    for name in MODELS:
        est = api.create(
            name,
            scale=preset.baseline_scale,
            seed=0,
            train=preset.train_config(preset.seq2seq_epochs, 0),
            power_gate_watts=case.spec.on_threshold_watts,
        )
        print(f"\nTraining {name} ({est.supervision} labels)...")
        est.fit(
            case.train.inputs,
            est.labels_for(case.train),
            case.val.inputs,
            est.labels_for(case.val),
        )
        status = est.predict_status(case.test.inputs)
        print(f"  labels consumed : {est.n_labels_}")
        print(f"  localization F1 : {f1_score(case.test.strong, status):.3f}")
        fleet[name] = est

    # Round-trip the mixed fleet through the generic manifest persistence
    # and serve it from disk — CamAL and the seq2seq baseline side by side.
    split = sd.split_houses(corpus, seed=0)
    house = corpus.house(split.test[0])
    aggregate = np.nan_to_num(
        sd.forward_fill(house.aggregate, corpus.max_ffill_samples), nan=0.0
    )
    with tempfile.TemporaryDirectory() as tmp:
        api.save_pipelines(fleet, tmp)
        engine = InferenceEngine(
            EngineConfig(window=preset.window, stride=max(1, preset.window // 2))
        )
        for name in fleet:
            engine.load(name, os.path.join(tmp, name))
        inference = engine.run(aggregate)

    print(f"\nServed household {house.house_id} "
          f"({inference.n_samples} samples) with the mixed fleet:")
    for name, result in inference:
        on_fraction = float(result.status.mean())
        print(f"  {name:10s} windows detected {result.detection_rate:4.0%}, "
              f"ON fraction {on_fraction:.3f}")


if __name__ == "__main__":
    main()
