"""DeviceScope-style household report: train, save, serve, analyze.

Run:  python examples/household_report.py     (~2 minutes)

Demonstrates the consumer-facing layer of the paper's companion demo
(DeviceScope, ICDE 2025): given a household's aggregate series and a
trained CamAL per appliance, produce per-appliance usage summaries —
number of activations, total ON hours, estimated kWh and peak usage hour
— plus the refined (baseline-subtracted) energy estimate the paper's
§V-I calls for.  The pipelines are persisted with ``save_pipelines`` and
served by a :class:`repro.serving.InferenceEngine` that windows the
aggregate once for all appliances (overlapping windows, stitched status,
no dropped tail).
"""

import os
import tempfile

import numpy as np

import repro.experiments as ex
from repro import simdata as sd
from repro.core import (
    estimate_power,
    estimate_power_adaptive,
    report_from_status,
    save_pipelines,
)
from repro.metrics import mae
from repro.serving import EngineConfig, InferenceEngine

#: REPRO_SMOKE=1 shrinks the run to CI scale (same code paths, seconds).
SMOKE = bool(os.environ.get("REPRO_SMOKE"))


def main():
    if SMOKE:
        preset = ex.smoke_preset()
    else:
        preset = ex.scaled(ex.get_preset("fast"), corpus_days={"ukdale": 6.0, "refit": 4.0,
                           "ideal": 4.0, "edf_ev": 30.0, "edf_weak": 20.0})
    corpus = ex.build_corpus("ukdale", preset)
    split = sd.split_houses(corpus, seed=0)
    target_house = corpus.house(split.test[0])
    print(f"Analyzing unseen household {target_house.house_id} "
          f"({target_house.duration_days:.0f} days at "
          f"{target_house.dt_seconds / 60:.0f}-minute sampling)\n")

    pipelines = {}
    for appliance in ("kettle", "dishwasher"):
        print(f"Training CamAL for {appliance}...")
        case = ex.case_windows(corpus, appliance, preset.window, split_seed=0)
        _, camal = ex.run_camal(case, preset, seed=0)
        pipelines[appliance] = camal

    aggregate = sd.forward_fill(target_house.aggregate, corpus.max_ffill_samples)
    aggregate = np.nan_to_num(aggregate, nan=0.0)

    # Persist the fleet and serve it from disk, as a deployment would: the
    # engine windows the aggregate once and every appliance shares the batch.
    engine = InferenceEngine(
        EngineConfig(
            window=preset.window,
            stride=max(1, preset.window // 2),
            cache_size=4096,
        )
    )
    with tempfile.TemporaryDirectory() as tmp:
        save_pipelines(pipelines, tmp)
        for appliance in pipelines:
            engine.load(appliance, os.path.join(tmp, appliance))
    inference = engine.run(aggregate)

    print()
    for appliance, result in inference:
        report = report_from_status(
            appliance, result.status, aggregate,
            dt_seconds=target_house.dt_seconds,
            min_activation_samples=2, merge_gap_samples=2,
        )
        print(report.render())
        print(f"  windows detected          : {result.detection_rate:.0%}")

        # §V-I refinement: adaptive vs constant-P_a energy estimation,
        # computed on the full stitched status (tail included).  The
        # adaptive estimator's baseline is per-window, so feed it windowed
        # views (plus the partial tail as one final short window).
        spec = sd.get_spec(appliance)
        truth = target_house.appliance_power.get(appliance)
        if truth is not None:
            status = result.status
            constant = estimate_power(status, spec.avg_power_watts, aggregate)
            ceiling = 3 * spec.avg_power_watts
            n_full = (len(aggregate) // preset.window) * preset.window
            adaptive = np.empty_like(aggregate)
            adaptive[:n_full] = estimate_power_adaptive(
                status[:n_full].reshape(-1, preset.window),
                aggregate[:n_full].reshape(-1, preset.window),
                ceiling,
            ).reshape(-1)
            if n_full < len(aggregate):
                adaptive[n_full:] = estimate_power_adaptive(
                    status[n_full:], aggregate[n_full:], ceiling
                )
            print(f"  energy MAE (constant P_a) : {mae(truth, constant):.1f} W")
            print(f"  energy MAE (adaptive)     : {mae(truth, adaptive):.1f} W")
        print()


if __name__ == "__main__":
    main()
