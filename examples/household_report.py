"""DeviceScope-style household report: train, save, reload, analyze.

Run:  python examples/household_report.py     (~2 minutes)

Demonstrates the consumer-facing layer of the paper's companion demo
(DeviceScope, ICDE 2025): given a household's aggregate series and a
trained CamAL per appliance, produce per-appliance usage summaries —
number of activations, total ON hours, estimated kWh and peak usage hour
— plus the refined (baseline-subtracted) energy estimate the paper's
§V-I calls for.  Also shows pipeline persistence (save + reload).
"""

import tempfile

import numpy as np

import repro.experiments as ex
from repro import simdata as sd
from repro.core import analyze_series, estimate_power, estimate_power_adaptive, load_camal, save_camal
from repro.metrics import mae


def main():
    preset = ex.scaled(ex.get_preset("fast"), corpus_days={"ukdale": 6.0, "refit": 4.0,
                       "ideal": 4.0, "edf_ev": 30.0, "edf_weak": 20.0})
    corpus = ex.build_corpus("ukdale", preset)
    split = sd.split_houses(corpus, seed=0)
    target_house = corpus.house(split.test[0])
    print(f"Analyzing unseen household {target_house.house_id} "
          f"({target_house.duration_days:.0f} days at "
          f"{target_house.dt_seconds / 60:.0f}-minute sampling)\n")

    pipelines = {}
    for appliance in ("kettle", "dishwasher"):
        print(f"Training CamAL for {appliance}...")
        case = ex.case_windows(corpus, appliance, preset.window, split_seed=0)
        _, camal = ex.run_camal(case, preset, seed=0)
        # Persist and reload, as a deployment would.
        with tempfile.TemporaryDirectory() as tmp:
            save_camal(camal, tmp)
            pipelines[appliance] = load_camal(tmp)

    aggregate = sd.forward_fill(target_house.aggregate, corpus.max_ffill_samples)
    aggregate = np.nan_to_num(aggregate, nan=0.0)

    print()
    for appliance, camal in pipelines.items():
        report = analyze_series(
            camal, aggregate, appliance,
            dt_seconds=target_house.dt_seconds, window=preset.window,
            min_activation_samples=2, merge_gap_samples=2,
        )
        print(report.render())

        # §V-I refinement: adaptive vs constant-P_a energy estimation.
        spec = sd.get_spec(appliance)
        truth = target_house.appliance_power.get(appliance)
        if truth is not None:
            n = (len(aggregate) // preset.window) * preset.window
            windows = aggregate[:n].reshape(-1, preset.window)
            status = camal.predict_status(windows / sd.SCALE_DIVISOR)
            flat_truth = truth[:n].reshape(-1, preset.window)
            constant = estimate_power(status, spec.avg_power_watts, windows)
            adaptive = estimate_power_adaptive(status, windows, 3 * spec.avg_power_watts)
            print(f"  energy MAE (constant P_a) : {mae(flat_truth, constant):.1f} W")
            print(f"  energy MAE (adaptive)     : {mae(flat_truth, adaptive):.1f} W")
        print()


if __name__ == "__main__":
    main()
