"""RQ5 showcase: CamAL soft labels rescue strongly supervised baselines.

Run:  python examples/soft_label_augmentation.py    (~2 minutes)

Reproduces §V-I / Fig. 10: a CamAL trained with possession labels only
generates per-timestamp "soft labels" on unlabeled households; strongly
supervised NILM baselines trained on mixes of scarce ground truth and
CamAL soft labels recover most of their full-supervision accuracy.
"""

import os

import repro.experiments as ex

#: REPRO_SMOKE=1 shrinks the run to CI scale (same code paths, seconds).
SMOKE = bool(os.environ.get("REPRO_SMOKE"))


def main():
    if SMOKE:
        preset = ex.smoke_preset()
    else:
        preset = ex.scaled(
            ex.get_preset("fast"),
            corpus_days={"ukdale": 6.0, "refit": 4.0, "ideal": 4.0, "edf_ev": 40.0, "edf_weak": 30.0},
            edf_weak_houses=40,
        )
    print("Step 1 — train CamAL on possession labels (no EV ground truth at all)...")
    edf_weak = ex.build_corpus("edf_weak", preset)
    edf_ev = ex.build_corpus("edf_ev", preset)
    possession = ex.run_possession_pipeline(
        edf_weak, edf_ev, "electric_vehicle", preset,
        window_candidates=(preset.window,), seed=0,
    )
    print(f"  CamAL (possession-only) localization F1: {possession.localization.f1:.3f}")

    print("\nStep 2 — label the EV training houses with CamAL and train baselines")
    print("on strong/soft household mixes (Fig. 10 protocol)...")
    figure10 = ex.run_figure10(
        possession.camal,
        edf_ev,
        preset,
        methods=["TPNILM"] if SMOKE else ["TPNILM", "BiGRU"],
        mixes=((0, 4), (2, 2)) if SMOKE else ((0, 8), (2, 6), (4, 4)),
        seed=0,
    )
    print()
    print(figure10.render())

    print("\nReading the curves: 'x/y' means x households with ground-truth")
    print("(strong) labels plus y households labeled by CamAL (soft). Compare")
    print("'strong+soft' against 'strong only' at the same x: when strong")
    print("labels are scarce, CamAL's soft labels recover most of the gap —")
    print("the paper reports +34% (TPNILM) to +1200% (BiGRU).")


if __name__ == "__main__":
    main()
