"""RQ4 showcase: detect and localize EV charging with ONE label per household.

Run:  python examples/possession_only_ev.py      (~1-2 minutes)

This reproduces the paper's §V-H industrial scenario:

* an EDF-Weak-like survey corpus — hundreds of households where we only
  know *whether the household owns an EV* (a questionnaire answer);
* an EDF-EV-like submetered corpus used purely for evaluation.

CamAL trains on the possession labels alone (undersample-balanced
households, tumbling-window slicing with the label replicated to every
window) and still localizes charging sessions per timestamp, making it,
in the paper's words, the first truly non-intrusive load monitoring
system.
"""

import os

import repro.experiments as ex

#: REPRO_SMOKE=1 shrinks the run to CI scale (same code paths, seconds).
SMOKE = bool(os.environ.get("REPRO_SMOKE"))


def main():
    if SMOKE:
        preset = ex.smoke_preset()
    else:
        preset = ex.scaled(
            ex.get_preset("fast"),
            corpus_days={"ukdale": 6.0, "refit": 4.0, "ideal": 4.0, "edf_ev": 40.0, "edf_weak": 30.0},
            edf_weak_houses=40,
        )
    print("Building survey corpus (possession labels only) and submetered test corpus...")
    edf_weak = ex.build_corpus("edf_weak", preset)
    edf_ev = ex.build_corpus("edf_ev", preset)
    owners = sum(edf_weak.possession_labels("electric_vehicle").values())
    print(f"  {len(edf_weak)} surveyed households ({owners} EV owners), "
          f"{len(edf_ev)} submetered test households")

    print("Running the possession-only pipeline (window-length selection by "
          "validation balanced accuracy)...")
    result = ex.run_possession_pipeline(
        edf_weak,
        edf_ev,
        "electric_vehicle",
        preset,
        window_candidates=(
            (preset.window,)
            if SMOKE
            else (preset.window // 2, preset.window, preset.window * 2)
        ),
        seed=0,
    )

    print()
    print(result.render())
    print()
    loc = result.localization
    print("=== One label per household is enough ===")
    print(f"  households (labels) used : {loc.n_labels}")
    print(f"  localization F1          : {loc.f1:.3f}")
    print(f"  matching ratio           : {loc.matching_ratio:.3f}")
    print(f"  detection balanced acc.  : {loc.balanced_accuracy:.3f}")

    costs = ex.run_cost_analysis(n_households=len(edf_weak))
    strong, _, possession = costs.per_household
    print("\nCost of obtaining these labels (per household, Fig. 9 model):")
    print(f"  possession questionnaire : ${possession.dollars_per_household:.0f}, "
          f"{possession.gco2_per_household:.1f} gCO2")
    print(f"  submetering instead      : ${strong.dollars_per_household:.0f}, "
          f"{strong.gco2_per_household:.0f} gCO2")


if __name__ == "__main__":
    main()
