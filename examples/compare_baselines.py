"""Head-to-head: CamAL vs NILM baselines at equal *label budgets*.

Run:  python examples/compare_baselines.py     (~2-3 minutes)

Reproduces the message of Fig. 1/5 on one case: CamAL trains on one label
per window while the strongly supervised baselines consume one label per
timestamp — window-length x more annotation for every training window.
The table prints both the scores and the label budgets side by side, plus
the historical Hart-1992 combinatorial-optimization reference, which
needs no training labels but only works when the appliance dominates the
aggregate.
"""

import os

import repro.experiments as ex
from repro.baselines import CombinatorialOptimization
from repro.metrics import f1_score

APPLIANCE = "kettle"
METHODS = ["CamAL", "CRNN-weak", "TPNILM", "UNet-NILM", "BiGRU"]

#: REPRO_SMOKE=1 shrinks the run to CI scale (same code paths, seconds).
SMOKE = bool(os.environ.get("REPRO_SMOKE"))


def main():
    if SMOKE:
        preset = ex.smoke_preset()
        methods = METHODS[:3]
    else:
        preset = ex.scaled(ex.get_preset("fast"), corpus_days={"ukdale": 6.0, "refit": 4.0,
                           "ideal": 4.0, "edf_ev": 30.0, "edf_weak": 20.0})
        methods = METHODS
    corpus = ex.build_corpus("ukdale", preset)
    case = ex.case_windows(corpus, APPLIANCE, preset.window, split_seed=0)
    print(f"Case: {APPLIANCE} ({corpus.name}); {len(case.train)} training windows "
          f"of {preset.window} minutes\n")

    rows = []
    for method in methods:
        print(f"Training {method}...")
        # Every method — CamAL included — runs through the registry-backed
        # estimator API; weak/strong label routing lives in the adapters.
        result = ex.run_model(method, case, preset, seed=0)
        rows.append(
            [method, result.f1, result.matching_ratio, result.n_labels,
             round(result.train_seconds, 1)]
        )

    # Hart 1992 CO reference: no labels, rated powers only.
    spec = case.spec
    co = CombinatorialOptimization({APPLIANCE: spec.avg_power_watts}, base_load_watts=200.0)
    co_status = co.predict_status(case.test.aggregate_watts, APPLIANCE)
    rows.append(["CO (Hart 1992)", f1_score(case.test.strong, co_status), float("nan"), 0, 0.0])

    print()
    print(ex.render_table(
        ["Method", "F1", "MR", "# labels", "train s"], rows,
        title=f"Localization comparison — {APPLIANCE} ({corpus.name})",
    ))
    print("\nNote: CamAL and CRNN-weak consume one label per *window*; the")
    print(f"strongly supervised baselines consume {preset.window} labels per window")
    print("(one per timestamp) — the x-axis gap of Fig. 1/5.")


if __name__ == "__main__":
    main()
