"""Parallel ensemble training with resumable checkpoints.

Run:  python examples/parallel_training.py     (~1 minute on a laptop CPU)

Steps shown:
 1. build a simulated UK-DALE-like corpus and weakly labeled windows;
 2. train the CamAL ensemble serially, then again with worker processes
    (`train_ensemble_parallel`) — and verify the ensembles are identical;
 3. interrupt a training run, resume it from its checkpoint, and verify
    the resumed loss history matches the uninterrupted one bit-for-bit;
 4. persist the pipeline for `InferenceEngine.load`.
"""

import os
import tempfile
import time

import repro.experiments as ex
from repro.api import save_estimator
from repro.core import (
    CamAL,
    ResNetConfig,
    ResNetTSC,
    train_ensemble,
    train_ensemble_parallel,
)
from repro.training import TrainConfig, state_dicts_equal, train_classifier

APPLIANCE = "kettle"

#: REPRO_SMOKE=1 shrinks the run to CI scale (same code paths, seconds).
SMOKE = bool(os.environ.get("REPRO_SMOKE"))


def main():
    preset = ex.smoke_preset() if SMOKE else ex.get_preset("bench")
    print(f"Building UK-DALE-like corpus ({preset.corpus_days['ukdale']:.0f} days/house)...")
    corpus = ex.build_corpus("ukdale", preset)
    case = ex.case_windows(corpus, APPLIANCE, preset.window, split_seed=0)
    config = preset.ensemble_config(seed=0)
    print(
        f"  {len(case.train)} train windows, "
        f"{len(config.kernel_set) * config.n_trials} ensemble candidates"
    )

    # -- serial vs. parallel ------------------------------------------------
    start = time.perf_counter()
    serial, _ = train_ensemble(
        case.train.inputs, case.train.weak, case.val.inputs, case.val.weak, config
    )
    serial_s = time.perf_counter() - start

    workers = min(os.cpu_count() or 1, len(config.kernel_set) * config.n_trials)
    start = time.perf_counter()
    parallel, _ = train_ensemble_parallel(
        case.train.inputs, case.train.weak, case.val.inputs, case.val.weak,
        config, n_workers=workers,
    )
    parallel_s = time.perf_counter() - start

    identical = all(
        state_dicts_equal(ma.state_dict(), mb.state_dict())
        for ma, mb in zip(serial.models, parallel.models)
    )
    print(f"\nSerial   : {serial_s:.1f}s")
    print(f"Parallel : {parallel_s:.1f}s with {workers} worker(s) "
          f"(speedup {serial_s / parallel_s:.2f}x)")
    print(f"Ensembles bit-identical: {identical}")

    # -- checkpoint / resume ------------------------------------------------
    x, y = case.train.inputs, case.train.weak
    model_cfg = ResNetConfig(
        kernel_size=config.kernel_set[0], filters=config.filters, seed=0
    )
    full_model = ResNetTSC(model_cfg)
    loop_cfg = TrainConfig(epochs=4, batch_size=32, patience=0, seed=0)
    full = train_classifier(full_model, x, y, x, y, loop_cfg)

    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "candidate.npz")
        # "Interrupt" after 2 of 4 epochs, checkpointing as we go...
        train_classifier(
            ResNetTSC(model_cfg), x, y, x, y,
            TrainConfig(epochs=2, batch_size=32, patience=0, seed=0,
                        checkpoint_path=path),
        )
        # ...then resume in a fresh model, as a restarted process would.
        resumed_model = ResNetTSC(model_cfg)
        resumed = train_classifier(
            resumed_model, x, y, x, y,
            TrainConfig(epochs=4, batch_size=32, patience=0, seed=0,
                        checkpoint_path=path),
        )
    print(f"\nResumed from epoch {resumed.resumed_from_epoch}:")
    print(f"  loss history matches uninterrupted run: "
          f"{resumed.train_losses == full.train_losses}")
    same_weights = state_dicts_equal(
        full_model.state_dict(), resumed_model.state_dict()
    )
    print(f"  final weights bit-identical            : {same_weights}")

    # -- persist for serving ------------------------------------------------
    camal = CamAL(parallel, power_gate_watts=case.spec.on_threshold_watts)
    out_dir = os.path.join(tempfile.gettempdir(), "camal_kettle_pipeline")
    save_estimator(camal, out_dir)
    print(f"\nPipeline saved to {out_dir} (load with InferenceEngine.load)")


if __name__ == "__main__":
    main()
