"""Per-timestamp localization metrics (F1 / precision / recall).

The paper scores localization with the F1 of the positive (ON) class over
all timestamps of the test windows.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class ConfusionCounts:
    """Binary confusion-matrix counts."""

    tp: int
    fp: int
    fn: int
    tn: int

    @property
    def precision(self) -> float:
        denom = self.tp + self.fp
        return self.tp / denom if denom else 0.0

    @property
    def recall(self) -> float:
        denom = self.tp + self.fn
        return self.tp / denom if denom else 0.0

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 2.0 * p * r / (p + r) if (p + r) > 0 else 0.0

    @property
    def balanced_accuracy(self) -> float:
        tpr = self.tp / (self.tp + self.fn) if (self.tp + self.fn) else 0.0
        tnr = self.tn / (self.tn + self.fp) if (self.tn + self.fp) else 0.0
        return 0.5 * (tpr + tnr)


def confusion(y_true: np.ndarray, y_pred: np.ndarray) -> ConfusionCounts:
    """Confusion counts for binary arrays of any (matching) shape."""
    y_true = np.asarray(y_true).astype(bool).ravel()
    y_pred = np.asarray(y_pred).astype(bool).ravel()
    if y_true.shape != y_pred.shape:
        raise ValueError(f"shape mismatch: {y_true.shape} vs {y_pred.shape}")
    tp = int(np.sum(y_pred & y_true))
    fp = int(np.sum(y_pred & ~y_true))
    fn = int(np.sum(~y_pred & y_true))
    tn = int(np.sum(~y_pred & ~y_true))
    return ConfusionCounts(tp=tp, fp=fp, fn=fn, tn=tn)


def f1_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """F1 of the positive class (the paper's localization score)."""
    return confusion(y_true, y_pred).f1


def precision_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    return confusion(y_true, y_pred).precision


def recall_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    return confusion(y_true, y_pred).recall
