"""Analytic labeling-cost model (Fig. 9 of the paper).

Constants come from §V-H2: submetering a household costs ~$1000 in sensors
plus $1500/year of maintenance and a 2134 gCO2 technician visit; a
questionnaire costs ~$10 and 4.62 gCO2 (one website visit).  Storage uses
8-byte BIGINT per recorded timestamp and 10-byte VARCHAR per possession
answer.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Defaults from the paper (per household).
SENSOR_COST_DOLLARS = 1000.0
MAINTENANCE_COST_DOLLARS_PER_YEAR = 1500.0
QUESTIONNAIRE_COST_DOLLARS = 10.0
TECHNICIAN_VISIT_GCO2 = 2134.0
WEBSITE_VISIT_GCO2 = 4.62
BIGINT_BYTES = 8
VARCHAR_BYTES = 10

_TB = 1024.0 ** 4


@dataclass(frozen=True)
class LabelingCost:
    """Cost of acquiring labels for one supervision scheme."""

    scheme: str
    dollars_per_household: float
    gco2_per_household: float
    storage_bytes: float

    @property
    def storage_terabytes(self) -> float:
        return self.storage_bytes / _TB


def strong_label_cost(
    n_households: int,
    n_appliances: int = 5,
    years: float = 1.0,
    samples_per_year: float = 525_600.0,  # 1-minute sampling
) -> LabelingCost:
    """Cost of per-timestamp (submetered) labels.

    Storage covers the aggregate channel plus one channel per submetered
    appliance, 8 bytes per sample.
    """
    _validate(n_households, n_appliances, years)
    dollars = SENSOR_COST_DOLLARS + MAINTENANCE_COST_DOLLARS_PER_YEAR * years
    channels = 1 + n_appliances
    storage = n_households * channels * samples_per_year * years * BIGINT_BYTES
    return LabelingCost("per timestamp", dollars, TECHNICIAN_VISIT_GCO2, storage)


def weak_label_cost(
    n_households: int,
    n_appliances: int = 5,
    years: float = 1.0,
    samples_per_year: float = 525_600.0,
    surveys_per_year: float = 52.0,  # weekly usage questionnaires
) -> LabelingCost:
    """Cost of per-subsequence weak labels from periodic surveys."""
    _validate(n_households, n_appliances, years)
    dollars = QUESTIONNAIRE_COST_DOLLARS * surveys_per_year * years
    gco2 = WEBSITE_VISIT_GCO2 * surveys_per_year * years
    storage = n_households * (
        samples_per_year * years * BIGINT_BYTES
        + surveys_per_year * years * n_appliances * VARCHAR_BYTES
    )
    return LabelingCost("per subsequence", dollars, gco2, storage)


def possession_label_cost(
    n_households: int,
    n_appliances: int = 5,
    years: float = 1.0,
    samples_per_year: float = 525_600.0,
) -> LabelingCost:
    """Cost of the single possession questionnaire CamAL needs."""
    _validate(n_households, n_appliances, years)
    storage = n_households * (
        samples_per_year * years * BIGINT_BYTES + n_appliances * VARCHAR_BYTES
    )
    return LabelingCost(
        "per household", QUESTIONNAIRE_COST_DOLLARS, WEBSITE_VISIT_GCO2, storage
    )


def _validate(n_households: int, n_appliances: int, years: float) -> None:
    if n_households <= 0:
        raise ValueError("n_households must be positive")
    if n_appliances <= 0:
        raise ValueError("n_appliances must be positive")
    if years <= 0:
        raise ValueError("years must be positive")


def storage_ratio_strong_vs_possession(n_appliances: int = 5) -> float:
    """Paper headline: strong labels store ~(1 + n_app)x more than weak.

    With 5 appliances this is the "6x more data" of Fig. 9(b).
    """
    strong = strong_label_cost(1, n_appliances)
    weak = possession_label_cost(1, n_appliances)
    return strong.storage_bytes / weak.storage_bytes
