"""Appliance-detection (Problem 1) metrics.

The paper scores detection with Balanced Accuracy because the minority
class varies across appliances and window lengths.
"""

from __future__ import annotations

import numpy as np

from .localization import confusion


def balanced_accuracy(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """(TPR + TNR) / 2 over window-level detection decisions."""
    return confusion(y_true, y_pred).balanced_accuracy


def detection_f1(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Window-level F1 (positive class) for completeness."""
    return confusion(y_true, y_pred).f1


def accuracy(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    y_true = np.asarray(y_true).astype(bool).ravel()
    y_pred = np.asarray(y_pred).astype(bool).ravel()
    if y_true.shape != y_pred.shape:
        raise ValueError(f"shape mismatch: {y_true.shape} vs {y_pred.shape}")
    if y_true.size == 0:
        return 0.0
    return float(np.mean(y_true == y_pred))
