"""``repro.metrics`` — evaluation measures of §V-D plus the Fig. 9 cost model."""

from .classification import accuracy, balanced_accuracy, detection_f1
from .costs import (
    LabelingCost,
    possession_label_cost,
    storage_ratio_strong_vs_possession,
    strong_label_cost,
    weak_label_cost,
)
from .energy import mae, matching_ratio, rmse
from .localization import (
    ConfusionCounts,
    confusion,
    f1_score,
    precision_score,
    recall_score,
)

__all__ = [
    "f1_score",
    "precision_score",
    "recall_score",
    "confusion",
    "ConfusionCounts",
    "mae",
    "rmse",
    "matching_ratio",
    "balanced_accuracy",
    "detection_f1",
    "accuracy",
    "LabelingCost",
    "strong_label_cost",
    "weak_label_cost",
    "possession_label_cost",
    "storage_ratio_strong_vs_possession",
]
