"""Energy-estimation metrics: MAE, RMSE and the Matching Ratio.

The Matching Ratio (Mayhorn et al. 2016) is the overlap of true and
estimated power — the paper calls it "the best indicator performance for
energy disaggregation":

    MR = sum_t min(ŷ_t, y_t) / sum_t max(ŷ_t, y_t)
"""

from __future__ import annotations

import numpy as np


def _check(y_true: np.ndarray, y_pred: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    y_true = np.asarray(y_true, dtype=np.float64).ravel()
    y_pred = np.asarray(y_pred, dtype=np.float64).ravel()
    if y_true.shape != y_pred.shape:
        raise ValueError(f"shape mismatch: {y_true.shape} vs {y_pred.shape}")
    return y_true, y_pred


def mae(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Mean absolute error (Watts)."""
    y_true, y_pred = _check(y_true, y_pred)
    return float(np.mean(np.abs(y_true - y_pred)))


def rmse(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Root mean square error (Watts)."""
    y_true, y_pred = _check(y_true, y_pred)
    return float(np.sqrt(np.mean((y_true - y_pred) ** 2)))


def matching_ratio(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Matching Ratio in [0, 1]; 1 means perfect overlap.

    Negative powers are clipped to zero (power readings are non-negative).
    Returns 1.0 when both signals are identically zero (perfect trivial
    match) and 0.0 when exactly one is all-zero.
    """
    y_true, y_pred = _check(y_true, y_pred)
    y_true = np.maximum(y_true, 0.0)
    y_pred = np.maximum(y_pred, 0.0)
    denominator = np.maximum(y_true, y_pred).sum()
    if denominator == 0.0:
        return 1.0
    return float(np.minimum(y_true, y_pred).sum() / denominator)
