"""Streaming window reader over a :class:`MeterStore`.

:class:`StreamingWindows` turns an ingested store into the exact window
pool the in-memory pipeline produces (``repro.simdata.slice_windows``
over forward-filled series), without ever materializing a household's
full recording:

* the index pass reads only the per-sample validity **mask** (one shard
  row) to find the non-overlapping windows free of residual gaps — the
  paper's "subsequences containing any remaining missing values after our
  preprocessing are discarded";
* ``__getitem__`` touches exactly one window's worth of each needed
  channel: the raw aggregate view is a zero-copy ``np.memmap`` slice
  whenever the window lies inside a single shard, and only the per-window
  /1000 scaling and status thresholding allocate;
* it is an :class:`repro.nn.data.Dataset`, so ``DataLoader`` batches it
  unchanged, and it duck-types :class:`repro.simdata.WindowSet`
  (``inputs`` / ``strong`` / ``weak`` / ``aggregate_watts`` /
  ``power_watts``, materialized lazily and cached), so ``train_ensemble``,
  ``labels_for`` and every experiment runner consume it unchanged — with
  bit-identical arrays.

Shuffling is the consumer's job (``DataLoader(shuffle=True, seed=…)``);
:meth:`shuffled_indices` exposes the same deterministic permutation for
custom loops.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..analysis import sanitize
from ..nn.data import Dataset
from ..simdata.appliances import get_spec
from ..simdata.preprocessing import (
    DEFAULT_WINDOW,
    WindowSet,
    on_status,
    scale_aggregate,
)
from .store import AGGREGATE_CHANNEL, MeterStore


class StreamingWindows(Dataset):
    """Model-ready windows for one appliance, streamed from a store.

    Args:
        store: an ingested :class:`MeterStore`.
        appliance: target appliance; its Table-I ON threshold labels the
            windows unless ``threshold_watts`` overrides it.
        house_ids: households to pool, in order (default: every house in
            the store).  Houses without the appliance submeter contribute
            all-OFF labels, exactly like the in-memory path.
        window: non-overlapping window length ``w`` (paper default 510).
        threshold_watts: ON-power threshold for the status labels.
    """

    def __init__(
        self,
        store: MeterStore,
        appliance: str,
        house_ids: Optional[Sequence[str]] = None,
        window: int = DEFAULT_WINDOW,
        threshold_watts: Optional[float] = None,
    ):
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        self.store = store
        self.appliance = appliance
        self.window = int(window)
        self.house_ids = list(store.house_ids if house_ids is None else house_ids)
        self.threshold_watts = float(
            get_spec(appliance).on_threshold_watts
            if threshold_watts is None
            else threshold_watts
        )
        self._materialized: Optional[WindowSet] = None

        # Index pass: mask-only scan for complete, gap-free windows.
        houses: List[str] = []
        house_index: List[np.ndarray] = []
        starts: List[np.ndarray] = []
        for house_id in self.house_ids:
            n_windows = store.n_samples(house_id) // self.window
            if n_windows == 0:
                continue
            mask = store.read_mask(house_id, 0, n_windows * self.window)
            valid = mask.reshape(n_windows, self.window).all(axis=1)
            house_starts = np.flatnonzero(valid).astype(np.int64) * self.window
            if len(house_starts) == 0:
                continue
            house_index.append(np.full(len(house_starts), len(houses), dtype=np.int32))
            starts.append(house_starts)
            houses.append(house_id)
        self._houses: Tuple[str, ...] = tuple(houses)
        self._house_index = (
            np.concatenate(house_index) if house_index else np.zeros(0, dtype=np.int32)
        )
        self._starts = (
            np.concatenate(starts) if starts else np.zeros(0, dtype=np.int64)
        )

    # -- dataset protocol --------------------------------------------------
    def __len__(self) -> int:
        return len(self._starts)

    def __getitem__(self, index: int) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(input, strong, weak)`` for one window.

        ``input`` is the /1000-scaled aggregate ``(w,)``, ``strong`` the
        per-timestamp status ``(w,)``, ``weak`` the scalar window label.
        """
        raw = self.raw_window(index)
        strong = on_status(self.power_window(index), self.threshold_watts)
        weak = (strong.max() > 0).astype(np.float32)
        return scale_aggregate(raw), strong, weak

    def _locate(self, index: int) -> Tuple[str, int]:
        index = int(index)
        if not -len(self) <= index < len(self):
            raise IndexError(f"window {index} out of range [0, {len(self)})")
        index %= len(self)
        return self._houses[self._house_index[index]], int(self._starts[index])

    def raw_window(self, index: int) -> np.ndarray:
        """Unscaled aggregate Watts ``(w,)`` — a zero-copy view when the
        window does not straddle a shard boundary."""
        house_id, start = self._locate(index)
        return self.store.read_channel(
            house_id, AGGREGATE_CHANNEL, start, start + self.window
        )

    def power_window(self, index: int) -> np.ndarray:
        """Ground-truth appliance power ``(w,)`` (zeros when unsubmetered)."""
        house_id, start = self._locate(index)
        if self.appliance in self.store.house_meta(house_id).channels:
            return self.store.read_channel(
                house_id, self.appliance, start, start + self.window
            )
        return sanitize.freeze(np.zeros(self.window, dtype=np.float32))

    def window_house(self, index: int) -> str:
        """Which household window ``index`` comes from."""
        return self._locate(index)[0]

    def shuffled_indices(self, seed: int) -> np.ndarray:
        """Deterministic seeded permutation of the window indices."""
        return np.random.default_rng(seed).permutation(len(self))

    # -- WindowSet duck-typing (lazy, cached) ------------------------------
    def as_window_set(self) -> WindowSet:
        """Materialize into an in-memory :class:`~repro.simdata.WindowSet`.

        The arrays are bit-identical to preprocessing the same corpus in
        memory (``forward_fill`` + ``slice_windows``); the result is
        cached, so the array properties below cost one pass total.
        """
        if self._materialized is None:
            n, w = len(self), self.window
            aggregate = np.empty((n, w), dtype=np.float32)
            power = np.empty((n, w), dtype=np.float32)
            for i in range(n):
                aggregate[i] = self.raw_window(i)
                power[i] = self.power_window(i)
            strong = on_status(power, self.threshold_watts)
            self._materialized = WindowSet(
                inputs=scale_aggregate(aggregate),
                strong=strong,
                weak=(strong.max(axis=1) > 0).astype(np.float32) if n else np.zeros(0, dtype=np.float32),
                aggregate_watts=aggregate,
                power_watts=power,
                house_id="+".join(self._houses),
            )
        return self._materialized

    @property
    def inputs(self) -> np.ndarray:
        return self.as_window_set().inputs

    @property
    def strong(self) -> np.ndarray:
        return self.as_window_set().strong

    @property
    def weak(self) -> np.ndarray:
        return self.as_window_set().weak

    @property
    def aggregate_watts(self) -> np.ndarray:
        return self.as_window_set().aggregate_watts

    @property
    def power_watts(self) -> np.ndarray:
        return self.as_window_set().power_watts

    @property
    def house_id(self) -> str:
        return "+".join(self._houses)

    @property
    def n_strong_labels(self) -> int:
        """Label cost if trained fully supervised: w per window."""
        return len(self) * self.window

    @property
    def n_weak_labels(self) -> int:
        """Label cost if trained weakly: one per window."""
        return len(self)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<StreamingWindows {self.appliance!r} w={self.window}: "
            f"{len(self)} windows from {len(self._houses)} households>"
        )
