"""``repro.data`` — the persistent data layer: sharded on-disk meter
store plus a streaming window pipeline feeding training and serving.

The paper preprocesses each corpus once (resample to round timestamps,
bounded forward-fill, discard windows with residual gaps) and every
method reads the repaired series.  This package makes that recipe a
first-class, persistent artifact instead of a per-run generator:

* :mod:`repro.data.store` — the shard format: per-household float32
  power channels + validity mask in fixed-length memory-mapped shards,
  described by an atomic JSON manifest recording sampling rate,
  appliances, possession labels and preprocessing provenance;
* :mod:`repro.data.ingest` — :func:`ingest_corpus` (hermetic, from any
  :class:`repro.simdata.Corpus`) and :func:`ingest_csv_dir`
  (UK-DALE/REFIT-shaped CSV layouts), preprocessing once at ingest,
  optionally across worker processes;
* :mod:`repro.data.streaming` — :class:`StreamingWindows`, a zero-copy
  window reader that is both an :class:`repro.nn.data.Dataset` and a
  :class:`repro.simdata.WindowSet` drop-in.

Quickstart::

    from repro import data, simdata as sd

    store = data.ingest_corpus(sd.ukdale_like(days=7.0), "stores/ukdale")
    train = data.StreamingWindows(store, "kettle", window=510)
    # feeds DataLoader / train_ensemble / fit_on_case unchanged

Serving reads the same shards through
:meth:`repro.serving.InferenceEngine.score_store`; see ``docs/data.md``.
"""

from .ingest import (
    IngestConfig,
    ingest_corpus,
    ingest_csv_dir,
    preprocess_household,
    repair_household_from_source,
)
from .store import (
    AGGREGATE_CHANNEL,
    DEFAULT_SHARD_LENGTH,
    HouseholdMeta,
    ManifestError,
    MeterStore,
    STORE_FORMAT_VERSION,
    ShardCorruptionError,
    StoreIntegrityError,
    shard_checksum,
    write_household_shards,
    write_manifest,
)
from .streaming import StreamingWindows

__all__ = [
    "MeterStore",
    "HouseholdMeta",
    "StreamingWindows",
    "IngestConfig",
    "ingest_corpus",
    "ingest_csv_dir",
    "preprocess_household",
    "repair_household_from_source",
    "write_household_shards",
    "write_manifest",
    "shard_checksum",
    "StoreIntegrityError",
    "ManifestError",
    "ShardCorruptionError",
    "AGGREGATE_CHANNEL",
    "DEFAULT_SHARD_LENGTH",
    "STORE_FORMAT_VERSION",
]
