"""The on-disk meter store: sharded, memory-mapped household recordings.

A store is a directory holding one JSON manifest plus fixed-length raw
float32 shards per household::

    store/
      manifest.json
      shards/
        ukdale_h1/
          00000.f32
          00001.f32
        ukdale_h2/
          ...

Every shard file is a little-endian float32 matrix of shape
``(n_channels + 1, shard_length)`` written atomically (tmp file +
``os.replace``) and read back as an ``np.memmap`` — opening a store costs
one JSON parse, and reading a window touches only the pages it covers.
Row layout:

* rows ``0 .. n_channels-1`` — the household's power channels in manifest
  order (``aggregate`` first, then the submetered appliances);
* the **last row** is the validity mask: ``1.0`` where the aggregate
  sample was recorded (or repaired by the bounded forward-fill at
  ingest), ``0.0`` where it is missing beyond the fill bound or is tail
  padding of the final shard.  NaN values are stored as ``0.0`` — raw
  reads are always NaN-free — and :meth:`MeterStore.read_channel`
  reconstructs the aggregate's gaps on demand for exact round-trips.
  Submeter channels keep their recorded values even where the aggregate
  has a gap: ground truth is never discarded.

The manifest records the sampling rate, target appliances, per-household
possession answers, and the full preprocessing provenance (resample
factor, fill bound, tail policy) so a store is self-describing: training
and serving never need the original corpus again.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..analysis import faults, sanitize

#: On-disk manifest schema version.
STORE_FORMAT_VERSION = 1

#: Default samples per shard (float32 rows; one channel row is 256 KiB).
DEFAULT_SHARD_LENGTH = 65536

#: Name of the mandatory first channel of every household.
AGGREGATE_CHANNEL = "aggregate"

MANIFEST_NAME = "manifest.json"
_SHARDS_DIR = "shards"
_QUARANTINE_DIR = "quarantine"

#: Open memmaps kept per store (LRU).  A memmap costs an open+mmap pair
#: of syscalls; window reads hit the same shard thousands of times, so
#: re-opening per read would dominate the streaming hot path.  Kept well
#: under typical fd limits — a store may hold millions of shards.
_MMAP_CACHE_SIZE = 32


class StoreIntegrityError(RuntimeError):
    """Base class for store corruption the reader can prove."""


class ManifestError(StoreIntegrityError):
    """The manifest is unreadable, malformed, or self-inconsistent."""


class ShardCorruptionError(StoreIntegrityError):
    """A shard file fails its size or checksum contract (or is quarantined)."""

    def __init__(self, house_id: str, shard: int, reason: str):
        super().__init__(f"house {house_id!r} shard {shard}: {reason}")
        self.house_id = house_id
        self.shard = shard
        self.reason = reason


def shard_checksum(payload: bytes) -> str:
    """Checksum used for shard payloads (blake2b-128 hex)."""
    return hashlib.blake2b(payload, digest_size=16).hexdigest()


def _atomic_write_bytes(path: str, payload: bytes) -> None:
    """Write ``payload`` to ``path`` atomically (tmp file + rename).

    The ``store.shard_write`` fault point covers shard payloads only: a
    torn *manifest* is a crashed ingest (the manifest is written last, so
    the store simply never becomes readable), while a torn *shard* under
    an intact manifest is the silent-corruption case the checksums exist
    to catch.
    """
    if faults.ACTIVE is not None and not path.endswith(MANIFEST_NAME):
        payload = faults.ACTIVE.fire(
            "store.shard_write", token=os.path.basename(path), payload=payload
        )
    directory = os.path.dirname(path) or "."
    fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(payload)
        os.replace(tmp, path)
    except BaseException:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise


def write_manifest(store_dir: str, manifest: Dict) -> None:
    """Atomically persist the store manifest.

    The manifest is written **last** during ingest, so a directory with a
    readable manifest always describes a complete set of shards — a
    crashed ingest leaves no half-valid store behind.
    """
    payload = json.dumps(manifest, indent=2, sort_keys=False).encode()
    _atomic_write_bytes(os.path.join(store_dir, MANIFEST_NAME), payload)


def write_household_shards(
    store_dir: str,
    house_id: str,
    channels: Dict[str, np.ndarray],
    mask: np.ndarray,
    shard_length: int,
) -> List[str]:
    """Write one household's channels+mask as fixed-length shards.

    ``channels`` maps channel name -> float32 series; all series and the
    boolean ``mask`` must share one length.  NaN values are stored as
    ``0.0`` (the mask records which aggregate samples were actually
    recorded); non-NaN values are kept verbatim, so submeter readings
    survive aggregate gaps.  Returns the per-shard blake2b checksums in
    shard order (so ``len(...)`` is the shard count); the manifest records
    them for lazy/eager verification on the read side.
    """
    if AGGREGATE_CHANNEL not in channels:
        raise ValueError(f"{house_id}: channels must include {AGGREGATE_CHANNEL!r}")
    if shard_length <= 0:
        raise ValueError(f"shard_length must be positive, got {shard_length}")
    names = channel_order(channels)
    n = len(mask)
    for name in names:
        if len(channels[name]) != n:
            raise ValueError(
                f"{house_id}: channel {name!r} has {len(channels[name])} samples, "
                f"mask has {n}"
            )
    matrix = _stack_household_matrix(names, channels, mask)

    house_dir = os.path.join(store_dir, _SHARDS_DIR, house_id)
    os.makedirs(house_dir, exist_ok=True)
    n_shards = max(1, -(-n // shard_length))  # ceil; at least one shard
    checksums = []
    for k in range(n_shards):
        payload = _shard_payload(matrix, k, shard_length, n)
        _atomic_write_bytes(os.path.join(house_dir, f"{k:05d}.f32"), payload)
        checksums.append(shard_checksum(payload))
    return checksums


def _stack_household_matrix(
    names: Sequence[str], channels: Dict[str, np.ndarray], mask: np.ndarray
) -> np.ndarray:
    """Stack channels + mask into the ``(n_channels + 1, n)`` shard layout."""
    rows = [
        np.nan_to_num(np.asarray(channels[name], dtype=np.float32), nan=0.0)
        for name in names
    ]
    rows.append(np.asarray(mask, dtype=bool).astype(np.float32))
    return np.stack(rows)


def _shard_payload(matrix: np.ndarray, k: int, shard_length: int, n: int) -> bytes:
    """Bytes of shard ``k``: the sliced matrix, zero-padded to full length."""
    start, stop = k * shard_length, min((k + 1) * shard_length, n)
    shard = np.zeros((matrix.shape[0], shard_length), dtype="<f4")
    shard[:, : stop - start] = matrix[:, start:stop]
    return shard.tobytes()


def channel_order(channels: Dict[str, np.ndarray] | Sequence[str]) -> List[str]:
    """Canonical row order: ``aggregate`` first, appliances sorted."""
    names = list(channels)
    if AGGREGATE_CHANNEL not in names:
        raise ValueError(f"channels must include {AGGREGATE_CHANNEL!r}")
    return [AGGREGATE_CHANNEL] + sorted(n for n in names if n != AGGREGATE_CHANNEL)


@dataclass(frozen=True)
class HouseholdMeta:
    """Manifest entry for one household."""

    house_id: str
    n_samples: int
    n_shards: int
    channels: Tuple[str, ...]  # shard row order; the mask row is implicit
    possession: Dict[str, bool]
    submetered: Tuple[str, ...]
    #: Per-shard blake2b hex digests (``None`` for stores ingested before
    #: checksums existed — those read without verification).
    checksums: Optional[Tuple[str, ...]] = None
    #: Shards moved aside by :meth:`MeterStore.verify` — shard index ->
    #: corruption reason.  Reads of a quarantined shard raise instead of
    #: returning bytes known to be wrong.
    quarantined: Dict[int, str] = field(default_factory=dict)

    def channel_row(self, channel: str) -> int:
        try:
            return self.channels.index(channel)
        except ValueError:
            raise KeyError(
                f"house {self.house_id!r} has no channel {channel!r}; "
                f"available: {list(self.channels)}"
            ) from None

    @property
    def mask_row(self) -> int:
        return len(self.channels)


class MeterStore:
    """Read-side handle on an ingested store directory.

    Duck-compatible with :class:`repro.simdata.Corpus` where the rest of
    the system needs it: exposes ``name``, ``house_ids``,
    ``submetered_house_ids``, ``target_appliances``, ``dt_seconds`` and
    ``possession_labels``, so house-level splitting
    (:func:`repro.simdata.split_houses`) works on a store unchanged.
    """

    def __init__(self, path: str):
        self.path = path
        manifest_path = os.path.join(path, MANIFEST_NAME)
        if not os.path.exists(manifest_path):
            raise FileNotFoundError(
                f"{path!r} is not a meter store (missing {MANIFEST_NAME}); "
                f"ingest one with repro.data.ingest_corpus or 'repro data ingest'"
            )
        try:
            with open(manifest_path) as handle:
                self.manifest: Dict = json.load(handle)
        except json.JSONDecodeError as exc:
            raise ManifestError(
                f"{path!r}: {MANIFEST_NAME} is not valid JSON ({exc}); the "
                f"store is unreadable — re-ingest it"
            ) from exc
        if not isinstance(self.manifest, dict):
            raise ManifestError(
                f"{path!r}: {MANIFEST_NAME} must hold a JSON object, "
                f"got {type(self.manifest).__name__}"
            )
        version = self.manifest.get("format")
        if version != STORE_FORMAT_VERSION:
            raise ValueError(
                f"{path!r}: unsupported store format {version!r} "
                f"(this build reads format {STORE_FORMAT_VERSION})"
            )
        # Cached memmaps carry the stat signature seen at open, so a file
        # deleted or replaced underneath the LRU is detected on the next
        # hit instead of serving a stale (or SIGBUS-prone) mapping.
        self._mmaps: "OrderedDict[Tuple[str, int], Tuple[np.ndarray, Tuple[int, int, int]]]" = (
            OrderedDict()
        )
        #: ``(house_id, shard)`` -> stat signature at verification time.
        #: A shard is re-hashed whenever the file identity on disk no
        #: longer matches the signature it was verified under.
        self._verified: Dict[Tuple[str, int], Tuple[int, int, int]] = {}
        self.households: Dict[str, HouseholdMeta] = {}
        try:
            entries = self.manifest["households"].items()
        except (KeyError, AttributeError) as exc:
            raise ManifestError(
                f"{path!r}: {MANIFEST_NAME} has no 'households' table"
            ) from exc
        for house_id, entry in entries:
            try:
                self.households[house_id] = self._meta_from_entry(house_id, entry)
            except (KeyError, TypeError, ValueError) as exc:
                raise ManifestError(
                    f"{path!r}: malformed manifest entry for house "
                    f"{house_id!r}: {exc}"
                ) from exc

    @staticmethod
    def _meta_from_entry(house_id: str, entry: Dict) -> HouseholdMeta:
        checksums = entry.get("checksums")
        n_shards = int(entry["n_shards"])
        if checksums is not None and len(checksums) != n_shards:
            raise ValueError(
                f"{len(checksums)} checksums for {n_shards} shards"
            )
        return HouseholdMeta(
            house_id=house_id,
            n_samples=int(entry["n_samples"]),
            n_shards=n_shards,
            channels=tuple(entry["channels"]),
            possession={k: bool(v) for k, v in entry["possession"].items()},
            submetered=tuple(entry["submetered"]),
            checksums=tuple(checksums) if checksums is not None else None,
            quarantined={
                int(k): str(v) for k, v in entry.get("quarantined", {}).items()
            },
        )

    # -- corpus-compatible metadata ---------------------------------------
    @property
    def name(self) -> str:
        return self.manifest["name"]

    @property
    def dt_seconds(self) -> float:
        return float(self.manifest["dt_seconds"])

    @property
    def shard_length(self) -> int:
        return int(self.manifest["shard_length"])

    @property
    def target_appliances(self) -> List[str]:
        return list(self.manifest["target_appliances"])

    @property
    def preprocessing(self) -> Dict:
        """Provenance recorded at ingest (resample factor, fill bound, ...)."""
        return dict(self.manifest["preprocessing"])

    @property
    def house_ids(self) -> List[str]:
        return list(self.households)

    @property
    def submetered_house_ids(self) -> List[str]:
        return list(self.manifest["submetered_house_ids"])

    def possession_labels(self, appliance: str) -> Dict[str, bool]:
        """Per-household ownership answers for one appliance."""
        return {
            hid: meta.possession.get(appliance, False)
            for hid, meta in self.households.items()
        }

    def __len__(self) -> int:
        return len(self.households)

    def house_meta(self, house_id: str) -> HouseholdMeta:
        try:
            return self.households[house_id]
        except KeyError:
            raise KeyError(f"{self.name}: no house {house_id!r}") from None

    def n_samples(self, house_id: str) -> int:
        return self.house_meta(house_id).n_samples

    def total_samples(self) -> int:
        return sum(meta.n_samples for meta in self.households.values())

    # -- shard access ------------------------------------------------------
    def shard_path(self, house_id: str, shard: int) -> str:
        return os.path.join(self.path, _SHARDS_DIR, house_id, f"{shard:05d}.f32")

    def _stat_signature(self, path: str) -> Optional[Tuple[int, int, int]]:
        """File identity used to validate cached memmaps (None = gone)."""
        try:
            st = os.stat(path)
        except OSError:
            return None
        return (st.st_ino, st.st_size, st.st_mtime_ns)

    def _expected_shard_bytes(self, meta: HouseholdMeta) -> int:
        return (len(meta.channels) + 1) * self.shard_length * 4

    def shard(self, house_id: str, shard: int) -> np.ndarray:
        """Memory-map one shard, shape ``(n_channels + 1, shard_length)``.

        Maps are read-only and cached in a small LRU, so streaming many
        windows out of one shard opens its file once.  Cache hits are
        stat-validated: a shard file deleted or replaced underneath the
        LRU evicts the stale mapping and reopens (re-verifying the
        checksum) instead of serving bytes from a vanished file.  The
        first open of each shard verifies its manifest checksum when the
        store records one; failures raise :class:`ShardCorruptionError`
        rather than returning data known to be wrong.
        """
        meta = self.house_meta(house_id)
        if not 0 <= shard < meta.n_shards:
            raise IndexError(
                f"house {house_id!r} has {meta.n_shards} shards, asked for {shard}"
            )
        key = (house_id, shard)
        path = self.shard_path(house_id, shard)
        cached = self._mmaps.get(key)
        if cached is not None:
            mapped, signature = cached
            if self._stat_signature(path) == signature:
                self._mmaps.move_to_end(key)
                return mapped
            del self._mmaps[key]
            self._verified.pop(key, None)
        if shard in meta.quarantined:
            raise ShardCorruptionError(
                house_id, shard,
                f"quarantined ({meta.quarantined[shard]}); repair it with "
                f"MeterStore.repair_shard or re-ingest the household",
            )
        if faults.ACTIVE is not None:
            faults.ACTIVE.fire("store.shard_read", token=key)
        signature = self._stat_signature(path)
        if signature is None:
            raise ShardCorruptionError(house_id, shard, f"shard file missing: {path}")
        expected = self._expected_shard_bytes(meta)
        if signature[1] != expected:
            raise ShardCorruptionError(
                house_id, shard,
                f"truncated: {signature[1]} bytes on disk, expected {expected}",
            )
        if meta.checksums is not None and self._verified.get(key) != signature:
            with open(path, "rb") as handle:
                digest = shard_checksum(handle.read())
            if digest != meta.checksums[shard]:
                raise ShardCorruptionError(
                    house_id, shard,
                    f"checksum mismatch: manifest records "
                    f"{meta.checksums[shard]}, file hashes to {digest}",
                )
            self._verified[key] = signature
        mapped = np.memmap(
            path,
            dtype="<f4",
            mode="r",
            shape=(len(meta.channels) + 1, self.shard_length),
        )
        self._mmaps[key] = (mapped, signature)
        while len(self._mmaps) > _MMAP_CACHE_SIZE:
            self._mmaps.popitem(last=False)
        return mapped

    def _read_row(self, house_id: str, row: int, start: int, stop: int) -> np.ndarray:
        """Assemble one shard row over ``[start, stop)`` sample positions.

        Returns a zero-copy memmap view when the range lies inside a
        single shard; ranges crossing a shard boundary are concatenated
        (one copy of exactly the requested samples).
        """
        meta = self.house_meta(house_id)
        if not 0 <= start <= stop <= meta.n_samples:
            raise IndexError(
                f"range [{start}, {stop}) outside house {house_id!r} "
                f"({meta.n_samples} samples)"
            )
        if start == stop:
            return sanitize.freeze(np.zeros(0, dtype=np.float32))
        length = self.shard_length
        first, last = start // length, (stop - 1) // length
        if first == last:
            return self.shard(house_id, first)[row, start - first * length : stop - first * length]
        pieces = []
        for k in range(first, last + 1):
            lo = max(start, k * length) - k * length
            hi = min(stop, (k + 1) * length) - k * length
            pieces.append(self.shard(house_id, k)[row, lo:hi])
        # In-shard views above are read-only already (mode="r" memmaps);
        # freezing the concatenated copy extends the same no-write
        # guarantee to shard-straddling reads under REPRO_NN_SANITIZE=1.
        return sanitize.freeze(np.concatenate(pieces))

    def read_mask(
        self, house_id: str, start: int = 0, stop: Optional[int] = None
    ) -> np.ndarray:
        """Validity mask over ``[start, stop)`` as a boolean array."""
        meta = self.house_meta(house_id)
        stop = meta.n_samples if stop is None else stop
        return sanitize.freeze(
            self._read_row(house_id, meta.mask_row, start, stop) > 0.0
        )

    def read_channel(
        self,
        house_id: str,
        channel: str,
        start: int = 0,
        stop: Optional[int] = None,
        nan_gaps: bool = False,
    ) -> np.ndarray:
        """Read one channel over ``[start, stop)`` as float32 Watts.

        With ``nan_gaps=False`` (the default) the stored values come back
        NaN-free (aggregate gaps read as ``0.0``) and in-shard ranges are
        zero-copy memmap views.  ``nan_gaps=True`` writes NaN over masked
        positions — for the aggregate this reconstructs the
        post-preprocessing gaps exactly (a copy is made only when the
        range contains one); submeter channels keep real readings at
        masked positions, so leave it off for them.
        """
        meta = self.house_meta(house_id)
        stop = meta.n_samples if stop is None else stop
        values = self._read_row(house_id, meta.channel_row(channel), start, stop)
        if not nan_gaps:
            return values
        mask = self.read_mask(house_id, start, stop)
        if mask.all():
            return values
        values = np.array(values, dtype=np.float32)
        values[~mask] = np.nan  # written before the view is frozen
        return sanitize.freeze(values)

    def aggregate(self, house_id: str, nan_gaps: bool = True) -> np.ndarray:
        """The household's full aggregate series (gaps as NaN by default)."""
        return self.read_channel(house_id, AGGREGATE_CHANNEL, nan_gaps=nan_gaps)

    def iter_sample_ranges(
        self, house_id: str
    ) -> Iterator[Tuple[int, int]]:
        """Shard-aligned ``(start, stop)`` sample ranges covering the house."""
        n = self.n_samples(house_id)
        for start in range(0, n, self.shard_length):
            yield start, min(start + self.shard_length, n)

    # -- integrity: verify / quarantine / repair ---------------------------
    def _shard_fault_reason(
        self, house_id: str, meta: HouseholdMeta, shard: int
    ) -> Optional[str]:
        """Reason shard ``shard`` fails its integrity contract, or None."""
        path = self.shard_path(house_id, shard)
        signature = self._stat_signature(path)
        if signature is None:
            return f"shard file missing: {path}"
        expected = self._expected_shard_bytes(meta)
        if signature[1] != expected:
            return f"truncated: {signature[1]} bytes on disk, expected {expected}"
        if meta.checksums is not None:
            with open(path, "rb") as handle:
                digest = shard_checksum(handle.read())
            if digest != meta.checksums[shard]:
                return (
                    f"checksum mismatch: manifest records "
                    f"{meta.checksums[shard]}, file hashes to {digest}"
                )
            self._verified[(house_id, shard)] = signature
        return None

    def verify(self, quarantine: bool = False) -> Dict[str, Dict[int, str]]:
        """Eagerly check every shard; returns corrupt shards per household.

        The result maps ``house_id -> {shard_index: reason}`` and is empty
        for a healthy store.  Shards that pass are marked verified, so
        subsequent memmap opens skip the lazy re-hash.  With
        ``quarantine=True`` every newly found corrupt shard is moved to
        ``<store>/quarantine/<house>/`` and annotated in the manifest —
        later reads raise :class:`ShardCorruptionError` instead of mapping
        a file known to be bad, and :meth:`repair_shard` can rebuild it.
        """
        findings: Dict[str, Dict[int, str]] = {}
        for house_id, meta in self.households.items():
            for k in range(meta.n_shards):
                if k in meta.quarantined:
                    findings.setdefault(house_id, {})[k] = (
                        f"quarantined ({meta.quarantined[k]})"
                    )
                    continue
                reason = self._shard_fault_reason(house_id, meta, k)
                if reason is not None:
                    findings.setdefault(house_id, {})[k] = reason
                    if quarantine:
                        self._quarantine_shard(house_id, k, reason)
        return findings

    def _quarantine_shard(self, house_id: str, shard: int, reason: str) -> None:
        """Move one corrupt shard aside and annotate the manifest."""
        quarantine_dir = os.path.join(self.path, _QUARANTINE_DIR, house_id)
        os.makedirs(quarantine_dir, exist_ok=True)
        source = self.shard_path(house_id, shard)
        if os.path.exists(source):
            os.replace(source, os.path.join(quarantine_dir, f"{shard:05d}.f32"))
        entry = self.manifest["households"][house_id]
        quarantined = dict(entry.get("quarantined", {}))
        quarantined[str(shard)] = reason
        entry["quarantined"] = quarantined
        write_manifest(self.path, self.manifest)
        self.households[house_id] = self._meta_from_entry(house_id, entry)
        self._mmaps.pop((house_id, shard), None)
        self._verified.pop((house_id, shard), None)

    def repair_shard(
        self,
        house_id: str,
        shard: int,
        channels: Dict[str, np.ndarray],
        mask: np.ndarray,
    ) -> str:
        """Rewrite one shard from full-length household data; returns its digest.

        ``channels``/``mask`` are the household's complete preprocessed
        series (what :func:`repro.data.ingest.preprocess_household`
        produces — preprocessing is deterministic, so a re-ingest of the
        raw corpus reproduces the original bytes).  The shard's slice is
        rewritten atomically, its manifest checksum refreshed, and any
        quarantine annotation (and quarantined copy) cleared.
        """
        meta = self.house_meta(house_id)
        if not 0 <= shard < meta.n_shards:
            raise IndexError(
                f"house {house_id!r} has {meta.n_shards} shards, asked for {shard}"
            )
        names = channel_order(channels)
        if tuple(names) != meta.channels:
            raise ValueError(
                f"house {house_id!r}: repair channels {names} do not match "
                f"manifest channels {list(meta.channels)}"
            )
        n = meta.n_samples
        if len(mask) != n:
            raise ValueError(
                f"house {house_id!r}: repair mask has {len(mask)} samples, "
                f"manifest records {n}"
            )
        for name in names:
            if len(channels[name]) != n:
                raise ValueError(
                    f"house {house_id!r}: repair channel {name!r} has "
                    f"{len(channels[name])} samples, manifest records {n}"
                )
        length = self.shard_length
        start, stop = shard * length, min((shard + 1) * length, n)
        sliced = {
            name: np.asarray(channels[name])[start:stop] for name in names
        }
        matrix = _stack_household_matrix(
            names, sliced, np.asarray(mask, dtype=bool)[start:stop]
        )
        payload = _shard_payload(matrix, 0, length, stop - start)
        os.makedirs(os.path.dirname(self.shard_path(house_id, shard)), exist_ok=True)
        _atomic_write_bytes(self.shard_path(house_id, shard), payload)
        digest = shard_checksum(payload)
        entry = self.manifest["households"][house_id]
        if entry.get("checksums") is not None:
            checksums = list(entry["checksums"])
            checksums[shard] = digest
            entry["checksums"] = checksums
        quarantined = dict(entry.get("quarantined", {}))
        quarantined.pop(str(shard), None)
        if quarantined:
            entry["quarantined"] = quarantined
        else:
            entry.pop("quarantined", None)
        write_manifest(self.path, self.manifest)
        self.households[house_id] = self._meta_from_entry(house_id, entry)
        self._mmaps.pop((house_id, shard), None)
        self._verified.pop((house_id, shard), None)
        quarantine_copy = os.path.join(
            self.path, _QUARANTINE_DIR, house_id, f"{shard:05d}.f32"
        )
        if os.path.exists(quarantine_copy):
            os.unlink(quarantine_copy)
        return digest

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<MeterStore {self.name!r} at {self.path!r}: "
            f"{len(self)} households, {self.total_samples()} samples>"
        )
