"""Ingestors: corpus / CSV directory -> sharded :class:`MeterStore`.

Preprocessing (the paper's §V-B recipe) is applied **once**, here, and its
provenance is recorded in the manifest — training and serving read the
repaired series instead of re-running resample/fill on every epoch:

1. resample to round timestamps by interval averaging
   (:func:`repro.simdata.resample_average`, ``keep_tail=True`` so the
   partial trailing interval is averaged rather than dropped);
2. bounded forward-fill of NaN gaps up to the dataset's budget
   (:func:`repro.simdata.forward_fill`, Table I "Max. ffill");
3. gaps that survive the fill become validity-mask zeros — windows
   touching them are excluded downstream instead of poisoning a loss.

Households ingest independently, so ``n_workers > 1`` fans them out over
a ``ProcessPoolExecutor``; the manifest (written last, atomically) is
assembled in submission order, making parallel and serial ingests
byte-identical.
"""

from __future__ import annotations

import os
from dataclasses import asdict, dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..simdata.corpora import Corpus
from ..simdata.preprocessing import forward_fill, resample_average
from .store import (
    AGGREGATE_CHANNEL,
    DEFAULT_SHARD_LENGTH,
    MeterStore,
    STORE_FORMAT_VERSION,
    channel_order,
    write_household_shards,
    write_manifest,
)


@dataclass(frozen=True)
class IngestConfig:
    """Knobs of one ingest run; persisted as manifest provenance."""

    shard_length: int = DEFAULT_SHARD_LENGTH
    resample_factor: int = 1  # 1 = keep the native sampling rate
    max_ffill_samples: Optional[int] = None  # None -> the corpus default
    keep_tail: bool = True  # average the partial trailing resample block
    n_workers: int = 1

    def provenance(self, max_ffill: int, source: str) -> Dict:
        meta = asdict(self)
        del meta["n_workers"]  # execution detail, not data provenance
        meta["max_ffill_samples"] = int(max_ffill)
        meta["source"] = source
        return meta


def preprocess_household(
    aggregate: np.ndarray,
    appliance_channels: Dict[str, np.ndarray],
    max_ffill_samples: int,
    resample_factor: int = 1,
    keep_tail: bool = True,
) -> Tuple[Dict[str, np.ndarray], np.ndarray]:
    """Apply the ingest recipe to one household.

    Returns ``(channels, mask)`` where ``channels`` holds float32 series
    (``aggregate`` plus each appliance, all resampled to one length) and
    ``mask`` flags the samples still valid after the bounded fill.  Only
    the aggregate is gap-repaired — appliance submeters are ground truth
    and NaN there simply reads as 0 W (OFF), matching the in-memory
    pipeline's ``on_status`` semantics.
    """
    aggregate = np.asarray(aggregate, dtype=np.float32)
    aggregate = resample_average(aggregate, resample_factor, keep_tail=keep_tail)
    aggregate = forward_fill(aggregate, max_ffill_samples)
    mask = ~np.isnan(aggregate)
    channels: Dict[str, np.ndarray] = {AGGREGATE_CHANNEL: aggregate}
    for name, series in appliance_channels.items():
        series = resample_average(
            np.asarray(series, dtype=np.float32), resample_factor, keep_tail=keep_tail
        )
        if len(series) != len(aggregate):
            raise ValueError(
                f"channel {name!r} resampled to {len(series)} samples, "
                f"aggregate to {len(aggregate)}"
            )
        channels[name] = np.nan_to_num(series, nan=0.0)
    return channels, mask


#: One household's ingest work order (plain tuple so it pickles cheaply):
#: (store_dir, house_id, aggregate, appliance_channels, possession,
#:  max_ffill, resample_factor, keep_tail, shard_length).  Series may be
#: arrays (corpus path) or CSV file paths (CSV path) — paths are parsed
#: inside the worker, so a CSV ingest holds at most one household's
#: series per worker process instead of the whole corpus.
_Series = "np.ndarray | str"
_HouseJob = Tuple[str, str, _Series, Dict[str, _Series], Dict[str, bool], int, int, bool, int]


def _load_series(series) -> np.ndarray:
    return _read_csv_series(series) if isinstance(series, str) else series


def _ingest_household(job: _HouseJob) -> Dict:
    """Worker: preprocess + shard one household, return its manifest entry."""
    (
        store_dir,
        house_id,
        aggregate,
        appliance_channels,
        possession,
        max_ffill,
        resample_factor,
        keep_tail,
        shard_length,
    ) = job
    channels, mask = preprocess_household(
        _load_series(aggregate),
        {name: _load_series(series) for name, series in appliance_channels.items()},
        max_ffill,
        resample_factor,
        keep_tail,
    )
    checksums = write_household_shards(
        store_dir, house_id, channels, mask, shard_length
    )
    return {
        "n_samples": int(len(mask)),
        "n_shards": len(checksums),
        "channels": channel_order(channels),
        "possession": {k: bool(v) for k, v in possession.items()},
        "submetered": sorted(appliance_channels),
        "checksums": checksums,
    }


def _run_jobs(jobs: List[_HouseJob], n_workers: int) -> List[Dict]:
    if n_workers < 1:
        raise ValueError(f"n_workers must be >= 1, got {n_workers}")
    if n_workers > 1 and len(jobs) > 1:
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(max_workers=min(n_workers, len(jobs))) as pool:
            # map preserves submission order -> deterministic manifest.
            return list(pool.map(_ingest_household, jobs))
    return [_ingest_household(job) for job in jobs]


def _finalize_store(
    out_dir: str,
    name: str,
    dt_seconds: float,
    target_appliances: Sequence[str],
    submetered_house_ids: Sequence[str],
    house_ids: Sequence[str],
    entries: Sequence[Dict],
    config: IngestConfig,
    max_ffill: int,
    source: str,
) -> MeterStore:
    manifest = {
        "format": STORE_FORMAT_VERSION,
        "name": name,
        "dt_seconds": float(dt_seconds),
        "shard_length": int(config.shard_length),
        "target_appliances": list(target_appliances),
        "submetered_house_ids": list(submetered_house_ids),
        "preprocessing": config.provenance(max_ffill, source),
        "households": {hid: entry for hid, entry in zip(house_ids, entries)},
    }
    write_manifest(out_dir, manifest)
    return MeterStore(out_dir)


def ingest_corpus(
    corpus: Corpus, out_dir: str, config: Optional[IngestConfig] = None
) -> MeterStore:
    """Ingest a :class:`repro.simdata.Corpus` into ``out_dir``.

    This is the hermetic path — tests, CI and the benchmarks build real
    stores from simulated corpora without any recordings on disk.  The
    fill bound defaults to the corpus's Table-I budget
    (``corpus.max_ffill_samples``, interpreted post-resample).
    """
    config = config or IngestConfig()
    os.makedirs(out_dir, exist_ok=True)
    max_ffill = (
        corpus.max_ffill_samples
        if config.max_ffill_samples is None
        else config.max_ffill_samples
    )
    jobs: List[_HouseJob] = [
        (
            out_dir,
            house.house_id,
            house.aggregate,
            dict(house.appliance_power),
            dict(house.possession),
            max_ffill,
            config.resample_factor,
            config.keep_tail,
            config.shard_length,
        )
        for house in corpus.houses
    ]
    entries = _run_jobs(jobs, config.n_workers)
    return _finalize_store(
        out_dir,
        name=corpus.name,
        dt_seconds=corpus.dt_seconds * config.resample_factor,
        target_appliances=corpus.target_appliances,
        submetered_house_ids=corpus.submetered_house_ids,
        house_ids=[house.house_id for house in corpus.houses],
        entries=entries,
        config=config,
        max_ffill=max_ffill,
        source=f"corpus:{corpus.name}",
    )


def repair_household_from_source(
    store: MeterStore,
    house_id: str,
    aggregate: np.ndarray,
    appliance_channels: Dict[str, np.ndarray],
    shards: Optional[Sequence[int]] = None,
) -> List[int]:
    """Re-ingest one household's damaged shards from its raw source series.

    Preprocessing is deterministic and its provenance (resample factor,
    fill bound, tail policy) is recorded in the manifest, so re-running
    the recipe on the original raw series reproduces the original shard
    bytes exactly — a quarantined shard repairs back to its recorded
    checksum without touching the household's healthy shards.

    ``shards`` picks which shard indices to rewrite; by default every
    quarantined or integrity-failing shard of the household is repaired.
    Returns the repaired shard indices.
    """
    provenance = store.preprocessing
    channels, mask = preprocess_household(
        np.asarray(aggregate, dtype=np.float32),
        {k: np.asarray(v, dtype=np.float32) for k, v in appliance_channels.items()},
        int(provenance["max_ffill_samples"]),
        int(provenance["resample_factor"]),
        bool(provenance["keep_tail"]),
    )
    meta = store.house_meta(house_id)
    if len(mask) != meta.n_samples:
        raise ValueError(
            f"house {house_id!r}: source re-ingest produced {len(mask)} "
            f"samples, manifest records {meta.n_samples} — wrong source data?"
        )
    if shards is None:
        targets = set(meta.quarantined)
        for k in range(meta.n_shards):
            if k not in targets and store._shard_fault_reason(house_id, meta, k):
                targets.add(k)
    else:
        targets = set(int(k) for k in shards)
    repaired = sorted(targets)
    for k in repaired:
        store.repair_shard(house_id, k, channels, mask)
    return repaired


def _read_csv_series(path: str) -> np.ndarray:
    """Parse one CSV channel: ``value`` or ``timestamp,value`` rows.

    ``nan`` (or an empty value field after a comma) marks a gap; fully
    blank lines are skipped as formatting, so single-column layouts must
    spell gaps as ``nan``.  A non-numeric first row is treated as a
    header.  Returns float32 Watts.
    """
    values: List[float] = []
    with open(path) as handle:
        for lineno, line in enumerate(handle):
            line = line.strip()
            if not line:
                continue
            field = line.split(",")[-1].strip()
            if field == "" or field.lower() == "nan":
                values.append(np.nan)
                continue
            try:
                values.append(float(field))
            except ValueError:
                if lineno == 0:
                    continue  # header row
                raise ValueError(f"{path}:{lineno + 1}: not a number: {field!r}")
    return np.asarray(values, dtype=np.float32)


def ingest_csv_dir(
    csv_dir: str,
    out_dir: str,
    dt_seconds: float,
    max_ffill_samples: int,
    target_appliances: Optional[Sequence[str]] = None,
    name: Optional[str] = None,
    config: Optional[IngestConfig] = None,
) -> MeterStore:
    """Ingest a UK-DALE/REFIT-shaped CSV directory layout.

    Expected layout — one sub-directory per household::

        csv_dir/
          house_1/
            aggregate.csv        # mandatory main-meter channel
            kettle.csv           # one CSV per submetered appliance
            possession.json      # optional {"kettle": true, ...}
          house_2/
            ...

    Each CSV holds one sample per row, either a bare Watt value or
    ``timestamp,value`` (the timestamp column is ignored — series are
    assumed already sample-aligned at ``dt_seconds``, as after the
    UK-DALE/REFIT export tooling); blank or ``nan`` values mark gaps.
    ``max_ffill_samples`` is the Table-I fill budget **after** resampling.
    """
    import json as _json
    from dataclasses import replace

    config = config or IngestConfig()
    if config.max_ffill_samples is None:
        config = replace(config, max_ffill_samples=max_ffill_samples)
    os.makedirs(out_dir, exist_ok=True)
    house_dirs = sorted(
        entry
        for entry in os.listdir(csv_dir)
        if os.path.isdir(os.path.join(csv_dir, entry))
    )
    if not house_dirs:
        raise ValueError(f"{csv_dir!r} contains no household sub-directories")

    jobs: List[_HouseJob] = []
    possession_by_house: List[Dict[str, bool]] = []
    submetered_by_house: List[List[str]] = []
    for house_id in house_dirs:
        house_path = os.path.join(csv_dir, house_id)
        agg_path = os.path.join(house_path, f"{AGGREGATE_CHANNEL}.csv")
        if not os.path.exists(agg_path):
            raise FileNotFoundError(f"{house_path!r} has no {AGGREGATE_CHANNEL}.csv")
        # Channel *paths*, not arrays: each worker parses only its own
        # household's CSVs, so ingest memory stays bounded per household.
        channels = {
            fname[: -len(".csv")]: os.path.join(house_path, fname)
            for fname in sorted(os.listdir(house_path))
            if fname.endswith(".csv") and fname != f"{AGGREGATE_CHANNEL}.csv"
        }
        possession: Dict[str, bool] = {appliance: True for appliance in channels}
        possession_path = os.path.join(house_path, "possession.json")
        if os.path.exists(possession_path):
            with open(possession_path) as handle:
                possession.update(
                    {k: bool(v) for k, v in _json.load(handle).items()}
                )
        possession_by_house.append(possession)
        submetered_by_house.append(sorted(channels))
        jobs.append(
            (
                out_dir,
                house_id,
                agg_path,
                channels,
                possession,
                int(config.max_ffill_samples),
                config.resample_factor,
                config.keep_tail,
                config.shard_length,
            )
        )
    entries = _run_jobs(jobs, config.n_workers)

    if target_appliances is None:
        target_appliances = sorted(
            {appliance for subs in submetered_by_house for appliance in subs}
        )
    return _finalize_store(
        out_dir,
        name=name or os.path.basename(os.path.normpath(csv_dir)),
        dt_seconds=dt_seconds * config.resample_factor,
        target_appliances=target_appliances,
        submetered_house_ids=[
            hid for hid, subs in zip(house_dirs, submetered_by_house) if subs
        ],
        house_ids=house_dirs,
        entries=entries,
        config=config,
        max_ffill=int(config.max_ffill_samples),
        source=f"csv:{os.path.abspath(csv_dir)}",
    )
