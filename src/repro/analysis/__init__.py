"""Static and runtime enforcement of the repo's performance/determinism
invariants.

Three pieces, one contract:

* :mod:`repro.analysis.lint` — AST linter (``repro lint src benchmarks``
  is a blocking CI gate): hot-path allocation ban, determinism rules,
  env-var registry checks, backend kernel-contract parity, counter
  discipline.  Violations are silenced only by an inline
  ``# repro: waive[RULE] justification`` comment.
* :mod:`repro.analysis.sanitize` — runtime sanitizer
  (``REPRO_NN_SANITIZE=1``): buffer-pool poison-fill + generation tags,
  trace-time plan slot lifetime checks, read-only meter-store views.
  Free when off (a single ``is None`` branch in the instrumented paths).
* :mod:`repro.analysis.envvars` — the registry every ``REPRO_*``
  environment variable must appear in, cross-checked against ``docs/``.
* :mod:`repro.analysis.faults` — deterministic, seeded fault injection
  (``REPRO_FAULTS``): named points in the store/serving/training paths
  raise, tear, bitflip, delay or kill on demand so the self-healing
  layers can be exercised in CI.  Free when off (one ``is None`` branch
  per instrumented point).

See ``docs/analysis.md`` for the rule catalog and sanitizer semantics,
``docs/robustness.md`` for the fault-injection grammar.
"""

from __future__ import annotations

from . import envvars, faults, sanitize
from .faults import FaultPlan, FaultSpec, InjectedFault, parse_spec
from .lint import LintReport, Violation, run_lint
from .markers import hot_path
from .sanitize import PlanSanitizeError

__all__ = [
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "LintReport",
    "PlanSanitizeError",
    "Violation",
    "envvars",
    "faults",
    "hot_path",
    "parse_spec",
    "run_lint",
    "sanitize",
]
