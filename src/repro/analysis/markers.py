"""Zero-cost source markers read by the lint engine.

Kept in a leaf module with no intra-package imports so the hot modules
(``repro.nn.backend``, ``repro.nn.plan``) can import it without pulling the
lint engine — or anything else — into their import graph.
"""

from __future__ import annotations

from typing import Callable, TypeVar

F = TypeVar("F", bound=Callable)

__all__ = ["hot_path"]


def hot_path(fn: F) -> F:
    """Mark ``fn`` as serving-hot: the lint engine bans allocations inside.

    The decorator itself does nothing at runtime (one attribute write at
    import time); :mod:`repro.analysis.lint` rule ``HOT001`` recognizes the
    marker syntactically, so any function — in any module — can opt into
    the hot-path allocation ban that the backend/plan/grouped modules get
    by location.  See ``docs/analysis.md``.
    """
    fn.__repro_hot_path__ = True
    return fn
