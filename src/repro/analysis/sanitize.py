"""Runtime sanitizer for the serving invariants (``REPRO_NN_SANITIZE=1``).

PRs 5-6 made steady-state serving fast by imposing invariants the type
system cannot see: pooled buffers are *fully rewritten* before every read,
plan slots are never read after the trace released them, and memory-mapped
store windows are never written by a kernel.  This module makes violating
any of them fail loudly instead of silently corrupting a score:

* **buffer-pool poison + generation tags** — when sanitizing, every buffer
  a :class:`~repro.nn.backend.pool.BufferPool` recycles at ``step()`` is
  poison-filled (NaN for floats) and its generation tag bumped, so a
  consumer that reads a released micro-batch buffer propagates NaN into
  its outputs (caught by the first comparison or finiteness check) rather
  than reading a stale-but-plausible activation;
* **plan slot tracking** — :class:`PlanTracker` rides along a
  :class:`~repro.nn.plan.PlanBuilder` trace: every emitted step declares
  the slots it reads/writes, and the tracker raises
  :class:`PlanSanitizeError` *naming the offending step* when a step reads
  a slot after its release (use-after-release) or reads/writes a slot that
  was recycled into a new logical value without an intervening write
  (cross-slot aliasing).  Released slots are poison-filled too;
* **read-only store views** — :func:`freeze` flips the writeable flag off
  on windows served by :mod:`repro.data`, so a kernel writing into a store
  view raises ``ValueError`` at the offending statement.

The instrumentation is built to be *free when off*: ``BufferPool`` and
``PlanBuilder`` resolve the flag once at construction to a single
``is None`` branch per operation, and :func:`freeze` is one truthiness
check.  ``benchmarks/bench_nn_ops.py --smoke`` measures and asserts the
disabled-mode overhead (< 5 % on a raw take/step loop).

Enable with ``REPRO_NN_SANITIZE=1`` (see ``docs/config.md``) or, in tests,
with the :func:`force` context manager — note that pools and builders
snapshot the flag when constructed.
"""

from __future__ import annotations

import contextlib
import os
from typing import Dict, Iterator, List, Optional, Sequence

import numpy as np

__all__ = [
    "SANITIZE_ENV",
    "PlanSanitizeError",
    "PlanTracker",
    "PoolTracker",
    "enabled",
    "force",
    "freeze",
    "plan_tracker",
    "poison_fill",
    "pool_tracker",
    "reset_stats",
    "stats",
]

#: Environment variable enabling the sanitizer (``1``/``true``/``on``/``yes``).
SANITIZE_ENV = "REPRO_NN_SANITIZE"

#: Test override installed by :func:`force` (``None`` = follow the env var).
_FORCED: Optional[bool] = None

#: Process-wide instrumentation counters (surfaced in the benchmark JSON).
_STATS: Dict[str, int] = {
    "poison_fills": 0,
    "generation_bumps": 0,
    "frozen_views": 0,
    "tracked_slots": 0,
    "plan_checks": 0,
}


class PlanSanitizeError(RuntimeError):
    """A traced plan step violated the slot lifetime discipline."""


def enabled() -> bool:
    """Whether sanitizing is on (env var, unless :func:`force` overrides)."""
    if _FORCED is not None:
        return _FORCED
    return os.environ.get(SANITIZE_ENV, "").strip().lower() in (
        "1",
        "true",
        "on",
        "yes",
    )


@contextlib.contextmanager
def force(value: Optional[bool]) -> Iterator[None]:
    """Override the env-var gate for the duration of the block (tests).

    Pools and plan builders read the flag at *construction*, so construct
    them inside the block.
    """
    global _FORCED
    previous = _FORCED
    _FORCED = value
    try:
        yield
    finally:
        _FORCED = previous


def stats() -> Dict[str, int]:
    """Snapshot of the instrumentation counters."""
    return dict(_STATS)


def reset_stats() -> None:
    """Zero the counters (tests and benchmarks call this around a region)."""
    for key in _STATS:
        _STATS[key] = 0


def poison_fill(arr: np.ndarray) -> None:
    """Overwrite ``arr`` with an unmistakably-wrong value, in place.

    NaN for floats (it propagates through any arithmetic that reads it),
    the dtype's minimum for integers, ``True`` for booleans.
    """
    if arr.dtype.kind == "f":
        arr.fill(np.nan)
    elif arr.dtype.kind == "c":
        arr.fill(complex(np.nan, np.nan))
    elif arr.dtype.kind in "iu":
        arr.fill(np.iinfo(arr.dtype).min if arr.dtype.kind == "i" else np.iinfo(arr.dtype).max)
    else:
        arr.fill(True)
    _STATS["poison_fills"] += 1


def freeze(arr: np.ndarray) -> np.ndarray:
    """Return ``arr`` read-only when sanitizing (no-op — and free — when off).

    Applied by :mod:`repro.data` to every window/mask it serves, so a
    kernel that writes into a store view raises ``ValueError`` instead of
    corrupting (or appearing to corrupt) the on-disk recording.  Memmap
    views opened ``mode="r"`` are read-only already; this extends the
    guarantee to the copies made for shard-straddling ranges and
    unsubmetered channels.
    """
    if enabled() and arr.flags.writeable:
        arr.setflags(write=False)
        _STATS["frozen_views"] += 1
    return arr


# ----------------------------------------------------------------------
# Buffer-pool instrumentation
# ----------------------------------------------------------------------
class PoolTracker:
    """Generation tags + poison-fill for one :class:`BufferPool`.

    ``on_take`` tags the handed-out buffer with its current generation;
    ``on_release`` (called from ``BufferPool.step``) poison-fills every
    buffer being recycled and bumps its generation.  A consumer holding a
    buffer across a ``step()`` — the use-after-release the pool's contract
    forbids — therefore reads NaN, and the generation counters make the
    recycling visible in :meth:`summary`.
    """

    def __init__(self) -> None:
        self._generation: Dict[int, int] = {}

    def on_take(self, arr: np.ndarray) -> None:
        if id(arr) not in self._generation:
            self._generation[id(arr)] = 0
            _STATS["tracked_slots"] += 1

    def on_release(self, taken: Sequence[np.ndarray]) -> None:
        for arr in taken:
            poison_fill(arr)
            self._generation[id(arr)] = self._generation.get(id(arr), 0) + 1
            _STATS["generation_bumps"] += 1

    def generation(self, arr: np.ndarray) -> int:
        """Current generation tag of a pooled buffer (0 = never recycled)."""
        return self._generation.get(id(arr), 0)

    def summary(self) -> Dict[str, int]:
        return {
            "tracked_buffers": len(self._generation),
            "generations": sum(self._generation.values()),
        }


def pool_tracker() -> Optional[PoolTracker]:
    """A fresh tracker when sanitizing, else ``None`` (the one-branch gate)."""
    return PoolTracker() if enabled() else None


# ----------------------------------------------------------------------
# Plan-trace instrumentation
# ----------------------------------------------------------------------
class _SlotState:
    __slots__ = ("generation", "free", "writer", "writer_generation", "released_by")

    def __init__(self) -> None:
        self.generation = 0
        self.free = False
        self.writer: Optional[str] = None
        self.writer_generation = -1
        self.released_by: Optional[str] = None


class PlanTracker:
    """Trace-time slot lifetime checker for :class:`PlanBuilder`.

    The builder registers every slot it hands out, every release, and —
    through ``emit(..., reads=..., writes=...)`` — which slots each
    recorded step touches.  Because the builder *is* the scheduler, every
    violation is detectable at trace time, before a single replay:

    * a step reading a slot that sits in the free list is a
      **use-after-release** (its value may be clobbered by whoever recycles
      the slot);
    * a step reading a slot that was recycled into a new logical buffer
      with no write since is the same bug one recycle later;
    * a step writing a slot in the free list is **cross-slot aliasing**
      (the write will corrupt whatever logical buffer recycles the slot).

    Views are resolved to their owning slot through ``.base``, so reads
    and writes may be declared with the exact (possibly reshaped/sliced)
    array the step closure uses.
    """

    def __init__(self) -> None:
        self._slots: Dict[int, _SlotState] = {}
        self._arrays: Dict[int, np.ndarray] = {}

    # -- builder hooks -----------------------------------------------------
    def on_buffer(self, arr: np.ndarray, recycled: bool) -> None:
        state = self._slots.get(id(arr))
        if state is None:
            state = _SlotState()
            self._slots[id(arr)] = state
            self._arrays[id(arr)] = arr
            _STATS["tracked_slots"] += 1
        if recycled:
            state.generation += 1
            state.writer = None
            state.writer_generation = -1
            _STATS["generation_bumps"] += 1
        state.free = False
        state.released_by = None

    def on_release(self, arr: np.ndarray, at_step: Optional[str] = None) -> None:
        state = self._resolve(arr)
        if state is None:
            return
        state.free = True
        state.released_by = at_step
        owner = self._arrays[id(arr)] if id(arr) in self._arrays else arr
        if owner.flags.writeable:
            poison_fill(owner)

    def on_emit(
        self,
        label: str,
        reads: Sequence[np.ndarray],
        writes: Sequence[np.ndarray],
    ) -> None:
        _STATS["plan_checks"] += 1
        for arr in reads:
            state = self._resolve(arr)
            if state is None:
                continue  # parameter/external array, not a plan slot
            if state.free:
                raise PlanSanitizeError(
                    f"plan step {label!r} reads a slot released"
                    f"{' by step ' + repr(state.released_by) if state.released_by else ''}"
                    " — use-after-release (the slot may be recycled and "
                    "clobbered before this step runs)"
                )
            if state.generation > 0 and state.writer_generation != state.generation:
                last = (
                    f"last written by step {state.writer!r} at generation "
                    f"{state.writer_generation}"
                    if state.writer is not None
                    else "never written at this generation"
                )
                raise PlanSanitizeError(
                    f"plan step {label!r} reads a slot recycled to generation "
                    f"{state.generation} ({last}) — stale read through a "
                    "recycled slot"
                )
        for arr in writes:
            state = self._resolve(arr)
            if state is None:
                continue
            if state.free:
                raise PlanSanitizeError(
                    f"plan step {label!r} writes a slot already released"
                    f"{' by step ' + repr(state.released_by) if state.released_by else ''}"
                    " — cross-slot aliasing (the write would corrupt "
                    "whatever logical buffer recycles the slot)"
                )
            state.writer = label
            state.writer_generation = state.generation

    # -- internals ---------------------------------------------------------
    def _resolve(self, arr: np.ndarray) -> Optional[_SlotState]:
        node: Optional[np.ndarray] = arr
        while node is not None:
            state = self._slots.get(id(node))
            if state is not None:
                return state
            node = node.base if isinstance(node.base, np.ndarray) else None
        return None

    def summary(self) -> Dict[str, int]:
        free = sum(1 for s in self._slots.values() if s.free)
        return {
            "tracked_slots": len(self._slots),
            "free_slots": free,
            "generations": sum(s.generation for s in self._slots.values()),
        }


def plan_tracker() -> Optional[PlanTracker]:
    """A fresh tracker when sanitizing, else ``None`` (the one-branch gate)."""
    return PlanTracker() if enabled() else None
