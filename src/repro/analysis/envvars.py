"""Central registry of every ``REPRO_*`` environment variable.

The escape hatches and CI toggles of this codebase are environment
variables (``REPRO_NN_PLAN=off``, ``REPRO_SMOKE=1``, ...).  Before this
registry they were documented — if at all — inside the docstring of
whichever module happened to read them, so a contributor had no single
place to learn what knobs exist, and nothing stopped a new ``os.environ``
read from shipping undocumented.

Two lint rules (:mod:`repro.analysis.lint`) close that loop:

* ``ENV001`` — every ``REPRO_*`` string literal in ``src/`` and
  ``benchmarks/`` must name an entry registered here;
* ``ENV002`` — every entry registered here must be referenced in at least
  one page under ``docs/`` (the user-facing table lives in
  ``docs/config.md``).

Registering a variable therefore *is* the act of declaring it public, and
forgetting either half (registry or docs) blocks CI.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet


@dataclass(frozen=True)
class EnvVar:
    """One registered environment variable."""

    name: str
    #: The value space, human-readable (e.g. ``"off|0|false|no"``).
    values: str
    #: What reads it and what it changes — one sentence.
    description: str
    #: Dotted module that owns the read (where the behaviour lives).
    owner: str


_ENTRIES = (
    EnvVar(
        name="REPRO_NN_BACKEND",
        values="reference|im2col|fft|auto",
        description=(
            "Process-wide default conv1d kernel; `reference` reproduces the "
            "pre-backend float32 bits, `auto` enables first-call timing."
        ),
        owner="repro.nn.backend",
    ),
    EnvVar(
        name="REPRO_NN_AUTOTUNE",
        values="off|0|false|no (default: on)",
        description=(
            "Escape hatch disabling the autotuner's first-call timing pass; "
            "`auto` mode then serves the default kernel untimed."
        ),
        owner="repro.nn.backend.autotune",
    ),
    EnvVar(
        name="REPRO_NN_AUTOTUNE_CACHE",
        values="path to a JSON file",
        description=(
            "Persisted autotune table: loaded at first use, rewritten "
            "whenever a new conv signature is tuned."
        ),
        owner="repro.nn.backend.autotune",
    ),
    EnvVar(
        name="REPRO_NN_PLAN",
        values="off|0|false|no (default: on)",
        description=(
            "Escape hatch disabling traced eval plans; every ensemble "
            "forward takes the untraced per-member loop."
        ),
        owner="repro.nn.plan",
    ),
    EnvVar(
        name="REPRO_NN_FUSE",
        values="off|0|false (default: on)",
        description=(
            "Escape hatch staging conv, folded-BN shift and ReLU as "
            "separate eval passes instead of one fused backend call."
        ),
        owner="repro.core.resnet",
    ),
    EnvVar(
        name="REPRO_NN_SANITIZE",
        values="1|true|on|yes (default: off)",
        description=(
            "Runtime sanitizer: buffer-pool generation tags + poison-fill "
            "on release, trace-time plan slot checks, and read-only "
            "meter-store views (see docs/analysis.md)."
        ),
        owner="repro.analysis.sanitize",
    ),
    EnvVar(
        name="REPRO_SERVE_HOST",
        values="bind address (default: 127.0.0.1)",
        description=(
            "Address the serving daemon (`repro serve`) listens on; CLI "
            "`--host` overrides it."
        ),
        owner="repro.serving.server",
    ),
    EnvVar(
        name="REPRO_SERVE_PORT",
        values="TCP port, 0 = ephemeral (default: 7733)",
        description=(
            "Port the serving daemon listens on; CLI `--port` overrides it."
        ),
        owner="repro.serving.server",
    ),
    EnvVar(
        name="REPRO_SERVE_MAX_BATCH",
        values="int >= 1 (default: 256)",
        description=(
            "Coalescer flush threshold: total windows stacked across "
            "concurrent requests before a fused forward is forced."
        ),
        owner="repro.serving.server",
    ),
    EnvVar(
        name="REPRO_SERVE_MAX_WAIT_US",
        values="int >= 0 microseconds (default: 2000)",
        description=(
            "How long the coalescer lingers after the first queued request "
            "to gather more before flushing; 0 disables the linger."
        ),
        owner="repro.serving.server",
    ),
    EnvVar(
        name="REPRO_SERVE_QUEUE_DEPTH",
        values="int >= 1 (default: 64)",
        description=(
            "Bounded pending-request queue per appliance; beyond it the "
            "daemon fast-rejects with `overloaded` + `retry_after_ms`."
        ),
        owner="repro.serving.server",
    ),
    EnvVar(
        name="REPRO_FAULTS",
        values="point:prob:kind[:seed], comma-separated (default: off)",
        description=(
            "Deterministic fault injection at named points (e.g. "
            "`store.shard_write:0.5:torn_write:7`); kinds are exception, "
            "torn_write, bitflip, delay, kill — see docs/robustness.md."
        ),
        owner="repro.analysis.faults",
    ),
    EnvVar(
        name="REPRO_CKPT_KEEP",
        values="int >= 1 (default: 2)",
        description=(
            "How many checkpoint generations `save_checkpoint` keeps per "
            "path (newest first); resume falls back to the newest intact "
            "one when the latest is torn."
        ),
        owner="repro.training.checkpoint",
    ),
    EnvVar(
        name="REPRO_SMOKE",
        values="1 (default: off)",
        description=(
            "Shrinks every example script to CI scale (same code paths, "
            "seconds of wall time)."
        ),
        owner="examples/*",
    ),
    EnvVar(
        name="REPRO_BENCH_SMOKE",
        values="1 (default: off)",
        description=(
            "Shrinks benchmark configurations to CI scale, equivalent to "
            "passing `--smoke` on the command line."
        ),
        owner="benchmarks/*",
    ),
)

#: name -> :class:`EnvVar`, in declaration order.
ENV_VARS: Dict[str, EnvVar] = {entry.name: entry for entry in _ENTRIES}


def registered() -> FrozenSet[str]:
    """The set of registered variable names (lint rule ``ENV001``)."""
    return frozenset(ENV_VARS)


def get(name: str) -> EnvVar:
    """Look up one registered variable; raises ``KeyError`` if unknown."""
    return ENV_VARS[name]


def render_table() -> str:
    """Plain-text table of every registered variable (``repro lint --envvars``)."""
    width = max(len(name) for name in ENV_VARS)
    lines = []
    for entry in ENV_VARS.values():
        lines.append(f"{entry.name:<{width}}  [{entry.values}]")
        lines.append(f"{'':<{width}}  {entry.description} ({entry.owner})")
    return "\n".join(lines)
