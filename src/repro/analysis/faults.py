"""Deterministic, seeded fault injection for chaos testing.

Production failures — torn shard writes, bit rot, crashed pool workers,
dropped sockets — are rare and non-reproducible in the wild, which makes
the recovery paths that handle them the least-tested code in the system.
This module turns those failures into a deterministic input: named
**injection points** planted in the hot code fire seeded faults when (and
only when) the ``REPRO_FAULTS`` environment variable asks for them.

Spec grammar (comma-separated entries)::

    REPRO_FAULTS="point:prob:kind[:seed]"

    REPRO_FAULTS="store.shard_write:1.0:torn_write:7"
    REPRO_FAULTS="serve.worker:0.5:kill:3,serve.socket_recv:0.5:exception:11"

* ``point`` — one of :data:`KNOWN_POINTS` (unknown names are an error, so
  typos fail loudly instead of silently injecting nothing);
* ``prob`` — per-check firing probability in ``[0, 1]``;
* ``kind`` — one of :data:`KINDS`:

  - ``exception``  raise :class:`InjectedFault` (an ``OSError``);
  - ``torn_write`` truncate the byte payload being written (simulates a
    partial flush surviving a crash);
  - ``bitflip``    flip one bit of the payload (simulates silent media
    corruption);
  - ``delay``      sleep :data:`DELAY_SECONDS` (simulates a stall);
  - ``kill``       ``os._exit(1)`` the current process (simulates a
    worker crash — only meaningful in pool workers);

* ``seed`` — integer stream seed (default 0).

Determinism comes in two flavors.  Checks without a ``token`` consume one
draw from a per-point sequential stream seeded by ``seed`` — the n-th
check of a point always makes the same decision for a given spec.  Checks
*with* a ``token`` derive the decision from ``(seed, token)`` alone via
``np.random.SeedSequence``, so the decision is reproducible **across
processes** — a spawn-pool worker that re-parses ``REPRO_FAULTS`` in a
fresh interpreter reaches the same verdict for the same token.  Retry
loops pass their attempt number as the token, which lets a test pick a
seed where attempt 0 fires and attempt 1 does not: the crash *and* the
recovery are both deterministic.

Guard pattern (same contract as :mod:`repro.analysis.sanitize`): the hot
code guards every call with one ``None`` check::

    from ..analysis import faults

    if faults.ACTIVE is not None:
        payload = faults.ACTIVE.fire("store.shard_write", payload=payload)

With ``REPRO_FAULTS`` unset, :data:`ACTIVE` is ``None`` and the cost per
check is a single attribute load + ``is None`` branch — measured against
the serving hot path by ``benchmarks/bench_faults.py`` (< 1% of request
latency).  Tests install plans directly via :func:`install` /
:func:`uninstall` or the :func:`active` context manager.
"""

from __future__ import annotations

import hashlib
import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator, Optional, Tuple

import numpy as np

__all__ = [
    "FAULTS_ENV",
    "KNOWN_POINTS",
    "KINDS",
    "DELAY_SECONDS",
    "InjectedFault",
    "FaultSpec",
    "FaultPlan",
    "ACTIVE",
    "parse_spec",
    "install",
    "uninstall",
    "active",
    "fire",
    "stats",
]

#: Environment variable holding the fault spec.
FAULTS_ENV = "REPRO_FAULTS"

#: Injection points planted in the codebase.  The registry is the single
#: source of truth: specs naming an unknown point are rejected at parse
#: time, and ``docs/robustness.md`` documents this table.
KNOWN_POINTS: Dict[str, str] = {
    "store.shard_write": "shard byte payloads in data.store._atomic_write_bytes",
    "store.shard_read": "memmap open in data.store.MeterStore.shard",
    "serve.socket_recv": "client-side frame read in serving.client.ServingClient",
    "serve.coalesce": "stacked multi-request forward in the serving coalescer",
    "serve.worker": "spawn-pool worker entry for daemon store jobs",
    "train.checkpoint_write": "checkpoint archive bytes in training.save_checkpoint",
}

#: Fault kinds a spec may request.
KINDS = ("exception", "torn_write", "bitflip", "delay", "kill")

#: Sleep injected by the ``delay`` kind.
DELAY_SECONDS = 0.01

#: Payload-corrupting kinds leave the payload alone unless it is bytes.
_PAYLOAD_KINDS = ("torn_write", "bitflip")


class InjectedFault(OSError):
    """The exception raised by ``exception``-kind faults.

    An ``OSError`` subclass so injected failures travel the same recovery
    paths (retries, checksum verification, quarantine) as real I/O
    errors — recovery code never special-cases injection.
    """


@dataclass(frozen=True)
class FaultSpec:
    """One parsed ``point:prob:kind[:seed]`` entry."""

    point: str
    prob: float
    kind: str
    seed: int = 0


def parse_spec(text: str) -> Tuple[FaultSpec, ...]:
    """Parse a ``REPRO_FAULTS`` spec string; raises ``ValueError`` on typos."""
    specs = []
    for raw in text.split(","):
        entry = raw.strip()
        if not entry:
            continue
        parts = entry.split(":")
        if len(parts) not in (3, 4):
            raise ValueError(
                f"bad {FAULTS_ENV} entry {entry!r}: expected point:prob:kind[:seed]"
            )
        point, prob_text, kind = parts[0], parts[1], parts[2]
        if point not in KNOWN_POINTS:
            raise ValueError(
                f"unknown fault point {point!r}; known: {sorted(KNOWN_POINTS)}"
            )
        if kind not in KINDS:
            raise ValueError(f"unknown fault kind {kind!r}; known: {list(KINDS)}")
        try:
            prob = float(prob_text)
        except ValueError:
            raise ValueError(f"bad fault probability {prob_text!r} in {entry!r}") from None
        if not 0.0 <= prob <= 1.0:
            raise ValueError(f"fault probability must be in [0, 1], got {prob}")
        try:
            seed = int(parts[3]) if len(parts) == 4 else 0
        except ValueError:
            raise ValueError(f"bad fault seed {parts[3]!r} in {entry!r}") from None
        specs.append(FaultSpec(point=point, prob=prob, kind=kind, seed=seed))
    return tuple(specs)


def _token_hash(token: object) -> int:
    """Stable 64-bit hash of a token (``hash()`` is salted per process)."""
    digest = hashlib.blake2b(repr(token).encode(), digest_size=8).digest()
    return int.from_bytes(digest, "little")


class FaultPlan:
    """A parsed spec plus its per-point RNG streams and fire counters."""

    def __init__(self, specs: Tuple[FaultSpec, ...]):
        self.specs: Dict[str, FaultSpec] = {}
        for spec in specs:
            if spec.point in self.specs:
                raise ValueError(f"duplicate fault point {spec.point!r} in spec")
            self.specs[spec.point] = spec
        self._rngs = {
            point: np.random.default_rng(spec.seed)
            for point, spec in self.specs.items()
        }
        self._checks = {point: 0 for point in self.specs}
        self._fired = {point: 0 for point in self.specs}
        self._lock = threading.Lock()

    def would_fire(self, point: str, token: object) -> bool:
        """The (pure) token-keyed decision; does not touch counters.

        Lets tests scan for a seed where e.g. attempt 0 fires and
        attempt 1 does not, making crash-then-recover fully deterministic.
        """
        spec = self.specs.get(point)
        if spec is None:
            return False
        draw = np.random.default_rng(
            np.random.SeedSequence([spec.seed, _token_hash(token)])
        ).random()
        return bool(draw < spec.prob)

    def fire(
        self,
        point: str,
        token: object = None,
        payload: Optional[bytes] = None,
    ) -> Optional[bytes]:
        """Check one injection point; enact its fault if the draw fires.

        Returns ``payload`` (corrupted for ``torn_write`` / ``bitflip``
        when the fault fires, verbatim otherwise).  ``exception`` raises
        :class:`InjectedFault`; ``kill`` does not return.
        """
        if point not in KNOWN_POINTS:
            raise ValueError(f"unknown fault point {point!r}")
        spec = self.specs.get(point)
        if spec is None:
            return payload
        if token is not None:
            fired = self.would_fire(point, token)
            with self._lock:
                self._checks[point] += 1
                if fired:
                    self._fired[point] += 1
        else:
            with self._lock:
                self._checks[point] += 1
                fired = bool(self._rngs[point].random() < spec.prob)
                if fired:
                    self._fired[point] += 1
        if not fired:
            return payload
        if spec.kind == "exception":
            raise InjectedFault(
                f"injected fault at {point} (seed={spec.seed}, token={token!r})"
            )
        if spec.kind == "delay":
            time.sleep(DELAY_SECONDS)
            return payload
        if spec.kind == "kill":
            os._exit(1)
        if payload is None or spec.kind not in _PAYLOAD_KINDS:
            return payload
        if spec.kind == "torn_write":
            # Keep at least one byte missing; an empty payload stays empty.
            return payload[: max(0, len(payload) - max(1, len(payload) // 2))]
        flipped = bytearray(payload)
        if flipped:
            position = _token_hash((spec.seed, token)) % len(flipped)
            flipped[position] ^= 0x01
        return bytes(flipped)

    def stats(self) -> Dict[str, Dict[str, int]]:
        """Per-point ``{"checks": n, "fired": n}`` counters."""
        with self._lock:
            return {
                point: {"checks": self._checks[point], "fired": self._fired[point]}
                for point in self.specs
            }


def _plan_from_env() -> Optional[FaultPlan]:
    text = os.environ.get(FAULTS_ENV, "").strip()
    if not text:
        return None
    specs = parse_spec(text)
    return FaultPlan(specs) if specs else None


#: The installed plan, or ``None`` when fault injection is off.  Hot code
#: guards every injection point with ``if faults.ACTIVE is not None`` —
#: the entire disabled-mode cost.  Snapshotted from the environment at
#: import time (so spawn-pool children activate automatically) and
#: overridable in-process via :func:`install` / :func:`active`.
ACTIVE: Optional[FaultPlan] = _plan_from_env()


def install(spec: str | Tuple[FaultSpec, ...] | FaultPlan) -> FaultPlan:
    """Install a fault plan for this process (tests; overrides the env)."""
    global ACTIVE
    if isinstance(spec, FaultPlan):
        plan = spec
    elif isinstance(spec, str):
        plan = FaultPlan(parse_spec(spec))
    else:
        plan = FaultPlan(spec)
    ACTIVE = plan
    return plan


def uninstall() -> None:
    """Deactivate fault injection for this process."""
    global ACTIVE
    ACTIVE = None


@contextmanager
def active(spec: str) -> Iterator[FaultPlan]:
    """Context manager: install ``spec``, restore the previous plan after."""
    global ACTIVE
    previous = ACTIVE
    plan = install(spec)
    try:
        yield plan
    finally:
        ACTIVE = previous


def fire(
    point: str, token: object = None, payload: Optional[bytes] = None
) -> Optional[bytes]:
    """Module-level convenience: fire on the active plan, if any.

    Call sites on hot paths should check ``faults.ACTIVE is not None``
    themselves before calling (one branch when off); cold paths may call
    this directly.
    """
    plan = ACTIVE
    if plan is None:
        return payload
    return plan.fire(point, token=token, payload=payload)


def stats() -> Dict[str, Dict[str, int]]:
    """Counters of the active plan (empty when injection is off)."""
    plan = ACTIVE
    return plan.stats() if plan is not None else {}
