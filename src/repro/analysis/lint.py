"""AST-based invariant linter for the serving/determinism contracts.

The fast paths built in PRs 5-6 rest on invariants that plain review does
not reliably catch: replay steps must not allocate, nothing in ``src/``
may consume global RNG or wall-clock state, every ``REPRO_*`` escape
hatch must be registered and documented, every conv backend must export
the full kernel contract, and every op counter must be asserted by a
test.  This module checks all of them syntactically — ``repro lint src
benchmarks`` is a blocking CI step.

Rule catalog (details and examples in ``docs/analysis.md``):

========  ========  =====================================================
rule      severity  meaning
========  ========  =====================================================
HOT001    error     numpy allocation inside a hot-path function
HOT002    error     list growth (``.append``/``.extend``) inside a loop
                    in a hot-path function
DET001    error     global RNG use (``np.random.*`` / ``random.*``)
                    outside the blessed seed helper
DET002    error     wall-clock call (``time.time``, ``datetime.now``, ...)
DET003    error     public ``fit``/``train_*`` entry without an explicit
                    seed/rng/config parameter
ENV001    error     ``REPRO_*`` literal not in the env-var registry
ENV002    error     registry entry not referenced anywhere under ``docs/``
BCK001    error     conv backend module missing part of the kernel
                    contract (``forward``/``forward_fused``/
                    ``grad_weight``/``grad_input``)
CNT001    error     counter in ``backend/counters.py`` not asserted by
                    any test
ERR001    error     error swallowing: bare ``except:``, or an
                    ``except Exception``/``except BaseException`` handler
                    whose body is only ``pass``
WVR001    error     waiver comment without a justification
WVR002    warning   waiver that matched no violation
SYN001    error     file failed to parse
========  ========  =====================================================

A violation is silenced by a waiver comment on the offending line or the
line directly above, and every waiver must say *why*::

    buf = np.zeros(shape, DTYPE)  # repro: waive[HOT001] trace-time only

"Hot path" means: decorated ``@repro.analysis.hot_path`` (recognized
syntactically), or any function in the replay modules
(``nn/backend/{__init__,im2col,fft,reference}.py``, ``nn/plan.py``,
``core/grouped.py``).  ``nn/backend/pool.py`` is deliberately *not* hot:
it is the allocator the ban steers hot code toward, and pool acquisition
(``take``/``take_persistent``/``scratch``/``buffer``) is always allowed.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from . import envvars

__all__ = [
    "LintReport",
    "Violation",
    "Waiver",
    "run_lint",
]

#: Hot-by-location modules: replay code where a single stray allocation
#: regresses the steady-state serving numbers (posix rel-path suffixes).
HOT_MODULE_SUFFIXES: Tuple[str, ...] = (
    "nn/backend/__init__.py",
    "nn/backend/im2col.py",
    "nn/backend/fft.py",
    "nn/backend/reference.py",
    "nn/plan.py",
    "core/grouped.py",
)

#: numpy callables that allocate a fresh buffer (HOT001).
_ALLOC_ATTRS = frozenset(
    {
        "zeros",
        "empty",
        "ones",
        "full",
        "zeros_like",
        "empty_like",
        "ones_like",
        "full_like",
        "concatenate",
        "stack",
        "vstack",
        "hstack",
        "tile",
    }
)

#: ``np.random.<attr>`` calls that do NOT touch the global state (DET001).
_RNG_ALLOWED = frozenset({"default_rng", "Generator", "RandomState", "SeedSequence"})

#: Dotted wall-clock calls (DET002).  ``time.perf_counter`` (and
#: ``monotonic``) stay legal: they time, they do not date.
_WALL_CLOCK = frozenset(
    {
        "time.time",
        "time.ctime",
        "time.localtime",
        "time.gmtime",
        "time.strftime",
        "datetime.now",
        "datetime.utcnow",
        "datetime.today",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "date.today",
        "datetime.date.today",
    }
)

#: Parameter names that satisfy DET003 (explicit seed threading — a
#: config object counts because ``TrainConfig`` carries the seed).
_SEED_PARAMS = frozenset({"seed", "rng", "generator", "config", "cfg", "train_config"})

#: Function names whose *calls* mark pool acquisition (exempt by contract).
_POOL_ACQUIRE = frozenset({"take", "take_persistent", "scratch", "buffer"})

#: The blessed seed helper: the one function allowed to touch global RNGs.
_BLESSED_SEED_HELPER = "seed_everything"

_ENV_LITERAL = re.compile(r"REPRO_[A-Z0-9_]*[A-Z0-9]")
_WAIVE_COMMENT = re.compile(r"#\s*repro:\s*waive\[([A-Z0-9_,\s]+)\]\s*(.*)$")


@dataclass
class Violation:
    """One rule hit at one source location."""

    rule: str
    severity: str  # "error" | "warning"
    path: str  # path as given to run_lint (relative when possible)
    line: int
    message: str
    waived: bool = False

    def format(self) -> str:
        tag = " (waived)" if self.waived else ""
        return f"{self.path}:{self.line}: {self.rule} [{self.severity}]{tag} {self.message}"


@dataclass
class Waiver:
    """One ``# repro: waive[RULE,...]`` comment."""

    rules: Tuple[str, ...]
    line: int
    justification: str
    used: bool = False


@dataclass
class LintReport:
    """Everything one ``run_lint`` call found."""

    violations: List[Violation] = field(default_factory=list)
    waived: List[Violation] = field(default_factory=list)
    files_checked: int = 0

    @property
    def errors(self) -> List[Violation]:
        return [v for v in self.violations if v.severity == "error"]

    @property
    def warnings(self) -> List[Violation]:
        return [v for v in self.violations if v.severity == "warning"]

    def counts(self) -> Dict[str, int]:
        return {
            "files": self.files_checked,
            "errors": len(self.errors),
            "warnings": len(self.warnings),
            "waived": len(self.waived),
        }

    def format(self, verbose: bool = False) -> str:
        lines = [v.format() for v in self.violations]
        if verbose:
            lines.extend(v.format() for v in self.waived)
        counts = self.counts()
        lines.append(
            f"{counts['files']} files: {counts['errors']} errors, "
            f"{counts['warnings']} warnings, {counts['waived']} waived"
        )
        return "\n".join(lines)


class _FileContext:
    """Parsed source + waivers for one file."""

    def __init__(self, path: Path, display: str, relpath: str, source: str) -> None:
        self.path = path
        self.display = display
        #: posix path relative to the lint root (drives hot-by-location).
        self.relpath = relpath
        self.source = source
        self.tree: Optional[ast.AST] = None
        self.syntax_error: Optional[SyntaxError] = None
        try:
            self.tree = ast.parse(source)
        except SyntaxError as exc:  # SYN001
            self.syntax_error = exc
        self.waivers: List[Waiver] = self._parse_waivers(source)

    @staticmethod
    def _parse_waivers(source: str) -> List[Waiver]:
        waivers: List[Waiver] = []
        try:
            tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
        except (tokenize.TokenError, IndentationError, SyntaxError):
            return waivers
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            match = _WAIVE_COMMENT.search(tok.string)
            if match is None:
                continue
            rules = tuple(
                part.strip() for part in match.group(1).split(",") if part.strip()
            )
            waivers.append(
                Waiver(
                    rules=rules,
                    line=tok.start[0],
                    justification=match.group(2).strip(),
                )
            )
        return waivers

    @property
    def is_hot_module(self) -> bool:
        return self.relpath.endswith(HOT_MODULE_SUFFIXES)

    def violation(self, rule: str, line: int, message: str, severity: str = "error") -> Violation:
        return Violation(rule=rule, severity=severity, path=self.display, line=line, message=message)


# ----------------------------------------------------------------------
# AST helpers
# ----------------------------------------------------------------------
def _dotted(node: ast.AST) -> Optional[str]:
    """``a.b.c`` as a string for Name/Attribute chains, else ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _is_hot_decorated(node: ast.AST) -> bool:
    decorators = getattr(node, "decorator_list", [])
    for dec in decorators:
        target = dec.func if isinstance(dec, ast.Call) else dec
        name = _dotted(target)
        if name is not None and name.split(".")[-1] == "hot_path":
            return True
    return False


def _param_names(args: ast.arguments) -> Set[str]:
    names = {a.arg for a in args.args}
    names.update(a.arg for a in args.posonlyargs)
    names.update(a.arg for a in args.kwonlyargs)
    return names


# ----------------------------------------------------------------------
# Per-file rules
# ----------------------------------------------------------------------
class _HotPathVisitor(ast.NodeVisitor):
    """HOT001 (allocations) and HOT002 (list growth in loops)."""

    def __init__(self, ctx: _FileContext) -> None:
        self.ctx = ctx
        self.violations: List[Violation] = []
        self._hot_depth = 0
        self._loop_depth = 0
        self._module_hot = ctx.is_hot_module

    # -- scope tracking ---------------------------------------------------
    def _enter_function(self, node: ast.AST) -> None:
        hot = self._module_hot or self._hot_depth > 0 or _is_hot_decorated(node)
        self._hot_depth += 1 if hot else 0
        outer_loop = self._loop_depth
        self._loop_depth = 0
        self.generic_visit(node)
        self._loop_depth = outer_loop
        self._hot_depth -= 1 if hot else 0

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._enter_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._enter_function(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._enter_function(node)

    def _visit_loop(self, node: ast.AST) -> None:
        self._loop_depth += 1
        self.generic_visit(node)
        self._loop_depth -= 1

    def visit_For(self, node: ast.For) -> None:
        self._visit_loop(node)

    def visit_While(self, node: ast.While) -> None:
        self._visit_loop(node)

    # -- checks -----------------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        if self._hot_depth > 0:
            name = _dotted(node.func)
            if name is not None:
                head, _, attr = name.rpartition(".")
                if head in ("np", "numpy") and attr in _ALLOC_ATTRS:
                    self.violations.append(
                        self.ctx.violation(
                            "HOT001",
                            node.lineno,
                            f"`{name}` allocates inside a hot-path function; "
                            "use the buffer pool (`take`/`scratch`) or move "
                            "the allocation to trace/setup time",
                        )
                    )
                last = name.split(".")[-1]
                if (
                    self._loop_depth > 0
                    and last in ("append", "extend")
                    and "." in name
                    and name.split(".")[0] not in ("self",)
                ):
                    self.violations.append(
                        self.ctx.violation(
                            "HOT002",
                            node.lineno,
                            f"`.{last}()` grows a list inside a loop in a "
                            "hot-path function; preallocate or hoist out of "
                            "the replay path",
                        )
                    )
        self.generic_visit(node)


def _rule_hot(ctx: _FileContext) -> Iterator[Violation]:
    visitor = _HotPathVisitor(ctx)
    visitor.visit(ctx.tree)
    yield from visitor.violations


class _DeterminismVisitor(ast.NodeVisitor):
    """DET001 (global RNG), DET002 (wall clock)."""

    def __init__(self, ctx: _FileContext) -> None:
        self.ctx = ctx
        self.violations: List[Violation] = []
        self._blessed_depth = 0

    def _enter_function(self, node: ast.AST) -> None:
        blessed = getattr(node, "name", None) == _BLESSED_SEED_HELPER
        self._blessed_depth += 1 if blessed else 0
        self.generic_visit(node)
        self._blessed_depth -= 1 if blessed else 0

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._enter_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._enter_function(node)

    def visit_Call(self, node: ast.Call) -> None:
        name = _dotted(node.func)
        if name is not None and self._blessed_depth == 0:
            parts = name.split(".")
            # np.random.<x> / numpy.random.<x> with x outside the
            # Generator-constructing allowlist consumes global RNG state.
            if (
                len(parts) == 3
                and parts[0] in ("np", "numpy")
                and parts[1] == "random"
                and parts[2] not in _RNG_ALLOWED
            ):
                self.violations.append(
                    self.ctx.violation(
                        "DET001",
                        node.lineno,
                        f"`{name}` consumes global numpy RNG state; thread an "
                        "explicit `np.random.Generator` instead",
                    )
                )
            elif len(parts) == 2 and parts[0] == "random" and parts[1] not in (
                "Random",
                "SystemRandom",
            ):
                self.violations.append(
                    self.ctx.violation(
                        "DET001",
                        node.lineno,
                        f"`{name}` consumes the stdlib global RNG; use a "
                        "dedicated `random.Random(seed)` (or numpy Generator)",
                    )
                )
            if name in _WALL_CLOCK:
                self.violations.append(
                    self.ctx.violation(
                        "DET002",
                        node.lineno,
                        f"`{name}` makes output depend on wall-clock time; "
                        "pass timestamps in explicitly "
                        "(`time.perf_counter` is fine for timing)",
                    )
                )
        self.generic_visit(node)


def _rule_det_calls(ctx: _FileContext) -> Iterator[Violation]:
    visitor = _DeterminismVisitor(ctx)
    visitor.visit(ctx.tree)
    yield from visitor.violations


def _rule_det_entries(ctx: _FileContext) -> Iterator[Violation]:
    """DET003: module-level ``fit``/``train_*`` must thread a seed."""
    for node in ast.iter_child_nodes(ctx.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if node.name != "fit" and not node.name.startswith("train_"):
            continue
        if node.name.startswith("_"):
            continue
        if not _param_names(node.args) & _SEED_PARAMS:
            yield ctx.violation(
                "DET003",
                node.lineno,
                f"public training entry `{node.name}` takes none of "
                f"{sorted(_SEED_PARAMS)}; determinism must be callable-in, "
                "not ambient",
            )


def _rule_env_literals(ctx: _FileContext) -> Iterator[Violation]:
    """ENV001: every ``REPRO_*`` literal must be registered."""
    if ctx.relpath.endswith("analysis/envvars.py"):
        return  # the registry itself defines the names
    known = envvars.registered()
    for node in ast.walk(ctx.tree):
        if not (isinstance(node, ast.Constant) and isinstance(node.value, str)):
            continue
        if _ENV_LITERAL.fullmatch(node.value) and node.value not in known:
            yield ctx.violation(
                "ENV001",
                node.lineno,
                f"`{node.value}` is not registered in "
                "repro.analysis.envvars; register it (with docs) or rename",
            )


def _rule_backend_contract(ctx: _FileContext) -> Iterator[Violation]:
    """BCK001: conv kernel modules must export the full contract."""
    if "nn/backend/" not in ctx.relpath:
        return
    module_funcs: Set[str] = set()
    declares_name = False
    for node in ast.iter_child_nodes(ctx.tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            module_funcs.add(node.name)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if (
                    isinstance(target, ast.Name)
                    and target.id == "NAME"
                    and isinstance(node.value, ast.Constant)
                    and isinstance(node.value.value, str)
                ):
                    declares_name = True
    if not declares_name:
        return  # not a kernel module (pool, autotune, counters, ...)
    required = ("forward", "forward_fused", "grad_weight", "grad_input")
    missing = [fn for fn in required if fn not in module_funcs]
    if missing:
        yield ctx.violation(
            "BCK001",
            1,
            f"conv backend module is missing {missing} — the dispatcher in "
            "nn/backend/__init__.py requires the full kernel contract "
            f"{list(required)}",
        )


_BROAD_EXCEPTION_NAMES = frozenset({"Exception", "BaseException"})


def _broad_exception_types(node: ast.expr) -> List[str]:
    """The Exception-wide names a handler's type expression catches."""
    names = (
        [element for element in node.elts if isinstance(element, ast.Name)]
        if isinstance(node, ast.Tuple)
        else [node] if isinstance(node, ast.Name) else []
    )
    return [name.id for name in names if name.id in _BROAD_EXCEPTION_NAMES]


def _body_is_only_pass(body: List[ast.stmt]) -> bool:
    return all(
        isinstance(stmt, ast.Pass)
        or (
            isinstance(stmt, ast.Expr)
            and isinstance(stmt.value, ast.Constant)
            and stmt.value.value is Ellipsis
        )
        for stmt in body
    )


def _rule_error_swallowing(ctx: _FileContext) -> Iterator[Violation]:
    """ERR001: no bare ``except:``; no Exception-wide handlers that only pass.

    A bare ``except:`` also traps ``SystemExit``/``KeyboardInterrupt``,
    and an ``except Exception: pass`` turns every failure — including
    corruption the robustness layer exists to surface — into silence.
    Narrow, typed best-effort handlers (``except OSError: pass`` around a
    close) stay legal: they state which failure is being tolerated.
    """
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.ExceptHandler):
            continue
        if node.type is None:
            yield ctx.violation(
                "ERR001",
                node.lineno,
                "bare `except:` also catches SystemExit/KeyboardInterrupt; "
                "name the exception type you mean to handle",
            )
            continue
        broad = _broad_exception_types(node.type)
        if broad and _body_is_only_pass(node.body):
            yield ctx.violation(
                "ERR001",
                node.lineno,
                f"`except {broad[0]}: pass` swallows every failure silently; "
                "narrow the type, handle the error, or re-raise",
            )


_FILE_RULES = (
    _rule_hot,
    _rule_det_calls,
    _rule_det_entries,
    _rule_env_literals,
    _rule_backend_contract,
    _rule_error_swallowing,
)


# ----------------------------------------------------------------------
# Project-level rules
# ----------------------------------------------------------------------
def _rule_env_docs(root: Path) -> Iterator[Violation]:
    """ENV002: every registry entry must be referenced under ``docs/``."""
    docs_dir = root / "docs"
    if not docs_dir.is_dir():
        return
    corpus = "\n".join(
        page.read_text(encoding="utf-8", errors="replace")
        for page in sorted(docs_dir.glob("*.md"))
    )
    for name in envvars.ENV_VARS:
        if name not in corpus:
            yield Violation(
                rule="ENV002",
                severity="error",
                path="src/repro/analysis/envvars.py",
                line=1,
                message=(
                    f"registered env var `{name}` is not mentioned in any "
                    "docs/*.md page; document it (docs/config.md holds the "
                    "table)"
                ),
            )


def _rule_counter_discipline(root: Path) -> Iterator[Violation]:
    """CNT001: every backend counter must appear in at least one test."""
    counters_path = root / "src" / "repro" / "nn" / "backend" / "counters.py"
    tests_dir = root / "tests"
    if not (counters_path.is_file() and tests_dir.is_dir()):
        return
    try:
        tree = ast.parse(counters_path.read_text(encoding="utf-8"))
    except SyntaxError:
        return  # SYN001 fires if counters.py is part of the linted set
    keys: List[Tuple[str, int]] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign):
            targets = [t.id for t in node.targets if isinstance(t, ast.Name)]
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            targets = [node.target.id]
        else:
            continue
        if "_COUNTS" not in targets or not isinstance(node.value, ast.Dict):
            continue
        for key in node.value.keys:
            if isinstance(key, ast.Constant) and isinstance(key.value, str):
                keys.append((key.value, key.lineno))
    if not keys:
        return
    corpus = "\n".join(
        test.read_text(encoding="utf-8", errors="replace")
        for test in sorted(tests_dir.glob("*.py"))
    )
    for key, lineno in keys:
        if key not in corpus:
            yield Violation(
                rule="CNT001",
                severity="error",
                path="src/repro/nn/backend/counters.py",
                line=lineno,
                message=(
                    f"counter `{key}` is not asserted by any file in tests/; "
                    "an unasserted counter is an invariant nobody checks"
                ),
            )


# ----------------------------------------------------------------------
# Engine
# ----------------------------------------------------------------------
def _collect_files(paths: Sequence, root: Path) -> List[Path]:
    files: List[Path] = []
    for entry in paths:
        path = Path(entry)
        if not path.is_absolute():
            path = root / path
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            files.append(path)
    seen: Set[Path] = set()
    unique = []
    for path in files:
        if path not in seen:
            seen.add(path)
            unique.append(path)
    return unique


def _apply_waivers(
    ctx: _FileContext, found: List[Violation]
) -> Tuple[List[Violation], List[Violation]]:
    """Split ``found`` into live vs waived, marking waivers used."""
    by_line: Dict[int, List[Waiver]] = {}
    for waiver in ctx.waivers:
        by_line.setdefault(waiver.line, []).append(waiver)
    live: List[Violation] = []
    waived: List[Violation] = []
    for violation in found:
        matched = None
        for line in (violation.line, violation.line - 1):
            for waiver in by_line.get(line, []):
                if violation.rule in waiver.rules:
                    matched = waiver
                    break
            if matched:
                break
        if matched is not None and matched.justification:
            matched.used = True
            violation.waived = True
            waived.append(violation)
        else:
            live.append(violation)
    return live, waived


def run_lint(paths: Sequence, root=None, project_rules: bool = True) -> LintReport:
    """Lint ``paths`` (files or directories) and return a :class:`LintReport`.

    ``root`` anchors relative paths, hot-by-location matching, and the
    project-level rules (docs/tests cross-checks); it defaults to the
    current working directory.  ``project_rules=False`` restricts the run
    to per-file rules — the fixture tests use it to isolate one rule at a
    time.
    """
    root = Path(root) if root is not None else Path.cwd()
    report = LintReport()
    for path in _collect_files(paths, root):
        try:
            relpath = path.resolve().relative_to(root.resolve()).as_posix()
        except ValueError:
            relpath = path.as_posix()
        source = path.read_text(encoding="utf-8")
        ctx = _FileContext(path=path, display=relpath, relpath=relpath, source=source)
        report.files_checked += 1

        if ctx.syntax_error is not None:
            report.violations.append(
                ctx.violation(
                    "SYN001",
                    ctx.syntax_error.lineno or 1,
                    f"file does not parse: {ctx.syntax_error.msg}",
                )
            )
            continue

        found: List[Violation] = []
        for rule in _FILE_RULES:
            found.extend(rule(ctx))
        live, waived = _apply_waivers(ctx, found)
        report.violations.extend(live)
        report.waived.extend(waived)

        for waiver in ctx.waivers:
            if not waiver.justification:
                report.violations.append(
                    ctx.violation(
                        "WVR001",
                        waiver.line,
                        f"waiver for {list(waiver.rules)} has no justification; "
                        "say why the rule does not apply here",
                    )
                )
            elif not waiver.used:
                report.violations.append(
                    ctx.violation(
                        "WVR002",
                        waiver.line,
                        f"waiver for {list(waiver.rules)} matched no violation; "
                        "delete it (stale waivers hide future regressions)",
                        severity="warning",
                    )
                )

    if project_rules:
        report.violations.extend(_rule_env_docs(root))
        report.violations.extend(_rule_counter_discipline(root))

    return report
