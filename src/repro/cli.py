"""Command-line interface: regenerate paper artifacts, or train pipelines.

Usage::

    python -m repro table3 --preset bench
    python -m repro fig8 --preset fast
    python -m repro report --preset fast        # serving-engine demo
    python -m repro report --model tpnilm@tiny  # serve a baseline instead
    python -m repro all --preset bench          # everything, in order
    python -m repro models                      # list registered models
    python -m repro train --appliance kettle --workers 4 \
        --checkpoint-dir ckpts/kettle --out models/kettle
    python -m repro train --model crnn@small --out models/kettle-crnn
    python -m repro data ingest --corpus ukdale --days 7 --out stores/ukdale
    python -m repro data info stores/ukdale
    python -m repro data windows stores/ukdale --appliance kettle
    python -m repro data verify stores/ukdale --quarantine

Each experiment subcommand prints the same rows/series the paper reports
(see EXPERIMENTS.md for the paper-vs-measured comparison); ``report``
trains per-appliance pipelines and serves an unseen household through the
:class:`repro.serving.InferenceEngine`; ``models`` lists every estimator
in the :mod:`repro.api` registry with its scale presets; ``train`` fits
one appliance model — CamAL (Algorithm 1, optionally across worker
processes and resumable from per-candidate checkpoints) or any registered
baseline via ``--model <name>@<scale>`` — and persists it for
``InferenceEngine.load`` (see ``docs/training.md`` and ``docs/api.md``);
``data`` manages :mod:`repro.data` meter stores — ``ingest`` builds a
sharded store from a corpus or CSV directory, ``info`` prints its
manifest, ``windows`` counts streamable training windows per household,
``verify`` re-hashes every shard against its manifest checksum (see
``docs/data.md`` and ``docs/robustness.md``).
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Dict, List, Optional

import numpy as np

from . import api
from . import experiments as ex


def _table2(preset: ex.Preset, seed: int) -> str:
    return ex.run_complexity_table().render()


def _table3(preset: ex.Preset, seed: int) -> str:
    cases = [
        ("ukdale", "kettle"),
        ("ukdale", "dishwasher"),
        ("refit", "kettle"),
        ("edf_ev", "electric_vehicle"),
    ]
    return ex.run_weak_table(preset, cases=cases, seed=seed).render()


def _table4(preset: ex.Preset, seed: int) -> str:
    return ex.run_design_ablation(
        preset, corpus_name="ukdale", appliances=["kettle", "dishwasher"], seed=seed
    ).render()


def _fig5(preset: ex.Preset, seed: int) -> str:
    result = ex.run_label_sweep(
        "ukdale", "kettle", preset,
        methods=["CamAL", "CRNN-weak", "TPNILM"], n_points=3, seed=seed,
    )
    factors = result.label_factor_to_match_camal()
    return result.render() + f"\n  label factors to match CamAL: {factors}"


def _fig6a(preset: ex.Preset, seed: int) -> str:
    windows = (preset.window // 2, preset.window, preset.window * 2)
    return ex.run_window_length(
        "ukdale", "kettle", preset, train_windows=windows, seed=seed
    ).render()


def _fig6b(preset: ex.Preset, seed: int) -> str:
    cases = [
        ("ukdale", "kettle"),
        ("ukdale", "dishwasher"),
        ("ukdale", "microwave"),
        ("edf_ev", "electric_vehicle"),
    ]
    return ex.run_correlation(preset, cases=cases, seed=seed).render()


def _fig6c(preset: ex.Preset, seed: int) -> str:
    return ex.run_ensemble_size(
        preset, corpus_name="ukdale", appliances=["kettle"], sizes=(1, 3, 5), seed=seed
    ).render()


def _fig7(preset: ex.Preset, seed: int) -> str:
    parts = [
        ex.run_training_times(
            preset, [("ukdale", "kettle")], methods=["CamAL", "CRNN-weak", "TPNILM"],
            seed=seed,
        ).render(),
        ex.run_epoch_times(
            preset, (1, 2), methods=["CamAL", "TPNILM"],
            series_length=preset.window * 8, seed=seed,
        ).render(),
        ex.run_throughput(
            preset, (preset.window, preset.window * 2),
            methods=["CamAL", "CRNN-weak", "TPNILM"], n_windows=8, seed=seed,
        ).render(),
    ]
    return "\n\n".join(parts)


def _fig8(preset: ex.Preset, seed: int) -> str:
    edf_weak = ex.build_corpus("edf_weak", preset, seed)
    edf_ev = ex.build_corpus("edf_ev", preset, seed)
    return ex.run_figure8(
        edf_weak, edf_ev, "electric_vehicle", preset,
        window_candidates=(preset.window,), seed=seed,
    ).render()


def _fig9(preset: ex.Preset, seed: int) -> str:
    return ex.run_cost_analysis().render()


def _fig10(preset: ex.Preset, seed: int) -> str:
    edf_weak = ex.build_corpus("edf_weak", preset, seed)
    edf_ev = ex.build_corpus("edf_ev", preset, seed)
    possession = ex.run_possession_pipeline(
        edf_weak, edf_ev, "electric_vehicle", preset,
        window_candidates=(preset.window,), seed=seed,
    )
    return ex.run_figure10(
        possession.camal, edf_ev, preset,
        methods=["TPNILM", "BiGRU"], mixes=((0, 8), (2, 6), (4, 4)), seed=seed,
    ).render()


def _fit_case_estimator(
    model: str, scale: Optional[str], case: "ex.CaseData", preset: ex.Preset, seed: int
) -> api.WeakLocalizer:
    """Create a registry estimator for a case and fit it (weak or strong)."""
    is_camal = api.canonical_name(model) == "camal"
    epochs = preset.clf_epochs if is_camal else preset.seq2seq_epochs
    estimator = api.create(
        model,
        scale=scale or preset.baseline_scale,
        seed=seed,
        train=preset.train_config(epochs, seed),
        power_gate_watts=case.spec.on_threshold_watts,
    )
    return ex.fit_on_case(estimator, case)


def _report(preset: ex.Preset, seed: int, model: Optional[str] = None) -> str:
    """DeviceScope-style household report served by the InferenceEngine.

    ``model`` is an optional registry spec (``name[@scale]``); the default
    serves CamAL pipelines trained through :func:`ex.run_camal`.
    """
    from . import simdata as sd
    from .core import report_from_status
    from .serving import EngineConfig, InferenceEngine

    corpus = ex.build_corpus("ukdale", preset, seed)
    split = sd.split_houses(corpus, seed=seed)
    house = corpus.house(split.test[0])

    engine = InferenceEngine(
        EngineConfig(
            window=preset.window,
            stride=max(1, preset.window // 2),
            cache_size=4096,
        )
    )
    name, scale = api.parse_model_spec(model) if model else ("camal", None)
    for appliance in ("kettle", "dishwasher"):
        case = ex.case_windows(corpus, appliance, preset.window, split_seed=seed)
        if model is None:
            _, pipeline = ex.run_camal(case, preset, seed=seed)
        else:
            pipeline = _fit_case_estimator(name, scale, case, preset, seed)
        engine.register(appliance, pipeline)

    aggregate = sd.forward_fill(house.aggregate, corpus.max_ffill_samples)
    aggregate = np.nan_to_num(aggregate, nan=0.0)
    inference = engine.run(aggregate)

    plan = inference.plan
    parts = [
        f"Household {house.house_id}: {inference.n_samples} samples served as "
        f"{plan.n_windows} windows (window={plan.window}, stride={plan.stride}, "
        f"model={name if model else 'camal'})"
    ]
    for appliance, result in inference:
        report = report_from_status(
            appliance, result.status, aggregate, house.dt_seconds,
            min_activation_samples=2, merge_gap_samples=2,
        )
        parts.append(report.render())
        parts.append(f"  windows detected   : {result.detection_rate:.0%}")
    return "\n".join(parts)


def run_models_listing() -> str:
    """Render the ``repro models`` table from the registry."""
    rows = []
    for name in api.available_models():
        entry = api.get_entry(name)
        rows.append(
            [name, entry.supervision, "/".join(sorted(entry.scales)), entry.description]
        )
    return ex.render_table(
        ["Model", "Supervision", "Scales", "Description"],
        rows,
        title="Registered estimators (repro.api) — use with --model <name>[@<scale>]",
    )


COMMANDS: Dict[str, Callable[[ex.Preset, int], str]] = {
    "report": _report,
    "table2": _table2,
    "table3": _table3,
    "table4": _table4,
    "fig5": _fig5,
    "fig6a": _fig6a,
    "fig6b": _fig6b,
    "fig6c": _fig6c,
    "fig7": _fig7,
    "fig8": _fig8,
    "fig9": _fig9,
    "fig10": _fig10,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the tables and figures of the CamAL paper.",
        epilog="additional subcommands: 'repro train [...]' — train and "
        "persist one appliance model (own flags; see 'repro train --help' "
        "and docs/training.md); 'repro models' — list every registered "
        "estimator and its scale presets (docs/api.md); 'repro data "
        "ingest|info|windows|verify' — build, inspect and checksum-verify "
        "sharded meter stores (docs/data.md, docs/robustness.md)",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(COMMANDS) + ["all"],
        help="which table/figure to regenerate (or 'report' for the "
        "serving-engine household demo)",
    )
    parser.add_argument(
        "--preset",
        default="bench",
        choices=sorted(ex.PRESETS),
        help="scale preset (default: bench)",
    )
    parser.add_argument("--seed", type=int, default=0, help="random seed")
    parser.add_argument(
        "--model",
        default=None,
        metavar="NAME[@SCALE]",
        help="registry model served by the 'report' command "
        "(default: camal; see 'repro models')",
    )
    return parser


def build_train_parser() -> argparse.ArgumentParser:
    """Parser of the ``repro train`` subcommand."""
    from .training.config import SCHEDULERS

    parser = argparse.ArgumentParser(
        prog="repro train",
        description="Train one appliance model — CamAL (Algorithm 1, the "
        "default) or any registered estimator — and persist it for "
        "InferenceEngine.load.",
    )
    parser.add_argument("--corpus", default="ukdale", help="corpus name (default: ukdale)")
    parser.add_argument("--appliance", default="kettle", help="target appliance")
    parser.add_argument(
        "--model",
        default="camal",
        metavar="NAME[@SCALE]",
        help="registry model to train (default: camal; scale defaults to "
        "the preset's baseline scale — see 'repro models')",
    )
    parser.add_argument(
        "--preset",
        default="bench",
        choices=sorted(ex.PRESETS),
        help="scale preset (default: bench)",
    )
    parser.add_argument("--seed", type=int, default=0, help="random seed")
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for candidate training (1 = serial; results "
        "are identical for any value)",
    )
    parser.add_argument(
        "--epochs", type=int, default=None, help="override the preset's epoch count"
    )
    parser.add_argument(
        "--scheduler",
        default="none",
        choices=SCHEDULERS,
        help="LR schedule applied inside each candidate's training loop",
    )
    parser.add_argument(
        "--warmup-epochs",
        type=int,
        default=0,
        help="linear-warmup epochs (warmup_cosine scheduler only)",
    )
    parser.add_argument(
        "--checkpoint-dir",
        default=None,
        help="directory for per-candidate resumable checkpoints",
    )
    parser.add_argument(
        "--no-resume",
        action="store_true",
        help="ignore existing checkpoints and retrain from scratch",
    )
    parser.add_argument(
        "--out",
        default=None,
        help="directory to persist the trained model (manifest layout, "
        "loadable with repro.api.load_estimator / InferenceEngine.load)",
    )
    parser.add_argument(
        "--progress",
        action="store_true",
        help="print per-epoch train/val losses and learning rate",
    )
    return parser


def _run_train_camal(
    args: argparse.Namespace,
    case: "ex.CaseData",
    preset: ex.Preset,
    scale: Optional[str],
) -> str:
    """``repro train`` for CamAL: Algorithm 1 with workers + checkpoints."""
    from dataclasses import replace

    from .core import CamAL, train_ensemble

    config = preset.ensemble_config(args.seed)
    if scale is not None:
        # Named registry scale overrides the preset's ensemble shape; the
        # preset keeps supplying the training-loop settings.
        shaped = api.get_entry("camal").config(scale=scale, seed=args.seed)
        config = replace(shaped, train=config.train)
    train_cfg = replace(
        config.train,
        epochs=args.epochs if args.epochs is not None else config.train.epochs,
        scheduler=args.scheduler,
        warmup_epochs=args.warmup_epochs,
        resume=not args.no_resume,
        verbose=args.progress,
    )
    config = replace(config, train=train_cfg)

    start = time.perf_counter()
    ensemble, candidates = train_ensemble(
        case.train.inputs,
        case.train.weak,
        case.val.inputs,
        case.val.weak,
        config,
        n_workers=max(args.workers, 1),
        checkpoint_dir=args.checkpoint_dir,
    )
    wall = time.perf_counter() - start

    camal = CamAL(ensemble, power_gate_watts=case.spec.on_threshold_watts)
    lines = [
        f"Trained camal for {args.appliance} on {args.corpus} "
        f"(preset={preset.name}, workers={max(args.workers, 1)})",
        f"  candidates        : {len(candidates)} "
        f"(kernels {tuple(config.kernel_set)}, {config.n_trials} trial(s) each)",
        f"  selected ensemble : {len(ensemble)} members, "
        f"kernels {tuple(ensemble.kernel_sizes)}",
        f"  best val loss     : {min(c.val_loss for c in candidates):.4f}",
        f"  wall time         : {wall:.1f}s",
    ]
    if args.checkpoint_dir:
        lines.append(f"  checkpoints       : {args.checkpoint_dir}")
    if args.out:
        # Wrap in the estimator so the manifest records label consumption.
        estimator = api.CamALLocalizer(pipeline=camal)
        estimator.n_labels_ = len(case.train.weak)
        estimator.save(args.out)
        lines.append(f"  pipeline saved to : {args.out}")
    return "\n".join(lines)


def _run_train_estimator(
    name: str,
    scale: Optional[str],
    args: argparse.Namespace,
    case: "ex.CaseData",
    preset: ex.Preset,
) -> str:
    """``repro train`` for any non-CamAL registry model."""
    import os
    from dataclasses import replace

    scale = scale or preset.baseline_scale
    train_cfg = preset.train_config(preset.seq2seq_epochs, args.seed)
    train_cfg = replace(
        train_cfg,
        epochs=args.epochs if args.epochs is not None else train_cfg.epochs,
        scheduler=args.scheduler,
        warmup_epochs=args.warmup_epochs,
        resume=not args.no_resume,
        verbose=args.progress,
        checkpoint_path=(
            os.path.join(args.checkpoint_dir, f"{name}.npz")
            if args.checkpoint_dir
            else None
        ),
    )
    estimator = api.create(
        name,
        scale=scale,
        seed=args.seed,
        train=train_cfg,
        power_gate_watts=case.spec.on_threshold_watts,
    )
    ex.fit_on_case(estimator, case)
    lines = [
        f"Trained {name}@{scale} for {args.appliance} on {args.corpus} "
        f"(preset={preset.name}, supervision={estimator.supervision})",
        f"  parameters        : {estimator.num_parameters()}",
        f"  labels consumed   : {estimator.n_labels_} "
        f"({'one per window' if estimator.supervision == 'weak' else 'one per timestamp'})",
        f"  wall time         : {estimator.train_seconds_:.1f}s",
    ]
    if args.workers > 1:
        lines.append("  note              : --workers applies to CamAL only")
    if args.checkpoint_dir:
        lines.append(f"  checkpoints       : {args.checkpoint_dir}")
    if args.out:
        estimator.save(args.out)
        lines.append(f"  estimator saved to: {args.out}")
    return "\n".join(lines)


def build_data_parser() -> argparse.ArgumentParser:
    """Parser of the ``repro data`` subcommand family."""
    parser = argparse.ArgumentParser(
        prog="repro data",
        description="Manage sharded on-disk meter stores (repro.data): "
        "ingest a corpus or CSV directory once, then train and serve from "
        "the memory-mapped shards (see docs/data.md).",
    )
    sub = parser.add_subparsers(dest="action", required=True)

    ingest = sub.add_parser(
        "ingest", help="preprocess + shard a corpus or CSV directory"
    )
    source = ingest.add_mutually_exclusive_group(required=True)
    from .simdata import CORPUS_BUILDERS

    source.add_argument(
        "--corpus",
        choices=sorted(CORPUS_BUILDERS),
        help="simulated Table-I corpus to ingest (hermetic path)",
    )
    source.add_argument(
        "--csv",
        metavar="DIR",
        help="CSV directory layout (one sub-directory per household with "
        "aggregate.csv + <appliance>.csv channels)",
    )
    ingest.add_argument("--out", required=True, help="store directory to create")
    ingest.add_argument(
        "--days", type=float, default=7.0, help="recording length per simulated house"
    )
    ingest.add_argument(
        "--houses", type=int, default=None, help="house count override (corpus mode)"
    )
    ingest.add_argument("--seed", type=int, default=0, help="corpus simulation seed")
    ingest.add_argument(
        "--dt-seconds",
        type=float,
        default=None,
        help="sampling period of the CSV series (csv mode, required there)",
    )
    ingest.add_argument(
        "--resample",
        type=int,
        default=1,
        metavar="FACTOR",
        help="integer resample factor applied at ingest (interval averaging)",
    )
    ingest.add_argument(
        "--max-ffill",
        type=int,
        default=None,
        help="forward-fill bound in post-resample samples (default: the "
        "corpus's Table-I budget; required for --csv)",
    )
    ingest.add_argument(
        "--shard-length",
        type=int,
        default=None,
        help="samples per shard (default: 65536)",
    )
    ingest.add_argument(
        "--workers", type=int, default=1, help="households ingested in parallel"
    )
    ingest.add_argument(
        "--drop-tail",
        action="store_true",
        help="drop the partial trailing resample block instead of averaging it",
    )

    info = sub.add_parser("info", help="print a store's manifest summary")
    info.add_argument("store", help="store directory")

    windows = sub.add_parser(
        "windows", help="count streamable training windows per household"
    )
    windows.add_argument("store", help="store directory")
    windows.add_argument("--appliance", required=True, help="target appliance")
    windows.add_argument(
        "--window", type=int, default=None,
        help="window length w (default: the paper's 510)",
    )
    windows.add_argument(
        "--houses", default=None,
        help="comma-separated household subset (default: all)",
    )

    verify = sub.add_parser(
        "verify",
        help="re-hash every shard against its manifest checksum "
        "(exits non-zero on corruption)",
    )
    verify.add_argument("store", help="store directory")
    verify.add_argument(
        "--quarantine",
        action="store_true",
        help="move corrupt shards aside so reads fail fast; repair with "
        "repro.data.repair_household_from_source",
    )
    return parser


def _run_data_ingest(args: argparse.Namespace) -> str:
    from . import data, simdata as sd

    kwargs = {}
    for field, value in (
        ("resample_factor", args.resample),
        ("max_ffill_samples", args.max_ffill),
        ("shard_length", args.shard_length),
        ("n_workers", args.workers),
    ):
        if value is not None:
            kwargs[field] = value
    config = data.IngestConfig(keep_tail=not args.drop_tail, **kwargs)

    start = time.perf_counter()
    if args.corpus:
        import inspect

        builder = sd.CORPUS_BUILDERS[args.corpus]
        builder_kwargs = {"days": args.days, "seed": args.seed}
        if args.houses is not None:
            if "n_houses" not in inspect.signature(builder).parameters:
                raise SystemExit(
                    f"--houses is not supported by the {args.corpus!r} builder"
                )
            builder_kwargs["n_houses"] = args.houses
        corpus = builder(**builder_kwargs)
        store = data.ingest_corpus(corpus, args.out, config)
    else:
        if args.dt_seconds is None or args.max_ffill is None:
            raise SystemExit("--csv ingest requires --dt-seconds and --max-ffill")
        store = data.ingest_csv_dir(
            args.csv, args.out, args.dt_seconds, args.max_ffill, config=config
        )
    wall = time.perf_counter() - start
    total = store.total_samples()
    return "\n".join(
        [
            f"Ingested {store.name!r} into {args.out}",
            f"  households        : {len(store)}",
            f"  samples           : {total} "
            f"({total / max(wall, 1e-9):,.0f} samples/s over {wall:.1f}s)",
            f"  shard length      : {store.shard_length}",
            f"  provenance        : {store.preprocessing}",
        ]
    )


def _run_data_info(args: argparse.Namespace) -> str:
    from .data import MeterStore

    store = MeterStore(args.store)
    rows = []
    for hid, meta in store.households.items():
        rows.append(
            [
                hid,
                str(meta.n_samples),
                str(meta.n_shards),
                "/".join(meta.submetered) or "-",
                str(sum(meta.possession.values())),
            ]
        )
    table = ex.render_table(
        ["House", "Samples", "Shards", "Submetered", "Owned"],
        rows,
        title=f"Store {store.name!r} (format {store.manifest['format']}) — "
        f"dt={store.dt_seconds:g}s, shard={store.shard_length}, "
        f"targets: {', '.join(store.target_appliances)}",
    )
    return table + f"\npreprocessing: {store.preprocessing}"


def _run_data_windows(args: argparse.Namespace) -> str:
    from .data import MeterStore, StreamingWindows
    from .simdata.preprocessing import DEFAULT_WINDOW

    from .simdata.preprocessing import on_status

    store = MeterStore(args.store)
    window = args.window or DEFAULT_WINDOW
    house_ids = args.houses.split(",") if args.houses else store.house_ids
    rows = []
    n_valid = 0
    for hid in house_ids:
        ws = StreamingWindows(store, args.appliance, house_ids=[hid], window=window)
        total = store.n_samples(hid) // window
        # Weak labels need only the power channel — skip the aggregate
        # reads/scaling a full __getitem__ would pay per window.
        positives = sum(
            bool(on_status(ws.power_window(i), ws.threshold_watts).max())
            for i in range(len(ws))
        )
        n_valid += len(ws)
        rows.append([hid, str(total), str(len(ws)), str(total - len(ws)), str(positives)])
    table = ex.render_table(
        ["House", "Windows", "Valid", "Gap-dropped", "Positive"],
        rows,
        title=f"Streamable windows — appliance={args.appliance}, w={window}",
    )
    return table + (
        f"\npooled: {n_valid} windows "
        f"({n_valid} weak / {n_valid * window} strong labels)"
    )


def _run_data_verify(args: argparse.Namespace) -> str:
    """``repro data verify``: eager checksum sweep over every shard.

    Raises ``SystemExit`` carrying the report when corruption is found, so
    the process exits non-zero — CI can gate on store integrity directly.
    """
    from .data import MeterStore

    store = MeterStore(args.store)
    start = time.perf_counter()
    bad = store.verify(quarantine=args.quarantine)
    wall = time.perf_counter() - start
    n_shards = sum(meta.n_shards for meta in store.households.values())
    header = (
        f"Verified {n_shards} shard(s) across {len(store)} household(s) "
        f"in {wall:.2f}s"
    )
    if not bad:
        return f"{header}\n  all checksums match"
    lines = [header]
    for hid in sorted(bad):
        for shard, reason in sorted(bad[hid].items()):
            action = "quarantined" if args.quarantine else "CORRUPT"
            lines.append(f"  {action}: house {hid!r} shard {shard}: {reason}")
    lines.append(
        "repair: repro.data.repair_household_from_source(store, house_id, "
        "aggregate, appliance_channels) re-ingests just the bad shards"
    )
    raise SystemExit("\n".join(lines))


def run_data(args: argparse.Namespace) -> str:
    """Execute ``repro data`` and return the human-readable summary."""
    if args.action == "ingest":
        return _run_data_ingest(args)
    if args.action == "info":
        return _run_data_info(args)
    if args.action == "verify":
        return _run_data_verify(args)
    return _run_data_windows(args)


def run_train(args: argparse.Namespace) -> str:
    """Execute ``repro train`` and return the human-readable summary."""
    preset = ex.get_preset(args.preset)
    corpus = ex.build_corpus(args.corpus, preset, args.seed)
    case = ex.case_windows(corpus, args.appliance, preset.window, split_seed=args.seed)

    name, scale = api.parse_model_spec(args.model)
    if name == "camal":
        return _run_train_camal(args, case, preset, scale)
    return _run_train_estimator(name, scale, args, case, preset)


def build_serve_parser() -> argparse.ArgumentParser:
    """Parser of the ``repro serve`` subcommand."""
    from .nn import backend as nn_backend
    from .serving.protocol import DEFAULT_PORT

    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="Run the fleet-scale serving daemon: a warm model fleet "
        "behind a newline-delimited-JSON TCP protocol with cross-request "
        "micro-batch coalescing, backpressure and graceful SIGTERM drain "
        "(see docs/serving.md).  Defaults honour REPRO_SERVE_* variables.",
    )
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument(
        "--fleet",
        metavar="DIR",
        help="fleet directory (save_pipelines layout: one saved estimator "
        "per appliance sub-directory); also enables shard-parallel store jobs",
    )
    source.add_argument(
        "--demo",
        action="store_true",
        help="serve seeded *untrained* tiny CamAL pipelines (kettle, "
        "dishwasher) — protocol/benchmark smoke mode, not real predictions",
    )
    parser.add_argument("--host", default=None, help="bind address (default: 127.0.0.1)")
    parser.add_argument(
        "--port",
        type=int,
        default=None,
        help=f"TCP port; 0 binds an ephemeral one (default: {DEFAULT_PORT})",
    )
    parser.add_argument(
        "--window", type=int, default=128, help="serving window length (default: 128)"
    )
    parser.add_argument(
        "--stride", type=int, default=None, help="window stride (default: window/2)"
    )
    parser.add_argument(
        "--batch-size", type=int, default=256, help="micro-batch size per forward"
    )
    parser.add_argument(
        "--cache-size", type=int, default=0, help="LRU window-result cache entries"
    )
    parser.add_argument(
        "--backend",
        default=None,
        choices=sorted(nn_backend.available_backends()),
        help="pin the conv backend (default: process default, im2col)",
    )
    parser.add_argument(
        "--autotune-cache", default=None, help="JSON file persisting autotune choices"
    )
    parser.add_argument(
        "--max-batch",
        type=int,
        default=None,
        help="coalescer flush threshold in windows (default: 256)",
    )
    parser.add_argument(
        "--max-wait-us",
        type=int,
        default=None,
        help="coalescer linger after the first queued request (default: 2000)",
    )
    parser.add_argument(
        "--queue-depth",
        type=int,
        default=None,
        help="bounded pending requests per appliance (default: 64)",
    )
    parser.add_argument(
        "--no-coalesce",
        action="store_true",
        help="disable cross-request micro-batch coalescing (A/B baseline)",
    )
    parser.add_argument(
        "--no-warm",
        action="store_true",
        help="skip the autotune/plan warm-up passes at startup "
        "(engine warm-up and the daemon's batch-bucket pre-tracing)",
    )
    parser.add_argument(
        "--ready-file",
        default=None,
        metavar="PATH",
        help="write a JSON line {host, port, pid} once listening (for "
        "supervisors and the CI boot check)",
    )
    return parser


def _demo_pipelines() -> Dict[str, object]:
    """Seeded untrained tiny CamAL fleet for `repro serve --demo`."""
    from .core import CamAL, ResNetConfig, ResNetEnsemble, ResNetTSC

    fleet: Dict[str, object] = {}
    for offset, appliance in enumerate(("kettle", "dishwasher")):
        models = [
            ResNetTSC(
                ResNetConfig(kernel_size=k, filters=(8, 16, 16), seed=10 * offset + i)
            )
            for i, k in enumerate((5, 7, 9))
        ]
        for model in models:
            model.eval()
        fleet[appliance] = CamAL(ResNetEnsemble(models), detection_threshold=0.0)
    return fleet


def run_serve(args: argparse.Namespace) -> int:
    """Execute ``repro serve``: build the engine, bind, drain on SIGTERM."""
    import json
    import os
    import signal

    from .api.persistence import load_pipelines
    from .serving import EngineConfig, InferenceEngine, ServeConfig, ServingDaemon

    engine = InferenceEngine(
        EngineConfig(
            window=args.window,
            stride=args.stride if args.stride is not None else max(1, args.window // 2),
            batch_size=args.batch_size,
            cache_size=args.cache_size,
            backend=args.backend,
            autotune_cache=args.autotune_cache,
        )
    )
    if args.demo:
        print("serving DEMO pipelines (untrained weights — smoke mode only)")
        for appliance, pipeline in _demo_pipelines().items():
            engine.register(appliance, pipeline)
    else:
        fleet = load_pipelines(args.fleet)
        if not fleet:
            raise SystemExit(f"no loadable estimator directories under {args.fleet!r}")
        for appliance, estimator in fleet.items():
            engine.register(appliance, estimator)
    if not args.no_warm:
        engine.warmup()

    overrides: Dict[str, object] = {}
    if args.host is not None:
        overrides["host"] = args.host
    if args.port is not None:
        overrides["port"] = args.port
    if args.max_batch is not None:
        overrides["max_batch_windows"] = args.max_batch
    if args.max_wait_us is not None:
        overrides["max_wait_us"] = args.max_wait_us
    if args.queue_depth is not None:
        overrides["queue_depth"] = args.queue_depth
    if args.no_coalesce:
        overrides["coalesce"] = False
    if args.no_warm:
        overrides["warm_start"] = False
    config = ServeConfig.from_env(**overrides)

    daemon = ServingDaemon(engine, config, fleet_dir=args.fleet)
    host, port = daemon.start()
    ready = {"host": host, "port": port, "pid": os.getpid()}
    print(
        f"repro serve: listening on {host}:{port} "
        f"(appliances: {', '.join(engine.appliances)}; "
        f"coalesce={'on' if config.coalesce else 'off'})",
        flush=True,
    )
    if args.ready_file:
        tmp = f"{args.ready_file}.tmp.{os.getpid()}"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(ready, fh)
        os.replace(tmp, args.ready_file)

    def _drain(signum, frame):  # noqa: ARG001 - signal handler signature
        print(f"repro serve: caught signal {signum}, draining", flush=True)
        daemon.shutdown(drain=True)

    signal.signal(signal.SIGTERM, _drain)
    signal.signal(signal.SIGINT, _drain)
    daemon.serve_forever()
    print("repro serve: drained, bye", flush=True)
    return 0


def build_lint_parser() -> argparse.ArgumentParser:
    """Parser of the ``repro lint`` subcommand."""
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="Check the invariant rules (hot-path allocation ban, "
        "determinism, env-var registry, backend contract, counter "
        "discipline) over the given files/directories.  Exits non-zero on "
        "any error-severity violation; see docs/analysis.md.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src", "benchmarks"],
        help="files or directories to lint (default: src benchmarks)",
    )
    parser.add_argument(
        "--root",
        default=".",
        help="project root anchoring docs/tests cross-checks (default: cwd)",
    )
    parser.add_argument(
        "--verbose",
        action="store_true",
        help="also list waived violations",
    )
    parser.add_argument(
        "--envvars",
        action="store_true",
        help="print the registered REPRO_* environment variable table and exit",
    )
    return parser


def run_lint_cli(args: argparse.Namespace) -> int:
    """Run ``repro lint`` and return the process exit code."""
    from .analysis import envvars as envvars_mod
    from .analysis.lint import run_lint

    if args.envvars:
        print(envvars_mod.render_table())
        return 0
    report = run_lint(args.paths or ["src", "benchmarks"], root=args.root)
    print(report.format(verbose=args.verbose))
    return 1 if report.errors else 0


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "lint":
        return run_lint_cli(build_lint_parser().parse_args(argv[1:]))
    if argv and argv[0] == "train":
        print(run_train(build_train_parser().parse_args(argv[1:])))
        return 0
    if argv and argv[0] == "data":
        print(run_data(build_data_parser().parse_args(argv[1:])))
        return 0
    if argv and argv[0] == "models":
        print(run_models_listing())
        return 0
    if argv and argv[0] == "serve":
        return run_serve(build_serve_parser().parse_args(argv[1:]))
    args = build_parser().parse_args(argv)
    preset = ex.get_preset(args.preset)
    names = sorted(COMMANDS) if args.experiment == "all" else [args.experiment]
    for name in names:
        print(f"== {name} (preset={preset.name}) ==")
        if name == "report" and args.model:
            print(_report(preset, args.seed, model=args.model))
        else:
            print(COMMANDS[name](preset, args.seed))
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
