"""Command-line interface: regenerate paper artifacts, or train pipelines.

Usage::

    python -m repro table3 --preset bench
    python -m repro fig8 --preset fast
    python -m repro report --preset fast        # serving-engine demo
    python -m repro all --preset bench          # everything, in order
    python -m repro train --appliance kettle --workers 4 \
        --checkpoint-dir ckpts/kettle --out models/kettle

Each experiment subcommand prints the same rows/series the paper reports
(see EXPERIMENTS.md for the paper-vs-measured comparison); ``report``
trains per-appliance pipelines and serves an unseen household through the
:class:`repro.serving.InferenceEngine`; ``train`` runs Algorithm 1 for one
appliance — optionally across worker processes and resumable from
per-candidate checkpoints — and persists the pipeline for
``InferenceEngine.load`` (see ``docs/training.md``).
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Dict, List, Optional

import numpy as np

from . import experiments as ex


def _table2(preset: ex.Preset, seed: int) -> str:
    return ex.run_complexity_table().render()


def _table3(preset: ex.Preset, seed: int) -> str:
    cases = [
        ("ukdale", "kettle"),
        ("ukdale", "dishwasher"),
        ("refit", "kettle"),
        ("edf_ev", "electric_vehicle"),
    ]
    return ex.run_weak_table(preset, cases=cases, seed=seed).render()


def _table4(preset: ex.Preset, seed: int) -> str:
    return ex.run_design_ablation(
        preset, corpus_name="ukdale", appliances=["kettle", "dishwasher"], seed=seed
    ).render()


def _fig5(preset: ex.Preset, seed: int) -> str:
    result = ex.run_label_sweep(
        "ukdale", "kettle", preset,
        methods=["CamAL", "CRNN-weak", "TPNILM"], n_points=3, seed=seed,
    )
    factors = result.label_factor_to_match_camal()
    return result.render() + f"\n  label factors to match CamAL: {factors}"


def _fig6a(preset: ex.Preset, seed: int) -> str:
    windows = (preset.window // 2, preset.window, preset.window * 2)
    return ex.run_window_length(
        "ukdale", "kettle", preset, train_windows=windows, seed=seed
    ).render()


def _fig6b(preset: ex.Preset, seed: int) -> str:
    cases = [
        ("ukdale", "kettle"),
        ("ukdale", "dishwasher"),
        ("ukdale", "microwave"),
        ("edf_ev", "electric_vehicle"),
    ]
    return ex.run_correlation(preset, cases=cases, seed=seed).render()


def _fig6c(preset: ex.Preset, seed: int) -> str:
    return ex.run_ensemble_size(
        preset, corpus_name="ukdale", appliances=["kettle"], sizes=(1, 3, 5), seed=seed
    ).render()


def _fig7(preset: ex.Preset, seed: int) -> str:
    parts = [
        ex.run_training_times(
            preset, [("ukdale", "kettle")], methods=["CamAL", "CRNN-weak", "TPNILM"],
            seed=seed,
        ).render(),
        ex.run_epoch_times(
            preset, (1, 2), methods=["CamAL", "TPNILM"],
            series_length=preset.window * 8, seed=seed,
        ).render(),
        ex.run_throughput(
            preset, (preset.window, preset.window * 2),
            methods=["CamAL", "CRNN-weak", "TPNILM"], n_windows=8, seed=seed,
        ).render(),
    ]
    return "\n\n".join(parts)


def _fig8(preset: ex.Preset, seed: int) -> str:
    edf_weak = ex.build_corpus("edf_weak", preset, seed)
    edf_ev = ex.build_corpus("edf_ev", preset, seed)
    return ex.run_figure8(
        edf_weak, edf_ev, "electric_vehicle", preset,
        window_candidates=(preset.window,), seed=seed,
    ).render()


def _fig9(preset: ex.Preset, seed: int) -> str:
    return ex.run_cost_analysis().render()


def _fig10(preset: ex.Preset, seed: int) -> str:
    edf_weak = ex.build_corpus("edf_weak", preset, seed)
    edf_ev = ex.build_corpus("edf_ev", preset, seed)
    possession = ex.run_possession_pipeline(
        edf_weak, edf_ev, "electric_vehicle", preset,
        window_candidates=(preset.window,), seed=seed,
    )
    return ex.run_figure10(
        possession.camal, edf_ev, preset,
        methods=["TPNILM", "BiGRU"], mixes=((0, 8), (2, 6), (4, 4)), seed=seed,
    ).render()


def _report(preset: ex.Preset, seed: int) -> str:
    """DeviceScope-style household report served by the InferenceEngine."""
    from . import simdata as sd
    from .core import report_from_status
    from .serving import EngineConfig, InferenceEngine

    corpus = ex.build_corpus("ukdale", preset, seed)
    split = sd.split_houses(corpus, seed=seed)
    house = corpus.house(split.test[0])

    engine = InferenceEngine(
        EngineConfig(
            window=preset.window,
            stride=max(1, preset.window // 2),
            cache_size=4096,
        )
    )
    for appliance in ("kettle", "dishwasher"):
        case = ex.case_windows(corpus, appliance, preset.window, split_seed=seed)
        _, camal = ex.run_camal(case, preset, seed=seed)
        engine.register(appliance, camal)

    aggregate = sd.forward_fill(house.aggregate, corpus.max_ffill_samples)
    aggregate = np.nan_to_num(aggregate, nan=0.0)
    inference = engine.run(aggregate)

    plan = inference.plan
    parts = [
        f"Household {house.house_id}: {inference.n_samples} samples served as "
        f"{plan.n_windows} windows (window={plan.window}, stride={plan.stride})"
    ]
    for appliance, result in inference:
        report = report_from_status(
            appliance, result.status, aggregate, house.dt_seconds,
            min_activation_samples=2, merge_gap_samples=2,
        )
        parts.append(report.render())
        parts.append(f"  windows detected   : {result.detection_rate:.0%}")
    return "\n".join(parts)


COMMANDS: Dict[str, Callable[[ex.Preset, int], str]] = {
    "report": _report,
    "table2": _table2,
    "table3": _table3,
    "table4": _table4,
    "fig5": _fig5,
    "fig6a": _fig6a,
    "fig6b": _fig6b,
    "fig6c": _fig6c,
    "fig7": _fig7,
    "fig8": _fig8,
    "fig9": _fig9,
    "fig10": _fig10,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the tables and figures of the CamAL paper.",
        epilog="additional subcommand: 'repro train [...]' — train and "
        "persist one appliance pipeline (own flags; see 'repro train "
        "--help' and docs/training.md)",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(COMMANDS) + ["all"],
        help="which table/figure to regenerate (or 'report' for the "
        "serving-engine household demo)",
    )
    parser.add_argument(
        "--preset",
        default="bench",
        choices=sorted(ex.PRESETS),
        help="scale preset (default: bench)",
    )
    parser.add_argument("--seed", type=int, default=0, help="random seed")
    return parser


def build_train_parser() -> argparse.ArgumentParser:
    """Parser of the ``repro train`` subcommand."""
    from .training.config import SCHEDULERS

    parser = argparse.ArgumentParser(
        prog="repro train",
        description="Train a CamAL pipeline (Algorithm 1) for one appliance "
        "and persist it for InferenceEngine.load.",
    )
    parser.add_argument("--corpus", default="ukdale", help="corpus name (default: ukdale)")
    parser.add_argument("--appliance", default="kettle", help="target appliance")
    parser.add_argument(
        "--preset",
        default="bench",
        choices=sorted(ex.PRESETS),
        help="scale preset (default: bench)",
    )
    parser.add_argument("--seed", type=int, default=0, help="random seed")
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for candidate training (1 = serial; results "
        "are identical for any value)",
    )
    parser.add_argument(
        "--epochs", type=int, default=None, help="override the preset's epoch count"
    )
    parser.add_argument(
        "--scheduler",
        default="none",
        choices=SCHEDULERS,
        help="LR schedule applied inside each candidate's training loop",
    )
    parser.add_argument(
        "--warmup-epochs",
        type=int,
        default=0,
        help="linear-warmup epochs (warmup_cosine scheduler only)",
    )
    parser.add_argument(
        "--checkpoint-dir",
        default=None,
        help="directory for per-candidate resumable checkpoints",
    )
    parser.add_argument(
        "--no-resume",
        action="store_true",
        help="ignore existing checkpoints and retrain from scratch",
    )
    parser.add_argument(
        "--out",
        default=None,
        help="directory to persist the trained pipeline (save_camal layout)",
    )
    parser.add_argument(
        "--progress",
        action="store_true",
        help="print per-epoch train/val losses and learning rate",
    )
    return parser


def run_train(args: argparse.Namespace) -> str:
    """Execute ``repro train`` and return the human-readable summary."""
    from dataclasses import replace

    from .core import CamAL, save_camal, train_ensemble

    preset = ex.get_preset(args.preset)
    corpus = ex.build_corpus(args.corpus, preset, args.seed)
    case = ex.case_windows(corpus, args.appliance, preset.window, split_seed=args.seed)

    config = preset.ensemble_config(args.seed)
    train_cfg = replace(
        config.train,
        epochs=args.epochs if args.epochs is not None else config.train.epochs,
        scheduler=args.scheduler,
        warmup_epochs=args.warmup_epochs,
        resume=not args.no_resume,
        verbose=args.progress,
    )
    config = replace(config, train=train_cfg)

    start = time.perf_counter()
    ensemble, candidates = train_ensemble(
        case.train.inputs,
        case.train.weak,
        case.val.inputs,
        case.val.weak,
        config,
        n_workers=max(args.workers, 1),
        checkpoint_dir=args.checkpoint_dir,
    )
    wall = time.perf_counter() - start

    camal = CamAL(ensemble, power_gate_watts=case.spec.on_threshold_watts)
    lines = [
        f"Trained {args.appliance} on {args.corpus} "
        f"(preset={preset.name}, workers={max(args.workers, 1)})",
        f"  candidates        : {len(candidates)} "
        f"(kernels {tuple(config.kernel_set)}, {config.n_trials} trial(s) each)",
        f"  selected ensemble : {len(ensemble)} members, "
        f"kernels {tuple(ensemble.kernel_sizes)}",
        f"  best val loss     : {min(c.val_loss for c in candidates):.4f}",
        f"  wall time         : {wall:.1f}s",
    ]
    if args.checkpoint_dir:
        lines.append(f"  checkpoints       : {args.checkpoint_dir}")
    if args.out:
        save_camal(camal, args.out)
        lines.append(f"  pipeline saved to : {args.out}")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "train":
        print(run_train(build_train_parser().parse_args(argv[1:])))
        return 0
    args = build_parser().parse_args(argv)
    preset = ex.get_preset(args.preset)
    names = sorted(COMMANDS) if args.experiment == "all" else [args.experiment]
    for name in names:
        print(f"== {name} (preset={preset.name}) ==")
        print(COMMANDS[name](preset, args.seed))
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
