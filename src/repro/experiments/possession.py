"""RQ4 / Fig. 8: the possession-only pipeline (§V-H).

Training uses *one label per household* — does the house own the appliance
or not — with no submeter data at all:

1. split households 70/10/20 (train/val/test);
2. balance the training households by possession label (random
   undersampling);
3. slice every household series into tumbling windows of size ``w`` and
   assign the household's possession label to each window;
4. train the CamAL ensemble per candidate ``w`` and keep the ``w`` whose
   detection Balanced Accuracy on the validation households is highest;
5. evaluate localization on a submetered corpus with per-timestamp ground
   truth (IDEAL's 39 submetered homes, or EDF EV for the EDF pipeline).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .. import simdata as sd
from ..core import CamAL, train_ensemble
from ..metrics import balanced_accuracy
from .config import Preset
from .reporting import render_table
from .runner import CaseData, CaseResult, case_windows, evaluate_status, house_windows


def _possession_windows(
    corpus: sd.Corpus, appliance: str, house_ids: Sequence[str], window: int
) -> sd.WindowSet:
    """Aggregate-only windows labeled with the household possession answer."""
    sets = []
    for house_id in house_ids:
        windows = house_windows(corpus, appliance, house_id, window)
        if len(windows) == 0:
            continue
        owns = corpus.house(house_id).possession.get(appliance, False)
        sets.append(sd.replicate_possession_label(windows, owns))
    return sd.concat_window_sets(sets)


def _balance_households(
    corpus: sd.Corpus, appliance: str, house_ids: Sequence[str], rng: np.random.Generator
) -> List[str]:
    """Random undersampling of households to equalize possession classes."""
    owners = [h for h in house_ids if corpus.house(h).possession.get(appliance, False)]
    others = [h for h in house_ids if h not in owners]
    if not owners or not others:
        return list(house_ids)
    keep = min(len(owners), len(others))
    owners = list(rng.choice(owners, size=keep, replace=False))
    others = list(rng.choice(others, size=keep, replace=False))
    return owners + others


@dataclass
class PossessionRunResult:
    """Outcome of the possession-only pipeline for one case."""

    appliance: str
    train_corpus: str
    test_corpus: str
    best_window: int
    val_balanced_accuracy: float
    localization: CaseResult
    window_scores: List[Tuple[int, float]]  # (w, val balacc)
    camal: Optional[CamAL] = None  # the selected pipeline (for reuse, e.g. RQ5)

    def render(self) -> str:
        rows = [[w, score] for w, score in self.window_scores]
        table = render_table(
            ["train window w", "val BalAcc"],
            rows,
            title=(
                f"Fig. 8 — possession-only pipeline: {self.appliance} "
                f"(train {self.train_corpus} -> test {self.test_corpus})"
            ),
        )
        summary = (
            f"best w = {self.best_window}; localization F1 = {self.localization.f1:.3f} "
            f"(MR = {self.localization.matching_ratio:.3f}, "
            f"labels used = {self.localization.n_labels} households)"
        )
        return table + "\n" + summary


def run_possession_pipeline(
    train_corpus: sd.Corpus,
    test_corpus: sd.Corpus,
    appliance: str,
    preset: Preset,
    window_candidates: Sequence[int],
    test_house_ids: Optional[Sequence[str]] = None,
    seed: int = 0,
) -> PossessionRunResult:
    """Run the full §V-H pipeline and evaluate on submetered ground truth."""
    rng = np.random.default_rng(seed)
    split = sd.possession_split(train_corpus, seed=seed)
    train_houses = _balance_households(train_corpus, appliance, split.train, rng)

    # Per-timestamp evaluation set from the submetered corpus.
    test_ids = list(test_house_ids or test_corpus.submetered_house_ids)
    test_pool = sd.concat_window_sets(
        [house_windows(test_corpus, appliance, hid, preset.window) for hid in test_ids]
    )
    spec = sd.get_spec(appliance)

    best: Optional[Tuple[int, float, CamAL]] = None
    scores: List[Tuple[int, float]] = []
    for window in window_candidates:
        train_pool = _possession_windows(train_corpus, appliance, train_houses, window)
        val_pool = _possession_windows(train_corpus, appliance, split.val, window)
        if train_pool.weak.min() == train_pool.weak.max():
            scores.append((window, float("nan")))
            continue
        ensemble, _ = train_ensemble(
            train_pool.inputs,
            train_pool.weak,
            val_pool.inputs,
            val_pool.weak,
            preset.ensemble_config(seed),
        )
        camal = CamAL(ensemble, power_gate_watts=spec.on_threshold_watts)
        val_bal = balanced_accuracy(
            val_pool.weak, ensemble.predict_detection(val_pool.inputs)
        )
        scores.append((window, val_bal))
        if best is None or val_bal > best[1]:
            best = (window, val_bal, camal)

    if best is None:
        raise RuntimeError("no window candidate produced both possession classes")
    best_window, best_bal, camal = best

    case = CaseData(
        corpus=test_corpus.name, appliance=appliance,
        train=test_pool, val=test_pool, test=test_pool,
    )
    output = camal.localize(test_pool.inputs)
    localization = evaluate_status(
        "CamAL (possession)",
        case,
        output.status,
        train_seconds=0.0,
        n_labels=len(train_houses),
        detection_pred=output.detected,
    )
    return PossessionRunResult(
        appliance=appliance,
        train_corpus=train_corpus.name,
        test_corpus=test_corpus.name,
        best_window=best_window,
        val_balanced_accuracy=best_bal,
        localization=localization,
        window_scores=scores,
        camal=camal,
    )


@dataclass
class Figure8Result:
    """One label per household vs per subsequence vs per timestamp."""

    rows: List[Tuple[str, str, float, int]]  # (method, label scheme, F1, n labels)

    def render(self) -> str:
        return render_table(
            ["Method", "One label per", "F1", "# labels"],
            [list(r) for r in self.rows],
            title="Fig. 8 — label-granularity comparison",
        )


def run_figure8(
    train_corpus: sd.Corpus,
    test_corpus: sd.Corpus,
    appliance: str,
    preset: Preset,
    window_candidates: Sequence[int],
    seed: int = 0,
) -> Figure8Result:
    """Compare the three label granularities on one case (Fig. 8)."""
    from .runner import run_camal, run_model

    rows: List[Tuple[str, str, float, int]] = []

    possession = run_possession_pipeline(
        train_corpus, test_corpus, appliance, preset, window_candidates, seed=seed
    )
    rows.append(
        (
            "CamAL",
            "household",
            possession.localization.f1,
            possession.localization.n_labels,
        )
    )

    case = case_windows(test_corpus, appliance, preset.window, split_seed=seed)
    per_window, _ = run_camal(case, preset, seed=seed)
    rows.append(("CamAL", "subsequence", per_window.f1, per_window.n_labels))

    crnn_weak = run_model("CRNN-weak", case, preset, seed=seed)
    rows.append(("CRNN-weak", "subsequence", crnn_weak.f1, crnn_weak.n_labels))

    strong = run_model("CRNN", case, preset, seed=seed)
    rows.append(("CRNN", "timestamp", strong.f1, strong.n_labels))
    return Figure8Result(rows=rows)
