"""Fig. 9: monetary / carbon / storage cost comparison of label schemes."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..metrics.costs import (
    LabelingCost,
    possession_label_cost,
    storage_ratio_strong_vs_possession,
    strong_label_cost,
    weak_label_cost,
)
from .reporting import render_series, render_table


@dataclass
class CostResult:
    per_household: List[LabelingCost]
    storage_curve: List[Tuple[float, float, float]]  # (k samples, strong TB, weak TB)
    storage_ratio: float

    def render(self) -> str:
        table = render_table(
            ["One label per", "$ / household", "gCO2 / household", "Storage (TB, 1M homes)"],
            [
                [c.scheme, c.dollars_per_household, c.gco2_per_household, round(c.storage_terabytes, 2)]
                for c in self.per_household
            ],
            title="Fig. 9a — labeling cost per household (1-year horizon)",
        )
        curve = render_series(
            "Fig. 9b — storage TB vs recorded samples/house (strong)",
            [f"{k:.0f}k" for k, _, _ in self.storage_curve],
            [round(s, 2) for _, s, _ in self.storage_curve],
        )
        curve_weak = render_series(
            "Fig. 9b — storage TB vs recorded samples/house (weak)",
            [f"{k:.0f}k" for k, _, _ in self.storage_curve],
            [round(w, 2) for _, _, w in self.storage_curve],
        )
        ratio = f"strong/weak storage ratio = {self.storage_ratio:.1f}x (paper: ~6x)"
        return "\n".join([table, curve, curve_weak, ratio])


def run_cost_analysis(
    n_households: int = 1_000_000,
    n_appliances: int = 5,
    years: float = 1.0,
    sample_points: Sequence[float] = (100.0, 200.0, 300.0, 400.0, 525.6),
) -> CostResult:
    """Compute Fig. 9 for ``n_households`` (default: the paper's 1M homes).

    ``sample_points`` are recorded samples per house per year in thousands
    (525.6k = one year at 1-minute sampling).
    """
    schemes = [
        strong_label_cost(n_households, n_appliances, years),
        weak_label_cost(n_households, n_appliances, years),
        possession_label_cost(n_households, n_appliances, years),
    ]
    curve = []
    for k_samples in sample_points:
        samples = k_samples * 1000.0
        strong = strong_label_cost(n_households, n_appliances, years, samples_per_year=samples)
        weak = possession_label_cost(n_households, n_appliances, years, samples_per_year=samples)
        curve.append((k_samples, strong.storage_terabytes, weak.storage_terabytes))
    return CostResult(
        per_household=schemes,
        storage_curve=curve,
        storage_ratio=storage_ratio_strong_vs_possession(n_appliances),
    )
