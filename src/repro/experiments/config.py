"""Experiment presets: ``paper`` (faithful sizes), ``fast`` (laptop), ``bench``.

Every experiment runner takes a :class:`Preset`; the three presets differ
only in scale (windows, corpus days, model widths, epochs), never in code
path, so the bench suite exercises exactly the pipeline the paper runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Tuple

from ..core.ensemble import EnsembleConfig
from ..training import TrainConfig

#: The 11 dataset x appliance cases of Table III.
TABLE3_CASES: Tuple[Tuple[str, str], ...] = (
    ("refit", "dishwasher"),
    ("refit", "kettle"),
    ("refit", "microwave"),
    ("refit", "washing_machine"),
    ("ukdale", "dishwasher"),
    ("ukdale", "kettle"),
    ("ukdale", "microwave"),
    ("ideal", "dishwasher"),
    ("ideal", "shower"),
    ("ideal", "washing_machine"),
    ("edf_ev", "electric_vehicle"),
)


@dataclass(frozen=True)
class Preset:
    """Scale knobs shared by all experiment runners."""

    name: str
    window: int
    # Corpus sizes (days of recording; house-count overrides where relevant).
    corpus_days: Dict[str, float]
    ideal_possession_houses: int
    edf_weak_houses: int
    # CamAL ensemble (Algorithm 1).
    kernel_set: Tuple[int, ...]
    n_trials: int
    n_models: int
    resnet_filters: Tuple[int, int, int]
    # Training loops.
    clf_epochs: int
    seq2seq_epochs: int
    batch_size: int
    lr: float
    patience: int
    # Baseline width scale: "paper" keeps Table II sizes, "small" shrinks.
    baseline_scale: str = "small"
    seed: int = 0

    def train_config(self, epochs: int, seed: int) -> TrainConfig:
        return TrainConfig(
            epochs=epochs,
            batch_size=self.batch_size,
            lr=self.lr,
            patience=self.patience,
            seed=seed,
        )

    def ensemble_config(self, seed: int) -> EnsembleConfig:
        return EnsembleConfig(
            kernel_set=self.kernel_set,
            n_trials=self.n_trials,
            n_models=self.n_models,
            filters=self.resnet_filters,
            train=self.train_config(self.clf_epochs, seed),
            seed=seed,
        )


PAPER = Preset(
    name="paper",
    window=510,
    corpus_days={"ukdale": 90.0, "refit": 60.0, "ideal": 30.0, "edf_ev": 397.0, "edf_weak": 270.0},
    ideal_possession_houses=216,
    edf_weak_houses=558,
    kernel_set=(5, 7, 9, 15, 25),
    n_trials=3,
    n_models=5,
    resnet_filters=(64, 128, 128),
    clf_epochs=30,
    seq2seq_epochs=30,
    batch_size=64,
    lr=1e-3,
    patience=5,
    baseline_scale="paper",
)

FAST = Preset(
    name="fast",
    window=128,
    corpus_days={"ukdale": 8.0, "refit": 6.0, "ideal": 5.0, "edf_ev": 40.0, "edf_weak": 30.0},
    ideal_possession_houses=40,
    edf_weak_houses=60,
    kernel_set=(3, 5, 9),
    n_trials=1,
    n_models=3,
    resnet_filters=(32, 64, 64),
    clf_epochs=10,
    seq2seq_epochs=10,
    batch_size=32,
    lr=1e-3,
    patience=4,
    baseline_scale="small",
)

BENCH = Preset(
    name="bench",
    window=64,
    corpus_days={"ukdale": 4.0, "refit": 3.0, "ideal": 3.0, "edf_ev": 24.0, "edf_weak": 20.0},
    ideal_possession_houses=24,
    edf_weak_houses=36,
    kernel_set=(3, 9),
    n_trials=1,
    n_models=2,
    resnet_filters=(16, 32, 32),
    clf_epochs=5,
    seq2seq_epochs=5,
    batch_size=32,
    lr=2e-3,
    patience=3,
    baseline_scale="tiny",
)

PRESETS: Dict[str, Preset] = {"paper": PAPER, "fast": FAST, "bench": BENCH}


def get_preset(name: str) -> Preset:
    try:
        return PRESETS[name]
    except KeyError:
        raise KeyError(f"unknown preset {name!r}; known: {sorted(PRESETS)}") from None


def scaled(preset: Preset, **overrides) -> Preset:
    """Copy a preset with field overrides (e.g. fewer epochs for sweeps)."""
    return replace(preset, **overrides)


def smoke_preset(**overrides) -> Preset:
    """A minimal preset for CI smoke runs (``REPRO_SMOKE=1`` in examples).

    Same code paths as ``bench``, scaled down until every example finishes
    in seconds; never used for reported numbers.
    """
    fields = dict(
        corpus_days={
            "ukdale": 3.0,
            "refit": 2.0,
            "ideal": 2.0,
            "edf_ev": 16.0,
            "edf_weak": 12.0,
        },
        ideal_possession_houses=12,
        edf_weak_houses=16,
        clf_epochs=2,
        seq2seq_epochs=2,
    )
    fields.update(overrides)
    return scaled(BENCH, **fields)
