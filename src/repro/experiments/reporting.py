"""Plain-text table/series rendering for experiment outputs."""

from __future__ import annotations

from typing import Dict, List, Sequence, Union

Cell = Union[str, int, float]


def format_cell(value: Cell, precision: int = 3) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        if abs(value) >= 1000:
            return f"{value:.0f}"
        return f"{value:.{precision}f}"
    return str(value)


def render_table(
    headers: Sequence[str], rows: Sequence[Sequence[Cell]], title: str = ""
) -> str:
    """Render an ASCII table with aligned columns."""
    str_rows = [[format_cell(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError("row length does not match headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_series(name: str, xs: Sequence[Cell], ys: Sequence[Cell]) -> str:
    """Render an (x, y) series as the paper's figures report them."""
    pairs = ", ".join(f"({format_cell(x)}, {format_cell(y)})" for x, y in zip(xs, ys))
    return f"{name}: {pairs}"


def render_dict(title: str, values: Dict[str, Cell]) -> str:
    lines = [title]
    width = max(len(k) for k in values) if values else 0
    for key, value in values.items():
        lines.append(f"  {key.ljust(width)} : {format_cell(value)}")
    return "\n".join(lines)
