"""Fig. 7: training-time and inference-throughput comparisons.

* 7(a): total training time per method, averaged over cases.
* 7(b): per-epoch training time versus the number of households, using the
  paper's protocol — white-noise consumption series of length 17520
  (30-minute sampling for one year), strongly supervised methods sliced
  into w-length windows, weakly supervised ones trained per window too.
* 7(c): single-CPU inference throughput (windows/second) versus input
  length.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .. import nn
from ..nn.tensor import Tensor
from ..training import predict_status_seq2seq
from .config import Preset
from .reporting import render_series, render_table
from .. import api
from .runner import run_model, case_windows, build_corpus


# ----------------------------------------------------------------------
# 7(a) average training time — reuses CaseResult.train_seconds
# ----------------------------------------------------------------------
@dataclass
class TrainingTimeResult:
    seconds_per_method: Dict[str, float]

    def render(self) -> str:
        rows = sorted(self.seconds_per_method.items(), key=lambda kv: kv[1])
        return render_table(
            ["Method", "Train time (s)"],
            [[name, seconds] for name, seconds in rows],
            title="Fig. 7a — average training time",
        )


def run_training_times(
    preset: Preset,
    cases: Sequence[Tuple[str, str]],
    methods: Optional[Sequence[str]] = None,
    seed: int = 0,
) -> TrainingTimeResult:
    """Average wall-clock training time of each method over ``cases``."""
    methods = list(
        methods
        or ["CamAL", "CRNN-weak", "CRNN", "BiGRU", "UNet-NILM", "TPNILM", "TransNILM"]
    )
    corpora = {}
    times: Dict[str, List[float]] = {m: [] for m in methods}
    for corpus_name, appliance in cases:
        if corpus_name not in corpora:
            corpora[corpus_name] = build_corpus(corpus_name, preset, seed)
        case = case_windows(corpora[corpus_name], appliance, preset.window, split_seed=seed)
        for method in methods:
            result = run_model(method, case, preset, seed=seed)
            times[method].append(result.train_seconds)
    return TrainingTimeResult(
        seconds_per_method={m: float(np.mean(ts)) for m, ts in times.items()}
    )


# ----------------------------------------------------------------------
# 7(b) per-epoch time vs number of households (white-noise protocol)
# ----------------------------------------------------------------------
def white_noise_households(
    n_households: int, series_length: int = 17_520, seed: int = 0
) -> Tuple[np.ndarray, np.ndarray]:
    """The paper's synthetic scalability workload: random consumption data
    with per-timestamp ground truth, one series of ``series_length`` per
    household (length 17520 = one year at 30-minute sampling)."""
    rng = np.random.default_rng(seed)
    x = rng.random((n_households, series_length)).astype(np.float32)
    s = (rng.random((n_households, series_length)) > 0.5).astype(np.float32)
    return x, s


@dataclass
class EpochTimeResult:
    window: int
    series: Dict[str, List[Tuple[int, float]]]  # method -> [(households, s/epoch)]

    def render(self) -> str:
        lines = ["Fig. 7b — per-epoch training time vs households"]
        for method, points in self.series.items():
            lines.append(
                render_series(
                    f"  {method}", [p[0] for p in points], [round(p[1], 3) for p in points]
                )
            )
        return "\n".join(lines)


def run_epoch_times(
    preset: Preset,
    household_counts: Sequence[int],
    methods: Optional[Sequence[str]] = None,
    series_length: int = 17_520,
    batch_size: int = 64,
    seed: int = 0,
) -> EpochTimeResult:
    """Measure one training epoch per method and household count (7b)."""
    from ..core.resnet import ResNetConfig, ResNetTSC
    from ..nn import functional as F

    methods = list(
        methods or ["CamAL", "CRNN-weak", "CRNN", "BiGRU", "UNet-NILM", "TPNILM", "TransNILM"]
    )
    window = preset.window
    series: Dict[str, List[Tuple[int, float]]] = {m: [] for m in methods}
    for count in household_counts:
        x_raw, s_raw = white_noise_households(count, series_length, seed)
        n_windows = series_length // window
        x = x_raw[:, : n_windows * window].reshape(-1, window)
        s = s_raw[:, : n_windows * window].reshape(-1, window)
        y = (s.max(axis=1) > 0).astype(np.float32)
        for method in methods:
            if method == "CamAL":
                model = ResNetTSC(
                    ResNetConfig(
                        kernel_size=preset.kernel_set[0], filters=preset.resnet_filters
                    )
                )
            else:
                model = api.create(
                    method, scale=preset.baseline_scale, seed=seed
                ).network
            optimizer = nn.Adam(model.parameters(), lr=1e-3)
            start = time.perf_counter()
            for begin in range(0, len(x), batch_size):
                xb = Tensor(x[begin : begin + batch_size][:, None, :])
                if method == "CamAL":
                    loss = F.cross_entropy(model(xb), y[begin : begin + batch_size].astype(np.int64))
                elif method == "CRNN-weak":
                    loss = F.binary_cross_entropy_with_logits(
                        model.forward_weak(xb), y[begin : begin + batch_size]
                    )
                else:
                    loss = F.binary_cross_entropy_with_logits(
                        model(xb), s[begin : begin + batch_size]
                    )
                optimizer.zero_grad()
                loss.backward()
                optimizer.step()
            elapsed = time.perf_counter() - start
            if method == "CamAL":
                # Algorithm 1 trains |kernel_set| x n_trials networks.
                elapsed *= len(preset.kernel_set) * preset.n_trials
            series[method].append((count, elapsed))
    return EpochTimeResult(window=window, series=series)


# ----------------------------------------------------------------------
# 7(c) inference throughput vs input length
# ----------------------------------------------------------------------
@dataclass
class ThroughputResult:
    series: Dict[str, List[Tuple[int, float]]]  # method -> [(length, windows/s)]

    def render(self) -> str:
        lines = ["Fig. 7c — inference throughput (windows/s) vs input length"]
        for method, points in self.series.items():
            lines.append(
                render_series(
                    f"  {method}", [p[0] for p in points], [round(p[1], 1) for p in points]
                )
            )
        return "\n".join(lines)


def run_throughput(
    preset: Preset,
    input_lengths: Sequence[int],
    methods: Optional[Sequence[str]] = None,
    n_windows: int = 32,
    seed: int = 0,
) -> ThroughputResult:
    """Measure forward-pass throughput per method and input length (7c).

    CamAL's measurement includes its full inference path: ensemble forward
    passes plus CAM extraction and the attention module.
    """
    from ..core import CamAL, ResNetEnsemble
    from ..core.resnet import ResNetConfig, ResNetTSC

    methods = list(
        methods or ["CamAL", "CRNN-weak", "CRNN", "BiGRU", "UNet-NILM", "TPNILM", "TransNILM"]
    )
    rng = np.random.default_rng(seed)
    series: Dict[str, List[Tuple[int, float]]] = {m: [] for m in methods}
    for length in input_lengths:
        x = rng.random((n_windows, length)).astype(np.float32)
        for method in methods:
            if method == "CamAL":
                models = [
                    ResNetTSC(ResNetConfig(kernel_size=k, filters=preset.resnet_filters))
                    for k in preset.kernel_set[: preset.n_models]
                ]
                camal = CamAL(ResNetEnsemble(models), detection_threshold=-1.0)
                for model in models:
                    model.eval()
                start = time.perf_counter()
                camal.localize(x)
                elapsed = time.perf_counter() - start
            else:
                model = api.create(
                    method, scale=preset.baseline_scale, seed=seed
                ).network
                model.eval()
                start = time.perf_counter()
                predict_status_seq2seq(model, x)
                elapsed = time.perf_counter() - start
            series[method].append((length, n_windows / max(elapsed, 1e-9)))
    return ThroughputResult(series=series)
