"""RQ5 / Fig. 10: training strongly supervised baselines on CamAL soft labels.

A CamAL trained with possession labels only (on the EDF-Weak-like corpus)
labels the EDF-EV-like training houses; strongly supervised baselines are
then trained on mixes of ground-truth ("strong") houses and CamAL-labeled
("soft") houses, reproducing the 0/16 -> 4/12 -> 8/8 sweep of Fig. 10.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .. import simdata as sd
from ..core import CamAL, generate_soft_labels, mix_strong_and_soft
from ..training import predict_status_seq2seq, train_seq2seq
from .config import Preset
from .reporting import render_series
from .. import api
from .runner import CaseData, evaluate_status, house_windows


@dataclass
class SoftLabelCurve:
    """F1 of one baseline across (strong, soft) household mixes."""

    method: str
    points: List[Tuple[int, int, float]]  # (n_strong_houses, n_soft_houses, F1)


@dataclass
class Figure10Result:
    curves: List[SoftLabelCurve]
    strong_only: List[SoftLabelCurve]

    def render(self) -> str:
        lines = ["Fig. 10 — baselines trained on CamAL soft labels (EDF-EV-like)"]
        for curve in self.curves:
            lines.append(
                render_series(
                    f"  {curve.method} (strong+soft)",
                    [f"{p[0]}/{p[1]}" for p in curve.points],
                    [round(p[2], 3) for p in curve.points],
                )
            )
        for curve in self.strong_only:
            lines.append(
                render_series(
                    f"  {curve.method} (strong only)",
                    [f"{p[0]}/0" for p in curve.points],
                    [round(p[2], 3) for p in curve.points],
                )
            )
        return "\n".join(lines)


def run_figure10(
    camal: CamAL,
    ev_corpus: sd.Corpus,
    preset: Preset,
    methods: Optional[Sequence[str]] = None,
    mixes: Sequence[Tuple[int, int]] = ((0, 8), (2, 6), (4, 4)),
    seed: int = 0,
) -> Figure10Result:
    """Train baselines on strong/soft household mixes and score them.

    Args:
        camal: a CamAL pipeline already trained without EV ground truth
            (e.g. by the possession pipeline on the EDF-Weak-like corpus).
        ev_corpus: submetered corpus providing strong labels and the test set.
        mixes: (n_strong_houses, n_soft_houses) pairs; houses are disjoint.
    """
    methods = list(methods or ["CRNN", "BiGRU", "UNet-NILM", "TPNILM", "TransNILM"])
    appliance = ev_corpus.target_appliances[0]
    split = sd.split_houses(ev_corpus, seed=seed)
    train_ids = list(split.train)
    val_pool = sd.concat_window_sets(
        [house_windows(ev_corpus, appliance, hid, preset.window) for hid in split.val]
    )
    test_pool = sd.concat_window_sets(
        [house_windows(ev_corpus, appliance, hid, preset.window) for hid in split.test]
    )
    case = CaseData(
        corpus=ev_corpus.name, appliance=appliance,
        train=test_pool, val=val_pool, test=test_pool,
    )

    house_pools = {
        hid: house_windows(ev_corpus, appliance, hid, preset.window) for hid in train_ids
    }

    curves, strong_only = [], []
    for method in methods:
        mixed_points, strong_points = [], []
        for n_strong, n_soft in mixes:
            n_strong = min(n_strong, len(train_ids))
            n_soft = min(n_soft, len(train_ids) - n_strong)
            strong_ids = train_ids[:n_strong]
            soft_ids = train_ids[n_strong : n_strong + n_soft]

            if strong_ids:
                strong_pool = sd.concat_window_sets([house_pools[h] for h in strong_ids])
                strong_x, strong_s = strong_pool.inputs, strong_pool.strong
            else:
                width = preset.window
                strong_x = np.zeros((0, width), dtype=np.float32)
                strong_s = np.zeros((0, width), dtype=np.float32)

            soft_x = (
                sd.concat_window_sets([house_pools[h] for h in soft_ids]).inputs
                if soft_ids
                else np.zeros((0, preset.window), dtype=np.float32)
            )
            soft = generate_soft_labels(camal, soft_x)
            x_mix, s_mix = mix_strong_and_soft(strong_x, strong_s, soft)
            if len(x_mix) == 0:
                mixed_points.append((n_strong, n_soft, float("nan")))
                continue

            model = api.create(method, scale=preset.baseline_scale, seed=seed).network
            train_seq2seq(
                model, x_mix, s_mix, val_pool.inputs, val_pool.strong,
                preset.train_config(preset.seq2seq_epochs, seed),
            )
            model.eval()
            status = predict_status_seq2seq(model, test_pool.inputs)
            result = evaluate_status(method, case, status, 0.0, len(x_mix))
            mixed_points.append((n_strong, n_soft, result.f1))

            # Strong-only reference: same strong houses, no soft windows.
            if len(strong_x) > 0:
                ref = api.create(
                    method, scale=preset.baseline_scale, seed=seed
                ).network
                train_seq2seq(
                    ref, strong_x, strong_s, val_pool.inputs, val_pool.strong,
                    preset.train_config(preset.seq2seq_epochs, seed),
                )
                ref.eval()
                ref_status = predict_status_seq2seq(ref, test_pool.inputs)
                ref_result = evaluate_status(method, case, ref_status, 0.0, strong_s.size)
                strong_points.append((n_strong, 0, ref_result.f1))
        curves.append(SoftLabelCurve(method=method, points=mixed_points))
        strong_only.append(SoftLabelCurve(method=method, points=strong_points))
    return Figure10Result(curves=curves, strong_only=strong_only)
