"""``repro.experiments`` — runners regenerating every table and figure.

Mapping (see DESIGN.md §4):

* Table II  -> :mod:`repro.experiments.complexity`
* Table III -> :mod:`repro.experiments.weak_table`
* Table IV  -> :func:`repro.experiments.ablations.run_design_ablation`
* Fig. 1/5  -> :mod:`repro.experiments.label_sweep`
* Fig. 6a   -> :func:`repro.experiments.ablations.run_window_length`
* Fig. 6b   -> :mod:`repro.experiments.correlation`
* Fig. 6c   -> :func:`repro.experiments.ablations.run_ensemble_size`
* Fig. 7    -> :mod:`repro.experiments.scalability`
* Fig. 8    -> :mod:`repro.experiments.possession`
* Fig. 9    -> :mod:`repro.experiments.cost_analysis`
* Fig. 10   -> :mod:`repro.experiments.augmentation`
"""

from .ablations import (
    AblationResult,
    EnsembleSizeResult,
    WindowLengthResult,
    run_design_ablation,
    run_ensemble_size,
    run_window_length,
)
from .augmentation import Figure10Result, run_figure10
from .complexity import ComplexityResult, run_complexity_table
from .config import (
    BENCH,
    FAST,
    PAPER,
    PRESETS,
    Preset,
    TABLE3_CASES,
    get_preset,
    scaled,
    smoke_preset,
)
from .correlation import CorrelationResult, run_correlation
from .cost_analysis import CostResult, run_cost_analysis
from .label_sweep import LabelSweepResult, run_label_sweep
from .possession import (
    Figure8Result,
    PossessionRunResult,
    run_figure8,
    run_possession_pipeline,
)
from .reporting import render_dict, render_series, render_table
from .runner import (
    BASELINE_NAMES,
    CaseData,
    CaseResult,
    build_corpus,
    case_windows,
    case_windows_from_store,
    create_model,
    evaluate_status,
    fit_on_case,
    house_windows,
    make_baseline,
    run_baseline,
    run_camal,
    run_model,
)
from .scalability import (
    EpochTimeResult,
    ThroughputResult,
    TrainingTimeResult,
    run_epoch_times,
    run_throughput,
    run_training_times,
    white_noise_households,
)
from .weak_table import WeakTableResult, run_weak_table

__all__ = [
    "Preset",
    "PRESETS",
    "PAPER",
    "FAST",
    "BENCH",
    "get_preset",
    "scaled",
    "smoke_preset",
    "TABLE3_CASES",
    "BASELINE_NAMES",
    "CaseData",
    "CaseResult",
    "build_corpus",
    "case_windows",
    "case_windows_from_store",
    "house_windows",
    "create_model",
    "fit_on_case",
    "run_model",
    "make_baseline",
    "run_camal",
    "run_baseline",
    "evaluate_status",
    "run_weak_table",
    "WeakTableResult",
    "run_label_sweep",
    "LabelSweepResult",
    "run_design_ablation",
    "AblationResult",
    "run_window_length",
    "WindowLengthResult",
    "run_ensemble_size",
    "EnsembleSizeResult",
    "run_correlation",
    "CorrelationResult",
    "run_training_times",
    "TrainingTimeResult",
    "run_epoch_times",
    "EpochTimeResult",
    "run_throughput",
    "ThroughputResult",
    "white_noise_households",
    "run_possession_pipeline",
    "PossessionRunResult",
    "run_figure8",
    "Figure8Result",
    "run_figure10",
    "Figure10Result",
    "run_complexity_table",
    "ComplexityResult",
    "run_cost_analysis",
    "CostResult",
    "render_table",
    "render_series",
    "render_dict",
]
