"""Shared orchestration: corpus -> windows -> trained model -> metrics.

Every table/figure runner builds on these helpers so that data handling
(§V-B) and evaluation (§V-D, including the §IV-C power reconstruction
applied to *all* baselines) stay identical across experiments.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from .. import baselines as bl
from .. import simdata as sd
from ..core import CamAL, EnsembleConfig, estimate_power, train_ensemble
from ..metrics import balanced_accuracy, f1_score, mae, matching_ratio, precision_score, recall_score, rmse
from ..training import (
    TrainConfig,
    predict_status_seq2seq,
    train_seq2seq,
    train_weak_mil,
)
from .config import Preset

#: Baseline name -> (supervision, factory(scale, window, seed) -> model).
BASELINE_NAMES = ("CRNN", "CRNN-weak", "BiGRU", "UNet-NILM", "TPNILM", "TransNILM")


def build_corpus(name: str, preset: Preset, seed: int = 0) -> sd.Corpus:
    """Instantiate a corpus at the preset's scale."""
    days = preset.corpus_days[name]
    if name == "ukdale":
        return sd.ukdale_like(days=days, seed=seed)
    if name == "refit":
        return sd.refit_like(days=days, seed=seed + 1)
    if name == "ideal":
        return sd.ideal_like(
            days=days, n_possession_only=preset.ideal_possession_houses, seed=seed + 2
        )
    if name == "edf_ev":
        return sd.edf_ev_like(days=days, seed=seed + 3)
    if name == "edf_weak":
        return sd.edf_weak_like(days=days, n_houses=preset.edf_weak_houses, seed=seed + 4)
    raise KeyError(f"unknown corpus {name!r}")


@dataclass
class CaseData:
    """Model-ready windows for one dataset x appliance case."""

    corpus: str
    appliance: str
    train: sd.WindowSet
    val: sd.WindowSet
    test: sd.WindowSet

    @property
    def spec(self) -> sd.ApplianceSpec:
        return sd.get_spec(self.appliance)


def house_windows(
    corpus: sd.Corpus, appliance: str, house_id: str, window: int
) -> sd.WindowSet:
    """Preprocess one house for one appliance (ffill + slice + scale)."""
    spec = sd.get_spec(appliance)
    house = corpus.house(house_id)
    aggregate = sd.forward_fill(house.aggregate, corpus.max_ffill_samples)
    power = house.appliance_power.get(appliance)
    return sd.slice_windows(
        aggregate, power, spec.on_threshold_watts, window=window, house_id=house_id
    )


def case_windows(
    corpus: sd.Corpus, appliance: str, window: int, split_seed: int = 0
) -> CaseData:
    """Build the train/val/test window pools with house-level splits."""
    split = sd.split_houses(corpus, seed=split_seed)

    def pool(house_ids) -> sd.WindowSet:
        return sd.concat_window_sets(
            [house_windows(corpus, appliance, hid, window) for hid in house_ids]
        )

    return CaseData(
        corpus=corpus.name,
        appliance=appliance,
        train=pool(split.train),
        val=pool(split.val),
        test=pool(split.test),
    )


@dataclass
class CaseResult:
    """Metrics of one method on one case (the columns of Table III)."""

    method: str
    corpus: str
    appliance: str
    f1: float
    precision: float
    recall: float
    mae_watts: float
    rmse_watts: float
    matching_ratio: float
    balanced_accuracy: float = float("nan")  # detection score (CamAL only)
    train_seconds: float = 0.0
    n_labels: int = 0

    def row(self) -> Dict[str, float]:
        return {
            "F1": self.f1,
            "Pr": self.precision,
            "Rc": self.recall,
            "MAE": self.mae_watts,
            "RMSE": self.rmse_watts,
            "MR": self.matching_ratio,
        }


def evaluate_status(
    method: str,
    case: CaseData,
    status_pred: np.ndarray,
    train_seconds: float,
    n_labels: int,
    detection_pred: Optional[np.ndarray] = None,
) -> CaseResult:
    """Score per-timestamp predictions with §V-D metrics.

    Power reconstruction (§IV-C: ``min(ŝ * P_a, x)``) is applied uniformly,
    exactly as the paper applies it to every baseline before evaluating.
    """
    spec = case.spec
    power_pred = estimate_power(status_pred, spec.avg_power_watts, case.test.aggregate_watts)
    truth = case.test.strong
    bal = float("nan")
    if detection_pred is not None:
        bal = balanced_accuracy(case.test.weak, detection_pred)
    return CaseResult(
        method=method,
        corpus=case.corpus,
        appliance=case.appliance,
        f1=f1_score(truth, status_pred),
        precision=precision_score(truth, status_pred),
        recall=recall_score(truth, status_pred),
        mae_watts=mae(case.test.power_watts, power_pred),
        rmse_watts=rmse(case.test.power_watts, power_pred),
        matching_ratio=matching_ratio(case.test.power_watts, power_pred),
        balanced_accuracy=bal,
        train_seconds=train_seconds,
        n_labels=n_labels,
    )


# ----------------------------------------------------------------------
# CamAL
# ----------------------------------------------------------------------
def run_camal(
    case: CaseData,
    preset: Preset,
    seed: int = 0,
    use_attention: bool = True,
    power_gate: bool = True,
    kernel_set: Optional[Tuple[int, ...]] = None,
    n_models: Optional[int] = None,
    n_workers: int = 1,
    checkpoint_dir: Optional[str] = None,
) -> Tuple[CaseResult, CamAL]:
    """Train the CamAL ensemble on weak labels and evaluate localization.

    ``n_workers > 1`` trains the ensemble candidates in parallel worker
    processes (identical results, see :func:`repro.core.train_ensemble`);
    ``checkpoint_dir`` makes the run resumable per candidate.
    """
    config = preset.ensemble_config(seed)
    if kernel_set is not None:
        from dataclasses import replace

        config = replace(config, kernel_set=kernel_set)
    if n_models is not None:
        from dataclasses import replace

        config = replace(config, n_models=n_models)

    start = time.perf_counter()
    ensemble, _ = train_ensemble(
        case.train.inputs,
        case.train.weak,
        case.val.inputs,
        case.val.weak,
        config,
        n_workers=n_workers,
        checkpoint_dir=checkpoint_dir,
    )
    train_seconds = time.perf_counter() - start

    gate = case.spec.on_threshold_watts if power_gate else None
    camal = CamAL(ensemble, use_attention=use_attention, power_gate_watts=gate)
    output = camal.localize(case.test.inputs)
    result = evaluate_status(
        "CamAL",
        case,
        output.status,
        train_seconds,
        n_labels=len(case.train.weak),
        detection_pred=output.detected,
    )
    return result, camal


# ----------------------------------------------------------------------
# Baselines
# ----------------------------------------------------------------------
_SCALES: Dict[str, Dict[str, Callable[[int, int], object]]] = {}


def make_baseline(name: str, scale: str, seed: int = 0):
    """Instantiate a baseline model at the given width scale.

    ``scale`` is one of ``paper`` (Table II sizes), ``small`` or ``tiny``
    (CPU-friendly widths for the fast/bench presets).
    """
    if scale == "paper":
        table = {
            "CRNN": lambda: bl.CRNN(bl.CRNNConfig(seed=seed)),
            "CRNN-weak": lambda: bl.CRNN(bl.CRNNConfig(seed=seed)),
            "BiGRU": lambda: bl.BiGRUNILM(bl.BiGRUConfig(seed=seed)),
            "UNet-NILM": lambda: bl.UNetNILM(bl.UNetConfig(seed=seed)),
            "TPNILM": lambda: bl.TPNILM(bl.TPNILMConfig(seed=seed)),
            "TransNILM": lambda: bl.TransNILM(bl.TransNILMConfig(seed=seed)),
        }
    elif scale == "small":
        table = {
            "CRNN": lambda: bl.CRNN(
                bl.CRNNConfig(conv_channels=(16, 32, 32), hidden_size=32, seed=seed)
            ),
            "CRNN-weak": lambda: bl.CRNN(
                bl.CRNNConfig(conv_channels=(16, 32, 32), hidden_size=32, seed=seed)
            ),
            "BiGRU": lambda: bl.BiGRUNILM(
                bl.BiGRUConfig(conv_channels=16, hidden_size=24, seed=seed)
            ),
            "UNet-NILM": lambda: bl.UNetNILM(
                bl.UNetConfig(channels=(8, 16, 32), bottleneck=64, seed=seed)
            ),
            "TPNILM": lambda: bl.TPNILM(
                bl.TPNILMConfig(channels=(16, 32, 64), seed=seed)
            ),
            "TransNILM": lambda: bl.TransNILM(
                bl.TransNILMConfig(
                    embed_dim=32, num_heads=4, num_layers=1, ff_dim=64, seed=seed
                )
            ),
        }
    elif scale == "tiny":
        table = {
            "CRNN": lambda: bl.CRNN(
                bl.CRNNConfig(conv_channels=(8, 16, 16), hidden_size=16, seed=seed)
            ),
            "CRNN-weak": lambda: bl.CRNN(
                bl.CRNNConfig(conv_channels=(8, 16, 16), hidden_size=16, seed=seed)
            ),
            "BiGRU": lambda: bl.BiGRUNILM(
                bl.BiGRUConfig(conv_channels=8, hidden_size=12, seed=seed)
            ),
            "UNet-NILM": lambda: bl.UNetNILM(
                bl.UNetConfig(channels=(8, 16, 16), bottleneck=32, seed=seed)
            ),
            "TPNILM": lambda: bl.TPNILM(
                bl.TPNILMConfig(channels=(8, 16, 32), seed=seed)
            ),
            "TransNILM": lambda: bl.TransNILM(
                bl.TransNILMConfig(
                    embed_dim=16, num_heads=2, num_layers=1, ff_dim=32, seed=seed
                )
            ),
        }
    else:
        raise KeyError(f"unknown baseline scale {scale!r}")
    try:
        return table[name]()
    except KeyError:
        raise KeyError(f"unknown baseline {name!r}; known: {BASELINE_NAMES}") from None


def run_baseline(
    name: str,
    case: CaseData,
    preset: Preset,
    seed: int = 0,
) -> CaseResult:
    """Train one baseline on the case and evaluate localization.

    ``CRNN-weak`` trains with one label per window (MIL); all other
    baselines are strongly supervised (one label per timestamp).
    """
    model = make_baseline(name, preset.baseline_scale, seed)
    weak = name == "CRNN-weak"
    config = preset.train_config(preset.seq2seq_epochs, seed)

    start = time.perf_counter()
    if weak:
        train_weak_mil(
            model, case.train.inputs, case.train.weak, case.val.inputs, case.val.weak, config
        )
        n_labels = len(case.train.weak)
    else:
        train_seq2seq(
            model, case.train.inputs, case.train.strong, case.val.inputs, case.val.strong, config
        )
        n_labels = case.train.strong.size
    train_seconds = time.perf_counter() - start

    model.eval()
    status = predict_status_seq2seq(model, case.test.inputs)
    return evaluate_status(name, case, status, train_seconds, n_labels)
