"""Shared orchestration: corpus -> windows -> trained model -> metrics.

Every table/figure runner builds on these helpers so that data handling
(§V-B) and evaluation (§V-D, including the §IV-C power reconstruction
applied to *all* baselines) stay identical across experiments.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from .. import api
from .. import simdata as sd
from ..core import CamAL, estimate_power, train_ensemble
from ..metrics import balanced_accuracy, f1_score, mae, matching_ratio, precision_score, recall_score, rmse
from .config import Preset

#: Legacy spellings of the §V-C comparison methods (registry names are the
#: lower-cased versions; both work everywhere a method name is accepted).
BASELINE_NAMES = ("CRNN", "CRNN-weak", "BiGRU", "UNet-NILM", "TPNILM", "TransNILM")


def build_corpus(name: str, preset: Preset, seed: int = 0) -> sd.Corpus:
    """Instantiate a corpus at the preset's scale."""
    days = preset.corpus_days[name]
    if name == "ukdale":
        return sd.ukdale_like(days=days, seed=seed)
    if name == "refit":
        return sd.refit_like(days=days, seed=seed + 1)
    if name == "ideal":
        return sd.ideal_like(
            days=days, n_possession_only=preset.ideal_possession_houses, seed=seed + 2
        )
    if name == "edf_ev":
        return sd.edf_ev_like(days=days, seed=seed + 3)
    if name == "edf_weak":
        return sd.edf_weak_like(days=days, n_houses=preset.edf_weak_houses, seed=seed + 4)
    raise KeyError(f"unknown corpus {name!r}")


@dataclass
class CaseData:
    """Model-ready windows for one dataset x appliance case.

    The three pools are :class:`repro.simdata.WindowSet`-shaped; the
    store-backed path (:func:`case_windows_from_store`) fills them with
    :class:`repro.data.StreamingWindows`, whose arrays are bit-identical
    but stream from disk shards on demand.
    """

    corpus: str
    appliance: str
    train: sd.WindowSet
    val: sd.WindowSet
    test: sd.WindowSet

    @property
    def spec(self) -> sd.ApplianceSpec:
        return sd.get_spec(self.appliance)


def house_windows(
    corpus: sd.Corpus, appliance: str, house_id: str, window: int
) -> sd.WindowSet:
    """Preprocess one house for one appliance (ffill + slice + scale)."""
    spec = sd.get_spec(appliance)
    house = corpus.house(house_id)
    aggregate = sd.forward_fill(house.aggregate, corpus.max_ffill_samples)
    power = house.appliance_power.get(appliance)
    return sd.slice_windows(
        aggregate, power, spec.on_threshold_watts, window=window, house_id=house_id
    )


def case_windows(
    corpus: sd.Corpus, appliance: str, window: int, split_seed: int = 0
) -> CaseData:
    """Build the train/val/test window pools with house-level splits."""
    split = sd.split_houses(corpus, seed=split_seed)

    def pool(house_ids) -> sd.WindowSet:
        return sd.concat_window_sets(
            [house_windows(corpus, appliance, hid, window) for hid in house_ids]
        )

    return CaseData(
        corpus=corpus.name,
        appliance=appliance,
        train=pool(split.train),
        val=pool(split.val),
        test=pool(split.test),
    )


def case_windows_from_store(
    store, appliance: str, window: int, split_seed: int = 0
) -> CaseData:
    """Build a case from an ingested :class:`repro.data.MeterStore`.

    The store stands in for the corpus end to end: the manifest carries
    the submetered-house list, so :func:`repro.simdata.split_houses`
    produces the exact split of the in-memory path, and each pool is a
    :class:`~repro.data.StreamingWindows` whose windows and labels are
    bit-identical to :func:`case_windows` on the source corpus —
    ``fit_on_case`` / ``run_model`` / ``run_camal`` consume the result
    unchanged.
    """
    from ..data import StreamingWindows

    split = sd.split_houses(store, seed=split_seed)

    def pool(house_ids) -> "StreamingWindows":
        return StreamingWindows(
            store, appliance, house_ids=house_ids, window=window
        )

    return CaseData(
        corpus=store.name,
        appliance=appliance,
        train=pool(split.train),
        val=pool(split.val),
        test=pool(split.test),
    )


@dataclass
class CaseResult:
    """Metrics of one method on one case (the columns of Table III)."""

    method: str
    corpus: str
    appliance: str
    f1: float
    precision: float
    recall: float
    mae_watts: float
    rmse_watts: float
    matching_ratio: float
    balanced_accuracy: float = float("nan")  # detection score (CamAL only)
    train_seconds: float = 0.0
    n_labels: int = 0

    def row(self) -> Dict[str, float]:
        return {
            "F1": self.f1,
            "Pr": self.precision,
            "Rc": self.recall,
            "MAE": self.mae_watts,
            "RMSE": self.rmse_watts,
            "MR": self.matching_ratio,
        }


def evaluate_status(
    method: str,
    case: CaseData,
    status_pred: np.ndarray,
    train_seconds: float,
    n_labels: int,
    detection_pred: Optional[np.ndarray] = None,
) -> CaseResult:
    """Score per-timestamp predictions with §V-D metrics.

    Power reconstruction (§IV-C: ``min(ŝ * P_a, x)``) is applied uniformly,
    exactly as the paper applies it to every baseline before evaluating.
    """
    spec = case.spec
    power_pred = estimate_power(status_pred, spec.avg_power_watts, case.test.aggregate_watts)
    truth = case.test.strong
    bal = float("nan")
    if detection_pred is not None:
        bal = balanced_accuracy(case.test.weak, detection_pred)
    return CaseResult(
        method=method,
        corpus=case.corpus,
        appliance=case.appliance,
        f1=f1_score(truth, status_pred),
        precision=precision_score(truth, status_pred),
        recall=recall_score(truth, status_pred),
        mae_watts=mae(case.test.power_watts, power_pred),
        rmse_watts=rmse(case.test.power_watts, power_pred),
        matching_ratio=matching_ratio(case.test.power_watts, power_pred),
        balanced_accuracy=bal,
        train_seconds=train_seconds,
        n_labels=n_labels,
    )


# ----------------------------------------------------------------------
# CamAL
# ----------------------------------------------------------------------
def run_camal(
    case: CaseData,
    preset: Preset,
    seed: int = 0,
    use_attention: bool = True,
    power_gate: bool = True,
    kernel_set: Optional[Tuple[int, ...]] = None,
    n_models: Optional[int] = None,
    n_workers: int = 1,
    checkpoint_dir: Optional[str] = None,
) -> Tuple[CaseResult, CamAL]:
    """Train the CamAL ensemble on weak labels and evaluate localization.

    ``n_workers > 1`` trains the ensemble candidates in parallel worker
    processes (identical results, see :func:`repro.core.train_ensemble`);
    ``checkpoint_dir`` makes the run resumable per candidate.
    """
    config = preset.ensemble_config(seed)
    if kernel_set is not None:
        from dataclasses import replace

        config = replace(config, kernel_set=kernel_set)
    if n_models is not None:
        from dataclasses import replace

        config = replace(config, n_models=n_models)

    start = time.perf_counter()
    ensemble, _ = train_ensemble(
        case.train.inputs,
        case.train.weak,
        case.val.inputs,
        case.val.weak,
        config,
        n_workers=n_workers,
        checkpoint_dir=checkpoint_dir,
    )
    train_seconds = time.perf_counter() - start

    gate = case.spec.on_threshold_watts if power_gate else None
    camal = CamAL(ensemble, use_attention=use_attention, power_gate_watts=gate)
    output = camal.localize(case.test.inputs)
    result = evaluate_status(
        "CamAL",
        case,
        output.status,
        train_seconds,
        n_labels=len(case.train.weak),
        detection_pred=output.detected,
    )
    return result, camal


# ----------------------------------------------------------------------
# Baselines (registry-backed)
# ----------------------------------------------------------------------
def create_model(
    name: str, preset: Preset, seed: int = 0, **kwargs
) -> api.WeakLocalizer:
    """Instantiate an unfitted estimator at the preset's baseline scale.

    Thin registry lookup: the scale presets (``paper`` = Table II sizes,
    ``small``, ``tiny``) live in :mod:`repro.api.adapters`, the training
    loop settings come from the preset.
    """
    train = preset.train_config(preset.seq2seq_epochs, seed)
    return api.create(
        name, scale=preset.baseline_scale, seed=seed, train=train, **kwargs
    )


def fit_on_case(estimator: api.WeakLocalizer, case: CaseData) -> api.WeakLocalizer:
    """Fit an estimator on a case's train/val pools; returns it fitted.

    The weak/strong label routing lives in the estimator adapter
    (:meth:`~repro.api.WeakLocalizer.labels_for`), so this is the whole
    ritual — shared by :func:`run_model` and the CLI.
    """
    return estimator.fit(
        case.train.inputs,
        estimator.labels_for(case.train),
        case.val.inputs,
        estimator.labels_for(case.val),
    )


def run_model(
    name: str,
    case: CaseData,
    preset: Preset,
    seed: int = 0,
) -> CaseResult:
    """Train one registered model on the case and evaluate localization.

    Any registry name works, in legacy (``"CRNN-weak"``) or canonical
    (``"crnn-weak"``) spelling; ``"CamAL"`` routes to :func:`run_camal`
    so the ensemble uses the preset's Algorithm-1 configuration.
    """
    if api.canonical_name(name) == "camal":
        result, _ = run_camal(case, preset, seed=seed)
        return result
    estimator = fit_on_case(create_model(name, preset, seed), case)
    status = estimator.predict_status(case.test.inputs)
    return evaluate_status(
        name, case, status, estimator.train_seconds_, estimator.n_labels_
    )


def make_baseline(name: str, scale: str, seed: int = 0):
    """Deprecated: instantiate a bare baseline network at a width scale.

    Use ``repro.api.create(name, scale=...)`` instead; this shim keeps the
    historical behavior (returns the raw ``nn.Module``) on top of the
    registry's scale presets.
    """
    warnings.warn(
        "make_baseline is deprecated; use repro.api.create(name, scale=...) "
        "(the returned estimator exposes the bare module as .network)",
        DeprecationWarning,
        stacklevel=2,
    )
    estimator = api.create(name, scale=scale, seed=seed)
    network = getattr(estimator, "network", None)
    if network is None:
        # Historical behavior: names without a bare network (CamAL) were
        # never baselines and raised KeyError.
        raise KeyError(f"unknown baseline {name!r}; known: {BASELINE_NAMES}")
    return network


def run_baseline(
    name: str,
    case: CaseData,
    preset: Preset,
    seed: int = 0,
) -> CaseResult:
    """Deprecated: train one baseline on the case and evaluate localization.

    Thin shim over :func:`run_model`, which produces identical results
    through the registry-backed estimator API.
    """
    warnings.warn(
        "run_baseline is deprecated; use run_model (identical results via "
        "the repro.api registry)",
        DeprecationWarning,
        stacklevel=2,
    )
    return run_model(name, case, preset, seed)
