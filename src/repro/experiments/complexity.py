"""Table II: theoretical complexity and trainable-parameter counts.

The theoretical complexity strings restate the paper's analysis; the
parameter counts are computed from our implementations at paper scale and
compared with the published numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from .. import baselines as bl
from ..core.resnet import DEFAULT_KERNEL_SET, ResNetConfig, ResNetTSC
from ..nn import count_parameters
from .reporting import render_table

#: Published Table II values (thousands of trainable parameters).
PAPER_PARAMS_K: Dict[str, float] = {
    "CamAL (per ResNet, avg)": 570.0,
    "CRNN (Weak/Strong)": 1049.0,
    "BiGRU": 244.0,
    "Unet-NILM": 3197.0,
    "TPNILM": 328.0,
    "TransNILM": 12418.0,
}

#: The paper's theoretical complexity column.
THEORETICAL_COMPLEXITY: Dict[str, str] = {
    "CamAL (per ResNet, avg)": "O(n_ResNet * L * C^2 * K)",
    "CRNN (Weak/Strong)": "O(L * C^2 * K * (I*H + H^2))",
    "BiGRU": "O(L * C^2 * K * (I*H + H^2))",
    "Unet-NILM": "O(L * C^2 * K)",
    "TPNILM": "O(L * C^2 * K)",
    "TransNILM": "O(L^2 * D * L * C^2 * K * (I*H + H^2))",
}


@dataclass
class ComplexityRow:
    model: str
    complexity: str
    ours_params_k: float
    paper_params_k: float

    @property
    def relative_error(self) -> float:
        return abs(self.ours_params_k - self.paper_params_k) / self.paper_params_k


@dataclass
class ComplexityResult:
    rows: List[ComplexityRow]

    def render(self) -> str:
        return render_table(
            ["Model", "Theoretical complexity", "Ours (K params)", "Paper (K params)"],
            [[r.model, r.complexity, round(r.ours_params_k), round(r.paper_params_k)] for r in self.rows],
            title="Table II — complexity and trainable parameters",
        )


def camal_mean_resnet_params() -> float:
    """Mean parameter count over the paper's kernel set, in thousands."""
    counts = [
        count_parameters(ResNetTSC(ResNetConfig(kernel_size=k)))
        for k in DEFAULT_KERNEL_SET
    ]
    return float(np.mean(counts)) / 1000.0


def run_complexity_table() -> ComplexityResult:
    """Build Table II from our paper-scale implementations."""
    ours: Dict[str, float] = {
        "CamAL (per ResNet, avg)": camal_mean_resnet_params(),
        "CRNN (Weak/Strong)": count_parameters(bl.CRNN()) / 1000.0,
        "BiGRU": count_parameters(bl.BiGRUNILM()) / 1000.0,
        "Unet-NILM": count_parameters(bl.UNetNILM()) / 1000.0,
        "TPNILM": count_parameters(bl.TPNILM()) / 1000.0,
        "TransNILM": count_parameters(bl.TransNILM()) / 1000.0,
    }
    rows = [
        ComplexityRow(
            model=name,
            complexity=THEORETICAL_COMPLEXITY[name],
            ours_params_k=ours[name],
            paper_params_k=PAPER_PARAMS_K[name],
        )
        for name in PAPER_PARAMS_K
    ]
    return ComplexityResult(rows=rows)
