"""Fig. 6(b): detection (Balanced Accuracy) vs localization (F1).

Each point is CamAL's scores for one dataset x appliance case; a cubic
(3rd-order) least-squares fit summarizes the trend, as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from .config import TABLE3_CASES, Preset
from .reporting import render_series
from .runner import build_corpus, case_windows, run_camal


@dataclass
class CorrelationResult:
    points: List[Tuple[str, str, float, float]]  # (corpus, appliance, balacc, f1)
    cubic_coefficients: Optional[np.ndarray]  # highest degree first

    def predict(self, balanced_accuracy: float) -> float:
        if self.cubic_coefficients is None:
            raise RuntimeError("not enough points for a cubic fit")
        return float(np.polyval(self.cubic_coefficients, balanced_accuracy))

    def pearson(self) -> float:
        xs = np.array([p[2] for p in self.points])
        ys = np.array([p[3] for p in self.points])
        if len(xs) < 2 or xs.std() == 0 or ys.std() == 0:
            return 0.0
        return float(np.corrcoef(xs, ys)[0, 1])

    def render(self) -> str:
        lines = ["Fig. 6b — detection vs localization (one point per case)"]
        lines.append(
            render_series(
                "  (BalAcc, F1)",
                [round(p[2], 3) for p in self.points],
                [round(p[3], 3) for p in self.points],
            )
        )
        lines.append(f"  pearson r = {self.pearson():.3f}")
        if self.cubic_coefficients is not None:
            coefs = ", ".join(f"{c:.3f}" for c in self.cubic_coefficients)
            lines.append(f"  cubic fit coefficients (deg 3 -> 0): {coefs}")
        return "\n".join(lines)


def run_correlation(
    preset: Preset,
    cases: Optional[Sequence[Tuple[str, str]]] = None,
    seed: int = 0,
) -> CorrelationResult:
    """Collect (BalAcc, F1) across cases and fit the cubic trend."""
    cases = list(cases or TABLE3_CASES)
    corpora = {}
    points = []
    for corpus_name, appliance in cases:
        if corpus_name not in corpora:
            corpora[corpus_name] = build_corpus(corpus_name, preset, seed)
        case = case_windows(corpora[corpus_name], appliance, preset.window, split_seed=seed)
        result, _ = run_camal(case, preset, seed=seed)
        points.append((corpus_name, appliance, result.balanced_accuracy, result.f1))

    coefficients = None
    if len(points) >= 4:
        xs = np.array([p[2] for p in points])
        ys = np.array([p[3] for p in points])
        coefficients = np.polyfit(xs, ys, deg=3)
    return CorrelationResult(points=points, cubic_coefficients=coefficients)
