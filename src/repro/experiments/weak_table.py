"""Table III: weakly supervised approaches — CamAL vs CRNN-weak.

For every dataset x appliance case, train both weakly supervised methods
on all available weak labels and report F1 / MAE / RMSE / MR, plus the
cross-case average row.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .config import TABLE3_CASES, Preset
from .reporting import render_table
from .runner import CaseResult, build_corpus, case_windows, run_camal, run_model


@dataclass
class WeakTableResult:
    """All rows of Table III."""

    camal: List[CaseResult]
    crnn_weak: List[CaseResult]

    def averages(self) -> Dict[str, Dict[str, float]]:
        out = {}
        for name, results in (("CamAL", self.camal), ("CRNN-weak", self.crnn_weak)):
            out[name] = {
                "F1": float(np.mean([r.f1 for r in results])),
                "MAE": float(np.mean([r.mae_watts for r in results])),
                "RMSE": float(np.mean([r.rmse_watts for r in results])),
                "MR": float(np.mean([r.matching_ratio for r in results])),
            }
        return out

    def render(self) -> str:
        headers = [
            "Dataset", "Case",
            "CamAL F1", "CamAL MAE", "CamAL RMSE", "CamAL MR",
            "CRNNw F1", "CRNNw MAE", "CRNNw RMSE", "CRNNw MR",
        ]
        rows = []
        for ours, theirs in zip(self.camal, self.crnn_weak):
            rows.append(
                [
                    ours.corpus, ours.appliance,
                    ours.f1, ours.mae_watts, ours.rmse_watts, ours.matching_ratio,
                    theirs.f1, theirs.mae_watts, theirs.rmse_watts, theirs.matching_ratio,
                ]
            )
        avg = self.averages()
        rows.append(
            [
                "Avg.", "",
                avg["CamAL"]["F1"], avg["CamAL"]["MAE"], avg["CamAL"]["RMSE"], avg["CamAL"]["MR"],
                avg["CRNN-weak"]["F1"], avg["CRNN-weak"]["MAE"], avg["CRNN-weak"]["RMSE"], avg["CRNN-weak"]["MR"],
            ]
        )
        return render_table(headers, rows, title="Table III — weakly supervised results")


def run_weak_table(
    preset: Preset,
    cases: Optional[Sequence[Tuple[str, str]]] = None,
    seed: int = 0,
) -> WeakTableResult:
    """Run Table III over ``cases`` (default: all 11 paper cases)."""
    cases = list(cases or TABLE3_CASES)
    corpora = {}
    camal_rows, crnn_rows = [], []
    for corpus_name, appliance in cases:
        if corpus_name not in corpora:
            corpora[corpus_name] = build_corpus(corpus_name, preset, seed)
        case = case_windows(corpora[corpus_name], appliance, preset.window, split_seed=seed)
        camal_result, _ = run_camal(case, preset, seed=seed)
        camal_rows.append(camal_result)
        crnn_rows.append(run_model("CRNN-weak", case, preset, seed=seed))
    return WeakTableResult(camal=camal_rows, crnn_weak=crnn_rows)
