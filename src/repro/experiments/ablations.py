"""RQ3 ablations: Table IV, Fig. 6(a) and Fig. 6(c).

* Table IV — remove the attention-sigmoid module / the kernel diversity.
* Fig. 6(a) — effect of the *training* window length (how weak can the
  labels be?), evaluating on the standard test windows.
* Fig. 6(c) — localization/classification versus the number of ResNets in
  the ensemble.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .. import simdata as sd
from .config import Preset
from .reporting import render_series, render_table
from .runner import CaseData, build_corpus, case_windows, house_windows, run_camal


# ----------------------------------------------------------------------
# Table IV — design ablation
# ----------------------------------------------------------------------
@dataclass
class AblationRow:
    variant: str
    f1: float
    precision: float
    recall: float
    mae_watts: float
    matching_ratio: float


@dataclass
class AblationResult:
    rows: List[AblationRow]

    def render(self) -> str:
        headers = ["Variant", "F1", "Pr", "Rc", "MAE", "MR"]
        table = [
            [r.variant, r.f1, r.precision, r.recall, r.mae_watts, r.matching_ratio]
            for r in self.rows
        ]
        return render_table(headers, table, title="Table IV — CamAL design ablation (REFIT avg)")


def run_design_ablation(
    preset: Preset,
    corpus_name: str = "refit",
    appliances: Optional[Sequence[str]] = None,
    seed: int = 0,
) -> AblationResult:
    """Average the three CamAL variants over the corpus' target appliances."""
    corpus = build_corpus(corpus_name, preset, seed)
    appliances = list(appliances or corpus.target_appliances)
    fixed_kernel = (preset.kernel_set[len(preset.kernel_set) // 2],) * len(preset.kernel_set)

    variants = {
        "CamAL": dict(use_attention=True),
        "w/o Attention module": dict(use_attention=False),
        "w/o Different kernel kp": dict(use_attention=True, kernel_set=fixed_kernel),
    }
    accum: Dict[str, List] = {name: [] for name in variants}
    for appliance in appliances:
        case = case_windows(corpus, appliance, preset.window, split_seed=seed)
        for name, kwargs in variants.items():
            result, _ = run_camal(case, preset, seed=seed, **kwargs)
            accum[name].append(result)

    rows = []
    for name, results in accum.items():
        rows.append(
            AblationRow(
                variant=name,
                f1=float(np.mean([r.f1 for r in results])),
                precision=float(np.mean([r.precision for r in results])),
                recall=float(np.mean([r.recall for r in results])),
                mae_watts=float(np.mean([r.mae_watts for r in results])),
                matching_ratio=float(np.mean([r.matching_ratio for r in results])),
            )
        )
    return AblationResult(rows=rows)


# ----------------------------------------------------------------------
# Fig. 6(a) — training window length
# ----------------------------------------------------------------------
@dataclass
class WindowLengthResult:
    corpus: str
    appliance: str
    points: List[Tuple[int, float]]  # (train window length, F1)

    def render(self) -> str:
        return render_series(
            f"Fig. 6a — {self.appliance} ({self.corpus}) F1 vs train window",
            [w for w, _ in self.points],
            [f for _, f in self.points],
        )


def run_window_length(
    corpus_name: str,
    appliance: str,
    preset: Preset,
    train_windows: Sequence[int],
    seed: int = 0,
) -> WindowLengthResult:
    """Train CamAL with different *training* window lengths (Fig. 6a).

    The test set keeps the preset's standard window length, exactly as the
    paper fixes test subsequences at 510.  Window lengths that produce no
    negative training sample are reported with NaN (the paper's "no
    negative sample for training" case).
    """
    corpus = build_corpus(corpus_name, preset, seed)
    standard = case_windows(corpus, appliance, preset.window, split_seed=seed)
    split = sd.split_houses(corpus, seed=seed)

    points: List[Tuple[int, float]] = []
    for train_window in train_windows:
        pools = [
            house_windows(corpus, appliance, hid, train_window) for hid in split.train
        ]
        train_pool = sd.concat_window_sets(pools)
        if train_pool.weak.min() == 1.0 or train_pool.weak.max() == 0.0:
            points.append((train_window, float("nan")))
            continue
        val_pools = [
            house_windows(corpus, appliance, hid, train_window) for hid in split.val
        ]
        case = CaseData(
            corpus=corpus_name,
            appliance=appliance,
            train=train_pool,
            val=sd.concat_window_sets(val_pools),
            test=standard.test,
        )
        result, _ = run_camal(case, preset, seed=seed)
        points.append((train_window, result.f1))
    return WindowLengthResult(corpus=corpus_name, appliance=appliance, points=points)


# ----------------------------------------------------------------------
# Fig. 6(c) — number of ResNets in the ensemble
# ----------------------------------------------------------------------
@dataclass
class EnsembleSizeResult:
    corpus: str
    points: List[Tuple[int, float, float]]  # (n_resnets, F1, balanced accuracy)

    def render(self) -> str:
        lines = [f"Fig. 6c — {self.corpus}: scores vs number of ResNets"]
        lines.append(
            render_series(
                "  localization F1", [p[0] for p in self.points], [p[1] for p in self.points]
            )
        )
        lines.append(
            render_series(
                "  detection BalAcc", [p[0] for p in self.points], [p[2] for p in self.points]
            )
        )
        return "\n".join(lines)


def run_ensemble_size(
    preset: Preset,
    corpus_name: str = "refit",
    appliances: Optional[Sequence[str]] = None,
    sizes: Sequence[int] = (1, 3, 5),
    seed: int = 0,
) -> EnsembleSizeResult:
    """Vary the ensemble size n (Fig. 6c), averaging over appliances."""
    corpus = build_corpus(corpus_name, preset, seed)
    appliances = list(appliances or corpus.target_appliances)
    points = []
    for n in sizes:
        f1s, bals = [], []
        for appliance in appliances:
            case = case_windows(corpus, appliance, preset.window, split_seed=seed)
            result, _ = run_camal(case, preset, seed=seed, n_models=n)
            f1s.append(result.f1)
            bals.append(result.balanced_accuracy)
        points.append((n, float(np.mean(f1s)), float(np.mean(bals))))
    return EnsembleSizeResult(corpus=corpus_name, points=points)
