"""Figures 1 and 5: localization F1 versus number of training labels.

For each case, every method is retrained on growing training pools.  A
strongly supervised method consumes ``w`` labels per window; the weakly
supervised ones (CamAL, CRNN-weak) consume one label per window.  The
figure's headline statistic — how many times more labels the strongly
supervised methods need to reach CamAL's accuracy — is computed from the
resulting curves.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .. import simdata as sd
from .config import Preset
from .reporting import render_series
from .runner import CaseData, case_windows, build_corpus, run_camal, run_model


@dataclass
class SweepPoint:
    """One (label budget, score) point of a method's curve."""

    n_labels: int
    f1: float


@dataclass
class LabelSweepResult:
    """All method curves for one dataset x appliance case."""

    corpus: str
    appliance: str
    curves: Dict[str, List[SweepPoint]] = field(default_factory=dict)

    def label_factor_to_match_camal(self) -> Dict[str, float]:
        """How many x more labels each strong method needs to reach the
        best CamAL F1 (inf if it never does within the sweep)."""
        camal_curve = self.curves.get("CamAL", [])
        if not camal_curve:
            return {}
        best_camal_f1 = max(p.f1 for p in camal_curve)
        camal_labels = min(
            (p.n_labels for p in camal_curve if p.f1 >= best_camal_f1), default=0
        )
        factors = {}
        for name, curve in self.curves.items():
            if name == "CamAL":
                continue
            reaching = [p.n_labels for p in curve if p.f1 >= best_camal_f1]
            if reaching and camal_labels > 0:
                factors[name] = min(reaching) / camal_labels
            else:
                factors[name] = float("inf")
        return factors

    def render(self) -> str:
        lines = [f"Fig. 5 — {self.appliance} ({self.corpus}): F1 vs number of labels"]
        for name, curve in self.curves.items():
            lines.append(
                render_series(
                    f"  {name}", [p.n_labels for p in curve], [p.f1 for p in curve]
                )
            )
        return "\n".join(lines)


def run_label_sweep(
    corpus_name: str,
    appliance: str,
    preset: Preset,
    methods: Optional[Sequence[str]] = None,
    n_points: int = 4,
    seed: int = 0,
) -> LabelSweepResult:
    """Sweep training-set sizes for one case and all requested methods.

    ``methods`` defaults to CamAL + all baselines of Fig. 5.
    """
    methods = list(
        methods
        or ["CamAL", "CRNN-weak", "CRNN", "BiGRU", "UNet-NILM", "TPNILM", "TransNILM"]
    )
    corpus = build_corpus(corpus_name, preset, seed)
    case = case_windows(corpus, appliance, preset.window, split_seed=seed)
    sizes = sd.label_sweep_sizes(len(case.train), points=n_points)
    rng = np.random.default_rng(seed)

    result = LabelSweepResult(corpus=corpus_name, appliance=appliance)
    for n_windows in sizes:
        train_subset = sd.subset_windows(case.train, n_windows, rng)
        sub_case = CaseData(
            corpus=case.corpus,
            appliance=case.appliance,
            train=train_subset,
            val=case.val,
            test=case.test,
        )
        for method in methods:
            if method == "CamAL":
                res, _ = run_camal(sub_case, preset, seed=seed)
            else:
                res = run_model(method, sub_case, preset, seed=seed)
            result.curves.setdefault(method, []).append(
                SweepPoint(n_labels=res.n_labels, f1=res.f1)
            )
    return result
