"""House-level train/validation/test splits following §V-B.

The paper evaluates on *unseen houses*: "distinct houses were used for
training and evaluation".  UK-DALE uses the fixed split (houses 1, 3, 4
train; 2 and 5 randomly assigned to validation/test).  For the other
datasets the houses are drawn randomly with the paper's counts:
test = {2, 6, 4} and validation = {2, 2, 4} houses for REFIT, IDEAL and
EDF EV respectively.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from .corpora import Corpus


@dataclass(frozen=True)
class HouseSplit:
    """House ids assigned to each role."""

    train: Tuple[str, ...]
    val: Tuple[str, ...]
    test: Tuple[str, ...]

    def __post_init__(self) -> None:
        overlap = (set(self.train) & set(self.val)) | (set(self.train) & set(self.test))
        overlap |= set(self.val) & set(self.test)
        if overlap:
            raise ValueError(f"houses assigned to multiple roles: {sorted(overlap)}")


# Paper counts: (n_test, n_val) per dataset.
_SPLIT_COUNTS = {
    "refit": (2, 2),
    "ideal": (6, 2),
    "edf_ev": (4, 4),
}


def split_houses(corpus: Corpus, seed: int = 0) -> HouseSplit:
    """Produce the paper's house-level split for ``corpus``.

    Only submetered houses participate (possession-only houses cannot be
    evaluated per-timestamp); the possession pipeline uses
    :func:`possession_split` instead.
    """
    rng = np.random.default_rng(seed)
    ids = list(corpus.submetered_house_ids) or list(corpus.house_ids)

    if corpus.name == "ukdale":
        # Houses 1, 3, 4 train; 2 and 5 shuffled into val/test.
        if len(ids) < 5:
            raise ValueError("ukdale split needs at least 5 houses")
        train = (ids[0], ids[2], ids[3])
        rest = [ids[1], ids[4]]
        rng.shuffle(rest)
        return HouseSplit(train=train, val=(rest[0],), test=(rest[1],))

    n_test, n_val = _SPLIT_COUNTS.get(corpus.name, (max(1, len(ids) // 5),) * 2)
    n_test = min(n_test, max(1, len(ids) - 2))
    n_val = min(n_val, max(1, len(ids) - n_test - 1))
    order = list(ids)
    rng.shuffle(order)
    test = tuple(order[:n_test])
    val = tuple(order[n_test : n_test + n_val])
    train = tuple(order[n_test + n_val :])
    if not train:
        raise ValueError(f"{corpus.name}: split leaves no training houses")
    return HouseSplit(train=train, val=val, test=test)


def possession_split(
    corpus: Corpus, seed: int = 0, fractions: Tuple[float, float, float] = (0.7, 0.1, 0.2)
) -> HouseSplit:
    """70/10/20 random household split for the possession-only pipeline (§V-H)."""
    if abs(sum(fractions) - 1.0) > 1e-6:
        raise ValueError("fractions must sum to 1")
    rng = np.random.default_rng(seed)
    order = list(corpus.house_ids)
    rng.shuffle(order)
    n = len(order)
    n_train = int(round(fractions[0] * n))
    n_val = int(round(fractions[1] * n))
    return HouseSplit(
        train=tuple(order[:n_train]),
        val=tuple(order[n_train : n_train + n_val]),
        test=tuple(order[n_train + n_val :]),
    )
