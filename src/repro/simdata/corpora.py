"""Synthetic corpora mirroring the five datasets of Table I.

Each builder returns a :class:`Corpus` whose house counts, sampling rates,
bounded-ffill budgets, and target appliances follow the paper:

============  ========  =========  ==========  =================================
Corpus        Houses    Sampling   Max. ffill  Target appliances
============  ========  =========  ==========  =================================
UKDALE-like   5         1 min      3 min       dishwasher, microwave, kettle
REFIT-like    20        1 min      3 min       dishwasher, washing machine,
                                               microwave, kettle
IDEAL-like    39 (+216  1 min      30 min      dishwasher, washing machine,
              possn.)                          shower
EDF-EV-like   24        30 min     1 h 30      electric vehicle
EDF-Weak-like 558       30 min     1 h 30      electric vehicle (possession
                                               only, no submeters)
============  ========  =========  ==========  =================================

The recording length defaults are scaled-down (days instead of the papers'
months/years) so that experiments run on a laptop; every builder accepts
``days``/``n_houses`` overrides for full-scale runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from .household import HouseholdConfig, HouseholdTrace, simulate_household


@dataclass
class Corpus:
    """A bundle of simulated households with dataset-level metadata."""

    name: str
    houses: List[HouseholdTrace]
    dt_seconds: float
    max_ffill_samples: int
    target_appliances: List[str]
    submetered_house_ids: List[str] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.houses)

    def house(self, house_id: str) -> HouseholdTrace:
        for trace in self.houses:
            if trace.house_id == house_id:
                return trace
        raise KeyError(f"{self.name}: no house {house_id!r}")

    @property
    def house_ids(self) -> List[str]:
        return [h.house_id for h in self.houses]

    def possession_labels(self, appliance: str) -> Dict[str, bool]:
        """Per-household ownership answers for one appliance."""
        return {h.house_id: h.possession.get(appliance, False) for h in self.houses}


def _build_houses(
    name: str,
    n_houses: int,
    appliance_ownership: Dict[str, float],
    submetered: Sequence[str],
    days: float,
    dt_seconds: float,
    rng: np.random.Generator,
    missing_rate: float = 0.0,
    submeter_count: Optional[int] = None,
) -> List[HouseholdTrace]:
    """Simulate ``n_houses`` households with randomized ownership/usage.

    ``appliance_ownership`` maps appliance -> ownership probability.  The
    first ``submeter_count`` houses (default: all) receive ground-truth
    channels for the appliances in ``submetered``.
    """
    houses = []
    submeter_count = n_houses if submeter_count is None else submeter_count
    for i in range(n_houses):
        owned = {}
        for appliance, probability in appliance_ownership.items():
            if rng.random() < probability:
                owned[appliance] = float(rng.uniform(0.6, 1.4))  # usage intensity
        config = HouseholdConfig(
            house_id=f"{name}_h{i + 1}",
            owned=owned,
            submetered=list(submetered) if i < submeter_count else [],
            days=days,
            dt_seconds=dt_seconds,
            noise_watts=float(rng.uniform(12.0, 30.0)),
            missing_rate=missing_rate,
        )
        houses.append(simulate_household(config, rng))
    return houses


def ukdale_like(days: float = 28.0, n_houses: int = 5, seed: int = 0) -> Corpus:
    """UK-DALE-like corpus: 5 UK houses, 1-minute sampling."""
    rng = np.random.default_rng(seed)
    targets = ["dishwasher", "microwave", "kettle"]
    ownership = {"dishwasher": 0.9, "microwave": 0.9, "kettle": 1.0, "washing_machine": 0.6}
    houses = _build_houses(
        "ukdale", n_houses, ownership, targets, days, 60.0, rng, missing_rate=0.01
    )
    return Corpus(
        name="ukdale",
        houses=houses,
        dt_seconds=60.0,
        max_ffill_samples=3,  # 3 minutes at 1-minute sampling
        target_appliances=targets,
        submetered_house_ids=[h.house_id for h in houses],
    )


def refit_like(days: float = 21.0, n_houses: int = 20, seed: int = 1) -> Corpus:
    """REFIT-like corpus: 20 UK houses, 1-minute sampling."""
    rng = np.random.default_rng(seed)
    targets = ["dishwasher", "washing_machine", "microwave", "kettle"]
    ownership = {
        "dishwasher": 0.85,
        "washing_machine": 0.9,
        "microwave": 0.9,
        "kettle": 1.0,
    }
    houses = _build_houses(
        "refit", n_houses, ownership, targets, days, 60.0, rng, missing_rate=0.01
    )
    return Corpus(
        name="refit",
        houses=houses,
        dt_seconds=60.0,
        max_ffill_samples=3,
        target_appliances=targets,
        submetered_house_ids=[h.house_id for h in houses],
    )


def ideal_like(
    days: float = 14.0,
    n_submetered: int = 39,
    n_possession_only: int = 216,
    seed: int = 2,
) -> Corpus:
    """IDEAL-like corpus: 39 submetered houses + 216 possession-only."""
    rng = np.random.default_rng(seed)
    targets = ["dishwasher", "washing_machine", "shower"]
    ownership = {"dishwasher": 0.6, "washing_machine": 0.85, "shower": 0.7, "kettle": 0.9}
    total = n_submetered + n_possession_only
    houses = _build_houses(
        "ideal",
        total,
        ownership,
        targets,
        days,
        60.0,
        rng,
        missing_rate=0.02,
        submeter_count=n_submetered,
    )
    return Corpus(
        name="ideal",
        houses=houses,
        dt_seconds=60.0,
        max_ffill_samples=30,  # 30 minutes at 1-minute sampling
        target_appliances=targets,
        submetered_house_ids=[h.house_id for h in houses[:n_submetered]],
    )


def edf_ev_like(days: float = 60.0, n_houses: int = 24, seed: int = 3) -> Corpus:
    """EDF-EV-like corpus: 24 households, 30-minute sampling, EV submeters."""
    rng = np.random.default_rng(seed)
    targets = ["electric_vehicle"]
    ownership = {"electric_vehicle": 1.0, "dishwasher": 0.6, "washing_machine": 0.8, "kettle": 0.7}
    houses = _build_houses(
        "edf_ev", n_houses, ownership, targets, days, 1800.0, rng, missing_rate=0.01
    )
    return Corpus(
        name="edf_ev",
        houses=houses,
        dt_seconds=1800.0,
        max_ffill_samples=3,  # 1 h 30 at 30-minute sampling
        target_appliances=targets,
        submetered_house_ids=[h.house_id for h in houses],
    )


def edf_weak_like(days: float = 40.0, n_houses: int = 558, seed: int = 4) -> Corpus:
    """EDF-Weak-like corpus: survey-only households (no submeters).

    EV ownership is roughly balanced so the possession-only classifier has
    both classes, matching the questionnaire-based EDF Weak dataset.
    """
    rng = np.random.default_rng(seed)
    targets = ["electric_vehicle"]
    ownership = {"electric_vehicle": 0.5, "dishwasher": 0.6, "washing_machine": 0.8, "kettle": 0.7}
    houses = _build_houses(
        "edf_weak", n_houses, ownership, [], days, 1800.0, rng, submeter_count=0
    )
    return Corpus(
        name="edf_weak",
        houses=houses,
        dt_seconds=1800.0,
        max_ffill_samples=3,
        target_appliances=targets,
        submetered_house_ids=[],
    )


CORPUS_BUILDERS = {
    "ukdale": ukdale_like,
    "refit": refit_like,
    "ideal": ideal_like,
    "edf_ev": edf_ev_like,
    "edf_weak": edf_weak_like,
}
