"""Appliance specifications mirroring Table I of the paper.

Each :class:`ApplianceSpec` carries the detection parameters the paper uses
(`ON power` threshold and `Avg. Power` used for energy reconstruction) plus
the usage model that drives the synthetic signature generator: how often the
appliance runs and at which hours of the day.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple


@dataclass(frozen=True)
class ApplianceSpec:
    """Static description of one appliance type.

    Attributes:
        name: canonical appliance key (snake_case).
        on_threshold_watts: per-timestamp power above which the appliance is
            considered ON (Table I "ON Power").
        avg_power_watts: average active power used to rebuild the power
            estimate from binary status (Table I "Avg. Power", the paper's
            ``P_a``).
        events_per_day: mean number of activations per day (Poisson rate).
        duration_minutes: (low, high) uniform range of one activation.
        hour_weights: 24 relative weights for the start hour of events.
    """

    name: str
    on_threshold_watts: float
    avg_power_watts: float
    events_per_day: float
    duration_minutes: Tuple[float, float]
    hour_weights: Tuple[float, ...] = field(default=tuple([1.0] * 24))

    def __post_init__(self) -> None:
        if len(self.hour_weights) != 24:
            raise ValueError(f"{self.name}: hour_weights must have 24 entries")
        if self.duration_minutes[0] > self.duration_minutes[1]:
            raise ValueError(f"{self.name}: invalid duration range")


def _hours(peaks: Dict[int, float], base: float = 0.05) -> Tuple[float, ...]:
    """Build a 24-hour weight vector from peak-hour overrides."""
    weights = [base] * 24
    for hour, value in peaks.items():
        weights[hour % 24] = value
    return tuple(weights)


# Morning + evening tea/coffee peaks.
_KETTLE_HOURS = _hours({7: 1.0, 8: 0.9, 9: 0.4, 12: 0.4, 17: 0.5, 18: 0.6, 19: 0.5, 21: 0.3})
# Meal times.
_MICROWAVE_HOURS = _hours({7: 0.5, 12: 1.0, 13: 0.7, 18: 0.8, 19: 1.0, 20: 0.5})
# After dinner / overnight-start dishwasher runs.
_DISHWASHER_HOURS = _hours({13: 0.4, 20: 1.0, 21: 0.9, 22: 0.6})
# Daytime laundry.
_WASHER_HOURS = _hours({8: 0.6, 9: 0.8, 10: 1.0, 11: 0.8, 14: 0.5, 15: 0.5})
# Morning showers dominate.
_SHOWER_HOURS = _hours({6: 0.6, 7: 1.0, 8: 0.9, 19: 0.3, 22: 0.3})
# Overnight EV charging.
_EV_HOURS = _hours({0: 0.8, 1: 0.7, 2: 0.5, 19: 0.4, 20: 0.6, 21: 0.8, 22: 1.0, 23: 0.9})
# Fridge compressor runs around the clock.
_FLAT_HOURS = tuple([1.0] * 24)


#: Registry of appliance specs; thresholds and average powers follow Table I.
APPLIANCES: Dict[str, ApplianceSpec] = {
    "kettle": ApplianceSpec(
        name="kettle",
        on_threshold_watts=500.0,
        avg_power_watts=2000.0,
        events_per_day=3.5,
        duration_minutes=(2.0, 5.0),
        hour_weights=_KETTLE_HOURS,
    ),
    "microwave": ApplianceSpec(
        name="microwave",
        on_threshold_watts=200.0,
        avg_power_watts=1000.0,
        events_per_day=2.5,
        duration_minutes=(1.0, 8.0),
        hour_weights=_MICROWAVE_HOURS,
    ),
    "dishwasher": ApplianceSpec(
        name="dishwasher",
        on_threshold_watts=300.0,
        avg_power_watts=800.0,
        events_per_day=0.7,
        duration_minutes=(75.0, 140.0),
        hour_weights=_DISHWASHER_HOURS,
    ),
    "washing_machine": ApplianceSpec(
        name="washing_machine",
        on_threshold_watts=300.0,
        avg_power_watts=500.0,
        events_per_day=0.5,
        duration_minutes=(55.0, 110.0),
        hour_weights=_WASHER_HOURS,
    ),
    "shower": ApplianceSpec(
        name="shower",
        on_threshold_watts=1000.0,
        avg_power_watts=8000.0,
        events_per_day=1.5,
        duration_minutes=(4.0, 12.0),
        hour_weights=_SHOWER_HOURS,
    ),
    "electric_vehicle": ApplianceSpec(
        name="electric_vehicle",
        on_threshold_watts=1000.0,
        avg_power_watts=4000.0,
        events_per_day=0.45,
        duration_minutes=(90.0, 420.0),
        hour_weights=_EV_HOURS,
    ),
    # Always-cycling distractor (paper excludes it from localization targets
    # precisely because it is always ON; we keep it in the aggregate noise).
    "fridge": ApplianceSpec(
        name="fridge",
        on_threshold_watts=50.0,
        avg_power_watts=120.0,
        events_per_day=48.0,
        duration_minutes=(10.0, 20.0),
        hour_weights=_FLAT_HOURS,
    ),
}


def get_spec(name: str) -> ApplianceSpec:
    """Look up an appliance spec by name, with a helpful error message."""
    try:
        return APPLIANCES[name]
    except KeyError:
        known = ", ".join(sorted(APPLIANCES))
        raise KeyError(f"unknown appliance {name!r}; known: {known}") from None
