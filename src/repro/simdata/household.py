"""Household simulator: schedules appliance runs and sums them into an
aggregate smart-meter signal (Eq. 1 of the paper: x(t) = Σ a_j(t) + ε(t)).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from .appliances import APPLIANCES, ApplianceSpec, get_spec
from .signatures import generate_activation


@dataclass
class HouseholdTrace:
    """Simulated recordings for one household.

    Attributes:
        house_id: identifier within its corpus.
        dt_seconds: sampling period of every series.
        aggregate: main-meter power (Watts), may contain NaN gaps.
        appliance_power: ground-truth per-appliance power (Watts), only for
            submetered appliances.
        possession: appliance name -> whether the household owns it (the
            survey answer used by the possession-only pipeline).
    """

    house_id: str
    dt_seconds: float
    aggregate: np.ndarray
    appliance_power: Dict[str, np.ndarray] = field(default_factory=dict)
    possession: Dict[str, bool] = field(default_factory=dict)

    @property
    def n_samples(self) -> int:
        return len(self.aggregate)

    @property
    def duration_days(self) -> float:
        return self.n_samples * self.dt_seconds / 86400.0

    def status(self, appliance: str) -> np.ndarray:
        """Binary ON/OFF ground truth using the Table-I threshold."""
        spec = get_spec(appliance)
        power = self.appliance_power.get(appliance)
        if power is None:
            raise KeyError(f"house {self.house_id} has no submeter for {appliance}")
        return (power >= spec.on_threshold_watts).astype(np.float32)


def _sample_event_starts(
    spec: ApplianceSpec, n: int, dt_seconds: float, rng: np.random.Generator, usage_scale: float
) -> List[int]:
    """Draw activation start indices from the spec's daily-rate/hour model."""
    samples_per_day = 86400.0 / dt_seconds
    days = n / samples_per_day
    count = rng.poisson(max(spec.events_per_day * usage_scale, 0.0) * days)
    if count == 0:
        return []
    hour_weights = np.asarray(spec.hour_weights, dtype=np.float64)
    hour_probs = hour_weights / hour_weights.sum()
    starts = []
    for _ in range(count):
        day = rng.integers(0, max(int(np.ceil(days)), 1))
        hour = rng.choice(24, p=hour_probs)
        minute = rng.uniform(0.0, 60.0)
        t_seconds = day * 86400.0 + hour * 3600.0 + minute * 60.0
        index = int(t_seconds / dt_seconds)
        if index < n:
            starts.append(index)
    return sorted(starts)


def simulate_appliance_channel(
    appliance: str,
    n: int,
    dt_seconds: float,
    rng: np.random.Generator,
    usage_scale: float = 1.0,
) -> np.ndarray:
    """Simulate one appliance's power channel over ``n`` samples."""
    spec = get_spec(appliance)
    power = np.zeros(n, dtype=np.float64)
    occupied_until = -1
    for start in _sample_event_starts(spec, n, dt_seconds, rng, usage_scale):
        if start <= occupied_until:
            continue  # appliances do not overlap with themselves
        duration = rng.uniform(*spec.duration_minutes)
        trace = generate_activation(appliance, duration, dt_seconds, rng)
        stop = min(start + len(trace), n)
        power[start:stop] = np.maximum(power[start:stop], trace[: stop - start])
        occupied_until = stop
    return power


def simulate_base_load(n: int, dt_seconds: float, rng: np.random.Generator) -> np.ndarray:
    """Always-on base load: standby + lighting with an evening bump."""
    level = rng.uniform(60.0, 180.0)
    t = np.arange(n) * dt_seconds
    hour = (t / 3600.0) % 24.0
    evening = 80.0 * np.exp(-0.5 * ((hour - 20.0) / 2.5) ** 2)  # lighting/TV
    drift = 20.0 * np.sin(2.0 * np.pi * t / (86400.0 * 7.0) + rng.uniform(0, 6.28))
    return level + evening + drift


@dataclass
class HouseholdConfig:
    """Configuration for simulating one household."""

    house_id: str
    owned: Dict[str, float]  # appliance -> usage_scale (0 disables)
    submetered: Sequence[str]  # appliances with ground-truth channels
    days: float = 30.0
    dt_seconds: float = 60.0
    noise_watts: float = 20.0
    missing_rate: float = 0.0  # fraction of samples knocked out as NaN gaps
    include_fridge: bool = True


def simulate_household(config: HouseholdConfig, rng: np.random.Generator) -> HouseholdTrace:
    """Simulate one household according to ``config``.

    The aggregate is the sum of all owned appliance channels plus base load,
    fridge cycling, and Gaussian measurement noise; optional NaN gaps model
    transmission losses (repaired later by bounded forward-fill, as in the
    paper's preprocessing).
    """
    n = int(round(config.days * 86400.0 / config.dt_seconds))
    aggregate = simulate_base_load(n, config.dt_seconds, rng)
    if config.include_fridge:
        aggregate = aggregate + simulate_appliance_channel(
            "fridge", n, config.dt_seconds, rng
        )

    channels: Dict[str, np.ndarray] = {}
    possession: Dict[str, bool] = {}
    for appliance in APPLIANCES:
        if appliance == "fridge":
            continue
        usage = config.owned.get(appliance, 0.0)
        possession[appliance] = usage > 0.0
        if usage <= 0.0:
            continue
        channel = simulate_appliance_channel(appliance, n, config.dt_seconds, rng, usage)
        aggregate = aggregate + channel
        if appliance in config.submetered:
            channels[appliance] = channel.astype(np.float32)

    aggregate = aggregate + rng.normal(0.0, config.noise_watts, n)
    aggregate = np.maximum(aggregate, 0.0).astype(np.float32)

    if config.missing_rate > 0.0:
        # Knock out short contiguous gaps rather than isolated points.
        n_gaps = int(config.missing_rate * n / 5.0)
        for _ in range(n_gaps):
            start = rng.integers(0, n)
            span = int(rng.integers(1, 10))
            aggregate[start : start + span] = np.nan

    return HouseholdTrace(
        house_id=config.house_id,
        dt_seconds=config.dt_seconds,
        aggregate=aggregate,
        appliance_power=channels,
        possession=possession,
    )
