"""Physically-motivated power signatures for individual appliance runs.

Each generator returns the power draw (Watts) of a single activation,
sampled every ``dt_seconds``.  The shapes follow the well-documented load
profiles of the corresponding appliances in UK-DALE/REFIT and drive the
difficulty ordering the paper reports: short distinctive spikes (kettle) are
easy to localize, short low-power bursts (microwave) are hard, long
high-power plateaus (shower, EV) are easiest.
"""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np


def _n_samples(duration_minutes: float, dt_seconds: float) -> int:
    return max(1, int(round(duration_minutes * 60.0 / dt_seconds)))


def kettle_signature(duration_minutes: float, dt_seconds: float, rng: np.random.Generator) -> np.ndarray:
    """Flat resistive plateau around 1.8-2.6 kW with slight sag."""
    n = _n_samples(duration_minutes, dt_seconds)
    level = rng.uniform(1800.0, 2600.0)
    sag = np.linspace(0.0, rng.uniform(0.0, 60.0), n)
    jitter = rng.normal(0.0, 15.0, n)
    return np.maximum(level - sag + jitter, 0.0)


def microwave_signature(duration_minutes: float, dt_seconds: float, rng: np.random.Generator) -> np.ndarray:
    """Magnetron duty-cycling: bursts of 1.0-1.4 kW with idle gaps."""
    n = _n_samples(duration_minutes, dt_seconds)
    level = rng.uniform(1000.0, 1400.0)
    power = np.full(n, 40.0)  # electronics/turntable baseline while running
    burst = max(1, int(round(30.0 / dt_seconds)))  # ~30 s duty blocks
    t = 0
    heating = True
    while t < n:
        span = min(n - t, max(1, int(burst * rng.uniform(0.7, 1.4))))
        if heating:
            power[t : t + span] = level + rng.normal(0.0, 20.0, span)
        t += span
        # High duty factor: mostly heating with occasional rests.
        heating = rng.random() < 0.8
    return np.maximum(power, 0.0)


def dishwasher_signature(duration_minutes: float, dt_seconds: float, rng: np.random.Generator) -> np.ndarray:
    """Multi-phase cycle: motor, main heat, mid wash, rinse heat, drain."""
    n = _n_samples(duration_minutes, dt_seconds)
    power = np.zeros(n)
    motor = rng.uniform(60.0, 120.0)
    heat = rng.uniform(1900.0, 2200.0)
    # Phase boundaries as fractions of the cycle.
    bounds = np.cumsum([0.12, 0.25, 0.28, 0.15, 0.20])
    idx = (bounds / bounds[-1] * n).astype(int)
    power[: idx[0]] = motor  # fill + pre-wash motor
    power[idx[0] : idx[1]] = heat  # main heating
    power[idx[1] : idx[2]] = motor * rng.uniform(1.0, 1.6)  # wash motor
    power[idx[2] : idx[3]] = heat * rng.uniform(0.9, 1.0)  # rinse heating
    power[idx[3] :] = motor * rng.uniform(0.4, 0.9)  # drain / dry
    power += rng.normal(0.0, 12.0, n)
    return np.maximum(power, 0.0)


def washing_machine_signature(duration_minutes: float, dt_seconds: float, rng: np.random.Generator) -> np.ndarray:
    """Initial water heating, oscillating drum agitation, spin bursts."""
    n = _n_samples(duration_minutes, dt_seconds)
    power = np.zeros(n)
    heat = rng.uniform(1800.0, 2100.0)
    heat_end = int(n * rng.uniform(0.15, 0.3))
    power[:heat_end] = heat
    # Drum agitation: slow oscillation between ~80 and ~350 W.
    t = np.arange(n - heat_end)
    period = max(2.0, 240.0 / dt_seconds)  # ~4-minute agitation cycle
    drum = 200.0 + 140.0 * np.sin(2.0 * np.pi * t / period + rng.uniform(0, 6.28))
    power[heat_end:] = drum
    # Final spin bursts.
    spin_start = int(n * rng.uniform(0.8, 0.9))
    power[spin_start:] = rng.uniform(350.0, 700.0)
    power += rng.normal(0.0, 20.0, n)
    return np.maximum(power, 0.0)


def shower_signature(duration_minutes: float, dt_seconds: float, rng: np.random.Generator) -> np.ndarray:
    """Electric shower: very high flat plateau (7.5-9.5 kW)."""
    n = _n_samples(duration_minutes, dt_seconds)
    level = rng.uniform(7500.0, 9500.0)
    return np.maximum(level + rng.normal(0.0, 60.0, n), 0.0)


def electric_vehicle_signature(duration_minutes: float, dt_seconds: float, rng: np.random.Generator) -> np.ndarray:
    """EV charger: sustained block at the charger rating with taper."""
    n = _n_samples(duration_minutes, dt_seconds)
    rating = rng.choice([3700.0, 7400.0], p=[0.55, 0.45])
    power = np.full(n, rating)
    # Constant-voltage taper over the last ~15 % of the session.
    taper = max(1, int(0.15 * n))
    power[-taper:] = np.linspace(rating, rating * rng.uniform(0.3, 0.6), taper)
    power += rng.normal(0.0, 40.0, n)
    return np.maximum(power, 0.0)


def fridge_signature(duration_minutes: float, dt_seconds: float, rng: np.random.Generator) -> np.ndarray:
    """Compressor plateau with a small start-up transient."""
    n = _n_samples(duration_minutes, dt_seconds)
    level = rng.uniform(80.0, 150.0)
    power = np.full(n, level)
    power[0] = level * rng.uniform(2.0, 4.0)  # inrush
    power += rng.normal(0.0, 5.0, n)
    return np.maximum(power, 0.0)


SIGNATURES: Dict[str, Callable[[float, float, np.random.Generator], np.ndarray]] = {
    "kettle": kettle_signature,
    "microwave": microwave_signature,
    "dishwasher": dishwasher_signature,
    "washing_machine": washing_machine_signature,
    "shower": shower_signature,
    "electric_vehicle": electric_vehicle_signature,
    "fridge": fridge_signature,
}


def generate_activation(
    appliance: str, duration_minutes: float, dt_seconds: float, rng: np.random.Generator
) -> np.ndarray:
    """Generate a single activation trace for ``appliance`` in Watts."""
    try:
        generator = SIGNATURES[appliance]
    except KeyError:
        known = ", ".join(sorted(SIGNATURES))
        raise KeyError(f"no signature for {appliance!r}; known: {known}") from None
    return generator(duration_minutes, dt_seconds, rng)
