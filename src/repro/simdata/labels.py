"""Label accounting utilities (the paper's central cost axis).

The paper compares methods by the *number of labels* their training
requires: strongly supervised sequence-to-sequence methods consume one
label per timestamp (``w`` per window), weakly supervised methods one label
per window, and the possession-only pipeline a single label per household.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

import numpy as np

from .preprocessing import WindowSet


@dataclass(frozen=True)
class LabelBudget:
    """Number of annotated scalars consumed by a training configuration."""

    n_windows: int
    window: int
    scheme: str  # "strong" | "weak" | "possession"
    n_households: int = 0

    @property
    def n_labels(self) -> int:
        if self.scheme == "strong":
            return self.n_windows * self.window
        if self.scheme == "weak":
            return self.n_windows
        if self.scheme == "possession":
            return self.n_households
        raise ValueError(f"unknown scheme {self.scheme!r}")


def strong_budget(windows: WindowSet) -> LabelBudget:
    return LabelBudget(len(windows), windows.window, "strong")


def weak_budget(windows: WindowSet) -> LabelBudget:
    return LabelBudget(len(windows), windows.window, "weak")


def possession_budget(n_households: int) -> LabelBudget:
    return LabelBudget(0, 0, "possession", n_households=n_households)


def subset_windows(windows: WindowSet, n: int, rng: np.random.Generator) -> WindowSet:
    """Randomly keep ``n`` windows (label-budget sweeps of Fig. 5).

    Sampling is stratified so that, whenever possible, both weak classes
    remain represented (the paper gradually adds houses/subsequences; a
    draw with no positive windows would make weak training degenerate).
    """
    n = min(n, len(windows))
    pos = np.flatnonzero(windows.weak == 1)
    neg = np.flatnonzero(windows.weak == 0)
    if len(pos) == 0 or len(neg) == 0 or n < 2:
        idx = rng.choice(len(windows), size=n, replace=False)
    else:
        n_pos = max(1, int(round(n * len(pos) / len(windows))))
        n_pos = min(n_pos, len(pos), n - 1)
        n_neg = min(n - n_pos, len(neg))
        idx = np.concatenate(
            [
                rng.choice(pos, size=n_pos, replace=False),
                rng.choice(neg, size=n_neg, replace=False),
            ]
        )
    idx = np.sort(idx)
    return WindowSet(
        inputs=windows.inputs[idx],
        strong=windows.strong[idx],
        weak=windows.weak[idx],
        aggregate_watts=windows.aggregate_watts[idx],
        power_watts=windows.power_watts[idx],
        house_id=windows.house_id,
    )


def replicate_possession_label(
    windows: WindowSet, owns_appliance: bool
) -> WindowSet:
    """Assign a household's possession label to every sliced window.

    This is the §V-H pipeline step: "the label of the entire consumption
    series (i.e., label of possession) is assigned to all sliced
    subsequences during the training process without any other information."
    """
    weak = np.full(len(windows), 1.0 if owns_appliance else 0.0, dtype=np.float32)
    return WindowSet(
        inputs=windows.inputs,
        strong=windows.strong,
        weak=weak,
        aggregate_watts=windows.aggregate_watts,
        power_watts=windows.power_watts,
        house_id=windows.house_id,
    )


def label_sweep_sizes(total: int, points: int = 6, minimum: int = 8) -> List[int]:
    """Log-spaced window counts for a label-budget sweep up to ``total``."""
    if total <= minimum:
        return [total]
    sizes = np.unique(
        np.round(np.logspace(np.log10(minimum), np.log10(total), points)).astype(int)
    )
    return [int(s) for s in sizes if s >= 2]
