"""``repro.simdata`` — synthetic smart-meter data substrate.

Replaces the UK-DALE / REFIT / IDEAL / EDF recordings (unavailable offline)
with a parametric household simulator whose corpora match the papers' house
counts, sampling rates, bounded forward-fill budgets, ON-power thresholds
and average powers (Table I).  See DESIGN.md §2.
"""

from .appliances import APPLIANCES, ApplianceSpec, get_spec
from .corpora import (
    CORPUS_BUILDERS,
    Corpus,
    edf_ev_like,
    edf_weak_like,
    ideal_like,
    refit_like,
    ukdale_like,
)
from .household import (
    HouseholdConfig,
    HouseholdTrace,
    simulate_appliance_channel,
    simulate_base_load,
    simulate_household,
)
from .labels import (
    LabelBudget,
    label_sweep_sizes,
    possession_budget,
    replicate_possession_label,
    strong_budget,
    subset_windows,
    weak_budget,
)
from .preprocessing import (
    DEFAULT_WINDOW,
    SCALE_DIVISOR,
    WindowSet,
    concat_window_sets,
    forward_fill,
    on_status,
    resample_average,
    scale_aggregate,
    slice_windows,
)
from .signatures import SIGNATURES, generate_activation
from .splits import HouseSplit, possession_split, split_houses

__all__ = [
    "APPLIANCES",
    "ApplianceSpec",
    "get_spec",
    "SIGNATURES",
    "generate_activation",
    "HouseholdConfig",
    "HouseholdTrace",
    "simulate_household",
    "simulate_appliance_channel",
    "simulate_base_load",
    "Corpus",
    "CORPUS_BUILDERS",
    "ukdale_like",
    "refit_like",
    "ideal_like",
    "edf_ev_like",
    "edf_weak_like",
    "WindowSet",
    "slice_windows",
    "concat_window_sets",
    "forward_fill",
    "resample_average",
    "on_status",
    "scale_aggregate",
    "SCALE_DIVISOR",
    "DEFAULT_WINDOW",
    "LabelBudget",
    "strong_budget",
    "weak_budget",
    "possession_budget",
    "subset_windows",
    "replicate_possession_label",
    "label_sweep_sizes",
    "HouseSplit",
    "split_houses",
    "possession_split",
]
