"""Preprocessing pipeline matching §V-B of the paper.

Steps: resample to round timestamps by interval averaging, forward-fill
missing values up to a dataset-specific maximum gap (Table I "Max. ffill"),
slice into non-overlapping subsequences of length ``w`` (default 510),
discard windows still containing NaNs, and scale the aggregate by 1/1000
for training stability.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

SCALE_DIVISOR = 1000.0  # paper: divide aggregate input by 1000
DEFAULT_WINDOW = 510  # paper: non-overlapping window length w = 510


def _nanmean_blocks(blocks: np.ndarray) -> np.ndarray:
    """Row-wise mean of the valid samples; all-NaN rows stay NaN."""
    with np.errstate(invalid="ignore"):
        valid = ~np.isnan(blocks)
        counts = valid.sum(axis=1)
        sums = np.where(valid, blocks, 0.0).sum(axis=1)
        return np.where(counts > 0, sums / np.maximum(counts, 1), np.nan)


def resample_average(
    series: np.ndarray, factor: int, keep_tail: bool = False
) -> np.ndarray:
    """Downsample by integer ``factor`` via interval averaging.

    NaNs propagate: an interval whose samples are all NaN stays NaN, a
    partially observed interval averages its valid samples (this mirrors
    "readjusting recorded values to round timestamps by averaging").
    Trailing samples that do not fill a whole interval are dropped by
    default; with ``keep_tail=True`` the partial trailing block is
    averaged into one final output sample instead (mirroring the serving
    layer's edge-padded tail — no recorded sample is lost), which is what
    the :mod:`repro.data` ingest path uses.
    """
    if factor <= 0:
        raise ValueError("factor must be positive")
    if factor == 1:
        return series.copy()
    n = (len(series) // factor) * factor
    out = _nanmean_blocks(series[:n].reshape(-1, factor))
    if keep_tail and n < len(series):
        tail = _nanmean_blocks(series[n:].reshape(1, -1))
        out = np.concatenate([out, tail])
    return out.astype(series.dtype)


def forward_fill(series: np.ndarray, max_gap: int) -> np.ndarray:
    """Forward-fill NaN runs of length <= ``max_gap``; longer gaps remain.

    Matches the paper's bounded forward-fill (e.g. 3 min for UK-DALE/REFIT,
    30 min for IDEAL, 1h30 for EDF at the respective sampling rates).
    """
    if max_gap < 0:
        raise ValueError("max_gap must be >= 0")
    out = series.copy()
    isnan = np.isnan(out)
    if not isnan.any() or max_gap == 0:
        return out
    n = len(out)
    # Vectorized run-length fill (this is the repro.data ingest hot path):
    # locate every NaN run, keep those short enough and not at the series
    # head, and copy each run's preceding valid sample over it.
    edges = np.diff(np.concatenate(([0], isnan.view(np.int8), [0])))
    starts = np.flatnonzero(edges == 1)
    ends = np.flatnonzero(edges == -1)
    fillable = (ends - starts <= max_gap) & (starts > 0)
    if not fillable.any():
        return out
    delta = np.zeros(n + 1, dtype=np.int8)
    delta[starts[fillable]] = 1
    delta[ends[fillable]] = -1
    fill_idx = np.flatnonzero(np.cumsum(delta[:-1], dtype=np.int64))
    last_valid = np.maximum.accumulate(np.where(~isnan, np.arange(n), -1))
    out[fill_idx] = out[last_valid[fill_idx]]
    return out


def on_status(power: np.ndarray, threshold_watts: float) -> np.ndarray:
    """Binary ON/OFF state from a power channel (Table I thresholds)."""
    return (np.nan_to_num(power, nan=0.0) >= threshold_watts).astype(np.float32)


def scale_aggregate(aggregate_watts: np.ndarray) -> np.ndarray:
    """Scale raw Watts to the /1000 training range used by the paper."""
    return (aggregate_watts / SCALE_DIVISOR).astype(np.float32)


@dataclass
class WindowSet:
    """Sliced, model-ready windows for one household and one appliance.

    Attributes:
        inputs: scaled aggregate windows, shape ``(n_windows, w)``.
        strong: per-timestamp status labels, same shape.
        weak: per-window labels (any ON within the window), ``(n_windows,)``.
        aggregate_watts: unscaled aggregate windows (for energy metrics).
        power_watts: ground-truth appliance power windows (may be zeros for
            possession-only data).
        house_id: originating household.
    """

    inputs: np.ndarray
    strong: np.ndarray
    weak: np.ndarray
    aggregate_watts: np.ndarray
    power_watts: np.ndarray
    house_id: str

    def __len__(self) -> int:
        return len(self.inputs)

    @property
    def window(self) -> int:
        return self.inputs.shape[1]

    @property
    def n_strong_labels(self) -> int:
        """Label cost if trained fully supervised: w per window."""
        return self.strong.size

    @property
    def n_weak_labels(self) -> int:
        """Label cost if trained weakly: one per window."""
        return len(self.weak)


def slice_windows(
    aggregate_watts: np.ndarray,
    appliance_power: Optional[np.ndarray],
    threshold_watts: float,
    window: int = DEFAULT_WINDOW,
    house_id: str = "?",
) -> WindowSet:
    """Slice a household series into non-overlapping model-ready windows.

    Windows that still contain NaN after preprocessing are discarded
    (paper: "subsequences containing any remaining missing values after our
    preprocessing are discarded").
    """
    if window <= 0:
        raise ValueError("window must be positive")
    n = (len(aggregate_watts) // window) * window
    agg = aggregate_watts[:n].reshape(-1, window)
    keep = ~np.isnan(agg).any(axis=1)
    agg = agg[keep]
    if appliance_power is not None:
        power = appliance_power[:n].reshape(-1, window)[keep]
    else:
        power = np.zeros_like(agg)
    strong = on_status(power, threshold_watts)
    weak = (strong.max(axis=1) > 0).astype(np.float32)
    return WindowSet(
        inputs=scale_aggregate(agg),
        strong=strong,
        weak=weak,
        aggregate_watts=agg.astype(np.float32),
        power_watts=power.astype(np.float32),
        house_id=house_id,
    )


def concat_window_sets(sets: Tuple[WindowSet, ...] | list) -> WindowSet:
    """Concatenate window sets from several houses (training pools)."""
    sets = [s for s in sets if len(s) > 0]
    if not sets:
        raise ValueError("no non-empty window sets to concatenate")
    widths = {s.window for s in sets}
    if len(widths) != 1:
        raise ValueError(f"mixed window lengths: {sorted(widths)}")
    return WindowSet(
        inputs=np.concatenate([s.inputs for s in sets]),
        strong=np.concatenate([s.strong for s in sets]),
        weak=np.concatenate([s.weak for s in sets]),
        aggregate_watts=np.concatenate([s.aggregate_watts for s in sets]),
        power_watts=np.concatenate([s.power_watts for s in sets]),
        house_id="+".join(s.house_id for s in sets),
    )
