"""Serving-daemon metrics: counters, latency quantiles, batch histogram.

The daemon (:mod:`repro.serving.server`) answers a ``metrics`` request
with one JSON snapshot assembled here.  Everything is cheap enough to
update on every request from many threads:

* **counters** — requests per op, errors per code, fast-rejects;
* **latency** — a fixed-capacity ring buffer of the most recent
  end-to-end request latencies (enqueue → response ready); p50/p99 are
  exact over that window, not sketch estimates;
* **coalescing** — a histogram of how many requests each fused forward
  call merged, plus windows-per-batch totals.  A serving fleet that
  never coalesces shows a histogram concentrated at 1 — the signal that
  ``max_wait_us`` is too small for the arrival rate.

Wall-clock time is banned repo-wide (lint rule ``DET002``); uptime and
latency both come from ``time.monotonic`` / ``time.perf_counter``.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, Optional, Sequence

import numpy as np

__all__ = ["LatencyWindow", "ServerMetrics"]


class LatencyWindow:
    """Ring buffer over the most recent ``capacity`` latencies (seconds).

    Exact quantiles over a bounded window beat streaming sketches at this
    scale: 4096 float64 samples cost 32 KiB and one ``np.percentile``
    call, and "recent" is the operationally useful horizon anyway — a
    latency regression should not be averaged away by last week's
    traffic.
    """

    def __init__(self, capacity: int = 4096):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self._buf = np.zeros(capacity, dtype=np.float64)
        self._next = 0  # write cursor
        self._count = 0  # lifetime observations (may exceed capacity)
        self._lock = threading.Lock()

    def add(self, seconds: float) -> None:
        with self._lock:
            self._buf[self._next] = seconds
            self._next = (self._next + 1) % len(self._buf)
            self._count += 1

    @property
    def count(self) -> int:
        """Lifetime number of observations."""
        with self._lock:
            return self._count

    def quantiles(self, qs: Sequence[float]) -> Dict[str, float]:
        """``{"p50": ..., "p99": ...}`` in **milliseconds** over the window."""
        with self._lock:
            filled = self._buf[: min(self._count, len(self._buf))].copy()
        if filled.size == 0:
            return {f"p{int(q)}": 0.0 for q in qs}
        values = np.percentile(filled, list(qs)) * 1e3
        return {f"p{int(q)}": float(v) for q, v in zip(qs, values)}

    def mean_ms(self) -> float:
        """Mean latency over the window, in milliseconds (0.0 when empty)."""
        with self._lock:
            filled = self._buf[: min(self._count, len(self._buf))]
            return float(filled.mean() * 1e3) if filled.size else 0.0


class ServerMetrics:
    """All counters the daemon's ``metrics`` endpoint reports."""

    def __init__(self, latency_capacity: int = 4096):
        self._lock = threading.Lock()
        self._started = time.monotonic()
        self._requests: Dict[str, int] = {}
        self._errors: Dict[str, int] = {}
        self._rejected = 0
        self._windows_total = 0
        self._batches = 0
        self._batched_requests = 0
        self._coalesce_hist: Dict[int, int] = {}
        self._isolations = 0
        self._pool_rebuilds = 0
        self.latency = LatencyWindow(latency_capacity)

    # -- recording --------------------------------------------------------
    def record_request(self, op: str) -> None:
        with self._lock:
            self._requests[op] = self._requests.get(op, 0) + 1

    def record_error(self, code: str) -> None:
        with self._lock:
            self._errors[code] = self._errors.get(code, 0) + 1
            if code in ("overloaded", "draining"):
                self._rejected += 1

    def record_batch(self, n_requests: int, n_windows: int) -> None:
        """One fused forward call merging ``n_requests`` requests."""
        with self._lock:
            self._batches += 1
            self._batched_requests += n_requests
            self._windows_total += n_windows
            self._coalesce_hist[n_requests] = (
                self._coalesce_hist.get(n_requests, 0) + 1
            )

    def record_latency(self, seconds: float) -> None:
        self.latency.add(seconds)

    def record_isolation(self) -> None:
        """A coalesced batch failed and was replayed item-by-item."""
        with self._lock:
            self._isolations += 1

    def record_pool_rebuild(self) -> None:
        """A bulk-job process pool broke and was rebuilt."""
        with self._lock:
            self._pool_rebuilds += 1

    # -- reading ----------------------------------------------------------
    def retry_after_ms(self, queue_depth: int) -> int:
        """Backpressure hint: how long a rejected client should back off.

        Roughly the time to drain the queue ahead of the client — queue
        depth times the recent mean service latency — floored at one
        millisecond so the hint is never "retry immediately" while the
        server is shedding load.
        """
        mean = self.latency.mean_ms() or 10.0
        return max(1, int(queue_depth * mean))

    def snapshot(self, extra: Optional[Dict[str, object]] = None) -> Dict[str, object]:
        """One JSON-ready dict with every counter; ``extra`` is merged in."""
        uptime = time.monotonic() - self._started
        with self._lock:
            hist = {str(k): v for k, v in sorted(self._coalesce_hist.items())}
            batches = self._batches
            batched_requests = self._batched_requests
            windows_total = self._windows_total
            snap: Dict[str, object] = {
                "uptime_s": uptime,
                "requests": dict(self._requests),
                "errors": dict(self._errors),
                "rejected": self._rejected,
                "recovery": {
                    "coalesce_isolations": self._isolations,
                    "pool_rebuilds": self._pool_rebuilds,
                },
            }
        snap["windows_total"] = windows_total
        snap["windows_per_sec"] = windows_total / uptime if uptime > 0 else 0.0
        latency = self.latency.quantiles((50.0, 99.0))
        latency["count"] = self.latency.count
        snap["latency_ms"] = latency
        snap["coalesce"] = {
            "batches": batches,
            "requests": batched_requests,
            "mean_requests_per_batch": (
                batched_requests / batches if batches else 0.0
            ),
            "hist": hist,
        }
        if extra:
            snap.update(extra)
        return snap
