"""Wire protocol of the serving daemon: newline-delimited JSON frames.

One frame is one UTF-8 JSON object terminated by ``\\n`` — trivially
debuggable with ``nc`` and implementable from any language in a dozen
lines, which is the point: the daemon is the reference server and
:mod:`repro.serving.client` the reference client, but neither is
privileged.

**Requests** carry ``op`` plus op-specific fields and an optional
``id`` the server echoes back verbatim (clients pipelining requests use
it to match responses):

========  ============================================================
op        fields
========  ============================================================
score     ``appliance`` (str), ``series`` (float list **or** base64 of
          little-endian float32 bytes — the compact form the reference
          client sends)
store     ``store`` (path), optional ``appliances`` / ``house_ids``
          (lists), ``workers`` (int ≥ 1: shard-parallel fan-out)
metrics   —
ping      —
shutdown  — (graceful drain; rejected when the daemon disables it)
========  ============================================================

**Responses** are ``{"id": ..., "ok": true, "result": {...}}`` or
``{"id": ..., "ok": false, "error": {"code": ..., "message": ...}}``;
backpressure rejections add ``retry_after_ms``, the server's estimate of
when capacity frees up (a ``Retry-After`` header in spirit).

Error codes: ``bad_frame`` (unparseable JSON — the offending line is
skipped, the connection survives), ``frame_too_large`` (the connection
is closed: there is no way to resync inside an oversized line),
``bad_request``, ``unknown_op``, ``unknown_appliance``, ``overloaded``
(queue full — fast reject), ``draining`` (daemon is shutting down),
``deadline_exceeded`` (the request outlived its server-side deadline —
retryable, with a ``retry_after_ms`` hint), ``internal``.

Float fidelity: a float32 value widened to float64 and printed by
``json`` round-trips exactly (shortest-repr), so even list-encoded
series and scores are **bit-identical** after ``np.float32`` narrowing
on the far side; base64 encoding is exact by construction.
"""

from __future__ import annotations

import base64
import binascii
import json
from typing import Dict, Iterator, List, Optional, Union

import numpy as np

__all__ = [
    "DEFAULT_PORT",
    "MAX_FRAME_BYTES",
    "FrameError",
    "FrameTooLarge",
    "FrameReader",
    "encode_frame",
    "decode_frame",
    "encode_series",
    "decode_series",
    "error_response",
    "ok_response",
]

#: Default TCP port of `repro serve` (overridable via REPRO_SERVE_PORT).
DEFAULT_PORT = 7733

#: Default per-frame byte budget.  8 MiB of JSON floats is ~half a
#: million samples — a month of 6-second data in one request; anything
#: larger belongs in a meter store scored via the ``store`` op.
MAX_FRAME_BYTES = 8 * 1024 * 1024


class FrameError(ValueError):
    """A frame violated the protocol (bad JSON, not an object, ...)."""


class FrameTooLarge(FrameError):
    """A line exceeded the frame byte budget; the stream cannot resync."""


def encode_frame(obj: Dict[str, object]) -> bytes:
    """Serialize one frame: compact JSON + the terminating newline."""
    return json.dumps(obj, separators=(",", ":")).encode("utf-8") + b"\n"


def decode_frame(line: bytes) -> Dict[str, object]:
    """Parse one newline-stripped frame into a dict (:class:`FrameError`)."""
    try:
        obj = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise FrameError(f"malformed frame: {exc}") from exc
    if not isinstance(obj, dict):
        raise FrameError(f"frame must be a JSON object, got {type(obj).__name__}")
    return obj


class FrameReader:
    """Incremental frame decoder tolerating arbitrary packetization.

    TCP delivers byte soup: one ``recv`` may hold half a frame or three
    and a half.  Feed every chunk in; complete frames come out::

        reader = FrameReader()
        for chunk in socket_chunks:
            for frame in reader.feed(chunk):
                handle(frame)

    ``feed`` raises :class:`FrameTooLarge` as soon as the unterminated
    buffer exceeds ``max_frame_bytes`` — the caller must close the
    connection, since skipping to the next newline inside a partially
    received oversized line could splice two frames together.
    Malformed JSON in a *complete* line raises :class:`FrameError` from
    the iterator; the bad line is consumed, later lines from the same
    chunk stay queued, and :meth:`drain` resumes yielding them — so one
    garbage line never swallows the valid frames packed behind it.
    """

    def __init__(self, max_frame_bytes: int = MAX_FRAME_BYTES):
        self.max_frame_bytes = max_frame_bytes
        self._buffer = bytearray()
        self._lines: List[bytes] = []

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered for a not-yet-complete frame."""
        return len(self._buffer)

    def feed(self, chunk: bytes) -> Iterator[Dict[str, object]]:
        """Buffer ``chunk`` and yield every frame it completes, in order."""
        self._buffer.extend(chunk)
        while True:
            newline = self._buffer.find(b"\n")
            if newline < 0:
                break
            self._lines.append(bytes(self._buffer[:newline]))
            del self._buffer[: newline + 1]
        if len(self._buffer) > self.max_frame_bytes:
            raise FrameTooLarge(
                f"frame exceeds {self.max_frame_bytes} bytes without a newline"
            )
        return self.drain()

    def drain(self) -> Iterator[Dict[str, object]]:
        """Yield the already-split lines still queued (post-error resume)."""
        while self._lines:
            raw = self._lines.pop(0)
            if len(raw) > self.max_frame_bytes:
                raise FrameTooLarge(
                    f"frame of {len(raw)} bytes exceeds {self.max_frame_bytes}"
                )
            if not raw.strip():
                continue  # blank keep-alive line
            yield decode_frame(raw)


# -- series encoding ------------------------------------------------------
def encode_series(values: np.ndarray) -> str:
    """Base64 of the little-endian float32 bytes — compact and exact."""
    return base64.b64encode(
        np.ascontiguousarray(values, dtype="<f4").tobytes()
    ).decode("ascii")


def decode_series(value: Union[str, List[float]]) -> np.ndarray:
    """Decode a request/response series field to a 1-D float32 array.

    Accepts the base64-float32 compact form (str) or a plain JSON list
    of numbers; raises :class:`FrameError` on anything else.
    """
    if isinstance(value, str):
        try:
            raw = base64.b64decode(value.encode("ascii"), validate=True)
        except (binascii.Error, UnicodeEncodeError) as exc:
            raise FrameError(f"series is not valid base64: {exc}") from exc
        if len(raw) % 4:
            raise FrameError(
                f"base64 series decodes to {len(raw)} bytes, not a float32 multiple"
            )
        return np.frombuffer(raw, dtype="<f4").astype(np.float32)
    if isinstance(value, list):
        try:
            return np.asarray(value, dtype=np.float32)
        except (TypeError, ValueError) as exc:
            raise FrameError(f"series list is not numeric: {exc}") from exc
    raise FrameError(
        f"series must be a float list or base64 string, got {type(value).__name__}"
    )


# -- response builders ----------------------------------------------------
def ok_response(
    request: Dict[str, object], result: Dict[str, object]
) -> Dict[str, object]:
    """Success envelope echoing the request's ``id`` (when present)."""
    response: Dict[str, object] = {"ok": True, "result": result}
    if "id" in request:
        response["id"] = request["id"]
    return response


def error_response(
    request: Optional[Dict[str, object]],
    code: str,
    message: str,
    retry_after_ms: Optional[int] = None,
) -> Dict[str, object]:
    """Error envelope; ``retry_after_ms`` rides on backpressure codes."""
    error: Dict[str, object] = {"code": code, "message": message}
    if retry_after_ms is not None:
        error["retry_after_ms"] = int(retry_after_ms)
    response: Dict[str, object] = {"ok": False, "error": error}
    if request and "id" in request:
        response["id"] = request["id"]
    return response
