"""The serving engine: many appliances, one pass over the aggregate.

``household_report`` used to re-window the aggregate once per appliance
and drop the trailing partial window.  :class:`InferenceEngine` fixes the
workload shape for deployment:

* the aggregate is scaled and windowed **once** (a
  :class:`~repro.serving.windowing.SlidingWindowPlan`), and every
  registered appliance pipeline runs over that shared window batch;
* a pipeline is anything speaking the :class:`repro.api.WeakLocalizer`
  serving surface — ``eval()``, ``localize(windows, batch_size)`` and the
  ``status_threshold`` / ``power_gate_watts`` knobs.  Raw
  :class:`~repro.core.CamAL` pipelines, registry estimators
  (``repro.api.create``) and every §V-C baseline adapter all qualify, so
  baselines get windowed long-series multi-appliance serving for free;
* each pipeline runs its localization in micro-batches of ``batch_size``
  windows (CamAL's is the fused single-forward path);
* an optional LRU cache keyed on ``(appliance, window-content hash)``
  short-circuits windows already scored — flat overnight stretches and
  re-analyzed days hit the cache instead of the conv stack;
* per-window soft scores are stitched (overlap mean, then threshold) into
  a per-timestamp status covering 100 % of the input, including the tail;
* :meth:`InferenceEngine.score_store` is the bulk path over an ingested
  :class:`repro.data.MeterStore`: households stream shard-sized window
  chunks through the same pipelines and stitcher, so scoring a long
  recording never materializes its full window batch — peak memory is
  bounded by the chunk (≈ one shard), not the series.

**Thread safety.**  The engine may be driven from many threads at once
(the serving daemon's connection handlers and per-appliance coalescers
do exactly that).  Scoring is serialized behind one engine-wide lock:
the fused CamAL path runs through per-ensemble ``BufferPool`` arenas and
traced plans that are inherently single-writer, and the LRU result cache
is one ``OrderedDict`` shared across appliances.  Windowing and
stitching (:meth:`InferenceEngine.window_series` /
:meth:`InferenceEngine.stitch_result`) touch only request-local arrays
and run lock-free, so concurrent callers overlap everything except the
forward pass itself.  Concurrent :meth:`InferenceEngine.run` calls are
bit-identical to serial ones (regression-tested from 8 threads in
``tests/test_serving.py``).
"""

from __future__ import annotations

import hashlib
import os
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterable, Iterator, List, Optional, Tuple

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from .. import nn
from ..core.localization import LocalizationOutput
from ..simdata.preprocessing import SCALE_DIVISOR
from .windowing import SlidingWindowPlan, plan_windows, slice_windows, stitch_mean

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..data.store import MeterStore

#: Cached per-window result: (probability, detected flag, cam row, soft
#: row, status row) — the *complete* ``LocalizationOutput`` row, so a
#: cache hit replays exactly what the pipeline produced rather than
#: recomputing any part of it (recomputing ``detected`` from the cached
#: probability is how cached and uncached runs drift apart).
_CacheRow = Tuple[float, bool, np.ndarray, np.ndarray, np.ndarray]


@dataclass(frozen=True)
class EngineConfig:
    """Serving knobs of the :class:`InferenceEngine`."""

    window: int  # window length fed to the pipelines
    stride: Optional[int] = None  # hop between windows; None = window
    batch_size: int = 256  # micro-batch size per forward pass
    cache_size: int = 0  # LRU entries across appliances; 0 disables
    #: Threshold on the stitched soft score.  ``None`` (the default)
    #: defers to each pipeline's own ``status_threshold``; set a value
    #: only to explicitly override every pipeline.
    status_threshold: Optional[float] = None
    #: Convolution backend the engine's pipelines run under
    #: (``reference|im2col|fft|auto``); ``None`` keeps the process-wide
    #: default.  ``auto`` tunes per shape but its kernel choice (and hence
    #: the float32 bits) can vary between runs — pin a kernel when
    #: bit-reproducibility matters more than throughput (docs/nn.md).
    backend: Optional[str] = None
    #: JSON file persisting the backend autotuner's shape->kernel table
    #: (usually next to the model/store manifests).  Loaded when the
    #: engine is built, rewritten after each run that tuned new shapes, so
    #: a restarted engine skips the first-call timing pass.
    autotune_cache: Optional[str] = None


@dataclass
class ApplianceSeriesResult:
    """One appliance's output over a full series."""

    appliance: str
    windows: LocalizationOutput  # per-window batch output
    soft_status: np.ndarray  # (T,) stitched soft score
    status: np.ndarray  # (T,) stitched binary status
    cache_hits: int = 0

    @property
    def detection_rate(self) -> float:
        """Fraction of windows where the appliance was detected."""
        n = len(self.windows.detected)
        return float(self.windows.detected.sum()) / n if n else 0.0


@dataclass
class HouseholdInference:
    """Everything the engine produces for one aggregate series."""

    plan: SlidingWindowPlan
    per_appliance: Dict[str, ApplianceSeriesResult] = field(default_factory=dict)

    @property
    def n_samples(self) -> int:
        return self.plan.series_length

    def status(self, appliance: str) -> np.ndarray:
        return self.per_appliance[appliance].status

    def __iter__(self):
        return iter(self.per_appliance.items())


@dataclass
class ApplianceStoreScores:
    """One appliance's stitched output for one stored household.

    The bulk path keeps the per-timestamp series but **not** the
    ``(n_windows, window)`` batch arrays — retaining those would defeat
    the bounded-memory contract of :meth:`InferenceEngine.score_store`.
    """

    appliance: str
    soft_status: np.ndarray  # (T,) stitched soft score
    status: np.ndarray  # (T,) stitched binary status
    n_windows: int
    n_detected: int
    cache_hits: int = 0

    @property
    def detection_rate(self) -> float:
        """Fraction of windows where the appliance was detected."""
        return self.n_detected / self.n_windows if self.n_windows else 0.0


@dataclass
class HouseholdScores:
    """Everything :meth:`InferenceEngine.score_store` yields per household."""

    house_id: str
    plan: SlidingWindowPlan
    per_appliance: Dict[str, ApplianceStoreScores] = field(default_factory=dict)

    @property
    def n_samples(self) -> int:
        return self.plan.series_length

    def status(self, appliance: str) -> np.ndarray:
        return self.per_appliance[appliance].status

    def __iter__(self):
        return iter(self.per_appliance.items())


class _ChunkStitcher:
    """Incremental :func:`stitch_mean` over in-order window chunks.

    Reproduces the full-batch stitcher bit-for-bit: the non-overlapping
    fast path concatenates float32 rows, the overlapping path accumulates
    float64 sums/counts in the same window order before one division.
    """

    def __init__(self, plan: SlidingWindowPlan):
        self.plan = plan
        if plan.stride == plan.window:
            self._flat: Optional[np.ndarray] = np.zeros(
                plan.padded_length, dtype=np.float32
            )
            self._sums = self._counts = None
        else:
            self._flat = None
            self._sums = np.zeros(plan.padded_length, dtype=np.float64)
            self._counts = np.zeros(plan.padded_length, dtype=np.float64)

    def add(self, first_window: int, values: np.ndarray) -> None:
        """Fold in scores for windows ``first_window .. first_window+len``."""
        start = self.plan.window_start(first_window)
        if self._flat is not None:
            stop = start + values.size
            self._flat[start:stop] = values.reshape(-1)
            return
        for row in values:
            self._sums[start : start + self.plan.window] += row
            self._counts[start : start + self.plan.window] += 1.0
            start += self.plan.stride

    def finalize(self) -> np.ndarray:
        n = self.plan.series_length
        if self._flat is not None:
            return self._flat[:n].copy()
        return (self._sums[:n] / self._counts[:n]).astype(np.float32)


class InferenceEngine:
    """Batched multi-appliance inference over long aggregate series.

    Serves any estimator implementing the :class:`repro.api.WeakLocalizer`
    serving surface — the CamAL pipeline and every registered baseline
    adapter alike.  Typical use::

        engine = InferenceEngine(EngineConfig(window=256, stride=128))
        engine.register("kettle", kettle_camal)       # CamAL or estimator
        engine.load("dishwasher", "models/dishwasher")  # any saved model
        result = engine.run(aggregate_watts)
        status = result.status("kettle")  # (len(aggregate_watts),)
    """

    def __init__(self, config: EngineConfig):
        if config.window <= 0:
            raise ValueError(f"window must be positive, got {config.window}")
        if config.batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {config.batch_size}")
        if config.backend is not None and config.backend not in nn.backend.available_backends():
            raise ValueError(
                f"unknown backend {config.backend!r}; "
                f"choose from {nn.backend.available_backends()}"
            )
        self.config = config
        self.pipelines: Dict[str, object] = {}
        self._cache: "OrderedDict[Tuple[str, bytes], _CacheRow]" = OrderedDict()
        #: Serializes every forward pass plus the LRU-cache and
        #: autotune-save bookkeeping around it.  Reentrant so ``run`` /
        #: ``warmup`` may compose the locked primitives freely.
        self._lock = threading.RLock()
        if config.autotune_cache and os.path.exists(config.autotune_cache):
            nn.backend.load_autotune_cache(config.autotune_cache)

    # -- pipeline registry ------------------------------------------------
    def register(self, appliance: str, pipeline) -> "InferenceEngine":
        """Attach a trained pipeline under ``appliance`` (replaces any).

        ``pipeline`` is a :class:`~repro.core.CamAL` or any
        :class:`repro.api.WeakLocalizer`.  Replacing a pipeline drops the
        appliance's cached window results, so a retrained model is never
        served the old model's scores.
        """
        if not callable(getattr(pipeline, "localize", None)):
            raise TypeError(
                f"pipeline for {appliance!r} must implement localize(); got "
                f"{type(pipeline).__name__}"
            )
        # Switch to inference mode through whichever hook the pipeline has
        # (estimators/CamAL expose eval(); bare ensembles their .ensemble).
        if callable(getattr(pipeline, "eval", None)):
            pipeline.eval()
        elif hasattr(pipeline, "ensemble"):
            pipeline.ensemble.eval()
        with self._lock:
            if appliance in self.pipelines:
                for key in [k for k in self._cache if k[0] == appliance]:
                    del self._cache[key]
            self.pipelines[appliance] = pipeline
        return self

    def load(
        self, appliance: str, directory: str, warm: bool = True
    ) -> "InferenceEngine":
        """Load any persisted estimator directory and register it.

        Dispatches through :func:`repro.api.persistence.load_estimator`,
        so both legacy ``save_camal`` layouts and generic format-2
        manifests (baseline adapters) serve transparently.  With ``warm``
        (the default) the engine immediately pushes one batch of zeros
        through the new pipeline so the backend autotuner times its conv
        shapes and the plan layer traces its execution plan *now*, not on
        the first real request — and persists the autotune table if
        ``autotune_cache`` is configured.
        """
        from ..api.persistence import load_estimator

        self.register(appliance, load_estimator(directory))
        if warm:
            self.warmup(appliance)
        return self

    def warmup(self, appliance: Optional[str] = None) -> "InferenceEngine":
        """Prime the autotune and execution-plan caches with a dummy batch.

        Runs ``(batch_size, window)`` zeros through each selected
        pipeline under the engine's configured backend — the same shapes
        real serving uses, so every shape the autotuner would time and
        every plan signature the tracer would record is warm before the
        first request.  Newly tuned shapes are persisted right away.
        """
        names = list(self.pipelines) if appliance is None else [appliance]
        windows = np.zeros((self.config.batch_size, self.config.window), np.float32)
        with self._lock:
            for name in names:
                self._localize(self.pipelines[name], windows)
            self._save_autotune_cache()
        return self

    @property
    def appliances(self) -> List[str]:
        return list(self.pipelines)

    # -- cache ------------------------------------------------------------
    @property
    def cache_entries(self) -> int:
        with self._lock:
            return len(self._cache)

    def clear_cache(self) -> None:
        with self._lock:
            self._cache.clear()

    @staticmethod
    def _window_key(appliance: str, window: np.ndarray) -> Tuple[str, bytes]:
        return appliance, hashlib.blake2b(window.tobytes(), digest_size=16).digest()

    def _cache_put(self, key: Tuple[str, bytes], row: _CacheRow) -> None:
        self._cache[key] = row
        self._cache.move_to_end(key)
        while len(self._cache) > self.config.cache_size:
            self._cache.popitem(last=False)

    # -- inference --------------------------------------------------------
    def window_series(
        self, aggregate_watts: np.ndarray
    ) -> Tuple[np.ndarray, SlidingWindowPlan, np.ndarray]:
        """Validate, scale and window a raw aggregate series **once**.

        Returns ``(aggregate, plan, windows)`` where ``aggregate`` is the
        float32 Watt series, ``plan`` the sliding-window layout and
        ``windows`` the contiguous ``(n_windows, window)`` scaled batch
        every pipeline shares.  Touches only request-local arrays, so
        concurrent callers (the serving daemon's connection handlers)
        need no lock.
        """
        aggregate_watts = np.asarray(aggregate_watts, dtype=np.float32)
        if aggregate_watts.ndim != 1:
            raise ValueError("InferenceEngine.run expects a 1-D aggregate series")
        if np.isnan(aggregate_watts).any():
            raise ValueError("aggregate contains NaNs; forward-fill it first")
        plan = plan_windows(
            len(aggregate_watts), self.config.window, self.config.stride
        )
        windows = np.ascontiguousarray(
            slice_windows(aggregate_watts / SCALE_DIVISOR, plan)
        )
        return aggregate_watts, plan, windows

    def localize_windows(
        self, appliance: str, windows: np.ndarray
    ) -> Tuple[LocalizationOutput, int]:
        """Score a scaled window batch with one registered pipeline.

        The thread-safe scoring primitive: consults/updates the LRU
        result cache, runs the forward pass under the engine's backend,
        and persists newly tuned autotune entries — all behind the engine
        lock, because the fused path's buffer pools and traced plans are
        single-writer and the cache is shared across appliances.  Returns
        ``(LocalizationOutput, cache_hits)``.

        This is also the serving daemon's coalescing point: windows
        stacked from many concurrent requests score in one call, and the
        im2col/grouped-plan backend's bit-level batch-size invariance
        makes the stacked rows identical to per-request calls.
        """
        pipeline = self.pipelines.get(appliance)
        if pipeline is None:
            raise KeyError(f"no pipeline registered for appliance {appliance!r}")
        with self._lock:
            output, hits = self._localize_cached(appliance, pipeline, windows)
            self._save_autotune_cache()
        return output, hits

    def stitch_result(
        self,
        appliance: str,
        plan: SlidingWindowPlan,
        output: LocalizationOutput,
        aggregate_watts: np.ndarray,
        cache_hits: int = 0,
    ) -> ApplianceSeriesResult:
        """Stitch per-window scores back onto the series for one appliance.

        Overlap-mean stitch, threshold at the pipeline's (or config
        override) level, then re-apply the appliance's power gate at
        series level.  Lock-free: reads only immutable pipeline knobs.
        """
        pipeline = self.pipelines[appliance]
        soft = stitch_mean(output.soft_status, plan)
        status = (soft >= self._status_threshold(pipeline)).astype(np.float32)
        gate = getattr(pipeline, "power_gate_watts", None)
        if gate is not None:
            # Re-apply the power gate on the *series* so stitching can
            # never turn a below-threshold timestamp ON.
            status *= (aggregate_watts >= gate).astype(np.float32)
        return ApplianceSeriesResult(
            appliance=appliance,
            windows=output,
            soft_status=soft,
            status=status,
            cache_hits=cache_hits,
        )

    def run(
        self,
        aggregate_watts: np.ndarray,
        appliances: Optional[Iterable[str]] = None,
    ) -> HouseholdInference:
        """Analyze a raw (Watt) aggregate series with every registered pipeline.

        Args:
            aggregate_watts: 1-D NaN-free aggregate series.
            appliances: subset of registered appliances (default: all).

        Returns:
            A :class:`HouseholdInference` whose per-appliance stitched
            ``status``/``soft_status`` cover every input timestamp.
        """
        names = list(self.pipelines) if appliances is None else list(appliances)
        for name in names:
            if name not in self.pipelines:
                raise KeyError(f"no pipeline registered for appliance {name!r}")

        # Scale once, window once; every appliance shares this batch.
        aggregate_watts, plan, windows = self.window_series(aggregate_watts)

        result = HouseholdInference(plan=plan)
        for name in names:
            output, hits = self.localize_windows(name, windows)
            result.per_appliance[name] = self.stitch_result(
                name, plan, output, aggregate_watts, cache_hits=hits
            )
        return result

    def _status_threshold(self, pipeline) -> float:
        """Stitching threshold: the pipeline's own unless the config overrides."""
        if self.config.status_threshold is not None:
            return float(self.config.status_threshold)
        return float(getattr(pipeline, "status_threshold", 0.5))

    def _localize(self, pipeline, windows: np.ndarray) -> LocalizationOutput:
        """One pipeline pass under the engine's configured conv backend."""
        with nn.backend.use_backend(self.config.backend):
            return pipeline.localize(windows, self.config.batch_size)

    def _save_autotune_cache(self) -> None:
        """Persist newly tuned conv shapes next to the manifests (if configured).

        Skipped when nothing new was tuned since the last save, so a
        serving loop scoring series after series does not rewrite an
        unchanged JSON file once its shapes are warm.
        """
        if self.config.autotune_cache and nn.backend.autotune_cache_dirty():
            nn.backend.save_autotune_cache(self.config.autotune_cache)

    def buffer_pool_stats(self) -> Dict[str, Dict[str, int]]:
        """Per-appliance :class:`repro.nn.backend.BufferPool` counters.

        Covers pipelines whose serving path runs through the fused
        ensemble loop (CamAL and its estimator adapter); other estimators
        report nothing.  ``fresh_allocations`` staying flat across runs is
        the allocation-free steady-state guarantee the benchmark asserts.
        """
        stats: Dict[str, Dict[str, int]] = {}
        for name, pipeline in self.pipelines.items():
            ensemble = getattr(pipeline, "ensemble", None)
            if ensemble is None:  # estimator adapter wrapping a CamAL
                ensemble = getattr(
                    getattr(pipeline, "pipeline", None), "ensemble", None
                )
            pool = getattr(ensemble, "_pool", None)
            if pool is not None:
                stats[name] = pool.stats
        return stats

    def plan_stats(self) -> Dict[str, Dict[str, int]]:
        """Per-appliance execution-plan cache counters (repro.nn.plan).

        Same coverage as :meth:`buffer_pool_stats`: pipelines serving
        through the fused ensemble report ``plans`` / ``traces`` /
        ``replays`` / ``fallbacks``.  In steady state ``replays`` grows
        while ``traces`` stays flat — every batch reuses a recorded plan
        instead of re-dispatching through the module graph.
        """
        stats: Dict[str, Dict[str, int]] = {}
        for name, pipeline in self.pipelines.items():
            ensemble = getattr(pipeline, "ensemble", None)
            if ensemble is None:  # estimator adapter wrapping a CamAL
                ensemble = getattr(
                    getattr(pipeline, "pipeline", None), "ensemble", None
                )
            cache = getattr(ensemble, "_plan_cache", None)
            if cache is not None:
                stats[name] = cache.stats
        return stats

    def _localize_cached(
        self, appliance: str, pipeline, windows: np.ndarray
    ) -> Tuple[LocalizationOutput, int]:
        """Localize a window batch, serving repeats from the LRU cache."""
        if self.config.cache_size <= 0:
            return self._localize(pipeline, windows), 0

        n, length = windows.shape
        proba = np.zeros(n, dtype=np.float32)
        detected = np.zeros(n, dtype=bool)
        cam = np.zeros((n, length), dtype=np.float32)
        soft = np.zeros((n, length), dtype=np.float32)
        status = np.zeros((n, length), dtype=np.float32)

        keys = [self._window_key(appliance, windows[i]) for i in range(n)]
        misses: List[int] = []
        hits = 0
        for i, key in enumerate(keys):
            row = self._cache.get(key)
            if row is None:
                misses.append(i)
                continue
            self._cache.move_to_end(key)
            hits += 1
            proba[i], detected[i], cam[i], soft[i], status[i] = row
        if misses:
            miss_idx = np.asarray(misses)
            fresh = self._localize(pipeline, windows[miss_idx])
            proba[miss_idx] = fresh.detection_proba
            detected[miss_idx] = fresh.detected
            cam[miss_idx] = fresh.cam
            soft[miss_idx] = fresh.soft_status
            status[miss_idx] = fresh.status
            for j, i in enumerate(misses):
                # Copy the rows: caching views would pin the whole batch's
                # arrays in memory for as long as any one row survives.
                self._cache_put(
                    keys[i],
                    (
                        float(fresh.detection_proba[j]),
                        bool(fresh.detected[j]),
                        fresh.cam[j].copy(),
                        fresh.soft_status[j].copy(),
                        fresh.status[j].copy(),
                    ),
                )
        output = LocalizationOutput(
            detection_proba=proba,
            detected=detected,
            cam=cam,
            soft_status=soft,
            status=status,
        )
        return output, hits

    # -- bulk path over an ingested store ---------------------------------
    def score_store(
        self,
        store: "MeterStore",
        house_ids: Optional[Iterable[str]] = None,
        appliances: Optional[Iterable[str]] = None,
        chunk_windows: Optional[int] = None,
    ) -> Iterator[Tuple[str, HouseholdScores]]:
        """Stream every household of a :class:`repro.data.MeterStore`.

        Generator yielding ``(house_id, HouseholdScores)`` — results are
        bit-identical to :meth:`run` on the household's materialized
        series (gaps beyond the ingest fill bound read as 0 W, exactly as
        the reporting path serves them), but the aggregate is consumed in
        shard-sized window chunks: at no point does the engine hold a
        household's full ``(n_windows, window)`` batch, so peak memory is
        bounded by the chunk size plus the per-timestamp outputs.

        Args:
            store: an ingested meter store.
            house_ids: subset of households (default: every house).
            appliances: subset of registered appliances (default: all).
            chunk_windows: windows scored per chunk; defaults to roughly
                one shard's worth, rounded up to a whole number of
                ``batch_size`` micro-batches.
        """
        # Validate eagerly (this is not the generator) so a bad appliance
        # name raises at the call site, exactly like run().
        names = list(self.pipelines) if appliances is None else list(appliances)
        for name in names:
            if name not in self.pipelines:
                raise KeyError(f"no pipeline registered for appliance {name!r}")
        houses = list(store.house_ids if house_ids is None else house_ids)
        if chunk_windows is not None and chunk_windows <= 0:
            raise ValueError(f"chunk_windows must be positive, got {chunk_windows}")

        def scores() -> Iterator[Tuple[str, HouseholdScores]]:
            for house_id in houses:
                yield house_id, self._score_household(
                    store, house_id, names, chunk_windows
                )

        return scores()

    def _chunk_windows_default(self, plan: SlidingWindowPlan, shard_length: int) -> int:
        """Shard-sized chunking, aligned to whole ``batch_size`` batches."""
        per_shard = max(1, shard_length // plan.stride)
        batch = self.config.batch_size
        return max(batch, -(-per_shard // batch) * batch)

    def _score_household(
        self,
        store: "MeterStore",
        house_id: str,
        names: List[str],
        chunk_windows: Optional[int],
    ) -> HouseholdScores:
        from ..data.store import AGGREGATE_CHANNEL

        n = store.n_samples(house_id)
        plan = plan_windows(n, self.config.window, self.config.stride)
        chunk = chunk_windows or self._chunk_windows_default(plan, store.shard_length)

        stitchers = {name: _ChunkStitcher(plan) for name in names}
        detected = {name: 0 for name in names}
        hits = {name: 0 for name in names}
        for first in range(0, plan.n_windows, chunk):
            last = min(first + chunk, plan.n_windows)
            start = plan.window_start(first)
            stop = plan.window_start(last - 1) + plan.window
            raw = store.read_channel(
                house_id, AGGREGATE_CHANNEL, start, min(stop, n)
            )
            scaled = np.asarray(raw, dtype=np.float32) / SCALE_DIVISOR
            if stop > n:  # tail chunk: repeat the last real sample
                scaled = np.pad(scaled, (0, stop - n), mode="edge")
            windows = np.ascontiguousarray(
                sliding_window_view(scaled, plan.window)[:: plan.stride]
            )
            for name in names:
                output, chunk_hits = self.localize_windows(name, windows)
                stitchers[name].add(first, output.soft_status)
                detected[name] += int(output.detected.sum())
                hits[name] += chunk_hits

        result = HouseholdScores(house_id=house_id, plan=plan)
        for name in names:
            pipeline = self.pipelines[name]
            soft = stitchers[name].finalize()
            status = (soft >= self._status_threshold(pipeline)).astype(np.float32)
            gate = getattr(pipeline, "power_gate_watts", None)
            if gate is not None:
                # Same series-level re-gate as run(), one shard at a time.
                for lo, hi in store.iter_sample_ranges(house_id):
                    watts = store.read_channel(house_id, AGGREGATE_CHANNEL, lo, hi)
                    status[lo:hi] *= (watts >= gate).astype(np.float32)
            result.per_appliance[name] = ApplianceStoreScores(
                appliance=name,
                soft_status=soft,
                status=status,
                n_windows=plan.n_windows,
                n_detected=detected[name],
                cache_hits=hits[name],
            )
        return result
