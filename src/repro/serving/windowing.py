"""Slicing long series into windows and stitching window scores back.

The paper evaluates CamAL on pre-cut windows; deployment sees one long
aggregate series per household.  The bridge has two halves:

* **slicing** — a :class:`SlidingWindowPlan` describes how a series of
  ``series_length`` samples is covered by windows of length ``window``
  taken every ``stride`` samples.  The tail is never dropped: the series
  is edge-padded so the final window still ends on real data repeated at
  the boundary, and every timestamp is covered by at least one window.
  Slicing itself is a zero-copy ``sliding_window_view`` over the padded
  buffer.

* **stitching** — per-window, per-timestamp scores (soft status, CAM)
  come back as ``(n_windows, window)`` arrays.  With ``stride < window``
  a timestamp is scored by several windows; :func:`stitch_mean` averages
  those votes, which removes the hard artifacts a localization exhibits
  at window boundaries (a window that cuts an activation in half sees
  only part of its signature).  Thresholding the stitched *soft* score —
  rather than voting on per-window *binary* statuses — is what the ADF
  framing of TransApp (Petralia et al., 2024) calls score-level
  recomposition.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view


@dataclass(frozen=True)
class SlidingWindowPlan:
    """How a 1-D series is covered by (possibly overlapping) windows."""

    series_length: int  # real samples in the input series
    window: int  # window length L
    stride: int  # hop between consecutive window starts
    n_windows: int  # number of windows covering the padded series
    pad_right: int  # edge-padding samples appended to the series

    @property
    def padded_length(self) -> int:
        return self.series_length + self.pad_right

    def window_start(self, index: int) -> int:
        """Start sample (within the padded series) of window ``index``."""
        return index * self.stride

    def coverage_counts(self) -> np.ndarray:
        """How many windows cover each *real* timestamp, shape ``(T,)``."""
        counts = np.zeros(self.padded_length, dtype=np.int64)
        for i in range(self.n_windows):
            start = self.window_start(i)
            counts[start : start + self.window] += 1
        return counts[: self.series_length]


def plan_windows(
    series_length: int, window: int, stride: int | None = None
) -> SlidingWindowPlan:
    """Build the :class:`SlidingWindowPlan` for a series.

    Args:
        series_length: number of samples in the series (must be positive).
        window: window length; series shorter than this are padded up to
            one full window.
        stride: hop between window starts; defaults to ``window``
            (non-overlapping).  Must satisfy ``1 <= stride <= window`` or
            some timestamps would be covered by no window at all.
    """
    stride = window if stride is None else stride
    if series_length <= 0:
        raise ValueError(f"series_length must be positive, got {series_length}")
    if window <= 0:
        raise ValueError(f"window must be positive, got {window}")
    if not 1 <= stride <= window:
        raise ValueError(
            f"stride must be in [1, window={window}] for full coverage, got {stride}"
        )
    if series_length <= window:
        n_windows = 1
    else:
        n_windows = int(np.ceil((series_length - window) / stride)) + 1
    padded_length = (n_windows - 1) * stride + window
    return SlidingWindowPlan(
        series_length=series_length,
        window=window,
        stride=stride,
        n_windows=n_windows,
        pad_right=padded_length - series_length,
    )


def slice_windows(series: np.ndarray, plan: SlidingWindowPlan) -> np.ndarray:
    """Cut ``series`` into ``(n_windows, window)`` following ``plan``.

    The tail is edge-padded (last real sample repeated) rather than
    dropped, so the result covers every input timestamp.  Slicing is a
    strided view — windows share the padded buffer, no per-window copies.
    """
    series = np.asarray(series, dtype=np.float32)
    if series.ndim != 1:
        raise ValueError(f"expected a 1-D series, got shape {series.shape}")
    if len(series) != plan.series_length:
        raise ValueError(
            f"series has {len(series)} samples but plan expects {plan.series_length}"
        )
    if plan.pad_right:
        series = np.pad(series, (0, plan.pad_right), mode="edge")
    return sliding_window_view(series, plan.window)[:: plan.stride]


def stitch_mean(values: np.ndarray, plan: SlidingWindowPlan) -> np.ndarray:
    """Average per-window scores back onto the series, shape ``(T,)``.

    Each real timestamp receives the mean of the scores of every window
    covering it; padded samples are discarded.  For ``stride == window``
    this is a plain concatenation crop.
    """
    values = np.asarray(values, dtype=np.float32)
    if values.shape != (plan.n_windows, plan.window):
        raise ValueError(
            f"expected scores of shape {(plan.n_windows, plan.window)}, "
            f"got {values.shape}"
        )
    if plan.stride == plan.window:
        return values.reshape(-1)[: plan.series_length].copy()
    sums = np.zeros(plan.padded_length, dtype=np.float64)
    counts = np.zeros(plan.padded_length, dtype=np.float64)
    for i in range(plan.n_windows):
        start = plan.window_start(i)
        sums[start : start + plan.window] += values[i]
        counts[start : start + plan.window] += 1.0
    return (sums[: plan.series_length] / counts[: plan.series_length]).astype(
        np.float32
    )


def stitch_windows(
    values: np.ndarray, plan: SlidingWindowPlan, threshold: float | None = None
) -> np.ndarray:
    """Stitch scores and optionally binarize at ``threshold``.

    Convenience wrapper: ``stitch_windows(soft, plan, 0.5)`` yields the
    per-timestamp binary status used by the reporting layer.
    """
    stitched = stitch_mean(values, plan)
    if threshold is None:
        return stitched
    return (stitched >= threshold).astype(np.float32)
