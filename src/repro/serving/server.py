"""`repro serve` — the fleet-scale serving daemon.

Everything below this module is one-shot and one-process; this is the
long-lived layer that makes the fast paths pay off under real traffic.
A :class:`ServingDaemon` owns a warm :class:`~repro.serving.engine.
InferenceEngine` (model fleet + autotune cache + traced plans) and
serves concurrent scoring requests over the newline-delimited-JSON TCP
protocol of :mod:`repro.serving.protocol`.

Architecture — four kinds of threads:

* **acceptor** — accepts TCP connections, one handler thread each
  (thread-per-connection is the right shape here: the GIL is released
  inside the BLAS calls doing the actual work, and fleet-bench scale is
  tens of connections, not tens of thousands);
* **connection handlers** — parse frames, validate, *window the series*
  (request-local, lock-free), enqueue the window batch on the target
  appliance's coalescer, and block until the result is ready;
* **per-appliance coalescers** — the heart of the daemon.  Each drains
  its bounded queue and stacks windows from many concurrent requests
  into **one** fused forward call, flushing when ``max_batch_windows``
  accumulate or ``max_wait_us`` elapse after the first request.  This is
  provably safe: the im2col backend and the grouped ensemble plans are
  bit-level batch-size invariant, so a request's rows in a stacked batch
  are identical to the rows of a solo call (asserted end-to-end in
  ``tests/test_serving_daemon.py``).  Under synchronous clients the
  cadence is self-organizing — responses release a cohort of clients at
  once, whose next requests arrive together and merge again;
* **bulk jobs** — a ``store`` request fans a :meth:`InferenceEngine.
  score_store` run over household shards in a ``spawn`` process pool
  (each worker reloads the fleet from ``fleet_dir``), returning compact
  per-household summaries instead of full series.

**Backpressure**: every coalescer queue is bounded
(``queue_depth``).  A request arriving at a full queue is rejected
*before* any scoring work with an ``overloaded`` error carrying a
``retry_after_ms`` hint (queue depth × recent mean service latency) —
shedding load early keeps p99 of the admitted traffic flat.

**Graceful drain**: ``SIGTERM`` (wired by the CLI) or a ``shutdown``
request stops the acceptor, lets every queued request finish scoring,
waits for in-flight responses to hit the wire, then closes.  Requests
arriving mid-drain get a ``draining`` rejection with a retry hint; none
are silently dropped.

Configuration defaults come from ``REPRO_SERVE_*`` environment
variables (see :meth:`ServeConfig.from_env` and ``docs/config.md``).
"""

from __future__ import annotations

import os
import queue
import socket
import threading
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import asdict, dataclass
from hashlib import blake2b
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..analysis import faults
from ..core.localization import LocalizationOutput
from .engine import ApplianceSeriesResult, InferenceEngine
from .metrics import ServerMetrics
from .protocol import (
    DEFAULT_PORT,
    MAX_FRAME_BYTES,
    FrameError,
    FrameReader,
    FrameTooLarge,
    decode_series,
    encode_frame,
    encode_series,
    error_response,
    ok_response,
)
from .windowing import SlidingWindowPlan

__all__ = ["ServeConfig", "ServingDaemon"]


@dataclass(frozen=True)
class ServeConfig:
    """Daemon knobs: socket, coalescing flush policy, admission control."""

    host: str = "127.0.0.1"
    port: int = DEFAULT_PORT  # 0 binds an ephemeral port
    #: Coalescer flush threshold: stop stacking once this many windows
    #: are queued for one fused call (requests are never split, so one
    #: oversized request forms its own batch).
    max_batch_windows: int = 256
    #: Coalescer linger: after the first request of a batch arrives, wait
    #: at most this long for co-travellers before flushing.
    max_wait_us: int = 2000
    #: Bounded pending-request queue per appliance; arrivals beyond it
    #: are fast-rejected with ``overloaded`` + ``retry_after_ms``.
    queue_depth: int = 64
    #: Master switch for cross-request micro-batch coalescing; off means
    #: every request is its own forward call (the A/B the benchmark runs).
    coalesce: bool = True
    #: Zero-pad each stacked batch up to the next power of two before the
    #: forward.  Traced eval plans are keyed on batch signature and pay a
    #: trace on first sight; coalescing produces a different row count
    #: per cohort, so without bucketing a daemon keeps re-tracing instead
    #: of replaying.  Bit-exact: rows are independent through the whole
    #: stack, and pad rows are sliced off before stitching.
    bucket_batches: bool = True
    #: Pre-trace the bucket ladder (1, 2, 4, ... up to
    #: ``max_batch_windows``) for every appliance at :meth:`ServingDaemon.
    #: start`, so no live request ever pays a first-trace stall.  Off is
    #: mainly for tests with stub pipelines.
    warm_start: bool = True
    max_frame_bytes: int = MAX_FRAME_BYTES
    #: Handler-side cap on waiting for a coalescer result.
    request_timeout_s: float = 60.0
    #: How long a graceful shutdown waits for queued + in-flight work.
    drain_timeout_s: float = 10.0
    #: Whether a client ``shutdown`` request may drain the daemon (keep
    #: on for CI and local fleets; front it with real auth before
    #: exposing beyond localhost).
    allow_shutdown: bool = True

    def __post_init__(self):
        if self.max_batch_windows <= 0:
            raise ValueError(
                f"max_batch_windows must be positive, got {self.max_batch_windows}"
            )
        if self.max_wait_us < 0:
            raise ValueError(f"max_wait_us must be >= 0, got {self.max_wait_us}")
        if self.queue_depth <= 0:
            raise ValueError(f"queue_depth must be positive, got {self.queue_depth}")

    @classmethod
    def from_env(cls, **overrides) -> "ServeConfig":
        """Defaults from ``REPRO_SERVE_*`` variables, then ``overrides``.

        Reads ``REPRO_SERVE_HOST``, ``REPRO_SERVE_PORT``,
        ``REPRO_SERVE_MAX_BATCH`` (windows), ``REPRO_SERVE_MAX_WAIT_US``
        and ``REPRO_SERVE_QUEUE_DEPTH``; explicit keyword arguments (the
        CLI flags) win over the environment.
        """
        values: Dict[str, object] = {}
        host = os.environ.get("REPRO_SERVE_HOST")
        if host:
            values["host"] = host
        for key, env in (
            ("port", "REPRO_SERVE_PORT"),
            ("max_batch_windows", "REPRO_SERVE_MAX_BATCH"),
            ("max_wait_us", "REPRO_SERVE_MAX_WAIT_US"),
            ("queue_depth", "REPRO_SERVE_QUEUE_DEPTH"),
        ):
            raw = os.environ.get(env)
            if raw:
                try:
                    values[key] = int(raw)
                except ValueError as exc:
                    raise ValueError(f"{env}={raw!r} is not an integer") from exc
        values.update(overrides)
        return cls(**values)


class _PendingScore:
    """One admitted ``score`` request, in flight between handler and coalescer."""

    __slots__ = (
        "appliance",
        "aggregate",
        "plan",
        "windows",
        "done",
        "result",
        "error",
        "batch_requests",
        "batch_windows",
        "cache_hits",
        "deadline",
    )

    def __init__(
        self,
        appliance: str,
        aggregate: np.ndarray,
        plan: SlidingWindowPlan,
        windows: np.ndarray,
    ):
        self.appliance = appliance
        self.aggregate = aggregate
        self.plan = plan
        self.windows = windows
        self.done = threading.Event()
        self.result: Optional[ApplianceSeriesResult] = None
        self.error: Optional[Tuple[str, str]] = None
        self.batch_requests = 1  # requests merged into this item's forward
        self.batch_windows = windows.shape[0]
        self.cache_hits = 0
        #: Absolute ``perf_counter`` deadline set at admission.  The
        #: coalescer refuses to spend forward time on an item whose
        #: handler has already given up waiting.
        self.deadline = float("inf")

    def fail(self, code: str, message: str) -> None:
        self.error = (code, message)
        self.done.set()


class _Coalescer(threading.Thread):
    """One appliance's scoring loop: drain queue, stack, forward, split."""

    def __init__(
        self,
        appliance: str,
        engine: InferenceEngine,
        config: ServeConfig,
        metrics: ServerMetrics,
    ):
        super().__init__(name=f"coalescer-{appliance}", daemon=True)
        self.appliance = appliance
        self.engine = engine
        self.config = config
        self.metrics = metrics
        self.queue: "queue.Queue[_PendingScore]" = queue.Queue(
            maxsize=config.queue_depth
        )
        self._stop_requested = threading.Event()

    def run(self) -> None:
        max_wait_s = self.config.max_wait_us / 1e6
        while True:
            try:
                item = self.queue.get(timeout=0.05)
            except queue.Empty:
                if self._stop_requested.is_set():
                    return  # drained: stop was requested and the queue is dry
                continue
            batch = [item]
            n_windows = item.windows.shape[0]
            if self.config.coalesce:
                deadline = time.perf_counter() + max_wait_s
                while n_windows < self.config.max_batch_windows:
                    remaining = deadline - time.perf_counter()
                    if remaining <= 0:
                        break
                    try:
                        nxt = self.queue.get(timeout=remaining)
                    except queue.Empty:
                        break
                    batch.append(nxt)
                    n_windows += nxt.windows.shape[0]
            self._serve_batch(batch, n_windows)

    def _serve_batch(self, batch: List[_PendingScore], n_windows: int) -> None:
        # Per-request deadline: an item that sat in the queue past its
        # handler's patience gets a typed (retryable) failure instead of
        # a share of an expensive forward nobody is waiting for.
        now = time.perf_counter()
        expired = [item for item in batch if item.deadline <= now]
        if expired:
            for item in expired:
                item.fail(
                    "deadline_exceeded",
                    f"request exceeded its {self.config.request_timeout_s}s "
                    f"deadline while queued",
                )
            batch = [item for item in batch if item.deadline > now]
            if not batch:
                return
            n_windows = sum(item.windows.shape[0] for item in batch)
        if len(batch) == 1:
            stacked = batch[0].windows
        else:
            stacked = np.concatenate([item.windows for item in batch], axis=0)
        if self.config.bucket_batches:
            bucket = 1 << (n_windows - 1).bit_length()  # next power of two
            if bucket > n_windows:
                stacked = np.concatenate(
                    [
                        stacked,
                        np.zeros(
                            (bucket - n_windows, stacked.shape[1]), dtype=np.float32
                        ),
                    ],
                    axis=0,
                )
        try:
            if len(batch) > 1 and faults.ACTIVE is not None:
                faults.ACTIVE.fire("serve.coalesce")
            output, hits = self.engine.localize_windows(self.appliance, stacked)
        except Exception as exc:  # noqa: BLE001 — every waiter must be answered
            if len(batch) > 1:
                # Exception isolation: replay the cohort item by item so
                # one poisoned request fails alone.  Batch-size
                # invariance makes each survivor's solo result
                # bit-identical to its share of the fused forward.
                self.metrics.record_isolation()
                for item in batch:
                    self._serve_batch([item], item.windows.shape[0])
                return
            item = batch[0]
            item.fail("internal", f"{type(exc).__name__}: {exc}")
            return
        row = 0
        for item in batch:
            k = item.windows.shape[0]
            # Row slices of the stacked output ARE the solo-call outputs:
            # the backend is batch-size invariant, bit for bit.
            sub = LocalizationOutput(
                detection_proba=output.detection_proba[row : row + k],
                detected=output.detected[row : row + k],
                cam=output.cam[row : row + k],
                soft_status=output.soft_status[row : row + k],
                status=output.status[row : row + k],
            )
            row += k
            try:
                item.result = self.engine.stitch_result(
                    item.appliance,
                    item.plan,
                    sub,
                    item.aggregate,
                    cache_hits=hits if len(batch) == 1 else 0,
                )
                item.cache_hits = hits if len(batch) == 1 else 0
                item.batch_requests = len(batch)
                item.batch_windows = n_windows
                item.done.set()
            except Exception as exc:  # noqa: BLE001
                item.fail("internal", f"{type(exc).__name__}: {exc}")
        self.metrics.record_batch(len(batch), n_windows)

    # -- shutdown ---------------------------------------------------------
    def stop(self) -> None:
        """Ask the loop to exit once its queue is drained."""
        self._stop_requested.set()

    def flush_pending(self, code: str, message: str) -> int:
        """Fail whatever is still queued (post-join stragglers); count them."""
        failed = 0
        while True:
            try:
                item = self.queue.get_nowait()
            except queue.Empty:
                return failed
            item.fail(code, message)
            failed += 1


def _summarize_household(house_id: str, scores) -> Dict[str, object]:
    """Compact JSON row for one scored household of a bulk store job.

    Full per-timestamp series stay out of the response on purpose (a
    portfolio job covers months × thousands of homes); the blake2b
    digest of the status bytes lets callers verify equivalence against
    an in-process :meth:`InferenceEngine.score_store` run exactly.
    """
    appliances = {}
    for name, result in scores:
        appliances[name] = {
            "n_windows": int(result.n_windows),
            "n_detected": int(result.n_detected),
            "detection_rate": float(result.detection_rate),
            "on_fraction": float(result.status.mean()),
            "status_blake2b": blake2b(
                result.status.tobytes(), digest_size=16
            ).hexdigest(),
        }
    return {
        "house_id": house_id,
        "n_samples": int(scores.n_samples),
        "appliances": appliances,
    }


#: How many times a bulk job's broken process pool is rebuilt before the
#: job fails: a crash-looping fleet (bad model file, OOM on every load)
#: should error out, not spin forever.
_MAX_POOL_REBUILDS = 2


def _score_store_shard(
    fleet_dir: str,
    engine_config: Dict[str, object],
    store_path: str,
    house_ids: List[str],
    appliances: Optional[List[str]],
    attempt: int = 0,
) -> List[Dict[str, object]]:
    """Worker-process entry of the bulk fan-out: score one household shard.

    Runs in a ``spawn`` process pool, so it rebuilds its own engine from
    the persisted fleet — the daemon's in-memory pipelines never cross
    the process boundary.  ``attempt`` is the parent's retry round for
    this shard; it keys the ``serve.worker`` fault decision, so a seeded
    chaos run can kill attempt 0 deterministically and let the retry
    after the pool rebuild survive (spawn re-imports this module, so the
    child's fault plan comes from the inherited ``REPRO_FAULTS``).
    """
    from ..api.persistence import load_pipelines
    from ..data.store import MeterStore
    from .engine import EngineConfig

    if faults.ACTIVE is not None:
        faults.ACTIVE.fire("serve.worker", token=attempt)
    engine = InferenceEngine(EngineConfig(**engine_config))
    for name, estimator in load_pipelines(fleet_dir).items():
        engine.register(name, estimator)
    store = MeterStore(store_path)
    return [
        _summarize_household(house_id, scores)
        for house_id, scores in engine.score_store(store, house_ids, appliances)
    ]


class ServingDaemon:
    """Long-lived TCP daemon serving a warm :class:`InferenceEngine`.

    Typical use::

        engine = InferenceEngine(EngineConfig(window=256, stride=128))
        engine.load("kettle", "models/kettle", warm=True)
        daemon = ServingDaemon(engine, ServeConfig(port=0))
        host, port = daemon.start()
        ...                       # clients connect (repro.serving.client)
        daemon.shutdown()         # graceful drain

    ``fleet_dir`` (the ``save_pipelines`` root the models were loaded
    from) enables shard-parallel ``store`` jobs: worker processes reload
    the fleet from disk.  Without it bulk jobs still run, in-process.
    """

    def __init__(
        self,
        engine: InferenceEngine,
        config: Optional[ServeConfig] = None,
        fleet_dir: Optional[str] = None,
    ):
        self.engine = engine
        self.config = config or ServeConfig()
        self.fleet_dir = fleet_dir
        self.metrics = ServerMetrics()
        self._sock: Optional[socket.socket] = None
        self.host: Optional[str] = None
        self.port: Optional[int] = None
        self._coalescers: Dict[str, _Coalescer] = {}
        self._state_lock = threading.Lock()
        self._connections: Dict[socket.socket, threading.Thread] = {}
        self._acceptor: Optional[threading.Thread] = None
        self._draining = False
        self._closed = False
        self._done = threading.Event()
        self._inflight = 0
        self._inflight_cv = threading.Condition()

    # -- lifecycle --------------------------------------------------------
    def start(self) -> Tuple[str, int]:
        """Bind, listen, spawn the acceptor; returns ``(host, port)``."""
        if self._sock is not None:
            raise RuntimeError("daemon already started")
        if not self.engine.pipelines:
            raise RuntimeError("refusing to serve an engine with no pipelines")
        if self.config.warm_start and self.config.bucket_batches:
            self._warm_buckets()
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind((self.config.host, self.config.port))
        sock.listen(128)
        self._sock = sock
        self.host, self.port = sock.getsockname()[:2]
        self._acceptor = threading.Thread(
            target=self._accept_loop, name="serve-acceptor", daemon=True
        )
        self._acceptor.start()
        return self.host, self.port

    def _warm_buckets(self) -> None:
        """Trace every bucket-sized plan signature before going live.

        Tracing an eval plan costs orders of magnitude more than
        replaying it; with bucketing the signature space is the small
        power-of-two ladder, so paying all of it at startup keeps live
        p99 flat from the very first request.
        """
        window = self.engine.config.window
        top = 1 << (self.config.max_batch_windows - 1).bit_length()
        bucket = 1
        while bucket <= top:
            windows = np.zeros((bucket, window), dtype=np.float32)
            for appliance in list(self.engine.pipelines):
                self.engine.localize_windows(appliance, windows)
            bucket <<= 1

    def serve_forever(self) -> None:
        """Block until :meth:`shutdown` completes (SIGTERM-friendly wait)."""
        while not self._done.wait(timeout=0.2):
            pass

    def __enter__(self) -> "ServingDaemon":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    @property
    def draining(self) -> bool:
        return self._draining

    def shutdown(self, drain: bool = True, timeout: Optional[float] = None) -> None:
        """Stop the daemon; with ``drain`` (default) finish queued work first.

        Ordering matters: stop admissions (``draining`` flag + closed
        listener) → let every coalescer empty its queue → wait for
        handler threads to write the in-flight responses → only then tear
        the sockets down.  No admitted request is ever silently dropped;
        whatever a hard (non-drain or timed-out) stop leaves queued is
        failed with a ``draining`` error rather than abandoned.
        """
        with self._state_lock:
            if self._closed:
                return
            self._draining = True
        deadline = time.monotonic() + (
            self.config.drain_timeout_s if timeout is None else timeout
        )
        if self._sock is not None:
            try:
                self._sock.close()  # acceptor's accept() raises OSError -> exits
            except OSError:  # pragma: no cover - close is best-effort
                pass
        coalescers = list(self._coalescers.values())
        if drain:
            for coalescer in coalescers:
                coalescer.stop()
            for coalescer in coalescers:
                coalescer.join(timeout=max(0.0, deadline - time.monotonic()))
            with self._inflight_cv:
                self._inflight_cv.wait_for(
                    lambda: self._inflight == 0,
                    timeout=max(0.0, deadline - time.monotonic()),
                )
        self._closed = True
        for coalescer in coalescers:
            if not drain:
                coalescer.stop()
            coalescer.flush_pending(
                "draining", "daemon shut down before the request was served"
            )
        for conn in list(self._connections):
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:  # pragma: no cover - close is best-effort
                pass
        for thread in list(self._connections.values()):
            thread.join(timeout=1.0)
        if self._acceptor is not None:
            self._acceptor.join(timeout=1.0)
        self._done.set()

    # -- socket plumbing --------------------------------------------------
    def _accept_loop(self) -> None:
        assert self._sock is not None
        while True:
            try:
                conn, _addr = self._sock.accept()
            except OSError:
                return  # listener closed by shutdown()
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            handler = threading.Thread(
                target=self._serve_connection, args=(conn,), daemon=True
            )
            with self._state_lock:
                if self._closed:
                    conn.close()
                    return
                self._connections[conn] = handler
            handler.start()

    def _serve_connection(self, conn: socket.socket) -> None:
        reader = FrameReader(self.config.max_frame_bytes)
        try:
            while True:
                try:
                    chunk = conn.recv(65536)
                except OSError:
                    return
                if not chunk:
                    return
                pending = True
                first = True
                while pending:
                    pending = False
                    try:
                        # After a bad line, drain() resumes with the valid
                        # frames that arrived in the same chunk behind it.
                        for request in reader.feed(chunk) if first else reader.drain():
                            self._dispatch(conn, request)
                    except FrameTooLarge as exc:
                        # No resync is possible inside an oversized line:
                        # answer once, then drop the connection.
                        self.metrics.record_error("frame_too_large")
                        self._send(
                            conn, error_response(None, "frame_too_large", str(exc))
                        )
                        return
                    except FrameError as exc:
                        # The bad line was consumed; the connection survives.
                        self.metrics.record_error("bad_frame")
                        self._send(conn, error_response(None, "bad_frame", str(exc)))
                        pending = True
                        first = False
        finally:
            with self._state_lock:
                self._connections.pop(conn, None)
            try:
                conn.close()
            except OSError:  # pragma: no cover - close is best-effort
                pass

    def _send(self, conn: socket.socket, response: Dict[str, object]) -> bool:
        try:
            conn.sendall(encode_frame(response))
            return True
        except (OSError, ValueError):
            return False  # client went away; nothing left to tell it

    # -- dispatch ---------------------------------------------------------
    def _dispatch(self, conn: socket.socket, request: Dict[str, object]) -> None:
        op = request.get("op")
        self.metrics.record_request(str(op))
        with self._inflight_cv:
            self._inflight += 1
        try:
            if op == "ping":
                self._send(conn, ok_response(request, {"pong": True}))
            elif op == "metrics":
                self._send(conn, ok_response(request, self._metrics_snapshot()))
            elif op == "score":
                self._handle_score(conn, request)
            elif op == "store":
                self._handle_store(conn, request)
            elif op == "shutdown":
                self._handle_shutdown(conn, request)
            else:
                self._fail(conn, request, "unknown_op", f"unknown op {op!r}")
        finally:
            with self._inflight_cv:
                self._inflight -= 1
                self._inflight_cv.notify_all()

    def _fail(
        self,
        conn: socket.socket,
        request: Dict[str, object],
        code: str,
        message: str,
        retry_after_ms: Optional[int] = None,
    ) -> None:
        self.metrics.record_error(code)
        self._send(conn, error_response(request, code, message, retry_after_ms))

    # -- score ------------------------------------------------------------
    def _handle_score(self, conn: socket.socket, request: Dict[str, object]) -> None:
        t_start = time.perf_counter()
        appliance = request.get("appliance")
        if not isinstance(appliance, str):
            return self._fail(conn, request, "bad_request", "missing 'appliance'")
        if appliance not in self.engine.pipelines:
            return self._fail(
                conn,
                request,
                "unknown_appliance",
                f"no pipeline registered for {appliance!r}; "
                f"serving {sorted(self.engine.pipelines)}",
            )
        if "series" not in request:
            return self._fail(conn, request, "bad_request", "missing 'series'")
        try:
            series = decode_series(request["series"])
        except FrameError as exc:
            return self._fail(conn, request, "bad_request", str(exc))
        if series.size == 0:
            return self._fail(conn, request, "bad_request", "series is empty")
        try:
            aggregate, plan, windows = self.engine.window_series(series)
        except ValueError as exc:
            return self._fail(conn, request, "bad_request", str(exc))
        if self._draining:
            return self._fail(
                conn,
                request,
                "draining",
                "daemon is draining; retry against another replica",
                retry_after_ms=self.metrics.retry_after_ms(self.config.queue_depth),
            )

        item = _PendingScore(appliance, aggregate, plan, windows)
        item.deadline = t_start + self.config.request_timeout_s
        coalescer = self._coalescer_for(appliance)
        try:
            coalescer.queue.put_nowait(item)
        except queue.Full:
            return self._fail(
                conn,
                request,
                "overloaded",
                f"appliance {appliance!r} queue is full "
                f"({self.config.queue_depth} pending requests)",
                retry_after_ms=self.metrics.retry_after_ms(self.config.queue_depth),
            )
        if not item.done.wait(timeout=self.config.request_timeout_s):
            return self._fail(
                conn,
                request,
                "deadline_exceeded",
                f"request exceeded its {self.config.request_timeout_s}s deadline",
                retry_after_ms=self.metrics.retry_after_ms(self.config.queue_depth),
            )
        if item.error is not None:
            code, message = item.error
            retry = (
                self.metrics.retry_after_ms(self.config.queue_depth)
                if code in ("overloaded", "draining", "deadline_exceeded")
                else None
            )
            return self._fail(conn, request, code, message, retry)

        result = item.result
        assert result is not None
        latency = time.perf_counter() - t_start
        self.metrics.record_latency(latency)
        # Mirror the request's series encoding in the response.
        compact = isinstance(request["series"], str)
        payload: Dict[str, object] = {
            "appliance": appliance,
            "n_samples": plan.series_length,
            "n_windows": plan.n_windows,
            "window": plan.window,
            "stride": plan.stride,
            "detection_rate": result.detection_rate,
            "cache_hits": item.cache_hits,
            "coalesced_requests": item.batch_requests,
            "coalesced_windows": item.batch_windows,
            "server_ms": latency * 1e3,
            "soft_status": (
                encode_series(result.soft_status)
                if compact
                else [float(v) for v in result.soft_status]
            ),
            "status": (
                encode_series(result.status)
                if compact
                else [float(v) for v in result.status]
            ),
        }
        self._send(conn, ok_response(request, payload))

    def _coalescer_for(self, appliance: str) -> _Coalescer:
        """The appliance's coalescer thread, created lazily on first use."""
        coalescer = self._coalescers.get(appliance)
        if coalescer is not None:
            return coalescer
        with self._state_lock:
            coalescer = self._coalescers.get(appliance)
            if coalescer is None:
                coalescer = _Coalescer(
                    appliance, self.engine, self.config, self.metrics
                )
                self._coalescers[appliance] = coalescer
                coalescer.start()
        return coalescer

    # -- bulk store jobs --------------------------------------------------
    def _handle_store(self, conn: socket.socket, request: Dict[str, object]) -> None:
        store_path = request.get("store")
        if not isinstance(store_path, str):
            return self._fail(conn, request, "bad_request", "missing 'store'")
        appliances = request.get("appliances")
        house_ids = request.get("house_ids")
        for field_name, value in (("appliances", appliances), ("house_ids", house_ids)):
            if value is not None and not (
                isinstance(value, list) and all(isinstance(v, str) for v in value)
            ):
                return self._fail(
                    conn, request, "bad_request", f"{field_name!r} must be a string list"
                )
        try:
            workers = int(request.get("workers", 1))
        except (TypeError, ValueError):
            return self._fail(conn, request, "bad_request", "'workers' must be an int")
        if self._draining:
            return self._fail(
                conn, request, "draining", "daemon is draining; bulk job refused"
            )
        t_start = time.perf_counter()
        try:
            rows, workers_used, pool_rebuilds = self._run_store_job(
                store_path, house_ids, appliances, workers
            )
        except KeyError as exc:
            return self._fail(conn, request, "bad_request", str(exc))
        except (OSError, ValueError) as exc:
            return self._fail(
                conn, request, "bad_request", f"{type(exc).__name__}: {exc}"
            )
        except RuntimeError as exc:
            # Worker crashes that survived every pool rebuild.
            return self._fail(conn, request, "internal", str(exc))
        self._send(
            conn,
            ok_response(
                request,
                {
                    "store": store_path,
                    "n_households": len(rows),
                    "workers": workers_used,
                    "pool_rebuilds": pool_rebuilds,
                    "job_ms": (time.perf_counter() - t_start) * 1e3,
                    "rows": rows,
                },
            ),
        )

    def _run_store_job(
        self,
        store_path: str,
        house_ids: Optional[List[str]],
        appliances: Optional[List[str]],
        workers: int,
    ) -> Tuple[List[Dict[str, object]], int, int]:
        from ..data.store import MeterStore

        store = MeterStore(store_path)
        houses = list(store.house_ids if house_ids is None else house_ids)
        workers = max(1, min(workers, len(houses)))
        if workers == 1 or self.fleet_dir is None:
            # In-process path: shares the warm engine (and its result
            # cache) with interactive traffic, serialized by the engine
            # lock like everything else.
            rows = [
                _summarize_household(house_id, scores)
                for house_id, scores in self.engine.score_store(
                    store, houses, appliances
                )
            ]
            return rows, 1, 0
        for name in appliances or []:
            if name not in self.engine.pipelines:
                raise KeyError(f"no pipeline registered for appliance {name!r}")
        # Contiguous shards keep the output in input order after a plain
        # concatenation; `spawn` (not fork) because the daemon is
        # multithreaded and a forked child could inherit a held lock.
        import multiprocessing

        shards = [list(part) for part in np.array_split(houses, workers) if len(part)]
        engine_config = asdict(self.engine.config)
        spawn_ctx = multiprocessing.get_context("spawn")
        # Worker-crash recovery: a killed worker (OOM, chaos `kill`)
        # breaks the whole pool, losing even shards whose futures had not
        # started.  Rebuild the pool and resubmit only the shards without
        # results, bumping `attempt` so seeded fault decisions can change
        # between rounds.  Completed shard rows are never recomputed, and
        # input order is preserved by reassembling in shard order.
        results: List[Optional[List[Dict[str, object]]]] = [None] * len(shards)
        pending = list(range(len(shards)))
        rebuilds = 0
        pool = ProcessPoolExecutor(max_workers=len(shards), mp_context=spawn_ctx)
        try:
            for attempt in range(_MAX_POOL_REBUILDS + 1):
                futures = {
                    index: pool.submit(
                        _score_store_shard,
                        self.fleet_dir,
                        engine_config,
                        store_path,
                        shards[index],
                        appliances,
                        attempt,
                    )
                    for index in pending
                }
                failed = []
                for index, future in futures.items():
                    try:
                        results[index] = future.result()
                    except BrokenProcessPool:
                        failed.append(index)
                if not failed:
                    break
                pending = failed
                if attempt == _MAX_POOL_REBUILDS:
                    raise RuntimeError(
                        f"store job workers for {len(pending)} shard(s) kept "
                        f"crashing after {rebuilds} pool rebuild(s); giving up"
                    )
                pool.shutdown(wait=False)
                pool = ProcessPoolExecutor(
                    max_workers=len(pending), mp_context=spawn_ctx
                )
                rebuilds += 1
                self.metrics.record_pool_rebuild()
        finally:
            pool.shutdown(wait=False)
        rows = [row for shard_rows in results for row in shard_rows]
        return rows, len(shards), rebuilds

    # -- metrics / shutdown ops -------------------------------------------
    def _metrics_snapshot(self) -> Dict[str, object]:
        queues = {
            name: coalescer.queue.qsize()
            for name, coalescer in self._coalescers.items()
        }
        return self.metrics.snapshot(
            extra={
                "appliances": sorted(self.engine.pipelines),
                "queue_depth": queues,
                "draining": self._draining,
                "config": {
                    "coalesce": self.config.coalesce,
                    "max_batch_windows": self.config.max_batch_windows,
                    "max_wait_us": self.config.max_wait_us,
                    "queue_limit": self.config.queue_depth,
                    "window": self.engine.config.window,
                    "stride": self.engine.config.stride
                    or self.engine.config.window,
                    "batch_size": self.engine.config.batch_size,
                },
                "buffer_pool": self.engine.buffer_pool_stats(),
                "plan": self.engine.plan_stats(),
            }
        )

    def _handle_shutdown(self, conn: socket.socket, request: Dict[str, object]) -> None:
        if not self.config.allow_shutdown:
            return self._fail(
                conn, request, "bad_request", "shutdown is disabled on this daemon"
            )
        self._send(conn, ok_response(request, {"draining": True}))
        # Drain from a fresh thread: this handler IS one of the threads
        # shutdown() waits on, so doing it inline would self-deadlock.
        threading.Thread(
            target=self.shutdown, kwargs={"drain": True}, daemon=True
        ).start()
