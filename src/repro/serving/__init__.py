"""``repro.serving`` — batched, long-series, multi-appliance inference.

The training-side packages (:mod:`repro.core`, :mod:`repro.experiments`)
operate on pre-cut windows.  Serving a household means the opposite
direction: one long aggregate series, many appliances, and a latency
budget.  This package provides that layer:

* :mod:`repro.serving.windowing` — :class:`SlidingWindowPlan`: configurable
  stride/overlap slicing with edge padding (no dropped tail) and
  overlap-aware stitching of per-window scores back onto the series;
* :mod:`repro.serving.engine` — :class:`InferenceEngine`: registers many
  per-appliance :class:`~repro.core.CamAL` pipelines, windows the
  aggregate once, runs all appliances over the shared window batch with
  micro-batching and an optional LRU result cache, and returns stitched
  per-timestamp status covering 100 % of the input.  Its
  :meth:`~InferenceEngine.score_store` bulk path streams every household
  of an ingested :class:`repro.data.MeterStore` in shard-sized chunks;
* :mod:`repro.serving.server` — :class:`ServingDaemon`: the long-lived
  fleet-scale layer (``repro serve``).  Serves concurrent scoring
  requests over a newline-delimited-JSON TCP protocol
  (:mod:`repro.serving.protocol`) with cross-request micro-batch
  coalescing, per-appliance admission control/backpressure, graceful
  SIGTERM drain, shard-parallel bulk store jobs, and a metrics endpoint;
* :mod:`repro.serving.client` — :class:`ServingClient`: the blocking
  reference client (``score_series`` / ``submit_store_job`` /
  ``metrics``).

See ``docs/serving.md`` for the windowing/stitching semantics, the
daemon's protocol/metrics specification, and ``docs/data.md`` for the
store-backed bulk path.
"""

from .client import RETRYABLE_CODES, ScoreResult, ServerError, ServingClient
from .engine import (
    ApplianceSeriesResult,
    ApplianceStoreScores,
    EngineConfig,
    HouseholdInference,
    HouseholdScores,
    InferenceEngine,
)
from .server import ServeConfig, ServingDaemon
from .windowing import (
    SlidingWindowPlan,
    plan_windows,
    slice_windows,
    stitch_mean,
    stitch_windows,
)

__all__ = [
    "SlidingWindowPlan",
    "plan_windows",
    "slice_windows",
    "stitch_mean",
    "stitch_windows",
    "EngineConfig",
    "InferenceEngine",
    "ApplianceSeriesResult",
    "HouseholdInference",
    "ApplianceStoreScores",
    "HouseholdScores",
    "ServeConfig",
    "ServingDaemon",
    "ServingClient",
    "ScoreResult",
    "ServerError",
    "RETRYABLE_CODES",
]
