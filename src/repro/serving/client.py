"""Blocking reference client of the serving daemon.

Doubles as the protocol's reference implementation: everything it does
is a one-frame request / one-frame response exchange over the
newline-delimited-JSON protocol of :mod:`repro.serving.protocol`, so a
client in any language only has to mirror this file.

Typical use::

    from repro.serving.client import ServingClient

    with ServingClient("127.0.0.1", 7733) as client:
        result = client.score_series("kettle", aggregate_watts)
        print(result.status.mean(), client.metrics()["latency_ms"])

Series ship base64-float32 by default (compact and bit-exact); responses
mirror the request encoding, and :class:`ScoreResult` hands back float32
arrays **bit-identical** to a local ``engine.run`` on the same series.
"""

from __future__ import annotations

import socket
import time
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..analysis import faults
from .protocol import (
    FrameReader,
    decode_series,
    encode_frame,
    encode_series,
)

__all__ = ["ServerError", "ScoreResult", "ServingClient"]

#: ``ServerError`` codes worth retrying: the daemon is alive and said
#: "later" (backpressure) or "going away" (a rolling restart a fresh
#: connection may outlive).  Validation errors and internal errors are
#: not retried — the same request would fail the same way.
RETRYABLE_CODES = ("overloaded", "draining", "deadline_exceeded")


class ServerError(RuntimeError):
    """An ``ok: false`` response, surfaced with its code and retry hint."""

    def __init__(self, code: str, message: str, retry_after_ms: Optional[int] = None):
        super().__init__(f"[{code}] {message}")
        self.code = code
        self.retry_after_ms = retry_after_ms


@dataclass
class ScoreResult:
    """Decoded ``score`` response for one series."""

    appliance: str
    soft_status: np.ndarray  # (T,) stitched soft score, float32
    status: np.ndarray  # (T,) stitched binary status, float32
    n_windows: int
    detection_rate: float
    cache_hits: int
    #: How many concurrent requests shared this request's fused forward
    #: call (1 = no coalescing happened).
    coalesced_requests: int
    #: Total windows in that fused call.
    coalesced_windows: int
    #: Server-side latency (admission to response build), milliseconds.
    server_ms: float


class ServingClient:
    """Blocking line-protocol client; one in-flight request at a time."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 7733,
        timeout: float = 120.0,
        compact: bool = True,
    ):
        self.host = host
        self.port = port
        self.timeout = timeout
        self.compact = compact
        self._closed = False
        self._sock = self._connect()
        self._reader = FrameReader()
        self._next_id = 0

    # -- plumbing ---------------------------------------------------------
    def _connect(self) -> socket.socket:
        sock = socket.create_connection((self.host, self.port), timeout=self.timeout)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        return sock

    def _reconnect(self) -> None:
        """Drop the (possibly dead) connection and dial a fresh one."""
        try:
            self._sock.close()
        except OSError:  # pragma: no cover - close is best-effort
            pass
        self._sock = self._connect()
        self._reader = FrameReader()

    def _call(self, request: Dict[str, object]) -> Dict[str, object]:
        """One request/response round trip; raises :class:`ServerError`."""
        if self._closed:
            raise ConnectionError(
                f"client for {self.host}:{self.port} is closed; create a new "
                f"ServingClient to keep talking to the daemon"
            )
        self._next_id += 1
        request = dict(request, id=self._next_id)
        try:
            self._sock.sendall(encode_frame(request))
        except OSError as exc:
            raise ConnectionError(
                f"serving daemon at {self.host}:{self.port} is gone "
                f"mid-request (send failed: {exc}); it may have crashed or "
                f"been restarted — reconnect (score_with_retry does this "
                f"automatically)"
            ) from exc
        response = self._read_frame()
        if response.get("ok"):
            result = response.get("result")
            return result if isinstance(result, dict) else {}
        error = response.get("error") or {}
        raise ServerError(
            str(error.get("code", "unknown")),
            str(error.get("message", "")),
            error.get("retry_after_ms"),
        )

    def _read_frame(self) -> Dict[str, object]:
        while True:
            if faults.ACTIVE is not None:
                faults.ACTIVE.fire("serve.socket_recv")
            chunk = self._sock.recv(65536)
            if not chunk:
                raise ConnectionError(
                    f"serving daemon at {self.host}:{self.port} closed the "
                    f"connection mid-response; it may have crashed or been "
                    f"restarted — reconnect (score_with_retry does this "
                    f"automatically)"
                )
            for frame in self._reader.feed(chunk):
                return frame

    # -- protocol verbs ---------------------------------------------------
    def ping(self) -> bool:
        return bool(self._call({"op": "ping"}).get("pong"))

    def score_series(self, appliance: str, series: np.ndarray) -> ScoreResult:
        """Score one raw (Watt) aggregate series for one appliance."""
        series = np.ascontiguousarray(series, dtype=np.float32)
        payload: Dict[str, object] = {
            "op": "score",
            "appliance": appliance,
            "series": (
                encode_series(series) if self.compact else [float(v) for v in series]
            ),
        }
        result = self._call(payload)
        return ScoreResult(
            appliance=str(result["appliance"]),
            soft_status=decode_series(result["soft_status"]),
            status=decode_series(result["status"]),
            n_windows=int(result["n_windows"]),
            detection_rate=float(result["detection_rate"]),
            cache_hits=int(result.get("cache_hits", 0)),
            coalesced_requests=int(result.get("coalesced_requests", 1)),
            coalesced_windows=int(result.get("coalesced_windows", 0)),
            server_ms=float(result.get("server_ms", 0.0)),
        )

    def score_with_retry(
        self,
        appliance: str,
        series: np.ndarray,
        max_attempts: int = 5,
        base_backoff_s: float = 0.05,
        max_backoff_s: float = 2.0,
        seed: int = 0,
    ) -> ScoreResult:
        """:meth:`score_series` with reconnect + capped jittered backoff.

        Retries the failures a healthy client should absorb: connection
        loss (dial a fresh socket — score requests are idempotent, so a
        request cut mid-flight is safe to resend) and the retryable
        ``ServerError`` codes (:data:`RETRYABLE_CODES`).  The sleep
        before attempt *n* is ``base_backoff_s * 2**(n-1)`` capped at
        ``max_backoff_s``, scaled by a seeded jitter in ``[0.5, 1.5)``
        (deterministic per client; jitter de-synchronizes a cohort of
        retrying clients), and never shorter than the server's own
        ``retry_after_ms`` hint when one was given.  Non-retryable errors
        and exhaustion re-raise the last failure.
        """
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        rng = np.random.default_rng(seed)
        last_error: Optional[BaseException] = None
        for attempt in range(max_attempts):
            if attempt > 0:
                backoff = min(
                    base_backoff_s * (2.0 ** (attempt - 1)), max_backoff_s
                )
                wait = backoff * (0.5 + rng.random())
                hint = getattr(last_error, "retry_after_ms", None)
                if hint is not None:
                    wait = max(wait, float(hint) / 1000.0)
                time.sleep(wait)
            try:
                return self.score_series(appliance, series)
            except ServerError as exc:
                if exc.code not in RETRYABLE_CODES:
                    raise
                last_error = exc
            except (ConnectionError, OSError) as exc:
                last_error = exc
                try:
                    self._reconnect()
                except OSError as dial_exc:
                    last_error = dial_exc
        assert last_error is not None
        raise last_error

    def submit_store_job(
        self,
        store: str,
        appliances: Optional[List[str]] = None,
        house_ids: Optional[List[str]] = None,
        workers: int = 1,
    ) -> Dict[str, object]:
        """Bulk-score a meter store on the daemon; returns the job summary.

        The result holds one compact row per household (counts, ON
        fraction and a blake2b digest of the status bytes — see
        ``docs/serving.md``), plus ``workers`` actually used and the job
        wall time.  ``workers > 1`` fans household shards over a process
        pool when the daemon was started with a fleet directory.
        """
        request: Dict[str, object] = {"op": "store", "store": store, "workers": workers}
        if appliances is not None:
            request["appliances"] = list(appliances)
        if house_ids is not None:
            request["house_ids"] = list(house_ids)
        return self._call(request)

    def metrics(self) -> Dict[str, object]:
        """The daemon's metrics snapshot (see ``docs/serving.md`` schema)."""
        return self._call({"op": "metrics"})

    def shutdown_server(self) -> bool:
        """Ask the daemon to drain and exit (when it allows remote shutdown)."""
        return bool(self._call({"op": "shutdown"}).get("draining"))

    # -- lifecycle --------------------------------------------------------
    def close(self) -> None:
        """Close the connection; safe to call more than once."""
        if self._closed:
            return
        self._closed = True
        try:
            self._sock.close()
        except OSError:  # pragma: no cover - close is best-effort
            pass

    def __enter__(self) -> "ServingClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
