"""UNet-NILM baseline (Faustine et al., NILM'20).

A 1-D U-Net adapted to appliance state detection: an encoder of strided
(pooled) conv blocks, a bottleneck, and a decoder with skip connections,
ending in per-timestamp logits.  The heaviest CNN in the comparison
(Table II: 3197K parameters).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from .. import nn
from ..nn.tensor import Tensor, concat


@dataclass(frozen=True)
class UNetConfig:
    """Sizes chosen to land near Table II's 3197K trainable parameters."""

    channels: Tuple[int, ...] = (56, 112, 224)  # encoder widths
    bottleneck: int = 448
    kernel_size: int = 5
    seed: int = 0


class _DoubleConv(nn.Module):
    """Two ConvBlock(Conv -> BN -> ReLU) stages at a fixed width."""

    def __init__(self, in_ch: int, out_ch: int, kernel: int, seed: int):
        super().__init__()
        self.conv1 = nn.Conv1d(in_ch, out_ch, kernel, seed=seed)
        self.norm1 = nn.BatchNorm1d(out_ch)
        self.conv2 = nn.Conv1d(out_ch, out_ch, kernel, seed=seed + 1)
        self.norm2 = nn.BatchNorm1d(out_ch)

    def forward(self, x: Tensor) -> Tensor:
        x = self.norm1(self.conv1(x)).relu()
        return self.norm2(self.conv2(x)).relu()


class UNetNILM(nn.Module):
    """1-D U-Net producing frame logits ``(N, L)``.

    Input length must be divisible by ``2 ** len(channels)`` (510 and the
    fast-preset window 128 both are, for the default 3-level encoder).
    """

    def __init__(self, config: UNetConfig = UNetConfig()):
        super().__init__()
        self.config = config
        base = config.seed * 100
        k = config.kernel_size

        downs = []
        in_ch = 1
        for i, width in enumerate(config.channels):
            downs.append(_DoubleConv(in_ch, width, k, base + 10 * i))
            in_ch = width
        self.downs = nn.ModuleList(downs)
        self.pool = nn.MaxPool1d(2)
        self.bottleneck = _DoubleConv(in_ch, config.bottleneck, k, base + 80)

        ups = []
        in_ch = config.bottleneck
        for i, width in enumerate(reversed(config.channels)):
            # After upsampling, the skip connection concatenates `width`
            # channels onto the upsampled `in_ch`.
            ups.append(_DoubleConv(in_ch + width, width, k, base + 200 + 10 * i))
            in_ch = width
        self.ups = nn.ModuleList(ups)
        self.up = nn.UpsampleNearest1d(2)
        self.head = nn.Conv1d(in_ch, 1, 1, seed=base + 300)

    def forward(self, x: Tensor) -> Tensor:
        length = x.shape[2]
        factor = 2 ** len(self.downs)
        if length % factor != 0:
            raise ValueError(
                f"UNetNILM needs input length divisible by {factor}, got {length}"
            )
        skips = []
        for down in self.downs:
            x = down(x)
            skips.append(x)
            x = self.pool(x)
        x = self.bottleneck(x)
        for up_block, skip in zip(self.ups, reversed(skips)):
            x = self.up(x)
            x = up_block(concat([skip, x], axis=1))
        out = self.head(x)  # (N, 1, L)
        n, _, l_out = out.shape
        return out.reshape(n, l_out)
