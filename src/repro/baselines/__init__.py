"""``repro.baselines`` — the NILM comparison methods of §V-C.

Strongly supervised sequence-to-sequence baselines (trained with one label
per timestamp): :class:`UNetNILM`, :class:`TPNILM`, :class:`BiGRUNILM`,
:class:`TransNILM`, :class:`CRNN`.  Weakly supervised baseline (one label
per window): :class:`CRNN` trained through ``forward_weak`` (MIL pooling).
:class:`CombinatorialOptimization` is the historical Hart-1992 reference.
"""

from .bigru import BiGRUConfig, BiGRUNILM
from .co import CombinatorialOptimization
from .crnn import CRNN, CRNNConfig
from .tpnilm import TPNILM, TPNILMConfig
from .transnilm import TransNILM, TransNILMConfig
from .unet_nilm import UNetConfig, UNetNILM

__all__ = [
    "CRNN",
    "CRNNConfig",
    "BiGRUNILM",
    "BiGRUConfig",
    "UNetNILM",
    "UNetConfig",
    "TPNILM",
    "TPNILMConfig",
    "TransNILM",
    "TransNILMConfig",
    "CombinatorialOptimization",
]
