"""CRNN baseline (Tanoni et al., IEEE TSG 2023) — strong and weak variants.

A convolutional recurrent network: a stack of ConvBlocks extracts local
features, a bidirectional GRU models temporal context, and a linear head
emits per-timestamp (frame) logits.

* **CRNN (strong)** is trained with frame-level BCE on per-timestamp labels.
* **CRNN-weak** is the multiple-instance-learning variant: frame
  probabilities are pooled into one sequence probability with *linear
  softmax pooling* ``p_seq = sum(p_t^2) / sum(p_t)`` and trained with
  window-level BCE only.  Localization at test time still reads the frame
  probabilities.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from .. import nn
from ..nn.tensor import Tensor


@dataclass(frozen=True)
class CRNNConfig:
    """Sizes chosen to land near Table II's 1049K trainable parameters."""

    conv_channels: Tuple[int, ...] = (32, 64, 128)
    kernel_size: int = 5
    hidden_size: int = 350
    dropout: float = 0.1
    seed: int = 0


class CRNN(nn.Module):
    """Conv stack -> biGRU -> frame logits ``(N, L)``."""

    def __init__(self, config: CRNNConfig = CRNNConfig()):
        super().__init__()
        self.config = config
        base = config.seed * 100
        blocks = []
        in_ch = 1
        for i, out_ch in enumerate(config.conv_channels):
            blocks.append(nn.Conv1d(in_ch, out_ch, config.kernel_size, seed=base + i))
            blocks.append(nn.BatchNorm1d(out_ch))
            blocks.append(nn.ReLU())
            in_ch = out_ch
        self.encoder = nn.Sequential(*blocks)
        self.gru = nn.GRU(in_ch, config.hidden_size, bidirectional=True, seed=base + 50)
        self.dropout = nn.Dropout(config.dropout, seed=base + 60)
        self.head = nn.Linear(2 * config.hidden_size, 1, seed=base + 70)

    def forward(self, x: Tensor) -> Tensor:
        """Frame logits ``(N, L)`` from ``(N, 1, L)`` input."""
        feats = self.encoder(x)  # (N, C, L)
        seq = feats.transpose(0, 2, 1)  # (N, L, C)
        hidden = self.dropout(self.gru(seq))  # (N, L, 2H)
        frame = self.head(hidden)  # (N, L, 1)
        n, length, _ = frame.shape
        return frame.reshape(n, length)

    def forward_weak(self, x: Tensor) -> Tensor:
        """Pooled sequence logit ``(N,)`` via linear softmax pooling (MIL)."""
        frame_logits = self.forward(x)
        probs = frame_logits.sigmoid()
        eps = 1e-6
        pooled = (probs * probs).sum(axis=1) / (probs.sum(axis=1) + eps)
        pooled = pooled.clip(eps, 1.0 - eps)
        # Convert the pooled probability back to a logit so the shared
        # BCE-with-logits loss applies.
        return (pooled / (1.0 - pooled)).log()
