"""TransNILM baseline (Cheng et al., HDIS 2022).

A transformer-based extension of temporal pooling: convolutional embedding,
self-attention encoder blocks, a temporal pooling module and a decoder that
restores per-timestamp logits.  The heaviest model in the comparison
(Table II: 12418K parameters, dominated by the attention blocks).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from .. import nn
from ..nn import functional as F
from ..nn.tensor import Tensor, concat


@dataclass(frozen=True)
class TransNILMConfig:
    """Sizes chosen to land near Table II's 12418K trainable parameters."""

    embed_dim: int = 512
    num_heads: int = 8
    num_layers: int = 4
    ff_dim: int = 2048
    pool_scales: Tuple[int, ...] = (1, 2, 4, 8)
    downsample: int = 4  # conv-embedding pooling factor
    kernel_size: int = 5
    dropout: float = 0.1
    seed: int = 0


class TransNILM(nn.Module):
    """Conv embedding -> transformer encoder -> temporal pooling -> decoder."""

    def __init__(self, config: TransNILMConfig = TransNILMConfig()):
        super().__init__()
        self.config = config
        base = config.seed * 100
        self.embed_conv = nn.Conv1d(1, config.embed_dim, config.kernel_size, seed=base + 1)
        self.embed_norm = nn.BatchNorm1d(config.embed_dim)
        self.embed_pool = nn.MaxPool1d(config.downsample)
        self.blocks = nn.ModuleList(
            [
                nn.TransformerEncoderLayer(
                    config.embed_dim,
                    config.num_heads,
                    ff_dim=config.ff_dim,
                    dropout=config.dropout,
                    seed=base + 10 + i,
                )
                for i in range(config.num_layers)
            ]
        )
        branch_ch = max(config.embed_dim // len(config.pool_scales), 1)
        self.branches = nn.ModuleList(
            [
                nn.Conv1d(config.embed_dim, branch_ch, 1, seed=base + 60 + i)
                for i in range(len(config.pool_scales))
            ]
        )
        merged = config.embed_dim + branch_ch * len(config.pool_scales)
        self.decoder_conv = nn.Conv1d(merged, config.embed_dim // 2, 1, seed=base + 90)
        self.decoder_norm = nn.BatchNorm1d(config.embed_dim // 2)
        self.head = nn.Conv1d(config.embed_dim // 2, 1, 1, seed=base + 91)

    def forward(self, x: Tensor) -> Tensor:
        length = x.shape[2]
        feats = self.embed_pool(self.embed_norm(self.embed_conv(x)).relu())
        seq = feats.transpose(0, 2, 1)  # (N, L', D)
        for block in self.blocks:
            seq = block(seq)
        feats = seq.transpose(0, 2, 1)  # (N, D, L')
        l_enc = feats.shape[2]
        branches = [feats]
        for scale, branch in zip(self.config.pool_scales, self.branches):
            pooled = F.avg_pool1d(feats, min(scale, l_enc)) if scale > 1 else feats
            branches.append(F.upsample_to1d(branch(pooled).relu(), l_enc))
        merged = concat(branches, axis=1)
        decoded = self.decoder_norm(self.decoder_conv(merged)).relu()
        out = self.head(F.upsample_to1d(decoded, length))
        n, _, l_out = out.shape
        return out.reshape(n, l_out)
