"""TPNILM baseline (Massidda et al., Applied Sciences 2020).

Temporal-pooling NILM: a convolutional encoder downsamples the sequence, a
temporal pooling module summarizes it at several scales (PSP-style), the
pooled context is concatenated back and a light decoder restores the
per-timestamp resolution (Table II: 328K parameters).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from .. import nn
from ..nn import functional as F
from ..nn.tensor import Tensor, concat


@dataclass(frozen=True)
class TPNILMConfig:
    """Sizes chosen to land near Table II's 328K trainable parameters."""

    channels: Tuple[int, ...] = (56, 112, 224)  # encoder widths (pool /2 each)
    pool_scales: Tuple[int, ...] = (1, 2, 4, 8)
    kernel_size: int = 5
    seed: int = 0


class TPNILM(nn.Module):
    """Encoder + temporal pooling + decoder, frame logits ``(N, L)``."""

    def __init__(self, config: TPNILMConfig = TPNILMConfig()):
        super().__init__()
        self.config = config
        base = config.seed * 100
        k = config.kernel_size

        encoder = []
        in_ch = 1
        for i, width in enumerate(config.channels):
            encoder.append(nn.Conv1d(in_ch, width, k, seed=base + i))
            encoder.append(nn.BatchNorm1d(width))
            encoder.append(nn.ReLU())
            encoder.append(nn.MaxPool1d(2))
            in_ch = width
        self.encoder = nn.Sequential(*encoder)
        self.enc_channels = in_ch

        # One 1x1 conv per pooling scale, shrinking to C / n_scales each.
        branch_ch = max(in_ch // len(config.pool_scales), 1)
        self.branches = nn.ModuleList(
            [
                nn.Conv1d(in_ch, branch_ch, 1, seed=base + 50 + i)
                for i in range(len(config.pool_scales))
            ]
        )
        self.branch_channels = branch_ch

        merged = in_ch + branch_ch * len(config.pool_scales)
        self.decoder_conv = nn.Conv1d(merged, in_ch, 1, seed=base + 90)
        self.decoder_norm = nn.BatchNorm1d(in_ch)
        self.head = nn.Conv1d(in_ch, 1, 1, seed=base + 91)

    def forward(self, x: Tensor) -> Tensor:
        length = x.shape[2]
        feats = self.encoder(x)  # (N, C, L / 2^depth)
        l_enc = feats.shape[2]
        branches = [feats]
        for scale, branch in zip(self.config.pool_scales, self.branches):
            pooled = F.avg_pool1d(feats, min(scale, l_enc)) if scale > 1 else feats
            squeezed = branch(pooled).relu()
            branches.append(F.upsample_to1d(squeezed, l_enc))
        merged = concat(branches, axis=1)
        decoded = self.decoder_norm(self.decoder_conv(merged)).relu()
        out = self.head(F.upsample_to1d(decoded, length))  # (N, 1, L)
        n, _, l_out = out.shape
        return out.reshape(n, l_out)
