"""Combinatorial Optimization baseline (Hart, Proc. IEEE 1992).

The original NILM formulation: at each timestamp, find the subset of known
appliances whose summed rated powers best explains the aggregate reading.
Included as a historical reference point (§II-A1); it needs no training but
requires the rated power of every appliance.
"""

from __future__ import annotations

from itertools import chain, combinations
from typing import Dict, Sequence, Tuple

import numpy as np


def _all_subsets(names: Sequence[str]):
    return chain.from_iterable(combinations(names, r) for r in range(len(names) + 1))


class CombinatorialOptimization:
    """Per-timestamp subset search over rated appliance powers.

    Args:
        rated_powers: appliance name -> rated power in Watts.
        base_load_watts: constant household baseline subtracted from the
            aggregate before matching.
    """

    def __init__(self, rated_powers: Dict[str, float], base_load_watts: float = 150.0):
        if not rated_powers:
            raise ValueError("CO needs at least one appliance")
        if len(rated_powers) > 16:
            raise ValueError("CO subset search is exponential; use <= 16 appliances")
        self.rated_powers = dict(rated_powers)
        self.base_load_watts = base_load_watts
        names = sorted(self.rated_powers)
        self._names = names
        subsets = list(_all_subsets(names))
        self._subset_powers = np.array(
            [sum(self.rated_powers[n] for n in subset) for subset in subsets],
            dtype=np.float64,
        )
        self._membership = {
            name: np.array([name in subset for subset in subsets]) for name in names
        }

    def predict_status(self, aggregate_watts: np.ndarray, appliance: str) -> np.ndarray:
        """Binary status of ``appliance`` for each timestamp of the input.

        Accepts 1-D series or ``(N, L)`` windows; returns the same shape.
        """
        if appliance not in self.rated_powers:
            raise KeyError(f"unknown appliance {appliance!r}")
        aggregate = np.asarray(aggregate_watts, dtype=np.float64)
        residual = np.maximum(aggregate - self.base_load_watts, 0.0)
        # (..., n_subsets) distance matrix; argmin picks the explanation.
        diff = np.abs(residual[..., None] - self._subset_powers)
        best = np.argmin(diff, axis=-1)
        return self._membership[appliance][best].astype(np.float32)
