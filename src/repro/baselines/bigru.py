"""BiGRU baseline (Precioso & Gomez-Ullate, J. Supercomputing 2023).

Convolution + bidirectional GRU + per-timestamp dense head; the lightest
recurrent baseline in the comparison (Table II: 244K parameters).
"""

from __future__ import annotations

from dataclasses import dataclass

from .. import nn
from ..nn.tensor import Tensor


@dataclass(frozen=True)
class BiGRUConfig:
    """Sizes chosen to land near Table II's 244K trainable parameters."""

    conv_channels: int = 64
    kernel_size: int = 5
    hidden_size: int = 172
    dropout: float = 0.1
    seed: int = 0


class BiGRUNILM(nn.Module):
    """Conv1d -> biGRU -> frame logits ``(N, L)``."""

    def __init__(self, config: BiGRUConfig = BiGRUConfig()):
        super().__init__()
        self.config = config
        base = config.seed * 100
        self.conv = nn.Conv1d(1, config.conv_channels, config.kernel_size, seed=base + 1)
        self.norm = nn.BatchNorm1d(config.conv_channels)
        self.gru = nn.GRU(
            config.conv_channels, config.hidden_size, bidirectional=True, seed=base + 2
        )
        self.dropout = nn.Dropout(config.dropout, seed=base + 3)
        self.head = nn.Linear(2 * config.hidden_size, 1, seed=base + 4)

    def forward(self, x: Tensor) -> Tensor:
        feats = self.norm(self.conv(x)).relu()  # (N, C, L)
        hidden = self.dropout(self.gru(feats.transpose(0, 2, 1)))  # (N, L, 2H)
        frame = self.head(hidden)
        n, length, _ = frame.shape
        return frame.reshape(n, length)
