"""CamAL reproduction: weakly supervised appliance localization.

Reproduction of *"Few Labels are All you Need: A Weakly Supervised
Framework for Appliance Localization in Smart-Meter Series"* (Petralia,
Boniol, Charpentier, Palpanas — ICDE 2025).

Package layout:

* :mod:`repro.nn` — from-scratch NumPy deep-learning substrate;
* :mod:`repro.simdata` — synthetic smart-meter corpora (Table I datasets);
* :mod:`repro.core` — CamAL (ResNet ensemble + CAM localization);
* :mod:`repro.serving` — batched long-series multi-appliance inference;
* :mod:`repro.baselines` — NILM comparison methods (§V-C);
* :mod:`repro.metrics` — evaluation measures (§V-D) and the Fig. 9 costs;
* :mod:`repro.experiments` — per-table/figure runners;
* :mod:`repro.training` — training subsystem (resumable loops,
  bit-for-bit checkpoint/resume; parallel ensemble training lives in
  :mod:`repro.core.ensemble`).

Quickstart::

    from repro import experiments as ex
    preset = ex.get_preset("fast")
    corpus = ex.build_corpus("ukdale", preset)
    case = ex.case_windows(corpus, "kettle", preset.window)
    result, camal = ex.run_camal(case, preset)
    print(result.f1)
"""

__version__ = "1.0.0"

from . import baselines, core, metrics, nn, serving, simdata, training

__all__ = [
    "nn",
    "simdata",
    "core",
    "serving",
    "baselines",
    "metrics",
    "training",
    "__version__",
]
