"""CamAL reproduction: weakly supervised appliance localization.

Reproduction of *"Few Labels are All you Need: A Weakly Supervised
Framework for Appliance Localization in Smart-Meter Series"* (Petralia,
Boniol, Charpentier, Palpanas — ICDE 2025).

Package layout:

* :mod:`repro.nn` — from-scratch NumPy deep-learning substrate;
* :mod:`repro.simdata` — synthetic smart-meter corpora (Table I datasets);
* :mod:`repro.data` — sharded on-disk meter store (memory-mapped shards
  + manifest with preprocessing provenance) and the streaming window
  pipeline feeding training and serving;
* :mod:`repro.core` — CamAL (ResNet ensemble + CAM localization);
* :mod:`repro.api` — the unified estimator API: the ``WeakLocalizer``
  contract, the model registry with named scale presets, and generic
  manifest persistence for CamAL *and* every baseline;
* :mod:`repro.serving` — batched long-series multi-appliance inference
  for any registered estimator;
* :mod:`repro.baselines` — NILM comparison networks (§V-C);
* :mod:`repro.metrics` — evaluation measures (§V-D) and the Fig. 9 costs;
* :mod:`repro.experiments` — per-table/figure runners;
* :mod:`repro.training` — training subsystem (resumable loops,
  bit-for-bit checkpoint/resume; parallel ensemble training lives in
  :mod:`repro.core.ensemble`);
* :mod:`repro.analysis` — invariant enforcement: the ``repro lint`` AST
  rules (CI-blocking), the ``REPRO_NN_SANITIZE=1`` runtime sanitizer, and
  the ``REPRO_*`` env-var registry (``docs/analysis.md``).

Quickstart — every model trains and serves through the same five verbs
(``fit`` / ``detect`` / ``localize`` / ``save`` / ``load``)::

    from repro import api
    import repro.experiments as ex

    preset = ex.get_preset("fast")
    corpus = ex.build_corpus("ukdale", preset)
    case = ex.case_windows(corpus, "kettle", preset.window)

    est = api.create("camal", scale="small")      # or "crnn", "tpnilm", ...
    est.fit(case.train.inputs, est.labels_for(case.train),
            case.val.inputs, est.labels_for(case.val))
    status = est.predict_status(case.test.inputs)  # (N, L) binary
    est.save("models/kettle")

    same = api.load_estimator("models/kettle")     # bit-identical predictions
"""

__version__ = "1.0.0"

from . import (
    analysis,
    api,
    baselines,
    core,
    data,
    metrics,
    nn,
    serving,
    simdata,
    training,
)

__all__ = [
    "analysis",
    "nn",
    "simdata",
    "data",
    "core",
    "api",
    "serving",
    "baselines",
    "metrics",
    "training",
    "__version__",
]
