"""Recurrent layers: GRU cell, (bi)directional GRU over sequences.

The GRU follows the PyTorch gate convention:

    r_t = sigmoid(W_ir x_t + b_ir + W_hr h_{t-1} + b_hr)
    z_t = sigmoid(W_iz x_t + b_iz + W_hz h_{t-1} + b_hz)
    n_t = tanh(W_in x_t + b_in + r_t * (W_hn h_{t-1} + b_hn))
    h_t = (1 - z_t) * n_t + z_t * h_{t-1}

The sequence loop builds the autograd graph timestep by timestep; backward
is handled by the engine (backpropagation through time).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from . import init
from .modules import Module
from .tensor import Tensor, concat, stack


class GRUCell(Module):
    """Single-step GRU cell operating on ``(N, input_size)`` inputs."""

    def __init__(self, input_size: int, hidden_size: int, seed: Optional[int] = None):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.input_size = input_size
        self.hidden_size = hidden_size
        # Stacked gate weights: rows ordered (reset, update, new).
        self.weight_ih = init.xavier_uniform((3 * hidden_size, input_size), rng)
        self.weight_hh = init.xavier_uniform((3 * hidden_size, hidden_size), rng)
        self.bias_ih = init.zeros_param(3 * hidden_size)
        self.bias_hh = init.zeros_param(3 * hidden_size)

    def forward(self, x: Tensor, h: Tensor) -> Tensor:
        gates_x = x.matmul(self.weight_ih.swapaxes(0, 1)) + self.bias_ih
        gates_h = h.matmul(self.weight_hh.swapaxes(0, 1)) + self.bias_hh
        hs = self.hidden_size
        r = (gates_x[:, 0:hs] + gates_h[:, 0:hs]).sigmoid()
        z = (gates_x[:, hs : 2 * hs] + gates_h[:, hs : 2 * hs]).sigmoid()
        n = (gates_x[:, 2 * hs : 3 * hs] + r * gates_h[:, 2 * hs : 3 * hs]).tanh()
        return (1.0 - z) * n + z * h


class GRU(Module):
    """GRU over ``(N, L, input_size)`` sequences, optionally bidirectional.

    Returns the full output sequence ``(N, L, D * hidden_size)`` where
    ``D = 2`` if bidirectional.
    """

    def __init__(
        self,
        input_size: int,
        hidden_size: int,
        bidirectional: bool = False,
        seed: Optional[int] = None,
    ):
        super().__init__()
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.bidirectional = bidirectional
        self.cell_fw = GRUCell(input_size, hidden_size, seed=seed)
        if bidirectional:
            self.cell_bw = GRUCell(input_size, hidden_size, seed=None if seed is None else seed + 1)

    def _run_direction(self, x: Tensor, cell: GRUCell, reverse: bool) -> Tensor:
        n, length, _ = x.shape
        h = Tensor(np.zeros((n, cell.hidden_size), dtype=np.float32))
        outputs = []
        steps = range(length - 1, -1, -1) if reverse else range(length)
        for t in steps:
            h = cell(x[:, t, :], h)
            outputs.append(h)
        if reverse:
            outputs.reverse()
        return stack(outputs, axis=1)

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim != 3:
            raise ValueError(f"GRU expects (N, L, C) input, got shape {x.shape}")
        forward_seq = self._run_direction(x, self.cell_fw, reverse=False)
        if not self.bidirectional:
            return forward_seq
        backward_seq = self._run_direction(x, self.cell_bw, reverse=True)
        return concat([forward_seq, backward_seq], axis=2)
