"""Multi-head self-attention and a pre-norm transformer encoder layer.

Used by the TransNILM baseline.  Operates on ``(N, L, D)`` sequences.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from . import functional as F
from .layers import Dropout, LayerNorm, Linear, ReLU
from .modules import Module, Sequential
from .tensor import Tensor


class MultiHeadSelfAttention(Module):
    """Scaled dot-product self-attention with ``num_heads`` heads."""

    def __init__(self, dim: int, num_heads: int, dropout: float = 0.0, seed: Optional[int] = None):
        super().__init__()
        if dim % num_heads != 0:
            raise ValueError(f"dim {dim} not divisible by num_heads {num_heads}")
        self.dim = dim
        self.num_heads = num_heads
        self.head_dim = dim // num_heads
        base = 0 if seed is None else seed
        self.q_proj = Linear(dim, dim, seed=base + 1)
        self.k_proj = Linear(dim, dim, seed=base + 2)
        self.v_proj = Linear(dim, dim, seed=base + 3)
        self.out_proj = Linear(dim, dim, seed=base + 4)
        self.attn_dropout = Dropout(dropout, seed=base + 5)

    def _split_heads(self, x: Tensor) -> Tensor:
        n, length, _ = x.shape
        return x.reshape(n, length, self.num_heads, self.head_dim).transpose(0, 2, 1, 3)

    def forward(self, x: Tensor) -> Tensor:
        n, length, _ = x.shape
        q = self._split_heads(self.q_proj(x))
        k = self._split_heads(self.k_proj(x))
        v = self._split_heads(self.v_proj(x))
        scores = q.matmul(k.transpose(0, 1, 3, 2)) * (1.0 / math.sqrt(self.head_dim))
        weights = F.softmax(scores, axis=-1)
        weights = self.attn_dropout(weights)
        context = weights.matmul(v)  # (N, H, L, head_dim)
        merged = context.transpose(0, 2, 1, 3).reshape(n, length, self.dim)
        return self.out_proj(merged)


class TransformerEncoderLayer(Module):
    """Pre-norm transformer block: LN -> MHSA -> residual, LN -> FFN -> residual."""

    def __init__(
        self,
        dim: int,
        num_heads: int,
        ff_dim: Optional[int] = None,
        dropout: float = 0.0,
        seed: Optional[int] = None,
    ):
        super().__init__()
        ff_dim = ff_dim or 4 * dim
        base = 0 if seed is None else seed
        self.norm1 = LayerNorm(dim)
        self.attn = MultiHeadSelfAttention(dim, num_heads, dropout=dropout, seed=base + 10)
        self.norm2 = LayerNorm(dim)
        self.ff = Sequential(
            Linear(dim, ff_dim, seed=base + 20),
            ReLU(),
            Linear(ff_dim, dim, seed=base + 21),
        )
        self.dropout = Dropout(dropout, seed=base + 30)

    def forward(self, x: Tensor) -> Tensor:
        x = x + self.dropout(self.attn(self.norm1(x)))
        x = x + self.dropout(self.ff(self.norm2(x)))
        return x
