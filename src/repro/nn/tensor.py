"""Reverse-mode automatic differentiation on NumPy arrays.

This module is the foundation of the ``repro.nn`` substrate: a small but
complete autograd engine in the spirit of PyTorch's eager mode.  A
:class:`Tensor` wraps a ``numpy.ndarray`` and records, for every operation,
a backward closure plus references to its parent tensors.  Calling
:meth:`Tensor.backward` runs a topological sort over the recorded graph and
accumulates gradients into every tensor created with ``requires_grad=True``.

Only the primitives needed by the CamAL reproduction are implemented, but
each supports full NumPy broadcasting where that is meaningful.  Heavier
fused primitives (convolution, pooling, normalization, fused losses) live in
:mod:`repro.nn.functional` and plug into the same graph mechanism via
:meth:`Tensor._make_from`.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Sequence, Tuple, Union

import numpy as np

DEFAULT_DTYPE = np.float32

Number = Union[int, float]
TensorLike = Union["Tensor", np.ndarray, Number, Sequence]

_grad_enabled = True

#: Running count of graph nodes created (ops recorded with a backward
#: closure).  Regression tests diff this around inference passes to prove
#: that ``no_grad`` builds zero graph nodes.
_graph_nodes_created = 0


def graph_nodes_created() -> int:
    """Total autograd graph nodes recorded so far in this process."""
    return _graph_nodes_created


class no_grad:
    """Context manager disabling graph construction (true inference mode).

    Inside the context no backward closures are built and no forward state
    is saved for reuse in a backward pass; the fused primitives in
    :mod:`repro.nn.functional` additionally take allocation-light fast
    paths (see ``docs/nn.md``).
    """

    def __enter__(self):
        global _grad_enabled
        self._prev = _grad_enabled
        _grad_enabled = False
        return self

    def __exit__(self, exc_type, exc, tb):
        global _grad_enabled
        _grad_enabled = self._prev
        return False


def is_grad_enabled() -> bool:
    """Return whether operations currently record the autograd graph."""
    return _grad_enabled


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape``, undoing NumPy broadcasting."""
    if grad.shape == shape:
        return grad
    # Remove leading broadcast dimensions.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were size 1 in the original shape.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A NumPy-backed tensor participating in reverse-mode autodiff."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "op")

    def __init__(self, data: TensorLike, requires_grad: bool = False):
        if isinstance(data, Tensor):
            data = data.data
        arr = np.asarray(data)
        if arr.dtype != DEFAULT_DTYPE:
            arr = arr.astype(DEFAULT_DTYPE)
        self.data: np.ndarray = arr
        self.grad: Optional[np.ndarray] = None
        self.requires_grad: bool = bool(requires_grad)
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self._parents: Tuple[Tensor, ...] = ()
        self.op: str = "leaf"

    # ------------------------------------------------------------------
    # Graph construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _make_from(
        data: np.ndarray,
        parents: Iterable["Tensor"],
        backward: Callable[[np.ndarray], None],
        op: str = "",
    ) -> "Tensor":
        """Create a graph node from raw output data and a backward closure.

        ``backward`` receives the upstream gradient and is responsible for
        calling :meth:`_accumulate` on each parent that requires grad.
        """
        parents = tuple(parents)
        requires = _grad_enabled and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires)
        if requires:
            global _graph_nodes_created
            _graph_nodes_created += 1
            out._backward = backward
            out._parents = parents
            out.op = op
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        """Add ``grad`` into this tensor's ``.grad`` buffer."""
        if grad.dtype != DEFAULT_DTYPE:
            grad = grad.astype(DEFAULT_DTYPE)
        if self.grad is None:
            self.grad = grad.copy() if grad.base is not None else grad
        else:
            self.grad = self.grad + grad

    # ------------------------------------------------------------------
    # Basic protocol
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor({self.data!r}{grad_flag})"

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy); detached from the graph."""
        return self.data

    def item(self) -> float:
        return float(self.data.item())

    def detach(self) -> "Tensor":
        return Tensor(self.data, requires_grad=False)

    def copy(self) -> "Tensor":
        return Tensor(self.data.copy(), requires_grad=self.requires_grad)

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------
    # Backward pass
    # ------------------------------------------------------------------
    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Backpropagate from this tensor through the recorded graph."""
        if not self.requires_grad:
            raise RuntimeError("backward() on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("backward() without gradient on non-scalar tensor")
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=DEFAULT_DTYPE)

        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if parent.requires_grad and id(parent) not in visited:
                    stack.append((parent, False))

        self._accumulate(grad)
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)
                if node is not self and node._parents:
                    # Interior nodes do not need to retain gradients.
                    node.grad = None

    # ------------------------------------------------------------------
    # Elementwise arithmetic
    # ------------------------------------------------------------------
    @staticmethod
    def _coerce(value: TensorLike) -> "Tensor":
        return value if isinstance(value, Tensor) else Tensor(value)

    def __add__(self, other: TensorLike) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data + other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad, other.shape))

        return Tensor._make_from(out_data, (self, other), backward, "add")

    __radd__ = __add__

    def __mul__(self, other: TensorLike) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data * other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad * other.data, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad * self.data, other.shape))

        return Tensor._make_from(out_data, (self, other), backward, "mul")

    __rmul__ = __mul__

    def __sub__(self, other: TensorLike) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data - other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(-grad, other.shape))

        return Tensor._make_from(out_data, (self, other), backward, "sub")

    def __rsub__(self, other: TensorLike) -> "Tensor":
        return self._coerce(other).__sub__(self)

    def __truediv__(self, other: TensorLike) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data / other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad / other.data, self.shape))
            if other.requires_grad:
                other._accumulate(
                    _unbroadcast(-grad * self.data / (other.data * other.data), other.shape)
                )

        return Tensor._make_from(out_data, (self, other), backward, "div")

    def __rtruediv__(self, other: TensorLike) -> "Tensor":
        return self._coerce(other).__truediv__(self)

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(-grad)

        return Tensor._make_from(-self.data, (self,), backward, "neg")

    def __pow__(self, exponent: Number) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")
        out_data = self.data ** exponent

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return Tensor._make_from(out_data, (self,), backward, "pow")

    # ------------------------------------------------------------------
    # Matrix multiply (supports batched operands via np.matmul)
    # ------------------------------------------------------------------
    def matmul(self, other: TensorLike) -> "Tensor":
        other = self._coerce(other)
        out_data = np.matmul(self.data, other.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                if other.data.ndim == 1:
                    grad_self = np.multiply.outer(grad, other.data) if grad.ndim else grad * other.data
                    if self.data.ndim == 1:
                        grad_self = grad * other.data
                else:
                    g = grad[..., None, :] if self.data.ndim == 1 else grad
                    grad_self = np.matmul(g, np.swapaxes(other.data, -1, -2))
                    if self.data.ndim == 1:
                        grad_self = grad_self.reshape(-1)
                self._accumulate(_unbroadcast(np.asarray(grad_self), self.shape))
            if other.requires_grad:
                if self.data.ndim == 1:
                    grad_other = np.multiply.outer(self.data, grad)
                else:
                    g = grad[..., :, None] if other.data.ndim == 1 else grad
                    grad_other = np.matmul(np.swapaxes(self.data, -1, -2), g)
                    if other.data.ndim == 1:
                        grad_other = grad_other.reshape(other.shape)
                other._accumulate(_unbroadcast(np.asarray(grad_other), other.shape))

        return Tensor._make_from(out_data, (self, other), backward, "matmul")

    __matmul__ = matmul

    # ------------------------------------------------------------------
    # Elementwise nonlinearities
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * out_data)

        return Tensor._make_from(out_data, (self,), backward, "exp")

    def log(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad / self.data)

        return Tensor._make_from(np.log(self.data), (self,), backward, "log")

    def sqrt(self) -> "Tensor":
        out_data = np.sqrt(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * 0.5 / out_data)

        return Tensor._make_from(out_data, (self,), backward, "sqrt")

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * (1.0 - out_data * out_data))

        return Tensor._make_from(out_data, (self,), backward, "tanh")

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * out_data * (1.0 - out_data))

        return Tensor._make_from(out_data, (self,), backward, "sigmoid")

    def relu(self) -> "Tensor":
        if not (_grad_enabled and self.requires_grad):
            # Inference fast path: no boolean mask, output into the active
            # buffer pool (if any) so the serving loop reuses it.
            from . import backend

            out = backend.scratch(self.data.shape, self.data.dtype)
            np.maximum(self.data, 0, out=out)
            return Tensor(out)
        mask = self.data > 0

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * mask)

        return Tensor._make_from(self.data * mask, (self,), backward, "relu")

    def abs(self) -> "Tensor":
        sign = np.sign(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * sign)

        return Tensor._make_from(np.abs(self.data), (self,), backward, "abs")

    def clip(self, low: Number, high: Number) -> "Tensor":
        mask = (self.data >= low) & (self.data <= high)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * mask)

        return Tensor._make_from(np.clip(self.data, low, high), (self,), backward, "clip")

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            g = grad
            if axis is not None and not keepdims:
                axes = axis if isinstance(axis, tuple) else (axis,)
                axes = tuple(a % self.data.ndim for a in axes)
                for a in sorted(axes):
                    g = np.expand_dims(g, a)
            self._accumulate(np.broadcast_to(g, self.shape).astype(DEFAULT_DTYPE))

        return Tensor._make_from(out_data, (self,), backward, "sum")

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([self.data.shape[a % self.data.ndim] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            g = grad
            out = out_data
            if axis is not None and not keepdims:
                axes = axis if isinstance(axis, tuple) else (axis,)
                axes = tuple(a % self.data.ndim for a in axes)
                for a in sorted(axes):
                    g = np.expand_dims(g, a)
                    out = np.expand_dims(out, a)
            mask = self.data == out
            counts = mask.sum(axis=axis, keepdims=True) if axis is not None else mask.sum()
            self._accumulate((mask * g / counts).astype(DEFAULT_DTYPE))

        return Tensor._make_from(out_data, (self,), backward, "max")

    def var(self, axis=None, keepdims: bool = False) -> "Tensor":
        mu = self.mean(axis=axis, keepdims=True)
        centered = self - mu
        return (centered * centered).mean(axis=axis, keepdims=keepdims)

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out_data = self.data.reshape(shape)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.reshape(self.shape))

        return Tensor._make_from(out_data, (self,), backward, "reshape")

    def transpose(self, *axes) -> "Tensor":
        if not axes:
            axes_tuple: Optional[Tuple[int, ...]] = None
        elif len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes_tuple = tuple(axes[0])
        else:
            axes_tuple = tuple(axes)
        out_data = self.data.transpose(axes_tuple)
        if axes_tuple is None:
            inverse: Optional[Tuple[int, ...]] = None
        else:
            inverse = tuple(int(i) for i in np.argsort(axes_tuple))

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.transpose(inverse))

        return Tensor._make_from(out_data, (self,), backward, "transpose")

    def swapaxes(self, a: int, b: int) -> "Tensor":
        out_data = np.swapaxes(self.data, a, b)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(np.swapaxes(grad, a, b))

        return Tensor._make_from(out_data, (self,), backward, "swapaxes")

    def __getitem__(self, index) -> "Tensor":
        out_data = self.data[index]

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                full = np.zeros_like(self.data)
                np.add.at(full, index, grad)
                self._accumulate(full)

        return Tensor._make_from(out_data, (self,), backward, "getitem")

    def pad1d(self, left: int, right: int, value: float = 0.0) -> "Tensor":
        """Pad the last axis with ``value`` (`left`/`right` elements)."""
        widths = [(0, 0)] * (self.data.ndim - 1) + [(left, right)]
        out_data = np.pad(self.data, widths, constant_values=value)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                sl = [slice(None)] * (self.data.ndim - 1)
                sl.append(slice(left, out_data.shape[-1] - right))
                self._accumulate(grad[tuple(sl)])

        return Tensor._make_from(out_data, (self,), backward, "pad1d")


def concat(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient routing."""
    tensors = [Tensor._coerce(t) for t in tensors]
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            if tensor.requires_grad:
                sl = [slice(None)] * grad.ndim
                sl[axis] = slice(int(start), int(stop))
                tensor._accumulate(grad[tuple(sl)])

    return Tensor._make_from(out_data, tensors, backward, "concat")


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new ``axis`` with gradient routing."""
    tensors = [Tensor._coerce(t) for t in tensors]
    out_data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad: np.ndarray) -> None:
        for i, tensor in enumerate(tensors):
            if tensor.requires_grad:
                sl = [slice(None)] * grad.ndim
                sl[axis] = i
                tensor._accumulate(grad[tuple(sl)])

    return Tensor._make_from(out_data, tensors, backward, "stack")


def where(condition: np.ndarray, a: TensorLike, b: TensorLike) -> Tensor:
    """Elementwise select: ``condition ? a : b`` (condition is constant)."""
    a = Tensor._coerce(a)
    b = Tensor._coerce(b)
    cond = np.asarray(condition, dtype=bool)
    out_data = np.where(cond, a.data, b.data)

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(_unbroadcast(grad * cond, a.shape))
        if b.requires_grad:
            b._accumulate(_unbroadcast(grad * ~cond, b.shape))

    return Tensor._make_from(out_data, (a, b), backward, "where")


def tensor(data: TensorLike, requires_grad: bool = False) -> Tensor:
    """Convenience constructor mirroring ``torch.tensor``."""
    return Tensor(data, requires_grad=requires_grad)


def zeros(shape, requires_grad: bool = False) -> Tensor:
    return Tensor(np.zeros(shape, dtype=DEFAULT_DTYPE), requires_grad=requires_grad)


def ones(shape, requires_grad: bool = False) -> Tensor:
    return Tensor(np.ones(shape, dtype=DEFAULT_DTYPE), requires_grad=requires_grad)
