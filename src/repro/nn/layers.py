"""Standard layers: Linear, Conv1d, norms, dropout, activations, pooling."""

from __future__ import annotations

from typing import Optional

import numpy as np

from . import functional as F
from . import init
from .modules import Module
from .tensor import DEFAULT_DTYPE, Tensor


def _default_rng(seed: Optional[int]) -> np.random.Generator:
    return np.random.default_rng(seed)


class Linear(Module):
    """Affine map ``y = x @ W.T + b`` on the last axis."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True, seed: Optional[int] = None):
        super().__init__()
        rng = _default_rng(seed)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = init.kaiming_uniform((out_features, in_features), rng, gain=1.0)
        self.bias = init.uniform_bias(in_features, out_features, rng) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x.matmul(self.weight.swapaxes(0, 1) if self.weight.ndim == 2 else self.weight)
        if self.bias is not None:
            out = out + self.bias
        return out


class Conv1d(Module):
    """1-D convolution over ``(N, C, L)`` inputs."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: Optional[int] = None,
        bias: bool = True,
        seed: Optional[int] = None,
    ):
        super().__init__()
        rng = _default_rng(seed)
        if padding is None:
            # "same" padding for odd kernels at stride 1.
            padding = (kernel_size - 1) // 2
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self.weight = init.kaiming_uniform((out_channels, in_channels, kernel_size), rng)
        self.bias = init.uniform_bias(in_channels * kernel_size, out_channels, rng) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return F.conv1d(x, self.weight, self.bias, stride=self.stride, padding=self.padding)


class BatchNorm1d(Module):
    """Batch normalization for ``(N, C, L)`` or ``(N, C)`` inputs."""

    def __init__(self, num_features: int, momentum: float = 0.1, eps: float = 1e-5):
        super().__init__()
        self.num_features = num_features
        self.momentum = momentum
        self.eps = eps
        self.gamma = init.ones_param(num_features)
        self.beta = init.zeros_param(num_features)
        self.register_buffer("running_mean", np.zeros(num_features, dtype=DEFAULT_DTYPE))
        self.register_buffer("running_var", np.ones(num_features, dtype=DEFAULT_DTYPE))

    def forward(self, x: Tensor) -> Tensor:
        return F.batch_norm(
            x,
            self.gamma,
            self.beta,
            self.running_mean,
            self.running_var,
            training=self.training,
            momentum=self.momentum,
            eps=self.eps,
        )


class LayerNorm(Module):
    """Layer normalization over the last axis."""

    def __init__(self, dim: int, eps: float = 1e-5):
        super().__init__()
        self.dim = dim
        self.eps = eps
        self.gamma = init.ones_param(dim)
        self.beta = init.zeros_param(dim)

    def forward(self, x: Tensor) -> Tensor:
        return F.layer_norm(x, self.gamma, self.beta, eps=self.eps)


class Dropout(Module):
    """Inverted dropout with its own RNG stream (seeded for determinism)."""

    def __init__(self, p: float = 0.5, seed: Optional[int] = None):
        super().__init__()
        self.p = p
        self._rng = _default_rng(seed)

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.p, training=self.training, rng=self._rng)


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class Sigmoid(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.sigmoid()


class Tanh(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()


class GELU(Module):
    """Tanh-approximation GELU (as in BERT-family transformers)."""

    def forward(self, x: Tensor) -> Tensor:
        inner = (x + x * x * x * 0.044715) * 0.7978845608028654
        return x * 0.5 * (inner.tanh() + 1.0)


class MaxPool1d(Module):
    def __init__(self, kernel: int):
        super().__init__()
        self.kernel = kernel

    def forward(self, x: Tensor) -> Tensor:
        return F.max_pool1d(x, self.kernel)


class AvgPool1d(Module):
    def __init__(self, kernel: int):
        super().__init__()
        self.kernel = kernel

    def forward(self, x: Tensor) -> Tensor:
        return F.avg_pool1d(x, self.kernel)


class GlobalAvgPool1d(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.global_avg_pool1d(x)


class UpsampleNearest1d(Module):
    def __init__(self, scale: int):
        super().__init__()
        self.scale = scale

    def forward(self, x: Tensor) -> Tensor:
        return F.upsample_nearest1d(x, self.scale)
