"""Saving and loading module state dicts as ``.npz`` archives."""

from __future__ import annotations

import os
from typing import Dict

import numpy as np

from .modules import Module


def save_state(module: Module, path: str) -> None:
    """Serialize ``module.state_dict()`` to ``path`` (npz archive)."""
    state = module.state_dict()
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    np.savez(path, **state)


def load_state(module: Module, path: str) -> None:
    """Load an archive produced by :func:`save_state` into ``module``."""
    if not path.endswith(".npz"):
        path = path + ".npz"
    with np.load(path) as archive:
        state: Dict[str, np.ndarray] = {k: archive[k] for k in archive.files}
    module.load_state_dict(state)
