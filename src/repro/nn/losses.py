"""Loss modules wrapping the fused functional implementations."""

from __future__ import annotations

from typing import Optional

import numpy as np

from . import functional as F
from .modules import Module
from .tensor import Tensor


class CrossEntropyLoss(Module):
    """Softmax cross-entropy on ``(N, num_classes)`` logits vs int targets."""

    def forward(self, logits: Tensor, targets: np.ndarray) -> Tensor:
        return F.cross_entropy(logits, targets)


class BCEWithLogitsLoss(Module):
    """Numerically stable binary cross-entropy on raw logits."""

    def __init__(self, pos_weight: Optional[float] = None):
        super().__init__()
        self.pos_weight = pos_weight

    def forward(self, logits: Tensor, targets: np.ndarray) -> Tensor:
        return F.binary_cross_entropy_with_logits(logits, targets, pos_weight=self.pos_weight)


class MSELoss(Module):
    def forward(self, pred: Tensor, targets: np.ndarray) -> Tensor:
        return F.mse_loss(pred, targets)
