"""Module base class and containers for the ``repro.nn`` substrate."""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterator, List, Tuple

import numpy as np

from .tensor import Tensor

#: Process-wide count of Module.__call__ dispatches.  Cheap enough to keep
#: always-on; plan-replay tests assert it stays flat across a replay (the
#: whole point of a traced plan is that no module dispatch happens at all).
_module_calls = 0


def module_calls() -> int:
    """Total ``Module.__call__`` dispatches since process start."""
    return _module_calls


class Module:
    """Base class for all neural-network modules.

    Subclasses register :class:`~repro.nn.tensor.Tensor` parameters and
    child modules simply by assigning them as attributes, mirroring the
    PyTorch convention.  Non-trainable state (running statistics) is kept
    in ``_buffers`` so it travels with ``state_dict``.
    """

    def __init__(self) -> None:
        object.__setattr__(self, "_parameters", OrderedDict())
        object.__setattr__(self, "_buffers", OrderedDict())
        object.__setattr__(self, "_modules", OrderedDict())
        object.__setattr__(self, "training", True)

    # -- attribute routing ------------------------------------------------
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Tensor) and value.requires_grad:
            self._parameters[name] = value
        elif isinstance(value, Module):
            self._modules[name] = value
        object.__setattr__(self, name, value)

    def register_buffer(self, name: str, value: np.ndarray) -> None:
        """Register non-trainable state saved with the state dict."""
        self._buffers[name] = value
        object.__setattr__(self, name, value)

    # -- traversal ---------------------------------------------------------
    def parameters(self) -> List[Tensor]:
        """All trainable parameters of this module and its children."""
        return [p for _, p in self.named_parameters()]

    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Tensor]]:
        for name, param in self._parameters.items():
            yield prefix + name, param
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix + name + ".")

    def named_buffers(self, prefix: str = "") -> Iterator[Tuple[str, np.ndarray]]:
        for name in self._buffers:
            yield prefix + name, self._buffers[name]
        for name, module in self._modules.items():
            yield from module.named_buffers(prefix + name + ".")

    def modules(self) -> Iterator["Module"]:
        yield self
        for child in self._modules.values():
            yield from child.modules()

    def children(self) -> Iterator["Module"]:
        yield from self._modules.values()

    # -- train / eval -------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        object.__setattr__(self, "training", mode)
        for child in self._modules.values():
            child.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.grad = None

    # -- (de)serialization ----------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Flat mapping name -> array for all parameters and buffers."""
        state: Dict[str, np.ndarray] = {}
        for name, param in self.named_parameters():
            state[name] = param.data.copy()
        for name, buf in self.named_buffers():
            state[name] = np.asarray(buf).copy()
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Load a mapping produced by :meth:`state_dict` (strict)."""
        own_params = dict(self.named_parameters())
        own_buffers = dict(self.named_buffers())
        missing = (set(own_params) | set(own_buffers)) - set(state)
        unexpected = set(state) - (set(own_params) | set(own_buffers))
        if missing or unexpected:
            raise KeyError(
                f"state dict mismatch: missing={sorted(missing)}, "
                f"unexpected={sorted(unexpected)}"
            )
        for name, param in own_params.items():
            value = np.asarray(state[name], dtype=param.data.dtype)
            if value.shape != param.data.shape:
                raise ValueError(
                    f"shape mismatch for {name}: {value.shape} vs {param.data.shape}"
                )
            param.data[...] = value
        # Buffers are replaced in-place on the owning module.
        for name in own_buffers:
            module = self
            *path, leaf = name.split(".")
            for part in path:
                module = module._modules[part]
            buf = module._buffers[leaf]
            value = np.asarray(state[name], dtype=np.asarray(buf).dtype)
            np.asarray(buf)[...] = value

    def num_parameters(self) -> int:
        """Total number of trainable scalar parameters."""
        return sum(p.data.size for p in self.parameters())

    # -- call protocol ----------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        global _module_calls
        _module_calls += 1
        return self.forward(*args, **kwargs)


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *modules: Module):
        super().__init__()
        for i, module in enumerate(modules):
            setattr(self, f"layer{i}", module)
        self._sequence = list(modules)

    def __iter__(self) -> Iterator[Module]:
        return iter(self._sequence)

    def __len__(self) -> int:
        return len(self._sequence)

    def __getitem__(self, index: int) -> Module:
        return self._sequence[index]

    def forward(self, x):
        for module in self._sequence:
            x = module(x)
        return x


class ModuleList(Module):
    """List container registering each element as a child module."""

    def __init__(self, modules=()):
        super().__init__()
        self._items: List[Module] = []
        for module in modules:
            self.append(module)

    def append(self, module: Module) -> "ModuleList":
        setattr(self, f"item{len(self._items)}", module)
        self._items.append(module)
        return self

    def __iter__(self) -> Iterator[Module]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __getitem__(self, index: int) -> Module:
        return self._items[index]
