"""Optimizers (SGD, Adam, AdamW) and learning-rate schedulers."""

from __future__ import annotations

import math
from typing import Iterable, List, Optional

import numpy as np

from .tensor import Tensor


class Optimizer:
    """Base optimizer holding a flat list of parameters."""

    def __init__(self, params: Iterable[Tensor], lr: float):
        self.params: List[Tensor] = [p for p in params if p.requires_grad]
        if not self.params:
            raise ValueError("optimizer received no trainable parameters")
        self.lr = lr

    def zero_grad(self) -> None:
        for param in self.params:
            param.grad = None

    def step(self) -> None:
        raise NotImplementedError

    def clip_grad_norm(self, max_norm: float) -> float:
        """Clip the global gradient norm in place; returns the pre-clip norm."""
        total = 0.0
        for param in self.params:
            if param.grad is not None:
                total += float(np.sum(param.grad.astype(np.float64) ** 2))
        norm = math.sqrt(total)
        if norm > max_norm and norm > 0:
            scale = max_norm / norm
            for param in self.params:
                if param.grad is not None:
                    param.grad *= scale
        return norm


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(self, params, lr: float = 1e-2, momentum: float = 0.0, weight_decay: float = 0.0):
        super().__init__(params, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for param, vel in zip(self.params, self._velocity):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                vel *= self.momentum
                vel += grad
                grad = vel
            param.data -= self.lr * grad


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015) with L2-style weight decay."""

    def __init__(
        self,
        params,
        lr: float = 1e-3,
        betas=(0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(params, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        bc1 = 1.0 - self.beta1 ** self._t
        bc2 = 1.0 - self.beta2 ** self._t
        for param, m, v in zip(self.params, self._m, self._v):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            m_hat = m / bc1
            v_hat = v / bc2
            param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


class AdamW(Adam):
    """Adam with decoupled weight decay (Loshchilov & Hutter, 2019)."""

    def step(self) -> None:
        self._t += 1
        bc1 = 1.0 - self.beta1 ** self._t
        bc2 = 1.0 - self.beta2 ** self._t
        for param, m, v in zip(self.params, self._m, self._v):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                param.data -= self.lr * self.weight_decay * param.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            m_hat = m / bc1
            v_hat = v / bc2
            param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


class StepLR:
    """Multiply the optimizer LR by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.1):
        self.optimizer = optimizer
        self.step_size = step_size
        self.gamma = gamma
        self._epoch = 0
        self._base_lr = optimizer.lr

    def step(self) -> None:
        self._epoch += 1
        self.optimizer.lr = self._base_lr * self.gamma ** (self._epoch // self.step_size)


class CosineAnnealingLR:
    """Cosine decay from the base LR to ``eta_min`` over ``t_max`` epochs."""

    def __init__(self, optimizer: Optimizer, t_max: int, eta_min: float = 0.0):
        self.optimizer = optimizer
        self.t_max = max(t_max, 1)
        self.eta_min = eta_min
        self._epoch = 0
        self._base_lr = optimizer.lr

    def step(self) -> None:
        self._epoch = min(self._epoch + 1, self.t_max)
        cos = 0.5 * (1.0 + math.cos(math.pi * self._epoch / self.t_max))
        self.optimizer.lr = self.eta_min + (self._base_lr - self.eta_min) * cos
