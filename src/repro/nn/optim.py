"""Optimizers (SGD, Adam, AdamW) and learning-rate schedulers.

Every optimizer and scheduler exposes ``state_dict()`` /
``load_state_dict()`` so a training run can be checkpointed and resumed
bit-for-bit: the Adam moments and step count (which drive the bias
correction) travel with the checkpoint, as do the per-epoch counters of
the LR schedules.  See :mod:`repro.training.checkpoint`.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional

import numpy as np

from .tensor import Tensor


class Optimizer:
    """Base optimizer holding a flat list of parameters."""

    def __init__(self, params: Iterable[Tensor], lr: float):
        self.params: List[Tensor] = [p for p in params if p.requires_grad]
        if not self.params:
            raise ValueError("optimizer received no trainable parameters")
        self.lr = lr

    def zero_grad(self) -> None:
        for param in self.params:
            param.grad = None

    def step(self) -> None:
        raise NotImplementedError

    # -- (de)serialization -------------------------------------------------
    def state_dict(self) -> Dict[str, object]:
        """Everything needed to resume stepping exactly where it stopped.

        Array-valued entries (moment buffers) are lists of copies aligned
        with ``self.params``; scalar entries are plain Python numbers.
        """
        return {"lr": self.lr}

    def load_state_dict(self, state: Dict[str, object]) -> None:
        """Restore a mapping produced by :meth:`state_dict`."""
        self.lr = float(state["lr"])

    @staticmethod
    def _load_buffers(target: List[np.ndarray], source) -> None:
        """Copy a checkpointed buffer list into the live one, shape-checked."""
        if len(source) != len(target):
            raise ValueError(
                f"optimizer state has {len(source)} buffers, expected {len(target)}"
            )
        for buf, value in zip(target, source):
            value = np.asarray(value, dtype=buf.dtype)
            if value.shape != buf.shape:
                raise ValueError(
                    f"optimizer buffer shape mismatch: {value.shape} vs {buf.shape}"
                )
            buf[...] = value

    def clip_grad_norm(self, max_norm: float) -> float:
        """Clip the global gradient norm in place; returns the pre-clip norm."""
        total = 0.0
        for param in self.params:
            if param.grad is not None:
                total += float(np.sum(param.grad.astype(np.float64) ** 2))
        norm = math.sqrt(total)
        if norm > max_norm and norm > 0:
            scale = max_norm / norm
            for param in self.params:
                if param.grad is not None:
                    param.grad *= scale
        return norm


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(self, params, lr: float = 1e-2, momentum: float = 0.0, weight_decay: float = 0.0):
        super().__init__(params, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for param, vel in zip(self.params, self._velocity):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                vel *= self.momentum
                vel += grad
                grad = vel
            param.data -= self.lr * grad

    def state_dict(self) -> Dict[str, object]:
        state = super().state_dict()
        state["velocity"] = [v.copy() for v in self._velocity]
        return state

    def load_state_dict(self, state: Dict[str, object]) -> None:
        super().load_state_dict(state)
        self._load_buffers(self._velocity, state["velocity"])


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015) with L2-style weight decay."""

    def __init__(
        self,
        params,
        lr: float = 1e-3,
        betas=(0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(params, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        bc1 = 1.0 - self.beta1 ** self._t
        bc2 = 1.0 - self.beta2 ** self._t
        for param, m, v in zip(self.params, self._m, self._v):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            m_hat = m / bc1
            v_hat = v / bc2
            param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def state_dict(self) -> Dict[str, object]:
        state = super().state_dict()
        state["step"] = self._t
        state["m"] = [m.copy() for m in self._m]
        state["v"] = [v.copy() for v in self._v]
        return state

    def load_state_dict(self, state: Dict[str, object]) -> None:
        super().load_state_dict(state)
        self._t = int(state["step"])
        self._load_buffers(self._m, state["m"])
        self._load_buffers(self._v, state["v"])


class AdamW(Adam):
    """Adam with decoupled weight decay (Loshchilov & Hutter, 2019)."""

    def step(self) -> None:
        self._t += 1
        bc1 = 1.0 - self.beta1 ** self._t
        bc2 = 1.0 - self.beta2 ** self._t
        for param, m, v in zip(self.params, self._m, self._v):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                param.data -= self.lr * self.weight_decay * param.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            m_hat = m / bc1
            v_hat = v / bc2
            param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


class LRScheduler:
    """Base class: tracks the epoch counter and the base LR.

    ``state_dict``/``load_state_dict`` round-trip the counter and base LR
    (and, on load, re-apply the schedule) so a resumed run continues on
    exactly the LR trajectory the uninterrupted run would have followed.
    """

    def __init__(self, optimizer: Optimizer):
        self.optimizer = optimizer
        self._epoch = 0
        self._base_lr = optimizer.lr

    def _lr_at(self, epoch: int) -> float:
        raise NotImplementedError

    def step(self) -> None:
        self._epoch += 1
        self.optimizer.lr = self._lr_at(self._epoch)

    def state_dict(self) -> Dict[str, float]:
        return {"epoch": self._epoch, "base_lr": self._base_lr}

    def load_state_dict(self, state: Dict[str, float]) -> None:
        self._epoch = int(state["epoch"])
        self._base_lr = float(state["base_lr"])
        if self._epoch > 0:
            self.optimizer.lr = self._lr_at(self._epoch)


class StepLR(LRScheduler):
    """Multiply the optimizer LR by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.1):
        super().__init__(optimizer)
        self.step_size = step_size
        self.gamma = gamma

    def _lr_at(self, epoch: int) -> float:
        return self._base_lr * self.gamma ** (epoch // self.step_size)


class CosineAnnealingLR(LRScheduler):
    """Cosine decay from the base LR to ``eta_min`` over ``t_max`` epochs."""

    def __init__(self, optimizer: Optimizer, t_max: int, eta_min: float = 0.0):
        super().__init__(optimizer)
        self.t_max = max(t_max, 1)
        self.eta_min = eta_min

    def _lr_at(self, epoch: int) -> float:
        epoch = min(epoch, self.t_max)
        cos = 0.5 * (1.0 + math.cos(math.pi * epoch / self.t_max))
        return self.eta_min + (self._base_lr - self.eta_min) * cos


class WarmupCosineLR(LRScheduler):
    """Linear warmup to the base LR, then cosine decay to ``eta_min``.

    For the first ``warmup_epochs`` steps the LR ramps linearly from
    ``base_lr / warmup_epochs`` up to ``base_lr``; the remaining
    ``t_max - warmup_epochs`` steps follow :class:`CosineAnnealingLR`.
    ``warmup_epochs == 0`` degenerates to plain cosine annealing.
    """

    def __init__(
        self,
        optimizer: Optimizer,
        t_max: int,
        warmup_epochs: int = 0,
        eta_min: float = 0.0,
    ):
        if warmup_epochs < 0:
            raise ValueError(f"warmup_epochs must be >= 0, got {warmup_epochs}")
        super().__init__(optimizer)
        self.t_max = max(t_max, 1)
        self.warmup_epochs = min(warmup_epochs, self.t_max)
        self.eta_min = eta_min
        if self.warmup_epochs > 0:
            # Warmup applies from the very first batch of epoch 0, not only
            # after the first scheduler step.
            self.optimizer.lr = self._lr_at(0)

    def _lr_at(self, epoch: int) -> float:
        if epoch < self.warmup_epochs:
            return self._base_lr * (epoch + 1) / self.warmup_epochs
        decay_span = max(self.t_max - self.warmup_epochs, 1)
        progress = min(epoch - self.warmup_epochs, decay_span)
        cos = 0.5 * (1.0 + math.cos(math.pi * progress / decay_span))
        return self.eta_min + (self._base_lr - self.eta_min) * cos
