"""``repro.nn`` — a from-scratch NumPy deep-learning substrate.

This package replaces PyTorch for the CamAL reproduction: reverse-mode
autodiff (:mod:`repro.nn.tensor`), fused NN primitives
(:mod:`repro.nn.functional`), layers/modules, optimizers, data loading and
serialization.  See DESIGN.md §2 for the substitution rationale.
"""

from . import backend, functional, plan
from .attention import MultiHeadSelfAttention, TransformerEncoderLayer
from .data import DataLoader, Dataset, Subset, TensorDataset, balance_binary, random_split
from .layers import (
    AvgPool1d,
    BatchNorm1d,
    Conv1d,
    Dropout,
    GELU,
    GlobalAvgPool1d,
    LayerNorm,
    Linear,
    MaxPool1d,
    ReLU,
    Sigmoid,
    Tanh,
    UpsampleNearest1d,
)
from .losses import BCEWithLogitsLoss, CrossEntropyLoss, MSELoss
from .modules import Module, ModuleList, Sequential, module_calls
from .plan import ExecutionPlan, PlanBuilder, PlanCache, plan_enabled
from .optim import (
    Adam,
    AdamW,
    CosineAnnealingLR,
    LRScheduler,
    Optimizer,
    SGD,
    StepLR,
    WarmupCosineLR,
)
from .recurrent import GRU, GRUCell
from .serialization import load_state, save_state
from .tensor import (
    Tensor,
    concat,
    graph_nodes_created,
    no_grad,
    ones,
    stack,
    tensor,
    where,
    zeros,
)
from .utils import check_gradients, count_parameters, one_hot, seed_everything

__all__ = [
    "backend",
    "functional",
    "plan",
    "ExecutionPlan",
    "PlanBuilder",
    "PlanCache",
    "plan_enabled",
    "module_calls",
    "graph_nodes_created",
    "Tensor",
    "tensor",
    "zeros",
    "ones",
    "concat",
    "stack",
    "where",
    "no_grad",
    "Module",
    "ModuleList",
    "Sequential",
    "Linear",
    "Conv1d",
    "BatchNorm1d",
    "LayerNorm",
    "Dropout",
    "ReLU",
    "Sigmoid",
    "Tanh",
    "GELU",
    "MaxPool1d",
    "AvgPool1d",
    "GlobalAvgPool1d",
    "UpsampleNearest1d",
    "GRU",
    "GRUCell",
    "MultiHeadSelfAttention",
    "TransformerEncoderLayer",
    "CrossEntropyLoss",
    "BCEWithLogitsLoss",
    "MSELoss",
    "Optimizer",
    "SGD",
    "Adam",
    "AdamW",
    "LRScheduler",
    "StepLR",
    "CosineAnnealingLR",
    "WarmupCosineLR",
    "Dataset",
    "TensorDataset",
    "Subset",
    "DataLoader",
    "random_split",
    "balance_binary",
    "save_state",
    "load_state",
    "seed_everything",
    "count_parameters",
    "check_gradients",
    "one_hot",
]
