"""Weight initialization schemes (Kaiming / Xavier / uniform)."""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

from .tensor import DEFAULT_DTYPE, Tensor


def _fan_in_out(shape: Tuple[int, ...]) -> Tuple[int, int]:
    """Compute fan-in/fan-out for linear (out, in) or conv (out, in, k)."""
    if len(shape) == 2:
        fan_out, fan_in = shape
        return fan_in, fan_out
    if len(shape) == 3:
        receptive = shape[2]
        return shape[1] * receptive, shape[0] * receptive
    raise ValueError(f"unsupported parameter shape {shape}")


def kaiming_uniform(shape: Tuple[int, ...], rng: np.random.Generator, gain: float = math.sqrt(2.0)) -> Tensor:
    """He/Kaiming uniform init (default gain for ReLU nonlinearities)."""
    fan_in, _ = _fan_in_out(shape)
    bound = gain * math.sqrt(3.0 / fan_in)
    data = rng.uniform(-bound, bound, size=shape).astype(DEFAULT_DTYPE)
    return Tensor(data, requires_grad=True)


def xavier_uniform(shape: Tuple[int, ...], rng: np.random.Generator, gain: float = 1.0) -> Tensor:
    """Glorot/Xavier uniform init (default for tanh/sigmoid/attention)."""
    fan_in, fan_out = _fan_in_out(shape)
    bound = gain * math.sqrt(6.0 / (fan_in + fan_out))
    data = rng.uniform(-bound, bound, size=shape).astype(DEFAULT_DTYPE)
    return Tensor(data, requires_grad=True)


def uniform_bias(fan_in: int, size: int, rng: np.random.Generator) -> Tensor:
    """PyTorch-style bias init: U(-1/sqrt(fan_in), 1/sqrt(fan_in))."""
    bound = 1.0 / math.sqrt(fan_in) if fan_in > 0 else 0.0
    data = rng.uniform(-bound, bound, size=size).astype(DEFAULT_DTYPE)
    return Tensor(data, requires_grad=True)


def zeros_param(shape) -> Tensor:
    return Tensor(np.zeros(shape, dtype=DEFAULT_DTYPE), requires_grad=True)


def ones_param(shape) -> Tensor:
    return Tensor(np.ones(shape, dtype=DEFAULT_DTYPE), requires_grad=True)
