"""Reference conv1d kernel: strided window view + ``np.tensordot``.

This is the original implementation of :func:`repro.nn.functional.conv1d`,
kept verbatim as the numerical ground truth: running with
``REPRO_NN_BACKEND=reference`` reproduces the pre-backend float32 results
bit-for-bit, and the faster kernels are equivalence-tested against it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from . import counters

DTYPE = np.float32

NAME = "reference"


@dataclass
class Ctx:
    """Saved forward state for the backward contractions."""

    windows: np.ndarray  # (N, C_in, L_out, K) strided view over x_pad
    weight: np.ndarray  # (C_out, C_in, K)
    stride: int
    l_pad: int


def forward(
    x_pad: np.ndarray, weight: np.ndarray, stride: int, keep_ctx: bool
) -> Tuple[np.ndarray, Optional[Ctx]]:
    kernel = weight.shape[2]
    windows = sliding_window_view(x_pad, kernel, axis=2)[:, :, ::stride, :]
    # windows: (N, C_in, L_out, K); contract C_in and K against the weight.
    out = np.tensordot(windows, weight, axes=([1, 3], [1, 2]))  # (N, L_out, C_out)
    out = np.ascontiguousarray(out.transpose(0, 2, 1))
    ctx = Ctx(windows, weight, stride, x_pad.shape[2]) if keep_ctx else None
    return out, ctx


def forward_fused(
    x_pad: np.ndarray,
    weight: np.ndarray,
    stride: int,
    shift: Optional[np.ndarray] = None,
    relu: bool = True,
) -> np.ndarray:
    """Inference-only conv with the folded-BN scale/shift + ReLU epilogue.

    Identical contraction to :func:`forward`, with the per-channel shift
    and ReLU applied in place on the output — the ground-truth counterpart
    of the fast kernels' fused entry points.
    """
    out, _ = forward(x_pad, weight, stride, keep_ctx=False)
    counters.record("fused_conv_calls")
    if shift is not None:
        out += shift[None, :, None]
    if relu:
        np.maximum(out, 0, out=out)
    return out


def grad_weight(ctx: Ctx, grad: np.ndarray) -> np.ndarray:
    # dW[o, c, k] = sum_{n, s} grad[n, o, s] * windows[n, c, s, k]
    return np.tensordot(grad, ctx.windows, axes=([0, 2], [0, 2]))


def grad_input(ctx: Ctx, grad: np.ndarray) -> np.ndarray:
    """Transposed convolution: dilate grad by stride, pad by K-1, correlate
    with the flipped kernel.  Returns the gradient w.r.t. the *padded* input."""
    n, c_out, l_out = grad.shape
    kernel = ctx.weight.shape[2]
    if ctx.stride > 1:
        # repro: waive[HOT001] backward pass — training only, never on the serving path
        dilated = np.zeros((n, c_out, (l_out - 1) * ctx.stride + 1), dtype=DTYPE)
        dilated[:, :, :: ctx.stride] = grad
    else:
        dilated = grad
    deficit = ctx.l_pad - (dilated.shape[2] + kernel - 1)
    z = np.pad(dilated, ((0, 0), (0, 0), (kernel - 1, kernel - 1 + max(deficit, 0))))
    zw = sliding_window_view(z, kernel, axis=2)[:, :, : ctx.l_pad, :]
    w_flip = ctx.weight[:, :, ::-1]
    d_xp = np.tensordot(zw, w_flip, axes=([1, 3], [0, 2]))  # (N, L_pad, C_in)
    return np.ascontiguousarray(d_xp.transpose(0, 2, 1))
