"""im2col conv1d kernel: K slice-copies into a C-contiguous column buffer,
then one batched sgemm per direction.

The reference kernel's ``np.tensordot`` over a strided
``sliding_window_view`` gathers the ``(N, C_in, L_out, K)`` copy with an
inner loop of only ``K`` contiguous elements.  This kernel builds the same
columns with ``K`` *slice* copies (inner runs of ``L_out`` contiguous
elements), so the materialization is a handful of fat memcpys instead of a
gather, and the contraction becomes plain GEMMs:

* forward:   ``out[n] = W2 @ cols[n]`` with ``W2 = weight.reshape(C_out,
  C_in*K)`` and ``cols[n]`` the ``(C_in*K, L_out)`` column block —
  ``np.matmul`` broadcasts the weight over the batch and writes straight
  into the (possibly pooled) output buffer, so no output transpose is
  needed;
* dW: one ``np.tensordot`` contraction of grad against the saved columns;
* dX: ``d_cols[n] = W2.T @ grad[n]`` followed by a K-slice col2im
  scatter-add (the exact adjoint of the forward copy loop).

Each sample's GEMM has shape ``(C_out, C_in*K) @ (C_in*K, L_out)``
regardless of the batch size, which keeps the kernel **bit-level
batch-size invariant** — scoring a window alone or inside any batch yields
identical float32 bits.  The serving cache's bit-identity contract and the
parallel-training equivalence tests rely on this property, which is why
im2col (and not the FFT kernel) is the default backend.

In inference mode (``keep_ctx=False``) both the column scratch and the
output come from the active :class:`~repro.nn.backend.pool.BufferPool`,
so steady-state scoring re-allocates nothing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from . import counters
from .pool import scratch

DTYPE = np.float32

NAME = "im2col"


@dataclass
class Ctx:
    """Saved forward state for the backward contractions."""

    cols: np.ndarray  # (N, C_in*K, L_out) C-contiguous column buffer
    weight: np.ndarray  # (C_out, C_in, K)
    stride: int
    l_pad: int


def _fill_cols(cols4: np.ndarray, x_pad: np.ndarray, stride: int) -> None:
    """K slice-copies: cols4[n, c, j, s] = x_pad[n, c, s*stride + j]."""
    k, l_out = cols4.shape[2], cols4.shape[3]
    span = (l_out - 1) * stride + 1
    for j in range(k):
        np.copyto(cols4[:, :, j, :], x_pad[:, :, j : j + span : stride])


def forward(
    x_pad: np.ndarray, weight: np.ndarray, stride: int, keep_ctx: bool
) -> Tuple[np.ndarray, Optional[Ctx]]:
    n, c_in, l_pad = x_pad.shape
    c_out, _, kernel = weight.shape
    l_out = (l_pad - kernel) // stride + 1
    # Training keeps the columns alive in the graph, so they must not come
    # from the (recycling) pool; inference scratch may.
    # repro: waive[HOT001] training-only branch (keep_ctx); the inference path takes `scratch`
    alloc = scratch if not keep_ctx else (lambda s, d=DTYPE: np.empty(s, d))
    cols4 = alloc((n, c_in, kernel, l_out), x_pad.dtype)
    _fill_cols(cols4, x_pad, stride)
    cols = cols4.reshape(n, c_in * kernel, l_out)
    out = alloc((n, c_out, l_out), x_pad.dtype)
    np.matmul(weight.reshape(c_out, c_in * kernel), cols, out=out)
    ctx = Ctx(cols, weight, stride, l_pad) if keep_ctx else None
    return out, ctx


def forward_fused(
    x_pad: np.ndarray,
    weight: np.ndarray,
    stride: int,
    shift: Optional[np.ndarray] = None,
    relu: bool = True,
) -> np.ndarray:
    """Inference-only conv with the folded-BN scale/shift + ReLU epilogue.

    The GEMM is the exact one :func:`forward` issues — ``(C_out, C_in*K) @
    (C_in*K, L_out)`` per sample — so the output bits match conv-then-bias
    -then-ReLU computed separately; the epilogue just lands in the same
    (pooled) output buffer instead of paying an extra pass per stage.  No
    backward context exists on this path by construction.
    """
    n, c_in, l_pad = x_pad.shape
    c_out, _, kernel = weight.shape
    l_out = (l_pad - kernel) // stride + 1
    cols4 = scratch((n, c_in, kernel, l_out), x_pad.dtype)
    _fill_cols(cols4, x_pad, stride)
    cols = cols4.reshape(n, c_in * kernel, l_out)
    out = scratch((n, c_out, l_out), x_pad.dtype)
    np.matmul(weight.reshape(c_out, c_in * kernel), cols, out=out)
    counters.record("fused_conv_calls")
    counters.record("fused_conv_gemms")
    if shift is not None:
        out += shift[None, :, None]
    if relu:
        np.maximum(out, 0, out=out)
    return out


def grad_weight(ctx: Ctx, grad: np.ndarray) -> np.ndarray:
    c_out, c_in, kernel = ctx.weight.shape
    # dW2[o, ck] = sum_{n, s} grad[n, o, s] * cols[n, ck, s]
    d_w2 = np.tensordot(grad, ctx.cols, axes=([0, 2], [0, 2]))
    return d_w2.reshape(c_out, c_in, kernel)


def grad_input(ctx: Ctx, grad: np.ndarray) -> np.ndarray:
    n, _, l_out = grad.shape
    c_out, c_in, kernel = ctx.weight.shape
    w2 = ctx.weight.reshape(c_out, c_in * kernel)
    d_cols = np.matmul(w2.T, grad)  # (N, C_in*K, L_out)
    d4 = d_cols.reshape(n, c_in, kernel, l_out)
    # repro: waive[HOT001] backward pass — training only, never on the serving path
    d_xp = np.zeros((n, c_in, ctx.l_pad), dtype=DTYPE)
    span = (l_out - 1) * ctx.stride + 1
    for j in range(kernel):  # adjoint of the forward copy loop
        d_xp[:, :, j : j + span : ctx.stride] += d4[:, :, j, :]
    return d_xp
