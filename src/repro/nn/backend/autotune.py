"""Shape-keyed autotuner: first-call timing picks the conv kernel.

Under the ``auto`` backend mode, the first conv1d call for each distinct
``(N, C_in, C_out, K, L_pad, stride)`` signature times every registered
kernel on the live operands (best of two runs each, forward only) and
caches the winner in-process; subsequent calls with the same signature pay
only a dict lookup.  The backward contractions always follow the forward's
kernel, so a tuned signature stays internally consistent.

The cache can be persisted as JSON (:func:`save_cache` / :func:`load_cache`)
so long-lived deployments — e.g. a serving engine scoring a
:class:`~repro.data.MeterStore` — skip the timing pass on restart; the
serving engine wires this to ``EngineConfig.autotune_cache``, and the
``REPRO_NN_AUTOTUNE_CACHE`` environment variable does the same for any
process.

Timing is inherently machine- and run-dependent, so ``auto`` does not
promise a reproducible kernel choice across processes; pin ``reference``
or ``im2col`` when bit-stability matters (see ``docs/nn.md``).
"""

from __future__ import annotations

import json
import os
import time
from typing import Callable, Dict, Mapping, Optional, Tuple

import numpy as np

#: One conv call-site signature: (N, C_in, C_out, K, L_pad, stride).
Signature = Tuple[int, int, int, int, int, int]

#: Environment variable naming a JSON file the tuner loads at first use
#: and rewrites whenever a new signature is tuned.
CACHE_ENV = "REPRO_NN_AUTOTUNE_CACHE"

#: Escape hatch: ``REPRO_NN_AUTOTUNE=off`` (or ``0``/``false``/``no``)
#: makes ``choose`` return the default kernel without ever timing — the
#: first-call timing pass otherwise runs *inside* whatever hot path first
#: hits an untuned shape, which is exactly where a latency-sensitive
#: serving deployment cannot afford it.
AUTOTUNE_ENV = "REPRO_NN_AUTOTUNE"

#: Kernel served for every signature when tuning is disabled (the process
#: default backend — bit-stable and fastest on most paper shapes).
DEFAULT_KERNEL = "im2col"


def autotune_enabled() -> bool:
    """Whether first-call timing is allowed (``REPRO_NN_AUTOTUNE`` gate)."""
    return os.environ.get(AUTOTUNE_ENV, "").strip().lower() not in (
        "off",
        "0",
        "false",
        "no",
    )

#: Timing repetitions per candidate (best-of damps scheduler noise).
TIMING_REPEATS = 2


class ConvAutotuner:
    """Per-process cache mapping conv signatures to kernel names."""

    def __init__(self, kernels: Mapping[str, object]):
        self._kernels = dict(kernels)
        self._choices: Dict[Signature, str] = {}
        self._env_loaded = False
        #: True when the table holds entries not yet written by save_cache;
        #: callers (e.g. the serving engine after each run) consult this to
        #: avoid rewriting an unchanged JSON file on every scoring pass.
        self.dirty = False

    # -- cache plumbing ----------------------------------------------------
    @property
    def choices(self) -> Dict[Signature, str]:
        """Copy of the tuned (signature -> kernel name) table."""
        return dict(self._choices)

    def clear(self) -> None:
        self._choices.clear()
        self.dirty = False

    def load_cache(self, path: str) -> int:
        """Merge a JSON cache written by :meth:`save_cache`; returns #entries."""
        with open(path, "r", encoding="utf-8") as fh:
            raw = json.load(fh)
        count = 0
        for key, name in raw.items():
            if name not in self._kernels:
                continue  # a kernel set from a different version; skip
            parts = tuple(int(p) for p in key.split(","))
            if len(parts) != 6:
                continue
            self._choices[parts] = name  # type: ignore[index]
            count += 1
        return count

    def save_cache(self, path: str) -> None:
        """Write the tuned table as JSON (atomic rename)."""
        payload = {
            ",".join(str(v) for v in key): name
            for key, name in sorted(self._choices.items())
        }
        tmp = f"{path}.tmp.{os.getpid()}"
        os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=0, sort_keys=True)
        os.replace(tmp, path)
        self.dirty = False

    def _maybe_load_env_cache(self) -> None:
        if self._env_loaded:
            return
        self._env_loaded = True
        path = os.environ.get(CACHE_ENV)
        if path and os.path.exists(path):
            try:
                self.load_cache(path)
            except (OSError, ValueError, json.JSONDecodeError):
                pass  # a corrupt cache only costs a re-tune

    def _maybe_save_env_cache(self) -> None:
        path = os.environ.get(CACHE_ENV)
        if path:
            try:
                self.save_cache(path)
            except OSError:
                pass

    # -- tuning ------------------------------------------------------------
    def choose(
        self, signature: Signature, x_pad: np.ndarray, weight: np.ndarray, stride: int
    ) -> str:
        """Kernel name for ``signature``, timing the candidates on first call."""
        self._maybe_load_env_cache()
        cached = self._choices.get(signature)
        if cached is not None:
            return cached
        if not autotune_enabled():
            # Serve the default without timing and without caching the
            # choice: re-enabling the tuner later must re-tune, not inherit
            # an untimed entry (and the table must never persist one).
            return DEFAULT_KERNEL
        best_name, best_time = None, float("inf")
        for name, kernel in self._kernels.items():
            elapsed = min(
                self._time_once(kernel.forward, x_pad, weight, stride)
                for _ in range(TIMING_REPEATS)
            )
            if elapsed < best_time:
                best_name, best_time = name, elapsed
        assert best_name is not None
        self._choices[signature] = best_name
        self.dirty = True
        self._maybe_save_env_cache()
        return best_name

    @staticmethod
    def _time_once(
        fn: Callable, x_pad: np.ndarray, weight: np.ndarray, stride: int
    ) -> float:
        start = time.perf_counter()
        fn(x_pad, weight, stride, keep_ctx=False)
        return time.perf_counter() - start
