"""``repro.nn.backend`` — pluggable convolution execution layer.

Every model in the registry (CamAL and all six baselines) compiles down to
the fused primitives of :mod:`repro.nn.functional`; this package decides
*how* the dominant one — ``conv1d`` — executes:

``reference``
    The original strided-window ``np.tensordot`` path, kept bit-for-bit as
    numerical ground truth.
``im2col``
    K slice-copies into a C-contiguous column buffer + one batched sgemm
    per direction.  Bit-level batch-size invariant, fastest at the small-
    and mid-kernel shapes — the **default**.
``fft``
    rfft/irfft batched over channels with per-frequency complex GEMMs;
    wins at long-kernel / long-window shapes.
``auto``
    A shape-keyed autotuner: the first call per ``(N, C_in, C_out, K,
    L_pad, stride)`` signature times the three kernels on the live
    operands and caches the winner (optionally persisted — see
    :mod:`repro.nn.backend.autotune`).

Selection:

* process default: the ``REPRO_NN_BACKEND`` environment variable
  (``reference|im2col|fft|auto``), else ``im2col``;
* programmatic: :func:`set_backend` or the :func:`use_backend` context
  manager (used by tests and the serving engine's ``EngineConfig.backend``).

The package also owns the :class:`BufferPool` arena used by inference mode
(:func:`use_pool` / :func:`scratch`): with gradients disabled, conv scratch
and outputs are recycled across micro-batches so steady-state scoring
performs no large allocations.
"""

from __future__ import annotations

import contextlib
import os
from typing import Dict, Optional, Tuple

import numpy as np

from . import fft, im2col, reference
from .autotune import CACHE_ENV, ConvAutotuner, Signature
from .pool import BufferPool, current_pool, scratch, use_pool

__all__ = [
    "BACKEND_ENV",
    "CACHE_ENV",
    "BufferPool",
    "available_backends",
    "autotune_cache_dirty",
    "autotune_choices",
    "clear_autotune_cache",
    "current_pool",
    "get_backend",
    "load_autotune_cache",
    "resolve_conv",
    "save_autotune_cache",
    "scratch",
    "set_backend",
    "use_backend",
    "use_pool",
]

#: Environment variable selecting the process-wide default mode.
BACKEND_ENV = "REPRO_NN_BACKEND"

#: The concrete kernels, in autotuner candidate order.
_KERNELS = {
    im2col.NAME: im2col,
    fft.NAME: fft,
    reference.NAME: reference,
}

#: Valid values for :func:`set_backend` / ``REPRO_NN_BACKEND``.
_MODES: Tuple[str, ...] = ("reference", "im2col", "fft", "auto")

_DEFAULT_MODE = "im2col"

_autotuner = ConvAutotuner(_KERNELS)


def _validated(mode: str) -> str:
    mode = str(mode).strip().lower()
    if mode not in _MODES:
        raise ValueError(f"unknown nn backend {mode!r}; choose from {_MODES}")
    return mode


def _mode_from_env() -> str:
    raw = os.environ.get(BACKEND_ENV)
    if not raw:
        return _DEFAULT_MODE
    return _validated(raw)


_mode: str = _mode_from_env()


def available_backends() -> Tuple[str, ...]:
    """The selectable modes (three kernels plus ``auto``)."""
    return _MODES


def get_backend() -> str:
    """The currently active backend mode."""
    return _mode


def set_backend(mode: str) -> None:
    """Set the process-wide backend mode (``reference|im2col|fft|auto``)."""
    global _mode
    _mode = _validated(mode)


@contextlib.contextmanager
def use_backend(mode: Optional[str]):
    """Temporarily switch the backend mode; ``None`` is a no-op."""
    if mode is None:
        yield get_backend()
        return
    global _mode
    previous = _mode
    _mode = _validated(mode)
    try:
        yield _mode
    finally:
        _mode = previous


def resolve_conv(x_pad: np.ndarray, weight: np.ndarray, stride: int):
    """The kernel module that executes this conv1d call under the active mode."""
    if _mode != "auto":
        return _KERNELS[_mode]
    n, c_in, l_pad = x_pad.shape
    c_out, _, kernel = weight.shape
    signature: Signature = (n, c_in, c_out, kernel, l_pad, stride)
    return _KERNELS[_autotuner.choose(signature, x_pad, weight, stride)]


# -- autotuner cache surface ----------------------------------------------
def autotune_choices() -> Dict[Signature, str]:
    """Copy of the tuned (signature -> kernel name) table."""
    return _autotuner.choices


def autotune_cache_dirty() -> bool:
    """Whether the table holds entries not yet persisted by save_cache."""
    return _autotuner.dirty


def clear_autotune_cache() -> None:
    _autotuner.clear()


def load_autotune_cache(path: str) -> int:
    """Merge a persisted autotune cache; returns the number of entries."""
    return _autotuner.load_cache(path)


def save_autotune_cache(path: str) -> None:
    """Persist the in-process autotune cache as JSON."""
    _autotuner.save_cache(path)
