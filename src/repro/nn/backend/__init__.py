"""``repro.nn.backend`` — pluggable convolution execution layer.

Every model in the registry (CamAL and all six baselines) compiles down to
the fused primitives of :mod:`repro.nn.functional`; this package decides
*how* the dominant one — ``conv1d`` — executes:

``reference``
    The original strided-window ``np.tensordot`` path, kept bit-for-bit as
    numerical ground truth.
``im2col``
    K slice-copies into a C-contiguous column buffer + one batched sgemm
    per direction.  Bit-level batch-size invariant, fastest at the small-
    and mid-kernel shapes — the **default**.
``fft``
    rfft/irfft batched over channels with per-frequency complex GEMMs;
    wins at long-kernel / long-window shapes.
``auto``
    A shape-keyed autotuner: the first call per ``(N, C_in, C_out, K,
    L_pad, stride)`` signature times the three kernels on the live
    operands and caches the winner (optionally persisted — see
    :mod:`repro.nn.backend.autotune`).

Selection:

* process default: the ``REPRO_NN_BACKEND`` environment variable
  (``reference|im2col|fft|auto``), else ``im2col``;
* programmatic: :func:`set_backend` or the :func:`use_backend` context
  manager (used by tests and the serving engine's ``EngineConfig.backend``).

The package also owns the :class:`BufferPool` arena used by inference mode
(:func:`use_pool` / :func:`scratch`): with gradients disabled, conv scratch
and outputs are recycled across micro-batches so steady-state scoring
performs no large allocations.
"""

from __future__ import annotations

import contextlib
import os
from typing import Dict, Optional, Tuple

import numpy as np

from ...analysis.markers import hot_path
from . import counters, fft, im2col, reference
from .autotune import (
    AUTOTUNE_ENV,
    CACHE_ENV,
    ConvAutotuner,
    Signature,
    autotune_enabled,
)
from .counters import op_counts, reset_op_counts
from .pool import BufferPool, current_pool, scratch, use_pool

__all__ = [
    "AUTOTUNE_ENV",
    "BACKEND_ENV",
    "CACHE_ENV",
    "BufferPool",
    "autotune_enabled",
    "available_backends",
    "autotune_cache_dirty",
    "autotune_choices",
    "clear_autotune_cache",
    "conv1d_fused",
    "current_pool",
    "get_backend",
    "load_autotune_cache",
    "op_counts",
    "pad_scratch",
    "reset_op_counts",
    "resolve_conv",
    "save_autotune_cache",
    "scratch",
    "set_backend",
    "use_backend",
    "use_pool",
]

#: Environment variable selecting the process-wide default mode.
BACKEND_ENV = "REPRO_NN_BACKEND"

#: The concrete kernels, in autotuner candidate order.
_KERNELS = {
    im2col.NAME: im2col,
    fft.NAME: fft,
    reference.NAME: reference,
}

#: Valid values for :func:`set_backend` / ``REPRO_NN_BACKEND``.
_MODES: Tuple[str, ...] = ("reference", "im2col", "fft", "auto")

_DEFAULT_MODE = "im2col"

_autotuner = ConvAutotuner(_KERNELS)


def _validated(mode: str) -> str:
    mode = str(mode).strip().lower()
    if mode not in _MODES:
        raise ValueError(f"unknown nn backend {mode!r}; choose from {_MODES}")
    return mode


def _mode_from_env() -> str:
    raw = os.environ.get(BACKEND_ENV)
    if not raw:
        return _DEFAULT_MODE
    return _validated(raw)


_mode: str = _mode_from_env()


def available_backends() -> Tuple[str, ...]:
    """The selectable modes (three kernels plus ``auto``)."""
    return _MODES


def get_backend() -> str:
    """The currently active backend mode."""
    return _mode


def set_backend(mode: str) -> None:
    """Set the process-wide backend mode (``reference|im2col|fft|auto``)."""
    global _mode
    _mode = _validated(mode)


@contextlib.contextmanager
def use_backend(mode: Optional[str]):
    """Temporarily switch the backend mode; ``None`` is a no-op."""
    if mode is None:
        yield get_backend()
        return
    global _mode
    previous = _mode
    _mode = _validated(mode)
    try:
        yield _mode
    finally:
        _mode = previous


def resolve_conv(x_pad: np.ndarray, weight: np.ndarray, stride: int):
    """The kernel module that executes this conv1d call under the active mode."""
    if _mode != "auto":
        return _KERNELS[_mode]
    n, c_in, l_pad = x_pad.shape
    c_out, _, kernel = weight.shape
    signature: Signature = (n, c_in, c_out, kernel, l_pad, stride)
    return _KERNELS[_autotuner.choose(signature, x_pad, weight, stride)]


@hot_path
def pad_scratch(x: np.ndarray, padding: int) -> np.ndarray:
    """Zero-pad the last axis into a pool-aware scratch buffer.

    ``np.pad`` allocates a fresh array on every call; on the inference hot
    path the padded copy can come from the active :class:`BufferPool`
    instead (the pad margins are rewritten to zero each time, so a
    recycled buffer can never leak a previous batch's edges).
    """
    if padding <= 0:
        return x
    n, c, length = x.shape
    x_pad = scratch((n, c, length + 2 * padding), x.dtype)
    x_pad[:, :, :padding] = 0.0
    x_pad[:, :, padding + length :] = 0.0
    np.copyto(x_pad[:, :, padding : padding + length], x)
    return x_pad


@hot_path
def conv1d_fused(
    x: np.ndarray,
    weight: np.ndarray,
    shift: Optional[np.ndarray] = None,
    stride: int = 1,
    padding: int = 0,
    relu: bool = True,
) -> np.ndarray:
    """Fused conv -> per-channel shift -> ReLU on raw arrays (inference only).

    The single backend entry point behind the folded ConvBlock
    (:class:`repro.core.resnet.ConvBlock`) and the grouped ensemble
    executor: one kernel call computes the convolution and applies the
    already-folded batch-norm shift and the ReLU in its epilogue, writing
    into a pooled output buffer.  Callers must guarantee gradients are
    off — no backward context exists on this path.
    """
    x_pad = pad_scratch(x, padding)
    kern = resolve_conv(x_pad, weight, stride)
    return kern.forward_fused(x_pad, weight, stride, shift=shift, relu=relu)


# -- autotuner cache surface ----------------------------------------------
def autotune_choices() -> Dict[Signature, str]:
    """Copy of the tuned (signature -> kernel name) table."""
    return _autotuner.choices


def autotune_cache_dirty() -> bool:
    """Whether the table holds entries not yet persisted by save_cache."""
    return _autotuner.dirty


def clear_autotune_cache() -> None:
    _autotuner.clear()


def load_autotune_cache(path: str) -> int:
    """Merge a persisted autotune cache; returns the number of entries."""
    return _autotuner.load_cache(path)


def save_autotune_cache(path: str) -> None:
    """Persist the in-process autotune cache as JSON."""
    _autotuner.save_cache(path)
