"""Arena-style buffer pool for allocation-free steady-state inference.

The serving hot path runs the same micro-batch shapes thousands of times;
without pooling, every convolution re-allocates its im2col scratch and its
output from the system allocator.  :class:`BufferPool` recycles those
arrays across micro-batches:

* :meth:`take` hands out a buffer of the requested shape/dtype, reusing a
  recycled one when available;
* :meth:`step` marks everything handed out since the previous ``step`` as
  recyclable.  The caller guarantees that by the time ``step`` runs, no
  consumer still reads those buffers — in the fused inference loop that
  holds because every micro-batch's results are copied into accumulator
  arrays before the next micro-batch starts.

Because recycled buffers may still be referenced by stale outputs, the
pool must only ever serve code paths whose products are copied out before
the next step — i.e. inference with gradients disabled.  The backends
enforce this by bypassing the pool whenever a backward pass will retain
the buffer.
"""

from __future__ import annotations

import contextlib
from contextvars import ContextVar
from typing import Dict, List, Optional, Tuple

import numpy as np

from ...analysis import sanitize

_Key = Tuple[Tuple[int, ...], str]


class BufferPool:
    """Shape-keyed arena of reusable NumPy buffers (single-threaded use).

    Under ``REPRO_NN_SANITIZE=1`` (checked once, here at construction) the
    pool carries a :class:`repro.analysis.sanitize.PoolTracker`: every
    buffer recycled at :meth:`step` is poison-filled (NaN) and its
    generation tag bumped, so a consumer that violates the copy-out
    contract reads poison instead of a stale-but-plausible activation.
    When the sanitizer is off ``_tracker`` is ``None`` and every hot
    method pays exactly one ``is None`` branch.
    """

    def __init__(self) -> None:
        self._free: Dict[_Key, List[np.ndarray]] = {}
        self._taken: List[Tuple[_Key, np.ndarray]] = []
        self._tracker = sanitize.pool_tracker()
        self.fresh_allocations = 0
        self.reuses = 0
        self.bytes_allocated = 0

    def take(self, shape, dtype=np.float32) -> np.ndarray:
        """A writable buffer of ``shape``/``dtype`` (recycled when possible)."""
        key: _Key = (tuple(int(s) for s in shape), np.dtype(dtype).str)
        free = self._free.get(key)
        if free:
            arr = free.pop()
            self.reuses += 1
        else:
            arr = np.empty(key[0], dtype=dtype)
            self.fresh_allocations += 1
            self.bytes_allocated += arr.nbytes
        self._taken.append((key, arr))
        if self._tracker is not None:
            self._tracker.on_take(arr)
        return arr

    def take_persistent(self, shape, dtype=np.float32) -> np.ndarray:
        """A buffer the caller owns for the pool's lifetime (never recycled).

        Used by traced eval plans (:mod:`repro.nn.plan`) to pre-resolve
        their slots once at trace time: the buffer is counted in the pool's
        allocation statistics like any other, but it is *not* appended to
        the taken list, so no later :meth:`step` can hand it to someone
        else while the plan still writes into it on every replay.
        """
        key: _Key = (tuple(int(s) for s in shape), np.dtype(dtype).str)
        free = self._free.get(key)
        if free:
            arr = free.pop()
            self.reuses += 1
        else:
            arr = np.empty(key[0], dtype=dtype)
            self.fresh_allocations += 1
            self.bytes_allocated += arr.nbytes
        return arr

    def step(self) -> None:
        """Recycle every buffer handed out since the previous step."""
        if self._tracker is not None:
            self._tracker.on_release([arr for _, arr in self._taken])
        for key, arr in self._taken:
            self._free.setdefault(key, []).append(arr)
        self._taken.clear()

    @property
    def tracker(self):
        """The sanitizer tracker, or ``None`` when sanitizing is off."""
        return self._tracker

    def clear(self) -> None:
        """Drop all pooled buffers (counters are kept)."""
        self._free.clear()
        self._taken.clear()

    @property
    def stats(self) -> Dict[str, int]:
        return {
            "fresh_allocations": self.fresh_allocations,
            "reuses": self.reuses,
            "bytes_allocated": self.bytes_allocated,
            "free_buffers": sum(len(v) for v in self._free.values()),
            "taken_buffers": len(self._taken),
        }


_ACTIVE_POOL: ContextVar[Optional[BufferPool]] = ContextVar(
    "repro_nn_buffer_pool", default=None
)


def current_pool() -> Optional[BufferPool]:
    """The pool installed by the innermost :func:`use_pool`, if any."""
    return _ACTIVE_POOL.get()


@contextlib.contextmanager
def use_pool(pool: Optional[BufferPool]):
    """Route inference scratch/output allocations through ``pool``."""
    token = _ACTIVE_POOL.set(pool)
    try:
        yield pool
    finally:
        _ACTIVE_POOL.reset(token)


def scratch(shape, dtype=np.float32) -> np.ndarray:
    """Pool-aware ``np.empty``: recycled when a pool is active, fresh otherwise.

    Only inference code paths may call this — the returned buffer is
    recycled at the owning pool's next :meth:`BufferPool.step`.
    """
    pool = _ACTIVE_POOL.get()
    if pool is not None:
        return pool.take(shape, dtype)
    return np.empty(shape, dtype=dtype)
