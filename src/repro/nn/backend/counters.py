"""Process-wide operation counters for the fused execution paths.

The fusion work (conv -> folded-BN -> ReLU epilogues, grouped ensemble
GEMMs, traced eval plans) makes claims that are cheap to state and easy to
regress silently: "one batched GEMM per fused layer", "no per-member
Python loop".  These counters make those claims testable — the backend
kernels and the grouped executor record every fused call and every batched
GEMM they issue, and the call-count tests in ``tests/test_backend.py``
assert the totals.

Kept in a leaf module so the kernel modules (``im2col``/``fft``/
``reference``) and the grouped executor can record without importing the
backend package (which imports them).
"""

from __future__ import annotations

from typing import Dict

#: fused_conv_calls — invocations of a fused conv+scale/shift+ReLU entry
#: point (single-model or grouped).
#: fused_conv_gemms — batched ``np.matmul`` calls issued by those entries;
#: one grouped call covers every ensemble member in the group.
_COUNTS: Dict[str, int] = {
    "fused_conv_calls": 0,
    "fused_conv_gemms": 0,
}


def record(key: str, n: int = 1) -> None:
    """Increment a counter (missing keys start at zero)."""
    _COUNTS[key] = _COUNTS.get(key, 0) + n


def op_counts() -> Dict[str, int]:
    """Snapshot of all counters."""
    return dict(_COUNTS)


def reset_op_counts() -> None:
    """Zero every counter (tests call this around a measured region)."""
    for key in _COUNTS:
        _COUNTS[key] = 0
