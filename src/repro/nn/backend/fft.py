"""FFT conv1d kernel: rfft/irfft batched over channels.

Cross-correlation by the convolution theorem: transform the padded input
and the kernel once, multiply-and-sum over input channels in the frequency
domain (one complex GEMM per frequency bin, batched by ``np.matmul``), and
inverse-transform the valid part.  Cost scales with ``C_in * C_out * F``
(``F ≈ L/2`` bins) instead of ``C_in * C_out * K * L``, so this kernel
wins where the time-domain contraction is widest — the long-kernel
(``k_p = 25``) members of the paper's ensemble and the long-window shapes
of ``bench_fig6a_window_length`` / ``score_store``.

Both backward contractions are frequency-domain products too (dW is a
correlation of the input with the dilated output gradient, dX a plain
convolution of that gradient with the kernel), so training under the FFT
backend never falls back to a time-domain path.

NumPy's pocketfft computes in float64 and we cast back to float32, which
makes this kernel *more* accurate than the time-domain ones but **not**
bit-identical to them, and — unlike im2col — its per-sample bits depend on
the batch size (the per-frequency complex GEMM blocks over the batch
axis).  That is why ``fft`` is only ever picked explicitly or by the
autotuner, never as the silent default.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from . import counters
from .pool import scratch

DTYPE = np.float32

NAME = "fft"


def next_fast_len(n: int) -> int:
    """Smallest 5-smooth (2^a 3^b 5^c) integer >= ``n`` (fast FFT sizes)."""
    if n <= 6:
        return max(n, 1)
    while True:
        m = n
        for p in (2, 3, 5):
            while m % p == 0:
                m //= p
        if m == 1:
            return n
        n += 1


@dataclass
class Ctx:
    """Saved forward state for the backward transforms."""

    x_pad: np.ndarray  # (N, C_in, L_pad)
    weight: np.ndarray  # (C_out, C_in, K)
    stride: int
    nfft: int


def _freq_matmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Per-frequency complex GEMM: (..,F,m,k) @ (..,F,k,n) with F leading."""
    return np.matmul(np.ascontiguousarray(a), np.ascontiguousarray(b))


def forward(
    x_pad: np.ndarray, weight: np.ndarray, stride: int, keep_ctx: bool
) -> Tuple[np.ndarray, Optional[Ctx]]:
    n, c_in, l_pad = x_pad.shape
    c_out, _, kernel = weight.shape
    l_out = (l_pad - kernel) // stride + 1
    # Linear (non-circular) valid correlation only needs nfft >= L_pad: the
    # largest index touched is L_pad - 1.
    nfft = next_fast_len(l_pad)
    xf = np.fft.rfft(x_pad, nfft)  # (N, C_in, F)
    wf = np.fft.rfft(weight, nfft)  # (C_out, C_in, F)
    # corr(x, w) = irfft(X * conj(W)); sum over C_in is a GEMM per bin.
    prod = _freq_matmul(
        xf.transpose(2, 0, 1), wf.conj().transpose(2, 1, 0)
    )  # (F, N, C_out)
    full = np.fft.irfft(np.ascontiguousarray(prod.transpose(1, 2, 0)), nfft)
    valid = full[:, :, : (l_out - 1) * stride + 1 : stride]
    if keep_ctx:
        out = np.ascontiguousarray(valid, dtype=x_pad.dtype)
        return out, Ctx(x_pad, weight, stride, nfft)
    out = scratch((n, c_out, l_out), x_pad.dtype)
    np.copyto(out, valid)
    return out, None


def forward_fused(
    x_pad: np.ndarray,
    weight: np.ndarray,
    stride: int,
    shift: Optional[np.ndarray] = None,
    relu: bool = True,
) -> np.ndarray:
    """Inference-only conv with the folded-BN scale/shift + ReLU epilogue.

    Same transform pipeline as :func:`forward`; the epilogue runs in place
    on the (pooled) output, so fused blocks pay no extra activation pass.
    The FFT temporaries themselves still allocate (``np.fft`` owns them) —
    the plan layer's zero-allocation replay guarantee is an im2col-path
    property, documented in ``docs/nn.md``.
    """
    out, _ = forward(x_pad, weight, stride, keep_ctx=False)
    counters.record("fused_conv_calls")
    if shift is not None:
        out += shift[None, :, None]
    if relu:
        np.maximum(out, 0, out=out)
    return out


def _dilate(grad: np.ndarray, stride: int) -> np.ndarray:
    """Spread grad onto the stride grid: g_dil[s*stride] = grad[s]."""
    if stride == 1:
        return grad
    n, c_out, l_out = grad.shape
    # repro: waive[HOT001] backward-only helper — training path, never replayed
    dilated = np.zeros((n, c_out, (l_out - 1) * stride + 1), dtype=grad.dtype)
    dilated[:, :, ::stride] = grad
    return dilated


def grad_weight(ctx: Ctx, grad: np.ndarray) -> np.ndarray:
    kernel = ctx.weight.shape[2]
    g = _dilate(grad, ctx.stride)
    xf = np.fft.rfft(ctx.x_pad, ctx.nfft)  # (N, C_in, F)
    gf = np.fft.rfft(g, ctx.nfft)  # (N, C_out, F)
    # dW[o, c, k] = sum_n corr(x[n, c], g[n, o])[k]
    prod = _freq_matmul(
        gf.conj().transpose(2, 1, 0), xf.transpose(2, 0, 1)
    )  # (F, C_out, C_in)
    full = np.fft.irfft(np.ascontiguousarray(prod.transpose(1, 2, 0)), ctx.nfft)
    return np.ascontiguousarray(full[:, :, :kernel], dtype=DTYPE)


def grad_input(ctx: Ctx, grad: np.ndarray) -> np.ndarray:
    l_pad = ctx.x_pad.shape[2]
    g = _dilate(grad, ctx.stride)
    gf = np.fft.rfft(g, ctx.nfft)  # (N, C_out, F)
    wf = np.fft.rfft(ctx.weight, ctx.nfft)  # (C_out, C_in, F)
    # dX[n, c, t] = sum_o (g[n, o] * w[o, c])[t]  (plain convolution)
    prod = _freq_matmul(gf.transpose(2, 0, 1), wf.transpose(2, 0, 1))  # (F, N, C_in)
    full = np.fft.irfft(np.ascontiguousarray(prod.transpose(1, 2, 0)), ctx.nfft)
    return np.ascontiguousarray(full[:, :, :l_pad], dtype=DTYPE)
