"""Minimal dataset / dataloader abstractions for NumPy arrays."""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np


class Dataset:
    """Abstract map-style dataset."""

    def __len__(self) -> int:
        raise NotImplementedError

    def __getitem__(self, index: int):
        raise NotImplementedError


class TensorDataset(Dataset):
    """Dataset of aligned NumPy arrays (first axis = sample index)."""

    def __init__(self, *arrays: np.ndarray):
        if not arrays:
            raise ValueError("TensorDataset needs at least one array")
        length = len(arrays[0])
        for arr in arrays:
            if len(arr) != length:
                raise ValueError("all arrays must share the first dimension")
        self.arrays = tuple(np.asarray(a) for a in arrays)

    def __len__(self) -> int:
        return len(self.arrays[0])

    def __getitem__(self, index):
        return tuple(arr[index] for arr in self.arrays)


class Subset(Dataset):
    """View of a dataset restricted to the given indices."""

    def __init__(self, dataset: Dataset, indices: Sequence[int]):
        self.dataset = dataset
        self.indices = list(indices)

    def __len__(self) -> int:
        return len(self.indices)

    def __getitem__(self, index: int):
        return self.dataset[self.indices[index]]


def random_split(
    dataset: Dataset, fractions: Sequence[float], seed: Optional[int] = None
) -> List[Subset]:
    """Split a dataset into subsets with the given fractions (must sum to 1)."""
    if abs(sum(fractions) - 1.0) > 1e-6:
        raise ValueError(f"fractions must sum to 1, got {sum(fractions)}")
    rng = np.random.default_rng(seed)
    indices = rng.permutation(len(dataset))
    splits: List[Subset] = []
    start = 0
    for i, frac in enumerate(fractions):
        if i == len(fractions) - 1:
            stop = len(dataset)
        else:
            stop = start + int(round(frac * len(dataset)))
        splits.append(Subset(dataset, indices[start:stop].tolist()))
        start = stop
    return splits


class DataLoader:
    """Mini-batch iterator yielding tuples of stacked NumPy arrays."""

    def __init__(
        self,
        dataset: Dataset,
        batch_size: int = 32,
        shuffle: bool = False,
        drop_last: bool = False,
        seed: Optional[int] = None,
    ):
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self.dataset = dataset
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.drop_last = drop_last
        self._rng = np.random.default_rng(seed)

    def __len__(self) -> int:
        n = len(self.dataset)
        if self.drop_last:
            return n // self.batch_size
        return (n + self.batch_size - 1) // self.batch_size

    def __iter__(self) -> Iterator[Tuple[np.ndarray, ...]]:
        n = len(self.dataset)
        order = self._rng.permutation(n) if self.shuffle else np.arange(n)
        for start in range(0, n, self.batch_size):
            idx = order[start : start + self.batch_size]
            if self.drop_last and len(idx) < self.batch_size:
                return
            samples = [self.dataset[int(i)] for i in idx]
            yield tuple(np.stack(cols) for cols in zip(*samples))


def balance_binary(
    x: np.ndarray, y: np.ndarray, rng: np.random.Generator
) -> Tuple[np.ndarray, np.ndarray]:
    """Random undersampling to equalize the two classes of binary labels.

    Mirrors the balancing step of the paper's possession-only pipeline
    (§V-H).  Returns shuffled balanced copies; if one class is absent the
    inputs are returned unchanged.
    """
    y = np.asarray(y)
    pos = np.flatnonzero(y == 1)
    neg = np.flatnonzero(y == 0)
    if len(pos) == 0 or len(neg) == 0:
        return x, y
    keep = min(len(pos), len(neg))
    pos = rng.choice(pos, size=keep, replace=False)
    neg = rng.choice(neg, size=keep, replace=False)
    idx = rng.permutation(np.concatenate([pos, neg]))
    return x[idx], y[idx]
