"""Utilities: seeding, parameter counting, finite-difference grad checks."""

from __future__ import annotations

import random
from typing import Callable, Sequence

import numpy as np

from .modules import Module
from .tensor import DEFAULT_DTYPE, Tensor


def seed_everything(seed: int) -> np.random.Generator:
    """Seed the stdlib RNG and return a fresh :class:`np.random.Generator`.

    The returned generator is the only numpy randomness source callers
    should use — nothing in ``repro`` consumes the legacy global numpy RNG
    (lint rule ``DET001`` enforces this; this helper is the one blessed
    exception for the stdlib side, kept for third-party code that still
    reads ``random``).
    """
    random.seed(seed)
    return np.random.default_rng(seed)


def count_parameters(module: Module) -> int:
    """Number of trainable scalar parameters in ``module``."""
    return module.num_parameters()


def numerical_gradient(
    fn: Callable[[], Tensor], param: Tensor, eps: float = 1e-3
) -> np.ndarray:
    """Central finite-difference gradient of scalar ``fn()`` w.r.t. ``param``.

    ``fn`` must recompute the forward pass from scratch each call (it reads
    ``param.data``, which this routine perturbs in place).
    """
    grad = np.zeros_like(param.data, dtype=np.float64)
    flat = param.data.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        up = float(fn().data)
        flat[i] = original - eps
        down = float(fn().data)
        flat[i] = original
        grad_flat[i] = (up - down) / (2.0 * eps)
    return grad


def check_gradients(
    fn: Callable[[], Tensor],
    params: Sequence[Tensor],
    eps: float = 1e-3,
    rtol: float = 5e-2,
    atol: float = 1e-3,
) -> None:
    """Assert analytic gradients of ``fn`` match finite differences.

    Runs ``fn`` once with autograd, then compares each parameter's ``.grad``
    against :func:`numerical_gradient`.  Tolerances are float32-appropriate.
    Raises ``AssertionError`` with the offending parameter index on mismatch.
    """
    for param in params:
        param.grad = None
    loss = fn()
    loss.backward()
    analytic = [None if p.grad is None else p.grad.copy() for p in params]
    for idx, param in enumerate(params):
        numeric = numerical_gradient(fn, param, eps=eps)
        got = analytic[idx]
        if got is None:
            if np.max(np.abs(numeric)) > atol:
                raise AssertionError(f"param {idx}: missing analytic gradient")
            continue
        if not np.allclose(got, numeric, rtol=rtol, atol=atol):
            diff = np.max(np.abs(got - numeric))
            raise AssertionError(
                f"param {idx}: gradient mismatch (max abs diff {diff:.3e})"
            )


def one_hot(labels: np.ndarray, num_classes: int) -> np.ndarray:
    """Integer labels ``(N,)`` to one-hot ``(N, num_classes)`` float array."""
    labels = np.asarray(labels, dtype=np.int64)
    out = np.zeros((labels.size, num_classes), dtype=DEFAULT_DTYPE)
    out[np.arange(labels.size), labels] = 1.0
    return out
