"""Fused neural-network primitives with hand-derived backward passes.

Convolution, pooling, normalization, softmax and the fused losses are
implemented as single graph nodes (rather than compositions of elementwise
ops) for speed and numerical stability.  Every backward pass here is covered
by finite-difference gradient checks in ``tests/test_gradients.py``.

Two execution concerns are factored out of the math:

* **convolution kernels** live in :mod:`repro.nn.backend` (``reference`` /
  ``im2col`` / ``fft``, selected per call by the active backend mode) —
  ``conv1d`` here only handles padding, bias and graph bookkeeping;
* **inference mode**: when gradients are off (``nn.no_grad``) or no input
  requires them, every primitive takes an early return that builds *no*
  backward closure and saves *no* forward state (no windows/columns,
  ``x_hat``, argmax indices, ...), and batch norm collapses to a single
  fused per-channel scale/shift.  Combined with the backend buffer pool
  this makes steady-state scoring allocation-free on the conv hot path.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from . import backend
from .tensor import DEFAULT_DTYPE, Tensor, _unbroadcast, is_grad_enabled


def _needs_grad(*tensors: Optional[Tensor]) -> bool:
    """Whether this op must record the graph (any live parent requires grad)."""
    return is_grad_enabled() and any(
        t is not None and t.requires_grad for t in tensors
    )


# ----------------------------------------------------------------------
# Convolution
# ----------------------------------------------------------------------
def conv1d(
    x: Tensor,
    weight: Tensor,
    bias: Optional[Tensor] = None,
    stride: int = 1,
    padding: int = 0,
) -> Tensor:
    """1-D cross-correlation over ``x`` of shape ``(N, C_in, L)``.

    ``weight`` has shape ``(C_out, C_in, K)``; the output has shape
    ``(N, C_out, L_out)`` with ``L_out = (L + 2*padding - K) // stride + 1``.

    Execution is delegated to the active :mod:`repro.nn.backend` kernel;
    the backward contractions reuse whichever kernel ran the forward.
    """
    if x.ndim != 3:
        raise ValueError(f"conv1d expects (N, C, L) input, got shape {x.shape}")
    n, c_in, length = x.shape
    c_out, c_in_w, kernel = weight.shape
    if c_in != c_in_w:
        raise ValueError(f"channel mismatch: input has {c_in}, weight expects {c_in_w}")
    if length + 2 * padding < kernel:
        raise ValueError("input (plus padding) shorter than kernel")

    needs = _needs_grad(x, weight, bias)
    if padding and needs:
        # The backward contractions may retain x_pad (or views of it) in
        # their context, so it must not come from the recycling pool.
        x_pad = np.pad(x.data, ((0, 0), (0, 0), (padding, padding)))
    else:
        x_pad = backend.pad_scratch(x.data, padding) if padding else x.data
    kern = backend.resolve_conv(x_pad, weight.data, stride)
    out, ctx = kern.forward(x_pad, weight.data, stride, keep_ctx=needs)
    if bias is not None:
        out += bias.data[None, :, None]
    if not needs:
        return Tensor(out)

    parents = (x, weight) if bias is None else (x, weight, bias)

    def backward(grad: np.ndarray) -> None:
        if bias is not None and bias.requires_grad:
            bias._accumulate(grad.sum(axis=(0, 2)))
        if weight.requires_grad:
            weight._accumulate(kern.grad_weight(ctx, grad))
        if x.requires_grad:
            d_xp = kern.grad_input(ctx, grad)
            if padding:
                d_xp = np.ascontiguousarray(d_xp[:, :, padding : padding + length])
            x._accumulate(d_xp)

    return Tensor._make_from(out, parents, backward, "conv1d")


# ----------------------------------------------------------------------
# Pooling / resampling
# ----------------------------------------------------------------------
def max_pool1d(x: Tensor, kernel: int) -> Tensor:
    """Non-overlapping max pooling (stride == kernel) over the last axis.

    Inputs whose length is not divisible by ``kernel`` are right-padded
    with ``-inf`` (the pad never wins the max).  The argmax bookkeeping
    needed to route gradients is only built when gradients are enabled;
    inference is a plain blockwise ``max``.
    """
    n, c, length = x.shape
    remainder = length % kernel
    pad = kernel - remainder if remainder else 0
    data = np.pad(x.data, ((0, 0), (0, 0), (0, pad)), constant_values=-np.inf) if pad else x.data
    l_out = data.shape[2] // kernel
    blocks = data.reshape(n, c, l_out, kernel)
    if not _needs_grad(x):
        out = backend.scratch((n, c, l_out), x.dtype)
        blocks.max(axis=3, out=out)
        return Tensor(out)

    idx = blocks.argmax(axis=3)
    out = np.take_along_axis(blocks, idx[..., None], axis=3)[..., 0]

    def backward(grad: np.ndarray) -> None:
        if not x.requires_grad:
            return
        d_blocks = np.zeros_like(blocks)
        np.put_along_axis(d_blocks, idx[..., None], grad[..., None], axis=3)
        d_x = d_blocks.reshape(n, c, l_out * kernel)
        if pad:
            d_x = d_x[:, :, :length]
        x._accumulate(d_x)

    return Tensor._make_from(out, (x,), backward, "max_pool1d")


def avg_pool1d(x: Tensor, kernel: int) -> Tensor:
    """Non-overlapping average pooling (stride == kernel), zero right-pad.

    When the length is not divisible by ``kernel`` the tail block is
    averaged over the *real* samples it covers (count-exclude-pad): a
    count-include-pad divisor would bias the tail output toward zero, and
    its backward would leak gradient mass onto the padding.
    """
    n, c, length = x.shape
    remainder = length % kernel
    pad = kernel - remainder if remainder else 0
    data = np.pad(x.data, ((0, 0), (0, 0), (0, pad))) if pad else x.data
    l_out = data.shape[2] // kernel
    counts = np.full(l_out, kernel, dtype=DEFAULT_DTYPE)
    if pad:
        counts[-1] = remainder
    out = data.reshape(n, c, l_out, kernel).sum(axis=3) / counts
    if not _needs_grad(x):
        return Tensor(out.astype(DEFAULT_DTYPE))

    def backward(grad: np.ndarray) -> None:
        if not x.requires_grad:
            return
        d_x = np.repeat(grad / counts, kernel, axis=2)
        if pad:
            d_x = d_x[:, :, :length]
        x._accumulate(np.ascontiguousarray(d_x))

    return Tensor._make_from(out.astype(DEFAULT_DTYPE), (x,), backward, "avg_pool1d")


def global_avg_pool1d(x: Tensor) -> Tensor:
    """Average over the temporal axis: ``(N, C, L) -> (N, C)``."""
    return x.mean(axis=2)


def upsample_nearest1d(x: Tensor, scale: int) -> Tensor:
    """Nearest-neighbour upsampling of the last axis by integer ``scale``."""
    out = np.repeat(x.data, scale, axis=2)
    n, c, length = x.shape
    if not _needs_grad(x):
        return Tensor(out)

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(grad.reshape(n, c, length, scale).sum(axis=3))

    return Tensor._make_from(out, (x,), backward, "upsample_nearest1d")


def upsample_to1d(x: Tensor, target_length: int) -> Tensor:
    """Nearest-neighbour resize of the last axis to ``target_length``.

    Handles non-integer ratios (used by the temporal-pooling decoders when
    pooled branches do not divide the input length exactly).
    """
    n, c, length = x.shape
    idx = np.minimum((np.arange(target_length) * length) // target_length, length - 1)
    out = x.data[:, :, idx]
    if not _needs_grad(x):
        return Tensor(out)

    def backward(grad: np.ndarray) -> None:
        if not x.requires_grad:
            return
        # Segment-sum via bincount over a flat index map (row r of the
        # flattened (n*c, target) gradient scatters into row r of
        # (n*c, length)): orders of magnitude faster than np.add.at's
        # per-element ufunc dispatch, and accumulates in float64 (so it is
        # at least as accurate).  The map is built here, not at forward
        # time — the closure retains only the (target,) idx array.
        flat_idx = (np.arange(n * c, dtype=np.int64)[:, None] * length + idx).ravel()
        d_flat = np.bincount(
            flat_idx,
            weights=np.ascontiguousarray(grad).reshape(-1),
            minlength=n * c * length,
        )
        x._accumulate(d_flat.reshape(n, c, length).astype(DEFAULT_DTYPE))

    return Tensor._make_from(out, (x,), backward, "upsample_to1d")


# ----------------------------------------------------------------------
# Normalization
# ----------------------------------------------------------------------
def batch_norm(
    x: Tensor,
    gamma: Tensor,
    beta: Tensor,
    running_mean: np.ndarray,
    running_var: np.ndarray,
    training: bool,
    momentum: float = 0.1,
    eps: float = 1e-5,
) -> Tensor:
    """Batch normalization over ``(N, C, L)`` (per-channel) or ``(N, C)``.

    ``running_mean``/``running_var`` are updated in place in training mode.
    With gradients disabled the whole op folds into one per-channel
    scale/shift (``scale = gamma * inv_std``, ``shift = beta - mean *
    scale``): a single fused multiply-add over the input instead of the
    four-pass normalize-then-affine, with no saved ``x_hat``.
    """
    if x.ndim == 3:
        axes: Tuple[int, ...] = (0, 2)
        view = (1, -1, 1)
    elif x.ndim == 2:
        axes = (0,)
        view = (1, -1)
    else:
        raise ValueError(f"batch_norm expects 2-D or 3-D input, got {x.ndim}-D")

    if training:
        mean = x.data.mean(axis=axes)
        var = x.data.var(axis=axes)
        count = x.data.size // x.data.shape[1]
        unbiased = var * count / max(count - 1, 1)
        running_mean *= 1.0 - momentum
        running_mean += momentum * mean
        running_var *= 1.0 - momentum
        running_var += momentum * unbiased
    else:
        mean = running_mean
        var = running_var

    inv_std = 1.0 / np.sqrt(var + eps)

    if not _needs_grad(x, gamma, beta):
        scale = (gamma.data * inv_std).astype(DEFAULT_DTYPE)
        shift = (beta.data - mean * scale).astype(DEFAULT_DTYPE)
        out = backend.scratch(x.shape, DEFAULT_DTYPE)
        np.multiply(x.data, scale.reshape(view), out=out)
        out += shift.reshape(view)
        return Tensor(out)

    x_hat = (x.data - mean.reshape(view)) * inv_std.reshape(view)
    out = gamma.data.reshape(view) * x_hat + beta.data.reshape(view)

    def backward(grad: np.ndarray) -> None:
        if beta.requires_grad:
            beta._accumulate(grad.sum(axis=axes))
        if gamma.requires_grad:
            gamma._accumulate((grad * x_hat).sum(axis=axes))
        if not x.requires_grad:
            return
        g = gamma.data.reshape(view)
        if training:
            d_xhat = grad * g
            term1 = d_xhat
            term2 = d_xhat.mean(axis=axes, keepdims=True)
            term3 = x_hat * (d_xhat * x_hat).mean(axis=axes, keepdims=True)
            d_x = (term1 - term2 - term3) * inv_std.reshape(view)
        else:
            d_x = grad * g * inv_std.reshape(view)
        x._accumulate(d_x.astype(DEFAULT_DTYPE))

    return Tensor._make_from(out.astype(DEFAULT_DTYPE), (x, gamma, beta), backward, "batch_norm")


def layer_norm(x: Tensor, gamma: Tensor, beta: Tensor, eps: float = 1e-5) -> Tensor:
    """Layer normalization over the last axis of ``x``."""
    mean = x.data.mean(axis=-1, keepdims=True)
    var = x.data.var(axis=-1, keepdims=True)
    inv_std = 1.0 / np.sqrt(var + eps)
    x_hat = (x.data - mean) * inv_std
    out = gamma.data * x_hat + beta.data
    if not _needs_grad(x, gamma, beta):
        return Tensor(out.astype(DEFAULT_DTYPE))
    dim = x.data.shape[-1]

    def backward(grad: np.ndarray) -> None:
        if beta.requires_grad:
            beta._accumulate(_unbroadcast(grad, beta.shape))
        if gamma.requires_grad:
            gamma._accumulate(_unbroadcast(grad * x_hat, gamma.shape))
        if not x.requires_grad:
            return
        d_xhat = grad * gamma.data
        d_x = (
            d_xhat
            - d_xhat.mean(axis=-1, keepdims=True)
            - x_hat * (d_xhat * x_hat).mean(axis=-1, keepdims=True)
        ) * inv_std
        x._accumulate(d_x.astype(DEFAULT_DTYPE))

    return Tensor._make_from(out.astype(DEFAULT_DTYPE), (x, gamma, beta), backward, "layer_norm")


# ----------------------------------------------------------------------
# Softmax family
# ----------------------------------------------------------------------
def softmax(x: Tensor, axis: int = -1) -> Tensor:
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    out = exp / exp.sum(axis=axis, keepdims=True)
    if not _needs_grad(x):
        return Tensor(out)

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            dot = (grad * out).sum(axis=axis, keepdims=True)
            x._accumulate(out * (grad - dot))

    return Tensor._make_from(out, (x,), backward, "softmax")


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    log_z = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    out = shifted - log_z
    if not _needs_grad(x):
        return Tensor(out)
    soft = np.exp(out)

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(grad - soft * grad.sum(axis=axis, keepdims=True))

    return Tensor._make_from(out, (x,), backward, "log_softmax")


# ----------------------------------------------------------------------
# Dropout
# ----------------------------------------------------------------------
def dropout(x: Tensor, p: float, training: bool, rng: np.random.Generator) -> Tensor:
    """Inverted dropout; identity when not training or ``p == 0``."""
    if not training or p <= 0.0:
        return x
    if p >= 1.0:
        raise ValueError("dropout probability must be < 1")
    mask = (rng.random(x.shape) >= p).astype(DEFAULT_DTYPE) / (1.0 - p)

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(grad * mask)

    return Tensor._make_from(x.data * mask, (x,), backward, "dropout")


# ----------------------------------------------------------------------
# Fused losses
# ----------------------------------------------------------------------
def cross_entropy(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Mean softmax cross-entropy; ``targets`` are integer class ids (N,)."""
    targets = np.asarray(targets, dtype=np.int64)
    n = logits.shape[0]
    shifted = logits.data - logits.data.max(axis=1, keepdims=True)
    log_z = np.log(np.exp(shifted).sum(axis=1, keepdims=True))
    log_probs = shifted - log_z
    loss = -log_probs[np.arange(n), targets].mean()
    if not _needs_grad(logits):
        return Tensor(np.asarray(loss, dtype=DEFAULT_DTYPE))
    probs = np.exp(log_probs)

    def backward(grad: np.ndarray) -> None:
        if logits.requires_grad:
            d = probs.copy()
            d[np.arange(n), targets] -= 1.0
            logits._accumulate(d * (grad / n))

    return Tensor._make_from(np.asarray(loss, dtype=DEFAULT_DTYPE), (logits,), backward, "ce")


def binary_cross_entropy_with_logits(
    logits: Tensor, targets: np.ndarray, pos_weight: Optional[float] = None
) -> Tensor:
    """Mean BCE on raw logits (numerically stable log-sum-exp form)."""
    t = np.asarray(targets, dtype=DEFAULT_DTYPE)
    z = logits.data
    needs = _needs_grad(logits)
    # loss = max(z, 0) - z*t + log(1 + exp(-|z|)); weighted variant scales the
    # positive term by pos_weight.  The sigmoid clip keeps float32 exp finite
    # for extreme logits (it saturates long before +/-60).
    grad_local = None
    if pos_weight is None:
        per = np.maximum(z, 0) - z * t + np.log1p(np.exp(-np.abs(z)))
        if needs:
            sig = 1.0 / (1.0 + np.exp(-np.clip(z, -60.0, 60.0)))
            grad_local = sig - t
    else:
        w = t * pos_weight + (1.0 - t)
        log_sig = -np.maximum(-z, 0) - np.log1p(np.exp(-np.abs(z)))
        log_one_minus = -np.maximum(z, 0) - np.log1p(np.exp(-np.abs(z)))
        per = -(pos_weight * t * log_sig + (1.0 - t) * log_one_minus)
        if needs:
            sig = 1.0 / (1.0 + np.exp(-np.clip(z, -60.0, 60.0)))
            grad_local = w * sig - pos_weight * t
    loss = per.mean()
    if not needs:
        return Tensor(np.asarray(loss, dtype=DEFAULT_DTYPE))
    count = z.size

    def backward(grad: np.ndarray) -> None:
        if logits.requires_grad:
            logits._accumulate(grad_local * (grad / count))

    return Tensor._make_from(np.asarray(loss, dtype=DEFAULT_DTYPE), (logits,), backward, "bce_logits")


def mse_loss(pred: Tensor, targets: np.ndarray) -> Tensor:
    """Mean squared error against a constant target array."""
    t = np.asarray(targets, dtype=DEFAULT_DTYPE)
    diff = pred.data - t
    loss = np.mean(diff * diff)
    if not _needs_grad(pred):
        return Tensor(np.asarray(loss, dtype=DEFAULT_DTYPE))
    count = diff.size

    def backward(grad: np.ndarray) -> None:
        if pred.requires_grad:
            pred._accumulate(2.0 * diff * (grad / count))

    return Tensor._make_from(np.asarray(loss, dtype=DEFAULT_DTYPE), (pred,), backward, "mse")
