"""``repro.nn.plan`` — traced eval plans: record once, replay flat.

The eval-mode forward of a fixed model on a fixed batch shape always
executes the same backend calls on the same buffer shapes, yet the module
path re-pays the interpreter for that discovery on every call: attribute
walks through ``nn.Module.__call__``, graph-node checks in every
primitive, Tensor wrappers around every intermediate, and a pool
transaction per scratch buffer.  This module removes all of it:

* a **trace** runs once per input signature.  It executes the forward
  eagerly while recording it as a flat list of step closures, each closed
  over *pre-resolved* buffers (taken from the owning
  :class:`~repro.nn.backend.BufferPool` via ``take_persistent``) and the
  live parameter objects it reads;
* a **replay** is ``for step in steps: step()`` — zero
  ``nn.Module.__call__`` dispatch, zero graph-node checks, zero
  allocations on the im2col path (the FFT kernel's internal transform
  temporaries remain ``np.fft``'s own).

Plans are cached per signature — keyed like the conv autotuner's
signature on the shapes that determine the call sequence (batch size,
window length, backend mode, ...) — in a :class:`PlanCache` owned by the
traced object (the CamAL ensemble keeps one next to its buffer pool).
Anything the tracer does not support falls back to the untraced path and
is counted, so regressions show up in ``engine.plan_stats()`` and the
benchmark JSON rather than as silent slowdowns.

Set ``REPRO_NN_PLAN=off`` to disable tracing entirely (every call takes
the fallback path); see ``docs/nn.md``.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from typing import Callable, Dict, Hashable, List, Optional, Tuple

import numpy as np

from ..analysis import sanitize
from ..analysis.markers import hot_path
from .backend.pool import BufferPool

__all__ = [
    "PLAN_ENV",
    "ExecutionPlan",
    "PlanBuilder",
    "PlanCache",
    "plan_enabled",
]

#: Environment variable disabling the plan layer (``off``/``0``/``false``).
PLAN_ENV = "REPRO_NN_PLAN"

#: A plan cache key: the shape tuple that fixes the traced call sequence.
Signature = Hashable


def plan_enabled() -> bool:
    """Whether tracing is allowed (checked per call, so tests can flip it)."""
    return os.environ.get(PLAN_ENV, "").strip().lower() not in (
        "off",
        "0",
        "false",
        "no",
    )


class ExecutionPlan:
    """One traced forward: bound buffers plus a flat list of step closures.

    ``inputs`` and ``outputs`` name the pre-resolved buffers the caller
    copies into before :meth:`run` and reads after it.  The caller must
    copy outputs *out* before the next replay — every slot is rewritten.
    """

    __slots__ = ("signature", "steps", "inputs", "outputs", "labels", "replays")

    def __init__(
        self,
        signature: Signature,
        steps: List[Callable[[], None]],
        inputs: Dict[str, np.ndarray],
        outputs: Dict[str, np.ndarray],
        labels: Optional[List[str]] = None,
    ):
        self.signature = signature
        self.steps: Tuple[Callable[[], None], ...] = tuple(steps)
        self.inputs = dict(inputs)
        self.outputs = dict(outputs)
        #: Human-readable step names, parallel to ``steps`` (sanitizer
        #: diagnostics and ``plan_stats`` introspection).
        self.labels: Tuple[str, ...] = tuple(
            labels if labels is not None else (f"step[{i}]" for i in range(len(steps)))
        )
        self.replays = 0

    @hot_path
    def run(self) -> None:
        """Replay the recorded calls — nothing else happens on this path."""
        for step in self.steps:
            step()
        self.replays += 1

    def __len__(self) -> int:
        return len(self.steps)


class PlanBuilder:
    """Collects steps and hands out pre-resolved buffer slots during a trace.

    Slot allocation is arena-style with explicit reuse: :meth:`buffer`
    serves a slot (recycling a released one of the same shape/dtype when
    available), :meth:`release` returns a slot whose last consumer has
    been recorded.  The tracer knows every lifetime exactly — it is
    writing the schedule — so peak plan memory stays near the live set of
    the forward instead of one buffer per recorded value.

    Under ``REPRO_NN_SANITIZE=1`` the builder carries a
    :class:`repro.analysis.sanitize.PlanTracker`: slots get generation
    tags, releases poison-fill the slot, and every :meth:`emit` may
    declare the arrays the step ``reads``/``writes`` so use-after-release
    and cross-slot aliasing are caught *at trace time* with the offending
    step's label — before a single replay runs.
    """

    def __init__(self, pool: Optional[BufferPool] = None):
        self._pool = pool
        self._steps: List[Callable[[], None]] = []
        self._labels: List[str] = []
        self._free: Dict[Tuple[Tuple[int, ...], str], List[np.ndarray]] = {}
        self._tracker = sanitize.plan_tracker()

    def buffer(self, shape, dtype=np.float32) -> np.ndarray:
        """A plan-owned slot of ``shape``/``dtype`` (recycled when possible)."""
        key = (tuple(int(s) for s in shape), np.dtype(dtype).str)
        free = self._free.get(key)
        if free:
            arr = free.pop()
            if self._tracker is not None:
                self._tracker.on_buffer(arr, recycled=True)
            return arr
        if self._pool is not None:
            arr = self._pool.take_persistent(key[0], dtype)
        else:
            # repro: waive[HOT001] pool-less trace-time slot acquisition — this IS the allocator the ban steers hot code toward
            arr = np.empty(key[0], dtype=dtype)
        if self._tracker is not None:
            self._tracker.on_buffer(arr, recycled=False)
        return arr

    def release(self, arr: np.ndarray) -> None:
        """Mark a slot reusable for later :meth:`buffer` requests.

        Only whole slots obtained from :meth:`buffer` may be released —
        releasing a view would alias two live recorded values.
        """
        key = (tuple(arr.shape), arr.dtype.str)
        self._free.setdefault(key, []).append(arr)
        if self._tracker is not None:
            last = self._labels[-1] if self._labels else None
            self._tracker.on_release(arr, at_step=last)

    def emit(
        self,
        step: Callable[[], None],
        label: Optional[str] = None,
        reads: Tuple[np.ndarray, ...] = (),
        writes: Tuple[np.ndarray, ...] = (),
    ) -> None:
        """Append one recorded backend call to the plan.

        ``label`` names the step in sanitizer diagnostics; ``reads`` and
        ``writes`` declare the plan slots (or views into them) the closure
        touches.  The declarations are advisory when the sanitizer is off
        and checked immediately when it is on — a step reading a released
        slot raises :class:`repro.analysis.sanitize.PlanSanitizeError`
        naming ``label``.
        """
        name = label if label is not None else f"step[{len(self._steps)}]"
        if self._tracker is not None:
            self._tracker.on_emit(name, reads, writes)
        self._steps.append(step)
        self._labels.append(name)

    def build(
        self,
        signature: Signature,
        inputs: Dict[str, np.ndarray],
        outputs: Dict[str, np.ndarray],
    ) -> ExecutionPlan:
        return ExecutionPlan(signature, self._steps, inputs, outputs, self._labels)


class PlanCache:
    """LRU cache of :class:`ExecutionPlan` per signature, with counters.

    ``traces`` counts plan recordings, ``replays`` counts plan executions,
    ``fallbacks`` counts calls that ran the untraced path (plan layer
    disabled, unsupported structure, or a failed trace-time validation).
    The serving engine surfaces these via ``plan_stats()`` next to
    ``buffer_pool_stats()``.
    """

    def __init__(self, max_plans: int = 16):
        if max_plans < 1:
            raise ValueError(f"max_plans must be >= 1, got {max_plans}")
        self.max_plans = max_plans
        self._plans: "OrderedDict[Signature, ExecutionPlan]" = OrderedDict()
        self.traces = 0
        self.replays = 0
        self.fallbacks = 0

    def get(self, signature: Signature) -> Optional[ExecutionPlan]:
        plan = self._plans.get(signature)
        if plan is not None:
            self._plans.move_to_end(signature)
        return plan

    def put(self, signature: Signature, plan: ExecutionPlan) -> ExecutionPlan:
        self._plans[signature] = plan
        self._plans.move_to_end(signature)
        self.traces += 1
        while len(self._plans) > self.max_plans:
            self._plans.popitem(last=False)
        return plan

    def record_replay(self, n: int = 1) -> None:
        self.replays += n

    def record_fallback(self, n: int = 1) -> None:
        self.fallbacks += n

    def clear(self) -> None:
        """Drop every cached plan (counters are kept, like BufferPool)."""
        self._plans.clear()

    def __len__(self) -> int:
        return len(self._plans)

    @property
    def stats(self) -> Dict[str, int]:
        return {
            "plans": len(self._plans),
            "traces": self.traces,
            "replays": self.replays,
            "fallbacks": self.fallbacks,
        }
