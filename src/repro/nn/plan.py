"""``repro.nn.plan`` — traced eval plans: record once, replay flat.

The eval-mode forward of a fixed model on a fixed batch shape always
executes the same backend calls on the same buffer shapes, yet the module
path re-pays the interpreter for that discovery on every call: attribute
walks through ``nn.Module.__call__``, graph-node checks in every
primitive, Tensor wrappers around every intermediate, and a pool
transaction per scratch buffer.  This module removes all of it:

* a **trace** runs once per input signature.  It executes the forward
  eagerly while recording it as a flat list of step closures, each closed
  over *pre-resolved* buffers (taken from the owning
  :class:`~repro.nn.backend.BufferPool` via ``take_persistent``) and the
  live parameter objects it reads;
* a **replay** is ``for step in steps: step()`` — zero
  ``nn.Module.__call__`` dispatch, zero graph-node checks, zero
  allocations on the im2col path (the FFT kernel's internal transform
  temporaries remain ``np.fft``'s own).

Plans are cached per signature — keyed like the conv autotuner's
signature on the shapes that determine the call sequence (batch size,
window length, backend mode, ...) — in a :class:`PlanCache` owned by the
traced object (the CamAL ensemble keeps one next to its buffer pool).
Anything the tracer does not support falls back to the untraced path and
is counted, so regressions show up in ``engine.plan_stats()`` and the
benchmark JSON rather than as silent slowdowns.

Set ``REPRO_NN_PLAN=off`` to disable tracing entirely (every call takes
the fallback path); see ``docs/nn.md``.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from typing import Callable, Dict, Hashable, List, Optional, Tuple

import numpy as np

from .backend.pool import BufferPool

__all__ = [
    "PLAN_ENV",
    "ExecutionPlan",
    "PlanBuilder",
    "PlanCache",
    "plan_enabled",
]

#: Environment variable disabling the plan layer (``off``/``0``/``false``).
PLAN_ENV = "REPRO_NN_PLAN"

#: A plan cache key: the shape tuple that fixes the traced call sequence.
Signature = Hashable


def plan_enabled() -> bool:
    """Whether tracing is allowed (checked per call, so tests can flip it)."""
    return os.environ.get(PLAN_ENV, "").strip().lower() not in (
        "off",
        "0",
        "false",
        "no",
    )


class ExecutionPlan:
    """One traced forward: bound buffers plus a flat list of step closures.

    ``inputs`` and ``outputs`` name the pre-resolved buffers the caller
    copies into before :meth:`run` and reads after it.  The caller must
    copy outputs *out* before the next replay — every slot is rewritten.
    """

    __slots__ = ("signature", "steps", "inputs", "outputs", "replays")

    def __init__(
        self,
        signature: Signature,
        steps: List[Callable[[], None]],
        inputs: Dict[str, np.ndarray],
        outputs: Dict[str, np.ndarray],
    ):
        self.signature = signature
        self.steps: Tuple[Callable[[], None], ...] = tuple(steps)
        self.inputs = dict(inputs)
        self.outputs = dict(outputs)
        self.replays = 0

    def run(self) -> None:
        """Replay the recorded calls — nothing else happens on this path."""
        for step in self.steps:
            step()
        self.replays += 1

    def __len__(self) -> int:
        return len(self.steps)


class PlanBuilder:
    """Collects steps and hands out pre-resolved buffer slots during a trace.

    Slot allocation is arena-style with explicit reuse: :meth:`buffer`
    serves a slot (recycling a released one of the same shape/dtype when
    available), :meth:`release` returns a slot whose last consumer has
    been recorded.  The tracer knows every lifetime exactly — it is
    writing the schedule — so peak plan memory stays near the live set of
    the forward instead of one buffer per recorded value.
    """

    def __init__(self, pool: Optional[BufferPool] = None):
        self._pool = pool
        self._steps: List[Callable[[], None]] = []
        self._free: Dict[Tuple[Tuple[int, ...], str], List[np.ndarray]] = {}

    def buffer(self, shape, dtype=np.float32) -> np.ndarray:
        """A plan-owned slot of ``shape``/``dtype`` (recycled when possible)."""
        key = (tuple(int(s) for s in shape), np.dtype(dtype).str)
        free = self._free.get(key)
        if free:
            return free.pop()
        if self._pool is not None:
            return self._pool.take_persistent(key[0], dtype)
        return np.empty(key[0], dtype=dtype)

    def release(self, arr: np.ndarray) -> None:
        """Mark a slot reusable for later :meth:`buffer` requests.

        Only whole slots obtained from :meth:`buffer` may be released —
        releasing a view would alias two live recorded values.
        """
        key = (tuple(arr.shape), arr.dtype.str)
        self._free.setdefault(key, []).append(arr)

    def emit(self, step: Callable[[], None]) -> None:
        """Append one recorded backend call to the plan."""
        self._steps.append(step)

    def build(
        self,
        signature: Signature,
        inputs: Dict[str, np.ndarray],
        outputs: Dict[str, np.ndarray],
    ) -> ExecutionPlan:
        return ExecutionPlan(signature, self._steps, inputs, outputs)


class PlanCache:
    """LRU cache of :class:`ExecutionPlan` per signature, with counters.

    ``traces`` counts plan recordings, ``replays`` counts plan executions,
    ``fallbacks`` counts calls that ran the untraced path (plan layer
    disabled, unsupported structure, or a failed trace-time validation).
    The serving engine surfaces these via ``plan_stats()`` next to
    ``buffer_pool_stats()``.
    """

    def __init__(self, max_plans: int = 16):
        if max_plans < 1:
            raise ValueError(f"max_plans must be >= 1, got {max_plans}")
        self.max_plans = max_plans
        self._plans: "OrderedDict[Signature, ExecutionPlan]" = OrderedDict()
        self.traces = 0
        self.replays = 0
        self.fallbacks = 0

    def get(self, signature: Signature) -> Optional[ExecutionPlan]:
        plan = self._plans.get(signature)
        if plan is not None:
            self._plans.move_to_end(signature)
        return plan

    def put(self, signature: Signature, plan: ExecutionPlan) -> ExecutionPlan:
        self._plans[signature] = plan
        self._plans.move_to_end(signature)
        self.traces += 1
        while len(self._plans) > self.max_plans:
            self._plans.popitem(last=False)
        return plan

    def record_replay(self, n: int = 1) -> None:
        self.replays += n

    def record_fallback(self, n: int = 1) -> None:
        self.fallbacks += n

    def clear(self) -> None:
        """Drop every cached plan (counters are kept, like BufferPool)."""
        self._plans.clear()

    def __len__(self) -> int:
        return len(self._plans)

    @property
    def stats(self) -> Dict[str, int]:
        return {
            "plans": len(self._plans),
            "traces": self.traces,
            "replays": self.replays,
            "fallbacks": self.fallbacks,
        }
