"""The estimator protocol: one interface for CamAL *and* every baseline.

The paper's comparison (§V-C) pits CamAL against five strongly supervised
sequence-to-sequence networks and one weak MIL variant.  Historically only
CamAL was a first-class object; the baselines were bare ``nn.Module``s
glued together by per-experiment code.  :class:`WeakLocalizer` is the
shared contract that makes every method trainable, servable and
persistable through the same five verbs:

* ``fit(windows, labels, val_windows, val_labels)`` — train on windows
  ``(N, L)``.  The *meaning* of ``labels`` follows the estimator's
  ``supervision``: one label per window (weak) or one per timestamp
  (strong).  Use :meth:`labels_for` to pick the right array from a
  ``WindowSet``-like object.
* ``detect(x)`` — window-level detection probabilities ``(N,)``
  (Problem 1).
* ``predict_status(x)`` / ``localize(x)`` — per-timestamp localization
  (Problem 2); ``localize`` returns the full
  :class:`~repro.core.localization.LocalizationOutput`.
* ``save(directory)`` / ``load(directory)`` — manifest-based persistence
  (see :mod:`repro.api.persistence`).

Anything implementing this contract plugs into
:class:`repro.serving.InferenceEngine` unchanged — the engine only ever
calls ``eval()``/``localize()`` and reads ``status_threshold`` /
``power_gate_watts``.
"""

from __future__ import annotations

import abc
from typing import Optional

import numpy as np

from ..core.localization import LocalizationOutput

#: Label granularities an estimator can train on.
SUPERVISION_KINDS = ("weak", "strong")


class NotFittedError(RuntimeError):
    """Raised when a prediction method needs a trained model first."""


class WeakLocalizer(abc.ABC):
    """Abstract base class of every registered appliance localizer.

    Subclasses set two class attributes:

    * ``name`` — the registry name (``"camal"``, ``"crnn"``, ...);
    * ``supervision`` — ``"weak"`` (one label per window) or ``"strong"``
      (one label per timestamp).

    After a successful :meth:`fit`, estimators expose:

    * ``n_labels_`` — number of individual labels consumed;
    * ``train_seconds_`` — wall-clock training time.
    """

    name: str = "abstract"
    supervision: str = "weak"

    #: Serving knobs read by the :class:`~repro.serving.InferenceEngine`.
    status_threshold: float = 0.5
    power_gate_watts: Optional[float] = None

    def __init__(self) -> None:
        self.n_labels_: int = 0
        self.train_seconds_: float = 0.0
        self._fitted = False

    # -- training ---------------------------------------------------------
    @abc.abstractmethod
    def fit(
        self,
        windows: np.ndarray,
        labels: np.ndarray,
        val_windows: Optional[np.ndarray] = None,
        val_labels: Optional[np.ndarray] = None,
    ) -> "WeakLocalizer":
        """Train on ``(N, L)`` windows; returns ``self``.

        ``labels`` is ``(N,)`` for weak estimators and ``(N, L)`` for
        strong ones.  Validation data is optional — estimators that need
        it (model selection, early stopping) fall back to the training
        arrays when it is omitted.
        """

    @property
    def is_fitted(self) -> bool:
        return self._fitted

    def _mark_fitted(self, n_labels: int = 0, train_seconds: float = 0.0) -> None:
        self._fitted = True
        self.n_labels_ = int(n_labels)
        self.train_seconds_ = float(train_seconds)

    def labels_for(self, window_set) -> np.ndarray:
        """Pick this estimator's label array from a ``WindowSet``-like.

        Weak estimators read ``.weak`` (one label per window); strong
        estimators read ``.strong`` (one label per timestamp).  This is
        where the weak/strong *label routing* lives, so experiment runners
        never branch on the method again.
        """
        return window_set.weak if self.supervision == "weak" else window_set.strong

    def label_count(self, labels: np.ndarray) -> int:
        """How many individual annotations ``labels`` represents."""
        labels = np.asarray(labels)
        return len(labels) if self.supervision == "weak" else int(labels.size)

    # -- inference --------------------------------------------------------
    @abc.abstractmethod
    def detect(self, x: np.ndarray, batch_size: int = 256) -> np.ndarray:
        """Window-level detection probabilities ``(N,)`` in ``[0, 1]``."""

    @abc.abstractmethod
    def localize(self, x: np.ndarray, batch_size: int = 256) -> LocalizationOutput:
        """Full per-timestamp localization of windows ``(N, L)``."""

    def predict_status(self, x: np.ndarray, batch_size: int = 256) -> np.ndarray:
        """Binary per-timestamp status ``ŝ(t)``, shape ``(N, L)``."""
        return self.localize(x, batch_size).status

    def eval(self) -> "WeakLocalizer":
        """Switch the underlying network(s) to inference mode."""
        return self

    def num_parameters(self) -> int:
        """Trainable-parameter count of the underlying network(s)."""
        return 0

    # -- persistence ------------------------------------------------------
    @abc.abstractmethod
    def save(self, directory: str) -> None:
        """Persist the fitted estimator into ``directory`` (manifest layout)."""

    @classmethod
    def load(cls, directory: str) -> "WeakLocalizer":
        """Reload any estimator saved by :meth:`save`.

        Dispatches on the manifest's ``model`` key through the registry,
        so ``WeakLocalizer.load(d)`` works for every registered type; a
        concrete subclass narrows the result and raises ``TypeError`` when
        the directory holds a different model.
        """
        from .persistence import load_estimator

        estimator = load_estimator(directory)
        if cls is not WeakLocalizer and not isinstance(estimator, cls):
            raise TypeError(
                f"{directory!r} holds a {type(estimator).__name__}, "
                f"not a {cls.__name__}"
            )
        return estimator

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "fitted" if self._fitted else "unfitted"
        return f"<{type(self).__name__} name={self.name!r} {state}>"
