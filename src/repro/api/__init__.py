"""``repro.api`` — one estimator API for CamAL *and* every baseline.

* :mod:`repro.api.base` — the :class:`WeakLocalizer` contract
  (``fit`` / ``detect`` / ``predict_status`` / ``localize`` /
  ``save`` / ``load``);
* :mod:`repro.api.registry` — declarative model registry with named scale
  presets (``paper`` = Table II sizes, ``small``, ``tiny``);
* :mod:`repro.api.adapters` — :class:`CamALLocalizer`,
  :class:`Seq2SeqLocalizer` and :class:`WeakMILLocalizer`, plus the
  built-in registrations (camal, crnn, crnn-weak, bigru, unet-nilm,
  tpnilm, transnilm);
* :mod:`repro.api.persistence` — versioned-manifest persistence that
  round-trips any registered estimator (and whole per-appliance fleets).

Quickstart::

    from repro import api

    est = api.create("camal", scale="small", seed=0)
    est.fit(train_windows, est.labels_for(train_set),
            val_windows, est.labels_for(val_set))
    output = est.localize(test_windows)   # LocalizationOutput
    est.save("models/kettle")

    same = api.load_estimator("models/kettle")   # any registered model
"""

from .adapters import (
    LEGACY_NAMES,
    CamALLocalizer,
    Seq2SeqLocalizer,
    WeakMILLocalizer,
)
from .base import SUPERVISION_KINDS, NotFittedError, WeakLocalizer
from .persistence import (
    GENERIC_FORMAT_VERSION,
    load_estimator,
    load_pipelines,
    save_estimator,
    save_pipelines,
)
from .registry import (
    SCALE_NAMES,
    ModelEntry,
    available_models,
    canonical_name,
    conv_shapes,
    create,
    get_entry,
    parse_model_spec,
    register,
)

__all__ = [
    "WeakLocalizer",
    "NotFittedError",
    "SUPERVISION_KINDS",
    "SCALE_NAMES",
    "ModelEntry",
    "register",
    "create",
    "get_entry",
    "available_models",
    "canonical_name",
    "conv_shapes",
    "parse_model_spec",
    "CamALLocalizer",
    "Seq2SeqLocalizer",
    "WeakMILLocalizer",
    "LEGACY_NAMES",
    "save_estimator",
    "load_estimator",
    "save_pipelines",
    "load_pipelines",
    "GENERIC_FORMAT_VERSION",
]
