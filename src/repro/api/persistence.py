"""Generic estimator persistence: one manifest format for every model.

Layout: a saved estimator is a directory holding ``manifest.json`` plus
one or more ``.npz`` weight archives.  Two manifest flavours coexist:

* **format_version 1** — the original CamAL layout (``members`` list, one
  archive per ensemble ResNet).  Written by :class:`CamALLocalizer.save`
  and the legacy ``save_camal``; directories that predate the ``model``
  key load as CamAL.
* **format_version 2** — the generic network-estimator layout::

      {
        "format_version": 2,
        "model": "crnn",            # registry name -> class + config type
        "supervision": "strong",
        "config": {...},            # the model's config-dataclass fields
        "detection_threshold": 0.5,
        "status_threshold": 0.5,
        "power_gate_watts": null,
        "n_labels": 1280,
        "weights": "network.npz"
      }

:func:`load_estimator` dispatches on the manifest's ``model`` key through
the registry, so ``load_estimator(d)`` round-trips *any* registered
estimator; :func:`load_pipelines` discovers a fleet of per-appliance
directories (mixed model types welcome) and reports anything it skips.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, fields
from typing import Dict

from ..core.localization import CamAL
from ..core.persistence import (
    MANIFEST_NAME,
    _read_camal,
    _write_camal,
    scan_pipeline_root,
    warn_skipped_pipelines,
)
from ..nn.serialization import load_state, save_state
from .adapters import CamALLocalizer, Seq2SeqLocalizer
from .base import NotFittedError, WeakLocalizer
from .registry import canonical_name, get_entry

GENERIC_FORMAT_VERSION = 2
_WEIGHTS_NAME = "network.npz"


def _config_from_fields(config_cls: type, stored: Dict) -> object:
    """Rebuild a config dataclass from manifest fields (lists -> tuples)."""
    kwargs = {}
    for spec in fields(config_cls):
        if spec.name not in stored:
            continue
        value = stored[spec.name]
        kwargs[spec.name] = tuple(value) if isinstance(value, list) else value
    return config_cls(**kwargs)


def save_estimator(estimator, directory: str) -> None:
    """Persist any registered estimator (or a raw :class:`CamAL`).

    CamAL pipelines keep the original member-per-file layout (format 1,
    still readable by the legacy loader); network estimators write the
    generic format-2 manifest plus one weights archive.
    """
    if isinstance(estimator, CamAL):
        _write_camal(estimator, directory)
        return
    if isinstance(estimator, CamALLocalizer):
        if estimator.pipeline is None:
            raise NotFittedError("cannot save an unfitted CamALLocalizer")
        _write_camal(estimator.pipeline, directory, n_labels=estimator.n_labels_)
        return
    if not isinstance(estimator, Seq2SeqLocalizer):
        raise TypeError(
            f"don't know how to persist {type(estimator).__name__}; expected "
            f"a registered WeakLocalizer or a CamAL pipeline"
        )
    if not estimator.is_fitted:
        raise NotFittedError(f"cannot save an unfitted {estimator.name!r} estimator")

    os.makedirs(directory, exist_ok=True)
    save_state(estimator.network, os.path.join(directory, _WEIGHTS_NAME))
    gate = estimator.power_gate_watts
    manifest = {
        "format_version": GENERIC_FORMAT_VERSION,
        "model": estimator.name,
        "supervision": estimator.supervision,
        "config": asdict(estimator.config),
        "detection_threshold": float(estimator.detection_threshold),
        "status_threshold": float(estimator.status_threshold),
        "power_gate_watts": None if gate is None else float(gate),
        "n_labels": int(estimator.n_labels_),
        "weights": _WEIGHTS_NAME,
    }
    with open(os.path.join(directory, MANIFEST_NAME), "w") as handle:
        json.dump(manifest, handle, indent=2)


def load_estimator(directory: str) -> WeakLocalizer:
    """Reload any estimator saved by :func:`save_estimator` / ``.save()``.

    Dispatches on the manifest's ``model`` key; manifests without one
    (pre-registry CamAL directories) load as CamAL.
    """
    manifest_path = os.path.join(directory, MANIFEST_NAME)
    if not os.path.exists(manifest_path):
        raise FileNotFoundError(f"no {MANIFEST_NAME} in {directory!r}")
    with open(manifest_path) as handle:
        manifest = json.load(handle)

    model = manifest.get("model")
    if model is None or canonical_name(model) == "camal":
        estimator = CamALLocalizer(pipeline=_read_camal(directory))
        estimator.n_labels_ = int(manifest.get("n_labels", 0))
        return estimator

    version = manifest.get("format_version")
    if version != GENERIC_FORMAT_VERSION:
        raise ValueError(
            f"unsupported manifest format_version {version!r} for model "
            f"{model!r} (expected {GENERIC_FORMAT_VERSION})"
        )
    entry = get_entry(model)
    config = _config_from_fields(entry.config_cls, manifest.get("config", {}))
    gate = manifest.get("power_gate_watts")
    estimator = entry.factory(
        config,
        train=None,
        detection_threshold=float(manifest.get("detection_threshold", 0.5)),
        status_threshold=float(manifest.get("status_threshold", 0.5)),
        power_gate_watts=None if gate is None else float(gate),
    )
    load_state(estimator.network, os.path.join(directory, manifest["weights"]))
    estimator.network.eval()
    estimator._mark_fitted(int(manifest.get("n_labels", 0)), 0.0)
    return estimator


def save_pipelines(pipelines: Dict[str, object], root: str) -> None:
    """Persist a fleet of per-appliance estimators under ``root/<name>/``.

    Values may be any registered :class:`WeakLocalizer` or raw
    :class:`CamAL` pipelines — model types can be mixed freely.
    """
    for appliance, estimator in pipelines.items():
        save_estimator(estimator, os.path.join(root, appliance))


def load_pipelines(root: str) -> Dict[str, WeakLocalizer]:
    """Load every estimator directory under ``root``, keyed by its name.

    This is the deployment layout consumed by
    :meth:`repro.serving.InferenceEngine.load`: one subdirectory per
    appliance, each holding a ``manifest.json``.  Stray files and
    manifest-less directories are skipped and reported with a single
    ``UserWarning`` instead of aborting the load mid-way.
    """
    entries, skipped = scan_pipeline_root(root)
    pipelines: Dict[str, WeakLocalizer] = {}
    for name, directory in entries:
        try:
            pipelines[name] = load_estimator(directory)
        except (KeyError, ValueError, OSError) as exc:
            # Unknown model, unsupported format, corrupt manifest/archive:
            # report and keep loading the rest of the fleet.
            skipped.append(f"{name} ({exc})")
    warn_skipped_pipelines(root, skipped)
    return pipelines
