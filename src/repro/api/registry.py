"""Declarative model registry: names, config dataclasses, scale presets.

The registry replaces the hard-coded ``paper``/``small``/``tiny`` lambda
tables that used to live in ``experiments/runner.py``: each model
registers once with its config dataclass and a dict of named **scale
presets** (field overrides), and every consumer — experiment runners, the
CLI, the serving engine's loader, benchmarks, tests — instantiates
estimators through :func:`create`.

    est = create("crnn", scale="small", seed=0)
    est.fit(windows, est.labels_for(train_set))

Scale names follow the experiment presets: ``paper`` is the Table-II size
(the config dataclass defaults), ``small`` and ``tiny`` are the
CPU-friendly widths of the fast/bench presets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from .base import SUPERVISION_KINDS, WeakLocalizer

#: The canonical scale-preset names (every model registers all three).
SCALE_NAMES = ("paper", "small", "tiny")


@dataclass(frozen=True)
class ModelEntry:
    """One registered estimator type."""

    name: str
    description: str
    supervision: str  # "weak" | "strong"
    config_cls: type  # per-model config dataclass
    #: ``factory(config, train=..., **kwargs) -> WeakLocalizer``
    factory: Callable[..., WeakLocalizer]
    #: Underlying ``nn.Module`` class (``None`` when the estimator builds
    #: its own networks, e.g. CamAL's Algorithm-1 ensemble).
    network_cls: Optional[type] = None
    #: Scale name -> config-field overrides applied on top of defaults.
    scales: Mapping[str, Mapping[str, object]] = field(default_factory=dict)
    #: Optional ``fn(config) -> [(C_in, C_out, K), ...]`` enumerating the
    #: model's convolution signatures at that config — the workload
    #: description consumed by ``benchmarks/bench_nn_ops.py`` and backend
    #: autotuner warm-up (see :func:`conv_shapes`).
    conv_shapes_fn: Optional[Callable[[object], List[Tuple[int, int, int]]]] = None

    def config(self, scale: str = "paper", seed: int = 0, **overrides):
        """Build this model's config dataclass at a named scale."""
        try:
            fields = dict(self.scales[scale])
        except KeyError:
            raise KeyError(
                f"unknown scale {scale!r} for model {self.name!r}; "
                f"known: {sorted(self.scales)}"
            ) from None
        fields.update(overrides)
        return self.config_cls(seed=seed, **fields)


_REGISTRY: Dict[str, ModelEntry] = {}


def canonical_name(name: str) -> str:
    """Normalize a model name (legacy spellings like ``"CRNN-weak"`` work)."""
    return str(name).strip().lower()


def register(
    name: str,
    *,
    config_cls: type,
    factory: Callable[..., WeakLocalizer],
    scales: Mapping[str, Mapping[str, object]],
    supervision: str,
    description: str = "",
    network_cls: Optional[type] = None,
    conv_shapes: Optional[Callable[[object], List[Tuple[int, int, int]]]] = None,
    replace: bool = False,
) -> ModelEntry:
    """Register an estimator type under ``name`` (lower-cased)."""
    key = canonical_name(name)
    if supervision not in SUPERVISION_KINDS:
        raise ValueError(
            f"supervision must be one of {SUPERVISION_KINDS}, got {supervision!r}"
        )
    if key in _REGISTRY and not replace:
        raise ValueError(f"model {key!r} is already registered")
    entry = ModelEntry(
        name=key,
        description=description,
        supervision=supervision,
        config_cls=config_cls,
        factory=factory,
        network_cls=network_cls,
        scales={k: dict(v) for k, v in scales.items()},
        conv_shapes_fn=conv_shapes,
    )
    _REGISTRY[key] = entry
    return entry


def available_models() -> List[str]:
    """Registered model names, sorted."""
    return sorted(_REGISTRY)


def get_entry(name: str) -> ModelEntry:
    """Look up a registry entry (KeyError lists the known names)."""
    key = canonical_name(name)
    try:
        return _REGISTRY[key]
    except KeyError:
        raise KeyError(
            f"unknown model {name!r}; known: {available_models()}"
        ) from None


def create(
    name: str,
    scale: str = "paper",
    seed: int = 0,
    train=None,
    config=None,
    **kwargs,
) -> WeakLocalizer:
    """Instantiate an unfitted estimator from the registry.

    Args:
        name: registry name (case-insensitive; ``"CRNN-weak"`` works).
        scale: named scale preset (``paper``/``small``/``tiny``).
        seed: initialization seed folded into the model config.
        train: optional :class:`repro.training.TrainConfig` controlling
            the fit loop (epochs, lr, batch size, checkpointing...).
        config: explicit config dataclass instance; overrides ``scale``.
        **kwargs: estimator-specific knobs (e.g. ``power_gate_watts``,
            ``detection_threshold``, ``n_workers`` for CamAL).
    """
    entry = get_entry(name)
    if config is None:
        config = entry.config(scale=scale, seed=seed)
    return entry.factory(config, train=train, **kwargs)


def conv_shapes(
    name: str, scale: str = "paper", **overrides
) -> List[Tuple[int, int, int]]:
    """Distinct ``(C_in, C_out, K)`` conv signatures of a registered model.

    The ``paper`` scale of ``"camal"`` yields the Table-II ResNet-ensemble
    inventory that ``benchmarks/bench_nn_ops.py`` benchmarks per backend.
    Raises :class:`ValueError` for models that do not declare their shapes.
    """
    entry = get_entry(name)
    if entry.conv_shapes_fn is None:
        raise ValueError(f"model {entry.name!r} does not declare conv shapes")
    return entry.conv_shapes_fn(entry.config(scale=scale, **overrides))


def parse_model_spec(spec: str) -> Tuple[str, Optional[str]]:
    """Split a CLI ``<name>@<scale>`` spec; scale is optional.

    >>> parse_model_spec("crnn@small")
    ('crnn', 'small')
    >>> parse_model_spec("CamAL")
    ('camal', None)
    """
    text = str(spec).strip()
    if "@" in text:
        name, _, scale = text.partition("@")
        if not name or not scale:
            raise ValueError(f"malformed model spec {spec!r}; expected name[@scale]")
        return canonical_name(name), scale.strip().lower()
    return canonical_name(text), None
