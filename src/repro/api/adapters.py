"""Estimator adapters: CamAL and every §V-C baseline behind one contract.

Three adapters cover the repo's methods:

* :class:`CamALLocalizer` — wraps Algorithm-1 ensemble training and the
  :class:`~repro.core.CamAL` pipeline (weak supervision);
* :class:`Seq2SeqLocalizer` — wraps a strongly supervised per-timestamp
  network (CRNN, BiGRU, UNet-NILM, TPNILM, TransNILM) around
  :func:`~repro.training.train_seq2seq`;
* :class:`WeakMILLocalizer` — the CRNN-weak variant: trains through
  :func:`~repro.training.train_weak_mil` on window labels, localizes from
  frame probabilities, and detects through linear-softmax MIL pooling.

The weak/strong *training routing* lives here — experiment runners no
longer branch on the method name.  The bottom of the module registers all
seven models with their Table-II (``paper``) and CPU-friendly
(``small``/``tiny``) scale presets; these presets replace the old lambda
tables of ``experiments/runner.py``.
"""

from __future__ import annotations

import time
from dataclasses import replace as dc_replace
from typing import List, Optional

import numpy as np

from .. import baselines as bl
from .. import nn
from ..core.ensemble import EnsembleConfig, TrainedCandidate, train_ensemble
from ..core.localization import CamAL, LocalizationOutput
from ..core.resnet import ensemble_conv_shapes
from ..simdata.preprocessing import SCALE_DIVISOR
from ..training import (
    TrainConfig,
    predict_proba_seq2seq,
    train_seq2seq,
    train_weak_mil,
)
from .base import NotFittedError, WeakLocalizer
from .registry import register


# ----------------------------------------------------------------------
# CamAL
# ----------------------------------------------------------------------
class CamALLocalizer(WeakLocalizer):
    """Algorithm-1 ensemble training + CAM localization as an estimator.

    ``fit`` runs :func:`repro.core.train_ensemble` (optionally across
    ``n_workers`` processes, resumable from ``checkpoint_dir``) and builds
    the :class:`~repro.core.CamAL` pipeline; inference delegates to it.
    A pre-built pipeline (e.g. from :func:`repro.core.train_ensemble` or a
    legacy ``save_camal`` directory) can be wrapped directly via the
    ``pipeline`` argument.
    """

    name = "camal"
    supervision = "weak"

    def __init__(
        self,
        config: Optional[EnsembleConfig] = None,
        *,
        train: Optional[TrainConfig] = None,
        detection_threshold: float = 0.5,
        use_attention: bool = True,
        power_gate_watts: Optional[float] = None,
        status_threshold: float = 0.5,
        n_workers: int = 1,
        checkpoint_dir: Optional[str] = None,
        pipeline: Optional[CamAL] = None,
    ):
        super().__init__()
        config = config if config is not None else EnsembleConfig()
        if train is not None:
            config = dc_replace(config, train=train)
        self.config = config
        self.n_workers = n_workers
        self.checkpoint_dir = checkpoint_dir
        self.candidates_: List[TrainedCandidate] = []
        self.pipeline: Optional[CamAL] = pipeline
        if pipeline is not None:
            # Adopt the pipeline's own localization knobs.
            self._detection_threshold = pipeline.detection_threshold
            self._use_attention = pipeline.use_attention
            self._power_gate_watts = pipeline.power_gate_watts
            self._status_threshold = pipeline.status_threshold
            self._fitted = True
        else:
            self._detection_threshold = detection_threshold
            self._use_attention = use_attention
            self._power_gate_watts = power_gate_watts
            self._status_threshold = status_threshold

    # The localization knobs live on the wrapped CamAL once it exists;
    # these properties write through so mutating the estimator after
    # fit/load can never diverge from what localize() actually uses.
    def _knob(name):  # noqa: N805 - descriptor factory, not a method
        private = f"_{name}"

        def fget(self):
            return getattr(self, private)

        def fset(self, value):
            setattr(self, private, value)
            if self.pipeline is not None:
                setattr(self.pipeline, name, value)

        return property(fget, fset)

    detection_threshold = _knob("detection_threshold")
    use_attention = _knob("use_attention")
    power_gate_watts = _knob("power_gate_watts")
    status_threshold = _knob("status_threshold")
    del _knob

    def _require_pipeline(self) -> CamAL:
        if self.pipeline is None:
            raise NotFittedError(
                "this CamALLocalizer has no trained pipeline; call fit() "
                "or load() first"
            )
        return self.pipeline

    def fit(self, windows, labels, val_windows=None, val_labels=None):
        if val_windows is None:
            val_windows, val_labels = windows, labels
        start = time.perf_counter()
        ensemble, candidates = train_ensemble(
            windows,
            labels,
            val_windows,
            val_labels,
            self.config,
            n_workers=self.n_workers,
            checkpoint_dir=self.checkpoint_dir,
        )
        seconds = time.perf_counter() - start
        self.candidates_ = candidates
        self.pipeline = CamAL(
            ensemble,
            detection_threshold=self.detection_threshold,
            use_attention=self.use_attention,
            power_gate_watts=self.power_gate_watts,
            status_threshold=self.status_threshold,
        )
        self._mark_fitted(self.label_count(labels), seconds)
        return self

    def detect(self, x, batch_size: int = 256):
        return self._require_pipeline().detect(
            np.asarray(x, dtype=np.float32), batch_size
        )

    def localize(self, x, batch_size: int = 256) -> LocalizationOutput:
        return self._require_pipeline().localize(x, batch_size)

    def eval(self):
        if self.pipeline is not None:
            self.pipeline.ensemble.eval()
        return self

    def num_parameters(self) -> int:
        return 0 if self.pipeline is None else self.pipeline.ensemble.num_parameters()

    def save(self, directory: str) -> None:
        from .persistence import save_estimator

        save_estimator(self, directory)


# ----------------------------------------------------------------------
# Strongly supervised sequence-to-sequence baselines
# ----------------------------------------------------------------------
class Seq2SeqLocalizer(WeakLocalizer):
    """A per-timestamp network (frame logits ``(N, L)``) as an estimator.

    ``fit`` trains with frame-level BCE on strong labels
    (:func:`~repro.training.train_seq2seq`).  ``localize`` reads the frame
    sigmoid probabilities: they fill both the ``soft_status`` and ``cam``
    slots of :class:`~repro.core.LocalizationOutput` (the baselines have
    no separate class-activation map), the window detection probability is
    their per-window maximum, and ``status`` thresholds the frames exactly
    like :func:`~repro.training.predict_status_seq2seq`.
    """

    supervision = "strong"

    def __init__(
        self,
        name: str,
        network: nn.Module,
        config,
        *,
        train: Optional[TrainConfig] = None,
        detection_threshold: float = 0.5,
        status_threshold: float = 0.5,
        power_gate_watts: Optional[float] = None,
    ):
        super().__init__()
        self.name = name
        self.network = network
        self.config = config
        self.train_config = (
            train if train is not None else TrainConfig(seed=getattr(config, "seed", 0))
        )
        self.detection_threshold = detection_threshold
        self.status_threshold = status_threshold
        self.power_gate_watts = power_gate_watts

    # -- training ---------------------------------------------------------
    def _train(self, windows, labels, val_windows, val_labels) -> None:
        train_seq2seq(
            self.network, windows, labels, val_windows, val_labels, self.train_config
        )

    def fit(self, windows, labels, val_windows=None, val_labels=None):
        if val_windows is None:
            val_windows, val_labels = windows, labels
        start = time.perf_counter()
        self._train(windows, labels, val_windows, val_labels)
        seconds = time.perf_counter() - start
        self.network.eval()
        self._mark_fitted(self.label_count(labels), seconds)
        return self

    # -- inference --------------------------------------------------------
    def _frame_probs(self, x: np.ndarray, batch_size: int) -> np.ndarray:
        """Per-timestamp sigmoid probabilities ``(N, L)``."""
        x = np.asarray(x, dtype=np.float32)
        if x.ndim != 2:
            raise ValueError(f"expected (N, L) windows, got shape {x.shape}")
        return predict_proba_seq2seq(self.network, x, batch_size)

    def _window_proba(self, frame_probs: np.ndarray) -> np.ndarray:
        """Window detection probability from frame probabilities."""
        if len(frame_probs) == 0:
            return np.zeros(0, dtype=np.float32)
        return frame_probs.max(axis=1)

    def detect(self, x, batch_size: int = 256):
        return self._window_proba(self._frame_probs(x, batch_size))

    def localize(self, x, batch_size: int = 256) -> LocalizationOutput:
        x = np.asarray(x, dtype=np.float32)
        soft = self._frame_probs(x, batch_size)
        proba = self._window_proba(soft)
        detected = proba > self.detection_threshold
        status = (soft >= self.status_threshold).astype(np.float32)
        if self.power_gate_watts is not None:
            # x is the /1000-scaled aggregate; compare in the same unit.
            status *= (x >= self.power_gate_watts / SCALE_DIVISOR).astype(np.float32)
        return LocalizationOutput(
            detection_proba=proba,
            detected=detected,
            cam=soft,
            soft_status=soft,
            status=status,
        )

    def eval(self):
        self.network.eval()
        return self

    def num_parameters(self) -> int:
        return self.network.num_parameters()

    def save(self, directory: str) -> None:
        from .persistence import save_estimator

        save_estimator(self, directory)


class WeakMILLocalizer(Seq2SeqLocalizer):
    """CRNN-weak: multiple-instance learning on window labels.

    Training pools frame probabilities into one sequence probability with
    linear softmax pooling (``p_seq = Σp² / Σp``) and applies window-level
    BCE only (:func:`~repro.training.train_weak_mil`); detection uses the
    same pooling, and localization still reads the frame probabilities.
    """

    supervision = "weak"

    def _train(self, windows, labels, val_windows, val_labels) -> None:
        train_weak_mil(
            self.network, windows, labels, val_windows, val_labels, self.train_config
        )

    def _window_proba(self, frame_probs: np.ndarray) -> np.ndarray:
        if len(frame_probs) == 0:
            return np.zeros(0, dtype=np.float32)
        eps = 1e-6
        pooled = (frame_probs * frame_probs).sum(axis=1) / (
            frame_probs.sum(axis=1) + eps
        )
        return np.clip(pooled, 0.0, 1.0).astype(np.float32)


# ----------------------------------------------------------------------
# Registry entries: names, configs and the Table-II / small / tiny scales
# ----------------------------------------------------------------------
def _camal_factory(config, train=None, **kwargs):
    return CamALLocalizer(config, train=train, **kwargs)


def _network_factory(name: str, estimator_cls: type, network_cls: type):
    def build(config, train=None, **kwargs):
        return estimator_cls(name, network_cls(config), config, train=train, **kwargs)

    return build


#: ``paper`` scales are the config-dataclass defaults (Table II sizes).
_BASELINE_SCALES = {
    "crnn": {
        "paper": {},
        "small": {"conv_channels": (16, 32, 32), "hidden_size": 32},
        "tiny": {"conv_channels": (8, 16, 16), "hidden_size": 16},
    },
    "bigru": {
        "paper": {},
        "small": {"conv_channels": 16, "hidden_size": 24},
        "tiny": {"conv_channels": 8, "hidden_size": 12},
    },
    "unet-nilm": {
        "paper": {},
        "small": {"channels": (8, 16, 32), "bottleneck": 64},
        "tiny": {"channels": (8, 16, 16), "bottleneck": 32},
    },
    "tpnilm": {
        "paper": {},
        "small": {"channels": (16, 32, 64)},
        "tiny": {"channels": (8, 16, 32)},
    },
    "transnilm": {
        "paper": {},
        "small": {"embed_dim": 32, "num_heads": 4, "num_layers": 1, "ff_dim": 64},
        "tiny": {"embed_dim": 16, "num_heads": 2, "num_layers": 1, "ff_dim": 32},
    },
}

register(
    "camal",
    config_cls=EnsembleConfig,
    factory=_camal_factory,
    supervision="weak",
    conv_shapes=lambda cfg: ensemble_conv_shapes(cfg.filters, cfg.kernel_set),
    description="CamAL: ResNet detection ensemble + CAM localization (the paper's method)",
    scales={
        "paper": {
            "kernel_set": (5, 7, 9, 15, 25),
            "n_trials": 3,
            "n_models": 5,
            "filters": (64, 128, 128),
        },
        "small": {
            "kernel_set": (3, 5, 9),
            "n_trials": 1,
            "n_models": 3,
            "filters": (32, 64, 64),
        },
        "tiny": {
            "kernel_set": (3, 9),
            "n_trials": 1,
            "n_models": 2,
            "filters": (16, 32, 32),
        },
    },
)

register(
    "crnn",
    config_cls=bl.CRNNConfig,
    network_cls=bl.CRNN,
    factory=_network_factory("crnn", Seq2SeqLocalizer, bl.CRNN),
    supervision="strong",
    description="CRNN (Tanoni et al. 2023), frame-level BCE on strong labels",
    scales=_BASELINE_SCALES["crnn"],
)

register(
    "crnn-weak",
    config_cls=bl.CRNNConfig,
    network_cls=bl.CRNN,
    factory=_network_factory("crnn-weak", WeakMILLocalizer, bl.CRNN),
    supervision="weak",
    description="CRNN-weak: MIL linear-softmax pooling on window labels",
    scales=_BASELINE_SCALES["crnn"],
)

register(
    "bigru",
    config_cls=bl.BiGRUConfig,
    network_cls=bl.BiGRUNILM,
    factory=_network_factory("bigru", Seq2SeqLocalizer, bl.BiGRUNILM),
    supervision="strong",
    description="BiGRU (Precioso & Gomez-Ullate 2023), conv + biGRU seq2seq",
    scales=_BASELINE_SCALES["bigru"],
)

register(
    "unet-nilm",
    config_cls=bl.UNetConfig,
    network_cls=bl.UNetNILM,
    factory=_network_factory("unet-nilm", Seq2SeqLocalizer, bl.UNetNILM),
    supervision="strong",
    description="UNet-NILM (Faustine et al. 2020), encoder/decoder seq2seq",
    scales=_BASELINE_SCALES["unet-nilm"],
)

register(
    "tpnilm",
    config_cls=bl.TPNILMConfig,
    network_cls=bl.TPNILM,
    factory=_network_factory("tpnilm", Seq2SeqLocalizer, bl.TPNILM),
    supervision="strong",
    description="TPNILM (Massidda et al. 2020), temporal-pooling seq2seq",
    scales=_BASELINE_SCALES["tpnilm"],
)

register(
    "transnilm",
    config_cls=bl.TransNILMConfig,
    network_cls=bl.TransNILM,
    factory=_network_factory("transnilm", Seq2SeqLocalizer, bl.TransNILM),
    supervision="strong",
    description="TransNILM, transformer encoder + temporal pooling seq2seq",
    scales=_BASELINE_SCALES["transnilm"],
)

#: Legacy experiment-runner spellings -> registry names (all lower-case
#: already canonicalizes ``"CRNN-weak"`` etc.; kept for documentation).
LEGACY_NAMES = {
    "CRNN": "crnn",
    "CRNN-weak": "crnn-weak",
    "BiGRU": "bigru",
    "UNet-NILM": "unet-nilm",
    "TPNILM": "tpnilm",
    "TransNILM": "transnilm",
    "CamAL": "camal",
}
