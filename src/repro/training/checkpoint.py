"""Checkpoint/resume for the training loops — bit-for-bit reproducible.

A :class:`TrainingCheckpoint` captures *everything* the epoch loop needs
to continue as if it had never stopped:

* model parameters and buffers (the live state, not just the best one);
* optimizer state (Adam/AdamW moments and step count, SGD velocity, LR);
* LR-scheduler counters;
* RNG state — both the loop's batch-shuffling generator and the private
  generator of every ``Dropout`` module in the model;
* the loss histories and the early-stopping bookkeeping (best state,
  best epoch, bad-epoch counter).

Checkpoints are single ``.npz`` archives written atomically (tmp file +
``os.replace``), so a run killed mid-write still leaves the previous
checkpoint intact.  Array payloads live as npz entries; scalar state,
histories and RNG states travel in one JSON header entry.

Durability on top of atomicity: every save keeps the last *k* snapshots
(``path``, ``path.1``, …, newest first; ``k`` from ``REPRO_CKPT_KEEP``,
default 2) and writes a blake2b checksum sidecar (``path.sum``) next to
each.  :func:`load_checkpoint` proves integrity before deserializing —
a torn or bit-flipped archive raises :class:`CheckpointCorruptionError`
instead of resuming from garbage — and :func:`load_latest_checkpoint`
walks newest → oldest to resume from the newest *intact* snapshot, so a
crash mid-checkpoint-write costs at most one epoch of progress, never
the run.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import zipfile
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..analysis import faults
from ..nn.modules import Module

CHECKPOINT_FORMAT_VERSION = 1

_META_KEY = "__meta__"
_MODEL_PREFIX = "model."
_BEST_PREFIX = "best."
_OPT_PREFIX = "opt."

#: How many checkpoint generations to keep (newest first); overridable
#: per save via the ``keep`` argument.
CKPT_KEEP_ENV = "REPRO_CKPT_KEEP"
DEFAULT_CKPT_KEEP = 2

_CHECKSUM_SUFFIX = ".sum"


class CheckpointCorruptionError(RuntimeError):
    """A checkpoint archive fails its checksum or cannot be deserialized."""


def _resolve_keep(keep: Optional[int]) -> int:
    if keep is None:
        keep = int(os.environ.get(CKPT_KEEP_ENV, DEFAULT_CKPT_KEEP))
    if keep < 1:
        raise ValueError(f"checkpoint keep count must be >= 1, got {keep}")
    return keep


def _rotated_path(path: str, generation: int) -> str:
    """``path`` for the newest snapshot, ``path.N`` for older generations."""
    return path if generation == 0 else f"{path}.{generation}"


def _checkpoint_digest(payload: bytes) -> str:
    return hashlib.blake2b(payload, digest_size=16).hexdigest()


@dataclass
class TrainingCheckpoint:
    """Complete snapshot of a training run at an epoch boundary."""

    epoch: int  # number of completed epochs
    model_state: Dict[str, np.ndarray]
    optimizer_state: Dict[str, object]
    rng_state: Dict[str, object]
    scheduler_state: Optional[Dict[str, float]] = None
    train_losses: List[float] = field(default_factory=list)
    val_losses: List[float] = field(default_factory=list)
    epoch_times: List[float] = field(default_factory=list)
    best_val_loss: float = float("inf")
    best_epoch: int = -1
    bad_epochs: int = 0
    best_model_state: Optional[Dict[str, np.ndarray]] = None
    stopped_early: bool = False
    #: Trajectory-defining config (optimizer, LR, schedule, …) captured at
    #: save time; resume refuses to continue under a different config.
    config_fingerprint: Optional[Dict[str, object]] = None


def state_dicts_equal(a: Dict[str, np.ndarray], b: Dict[str, np.ndarray]) -> bool:
    """True iff two module state dicts are bit-for-bit identical.

    The equality contract behind every resume/parallel guarantee in this
    package — shared so tests, benchmarks and examples assert the same
    thing.
    """
    return set(a) == set(b) and all(np.array_equal(a[k], b[k]) for k in a)


# ----------------------------------------------------------------------
# RNG capture
# ----------------------------------------------------------------------
def _dropout_generators(model: Module) -> List[np.random.Generator]:
    """The private generators of every Dropout-like module, in walk order."""
    return [
        module._rng
        for module in model.modules()
        if isinstance(getattr(module, "_rng", None), np.random.Generator)
    ]


def capture_rng_state(loop_rng: np.random.Generator, model: Module) -> Dict[str, object]:
    """Snapshot the loop generator and every model-owned dropout generator."""
    return {
        "loop": loop_rng.bit_generator.state,
        "dropout": [g.bit_generator.state for g in _dropout_generators(model)],
    }


def restore_rng_state(
    state: Dict[str, object], loop_rng: np.random.Generator, model: Module
) -> None:
    """Restore a snapshot taken by :func:`capture_rng_state`."""
    loop_rng.bit_generator.state = state["loop"]
    generators = _dropout_generators(model)
    saved = state["dropout"]
    if len(saved) != len(generators):
        raise ValueError(
            f"checkpoint has {len(saved)} dropout RNG states but the model "
            f"owns {len(generators)} dropout generators"
        )
    for generator, rng_state in zip(generators, saved):
        generator.bit_generator.state = rng_state


# ----------------------------------------------------------------------
# (De)serialization
# ----------------------------------------------------------------------
def _flatten_optimizer_state(
    state: Dict[str, object], payload: Dict[str, np.ndarray]
) -> Dict[str, object]:
    """Split optimizer state into npz arrays + a JSON-able descriptor."""
    scalars: Dict[str, object] = {}
    lists: Dict[str, int] = {}
    arrays: List[str] = []
    for key, value in state.items():
        if isinstance(value, list):
            lists[key] = len(value)
            for i, item in enumerate(value):
                payload[f"{_OPT_PREFIX}{key}.{i}"] = np.asarray(item)
        elif isinstance(value, np.ndarray):
            arrays.append(key)
            payload[f"{_OPT_PREFIX}{key}"] = value
        else:
            scalars[key] = value
    return {"scalars": scalars, "lists": lists, "arrays": arrays}


def _rebuild_optimizer_state(
    descriptor: Dict[str, object], archive
) -> Dict[str, object]:
    state: Dict[str, object] = dict(descriptor["scalars"])
    for key in descriptor["arrays"]:
        state[key] = archive[f"{_OPT_PREFIX}{key}"]
    for key, length in descriptor["lists"].items():
        state[key] = [archive[f"{_OPT_PREFIX}{key}.{i}"] for i in range(length)]
    return state


def save_checkpoint(
    path: str, checkpoint: TrainingCheckpoint, keep: Optional[int] = None
) -> None:
    """Write ``checkpoint`` to ``path`` (a ``.npz`` archive), atomically.

    Keeps the last ``keep`` generations (default ``REPRO_CKPT_KEEP``,
    falling back to 2): before the new archive lands on ``path``, the
    previous one rotates to ``path.1`` (and so on), each with its
    checksum sidecar, so resume always has an older intact snapshot to
    fall back to if the newest write was torn.
    """
    payload: Dict[str, np.ndarray] = {}
    for name, value in checkpoint.model_state.items():
        payload[_MODEL_PREFIX + name] = value
    if checkpoint.best_model_state is not None:
        for name, value in checkpoint.best_model_state.items():
            payload[_BEST_PREFIX + name] = value
    optimizer_descriptor = _flatten_optimizer_state(
        checkpoint.optimizer_state, payload
    )
    meta = {
        "format_version": CHECKPOINT_FORMAT_VERSION,
        "epoch": checkpoint.epoch,
        "stopped_early": checkpoint.stopped_early,
        "train_losses": checkpoint.train_losses,
        "val_losses": checkpoint.val_losses,
        "epoch_times": checkpoint.epoch_times,
        "best_val_loss": checkpoint.best_val_loss,
        "best_epoch": checkpoint.best_epoch,
        "bad_epochs": checkpoint.bad_epochs,
        "has_best": checkpoint.best_model_state is not None,
        "rng_state": checkpoint.rng_state,
        "optimizer": optimizer_descriptor,
        "scheduler_state": checkpoint.scheduler_state,
        "config_fingerprint": checkpoint.config_fingerprint,
    }
    payload[_META_KEY] = np.asarray(json.dumps(meta))

    buffer = io.BytesIO()
    np.savez(buffer, **payload)
    data = buffer.getvalue()
    # The sidecar records the digest of the *intended* bytes, so a torn
    # or bit-flipped write (injected below, or real) is provable on load.
    digest = _checkpoint_digest(data)
    if faults.ACTIVE is not None:
        data = faults.ACTIVE.fire(
            "train.checkpoint_write", token=os.path.basename(path), payload=data
        )

    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    keep = _resolve_keep(keep)
    # Rotate newest -> oldest so generation N-1 lands on N; archives and
    # sidecars move together.  Stale generations beyond ``keep`` (from an
    # earlier run with a larger keep) are pruned.
    for generation in range(keep - 1, 0, -1):
        source = _rotated_path(path, generation - 1)
        if os.path.exists(source):
            os.replace(source, _rotated_path(path, generation))
            source_sum = source + _CHECKSUM_SUFFIX
            if os.path.exists(source_sum):
                os.replace(
                    source_sum, _rotated_path(path, generation) + _CHECKSUM_SUFFIX
                )
    generation = keep
    while os.path.exists(_rotated_path(path, generation)):
        os.unlink(_rotated_path(path, generation))
        stale_sum = _rotated_path(path, generation) + _CHECKSUM_SUFFIX
        if os.path.exists(stale_sum):
            os.unlink(stale_sum)
        generation += 1

    tmp_path = path + ".tmp"
    with open(tmp_path, "wb") as handle:
        handle.write(data)
    os.replace(tmp_path, path)
    sum_tmp = path + _CHECKSUM_SUFFIX + ".tmp"
    with open(sum_tmp, "w") as handle:
        handle.write(digest + "\n")
    os.replace(sum_tmp, path + _CHECKSUM_SUFFIX)


def checkpoint_exists(path: Optional[str]) -> bool:
    return path is not None and os.path.exists(path)


def _verify_checkpoint_bytes(path: str) -> None:
    """Raise :class:`CheckpointCorruptionError` if ``path`` fails its sidecar.

    Archives without a sidecar (written before checksums existed, or
    whose sidecar was lost) skip straight to deserialization — the npz
    container's own structure still catches gross truncation there.
    """
    sum_path = path + _CHECKSUM_SUFFIX
    if not os.path.exists(sum_path):
        return
    with open(sum_path) as handle:
        expected = handle.read().strip()
    with open(path, "rb") as handle:
        actual = _checkpoint_digest(handle.read())
    if actual != expected:
        raise CheckpointCorruptionError(
            f"{path}: checkpoint bytes hash to {actual}, sidecar records "
            f"{expected} — the archive is torn or bit-rotted"
        )


def load_checkpoint(path: str) -> TrainingCheckpoint:
    """Reload an archive written by :func:`save_checkpoint`.

    Integrity failures — sidecar checksum mismatch, torn/unparseable
    archive — raise :class:`CheckpointCorruptionError`; a missing file
    stays ``FileNotFoundError`` and an honest format-version mismatch
    stays ``ValueError``.  Corrupt archives never deserialize.
    """
    if not os.path.exists(path):
        raise FileNotFoundError(f"no checkpoint at {path}")
    _verify_checkpoint_bytes(path)
    try:
        archive_ctx = np.load(path, allow_pickle=False)
    except (zipfile.BadZipFile, OSError, ValueError, EOFError) as exc:
        raise CheckpointCorruptionError(
            f"{path}: cannot open checkpoint archive ({exc})"
        ) from exc
    with archive_ctx as archive:
        try:
            meta = json.loads(str(archive[_META_KEY]))
        except (KeyError, ValueError, zipfile.BadZipFile) as exc:
            raise CheckpointCorruptionError(
                f"{path}: checkpoint metadata unreadable ({exc})"
            ) from exc
        version = meta.get("format_version")
        if version != CHECKPOINT_FORMAT_VERSION:
            raise ValueError(f"unsupported checkpoint format_version {version!r}")
        model_state = {
            name[len(_MODEL_PREFIX) :]: archive[name]
            for name in archive.files
            if name.startswith(_MODEL_PREFIX)
        }
        best_model_state = None
        if meta["has_best"]:
            best_model_state = {
                name[len(_BEST_PREFIX) :]: archive[name]
                for name in archive.files
                if name.startswith(_BEST_PREFIX)
            }
        optimizer_state = _rebuild_optimizer_state(meta["optimizer"], archive)
    return TrainingCheckpoint(
        epoch=int(meta["epoch"]),
        model_state=model_state,
        optimizer_state=optimizer_state,
        rng_state=meta["rng_state"],
        scheduler_state=meta["scheduler_state"],
        train_losses=[float(v) for v in meta["train_losses"]],
        val_losses=[float(v) for v in meta["val_losses"]],
        epoch_times=[float(v) for v in meta["epoch_times"]],
        best_val_loss=float(meta["best_val_loss"]),
        best_epoch=int(meta["best_epoch"]),
        bad_epochs=int(meta["bad_epochs"]),
        best_model_state=best_model_state,
        stopped_early=bool(meta["stopped_early"]),
        config_fingerprint=meta.get("config_fingerprint"),
    )


def load_latest_checkpoint(
    path: Optional[str],
) -> Optional[Tuple[TrainingCheckpoint, str]]:
    """Resume helper: the newest *intact* snapshot in the rotation.

    Walks ``path``, ``path.1``, ``path.2``, … (newest first), skipping
    generations that fail their checksum or cannot be deserialized, and
    returns ``(checkpoint, loaded_path)`` for the first one that loads —
    or ``None`` when no generation exists or every one is corrupt (the
    caller starts from scratch rather than crashing on a torn archive).
    Honest config errors (format-version mismatch) still raise.
    """
    if path is None:
        return None
    generation = 0
    while True:
        candidate = _rotated_path(path, generation)
        if not os.path.exists(candidate):
            if generation == 0:
                generation += 1
                continue  # path may be gone but a rotation may survive
            return None
        try:
            return load_checkpoint(candidate), candidate
        except CheckpointCorruptionError:
            generation += 1
