"""Checkpoint/resume for the training loops — bit-for-bit reproducible.

A :class:`TrainingCheckpoint` captures *everything* the epoch loop needs
to continue as if it had never stopped:

* model parameters and buffers (the live state, not just the best one);
* optimizer state (Adam/AdamW moments and step count, SGD velocity, LR);
* LR-scheduler counters;
* RNG state — both the loop's batch-shuffling generator and the private
  generator of every ``Dropout`` module in the model;
* the loss histories and the early-stopping bookkeeping (best state,
  best epoch, bad-epoch counter).

Checkpoints are single ``.npz`` archives written atomically (tmp file +
``os.replace``), so a run killed mid-write still leaves the previous
checkpoint intact.  Array payloads live as npz entries; scalar state,
histories and RNG states travel in one JSON header entry.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..nn.modules import Module

CHECKPOINT_FORMAT_VERSION = 1

_META_KEY = "__meta__"
_MODEL_PREFIX = "model."
_BEST_PREFIX = "best."
_OPT_PREFIX = "opt."


@dataclass
class TrainingCheckpoint:
    """Complete snapshot of a training run at an epoch boundary."""

    epoch: int  # number of completed epochs
    model_state: Dict[str, np.ndarray]
    optimizer_state: Dict[str, object]
    rng_state: Dict[str, object]
    scheduler_state: Optional[Dict[str, float]] = None
    train_losses: List[float] = field(default_factory=list)
    val_losses: List[float] = field(default_factory=list)
    epoch_times: List[float] = field(default_factory=list)
    best_val_loss: float = float("inf")
    best_epoch: int = -1
    bad_epochs: int = 0
    best_model_state: Optional[Dict[str, np.ndarray]] = None
    stopped_early: bool = False
    #: Trajectory-defining config (optimizer, LR, schedule, …) captured at
    #: save time; resume refuses to continue under a different config.
    config_fingerprint: Optional[Dict[str, object]] = None


def state_dicts_equal(a: Dict[str, np.ndarray], b: Dict[str, np.ndarray]) -> bool:
    """True iff two module state dicts are bit-for-bit identical.

    The equality contract behind every resume/parallel guarantee in this
    package — shared so tests, benchmarks and examples assert the same
    thing.
    """
    return set(a) == set(b) and all(np.array_equal(a[k], b[k]) for k in a)


# ----------------------------------------------------------------------
# RNG capture
# ----------------------------------------------------------------------
def _dropout_generators(model: Module) -> List[np.random.Generator]:
    """The private generators of every Dropout-like module, in walk order."""
    return [
        module._rng
        for module in model.modules()
        if isinstance(getattr(module, "_rng", None), np.random.Generator)
    ]


def capture_rng_state(loop_rng: np.random.Generator, model: Module) -> Dict[str, object]:
    """Snapshot the loop generator and every model-owned dropout generator."""
    return {
        "loop": loop_rng.bit_generator.state,
        "dropout": [g.bit_generator.state for g in _dropout_generators(model)],
    }


def restore_rng_state(
    state: Dict[str, object], loop_rng: np.random.Generator, model: Module
) -> None:
    """Restore a snapshot taken by :func:`capture_rng_state`."""
    loop_rng.bit_generator.state = state["loop"]
    generators = _dropout_generators(model)
    saved = state["dropout"]
    if len(saved) != len(generators):
        raise ValueError(
            f"checkpoint has {len(saved)} dropout RNG states but the model "
            f"owns {len(generators)} dropout generators"
        )
    for generator, rng_state in zip(generators, saved):
        generator.bit_generator.state = rng_state


# ----------------------------------------------------------------------
# (De)serialization
# ----------------------------------------------------------------------
def _flatten_optimizer_state(
    state: Dict[str, object], payload: Dict[str, np.ndarray]
) -> Dict[str, object]:
    """Split optimizer state into npz arrays + a JSON-able descriptor."""
    scalars: Dict[str, object] = {}
    lists: Dict[str, int] = {}
    arrays: List[str] = []
    for key, value in state.items():
        if isinstance(value, list):
            lists[key] = len(value)
            for i, item in enumerate(value):
                payload[f"{_OPT_PREFIX}{key}.{i}"] = np.asarray(item)
        elif isinstance(value, np.ndarray):
            arrays.append(key)
            payload[f"{_OPT_PREFIX}{key}"] = value
        else:
            scalars[key] = value
    return {"scalars": scalars, "lists": lists, "arrays": arrays}


def _rebuild_optimizer_state(
    descriptor: Dict[str, object], archive
) -> Dict[str, object]:
    state: Dict[str, object] = dict(descriptor["scalars"])
    for key in descriptor["arrays"]:
        state[key] = archive[f"{_OPT_PREFIX}{key}"]
    for key, length in descriptor["lists"].items():
        state[key] = [archive[f"{_OPT_PREFIX}{key}.{i}"] for i in range(length)]
    return state


def save_checkpoint(path: str, checkpoint: TrainingCheckpoint) -> None:
    """Write ``checkpoint`` to ``path`` (a ``.npz`` archive), atomically."""
    payload: Dict[str, np.ndarray] = {}
    for name, value in checkpoint.model_state.items():
        payload[_MODEL_PREFIX + name] = value
    if checkpoint.best_model_state is not None:
        for name, value in checkpoint.best_model_state.items():
            payload[_BEST_PREFIX + name] = value
    optimizer_descriptor = _flatten_optimizer_state(
        checkpoint.optimizer_state, payload
    )
    meta = {
        "format_version": CHECKPOINT_FORMAT_VERSION,
        "epoch": checkpoint.epoch,
        "stopped_early": checkpoint.stopped_early,
        "train_losses": checkpoint.train_losses,
        "val_losses": checkpoint.val_losses,
        "epoch_times": checkpoint.epoch_times,
        "best_val_loss": checkpoint.best_val_loss,
        "best_epoch": checkpoint.best_epoch,
        "bad_epochs": checkpoint.bad_epochs,
        "has_best": checkpoint.best_model_state is not None,
        "rng_state": checkpoint.rng_state,
        "optimizer": optimizer_descriptor,
        "scheduler_state": checkpoint.scheduler_state,
        "config_fingerprint": checkpoint.config_fingerprint,
    }
    payload[_META_KEY] = np.asarray(json.dumps(meta))

    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    tmp_path = path + ".tmp"
    with open(tmp_path, "wb") as handle:
        np.savez(handle, **payload)
    os.replace(tmp_path, path)


def checkpoint_exists(path: Optional[str]) -> bool:
    return path is not None and os.path.exists(path)


def load_checkpoint(path: str) -> TrainingCheckpoint:
    """Reload an archive written by :func:`save_checkpoint`."""
    with np.load(path, allow_pickle=False) as archive:
        meta = json.loads(str(archive[_META_KEY]))
        version = meta.get("format_version")
        if version != CHECKPOINT_FORMAT_VERSION:
            raise ValueError(f"unsupported checkpoint format_version {version!r}")
        model_state = {
            name[len(_MODEL_PREFIX) :]: archive[name]
            for name in archive.files
            if name.startswith(_MODEL_PREFIX)
        }
        best_model_state = None
        if meta["has_best"]:
            best_model_state = {
                name[len(_BEST_PREFIX) :]: archive[name]
                for name in archive.files
                if name.startswith(_BEST_PREFIX)
            }
        optimizer_state = _rebuild_optimizer_state(meta["optimizer"], archive)
    return TrainingCheckpoint(
        epoch=int(meta["epoch"]),
        model_state=model_state,
        optimizer_state=optimizer_state,
        rng_state=meta["rng_state"],
        scheduler_state=meta["scheduler_state"],
        train_losses=[float(v) for v in meta["train_losses"]],
        val_losses=[float(v) for v in meta["val_losses"]],
        epoch_times=[float(v) for v in meta["epoch_times"]],
        best_val_loss=float(meta["best_val_loss"]),
        best_epoch=int(meta["best_epoch"]),
        bad_epochs=int(meta["bad_epochs"]),
        best_model_state=best_model_state,
        stopped_early=bool(meta["stopped_early"]),
        config_fingerprint=meta.get("config_fingerprint"),
    )
