"""Training hyper-parameters and run results shared by every loop."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

#: Optimizers the loops know how to build (see ``loops._build_optimizer``).
OPTIMIZERS = ("adam", "adamw", "sgd")

#: LR schedules the loops know how to build (see ``loops._build_scheduler``).
SCHEDULERS = ("none", "step", "cosine", "warmup_cosine")


@dataclass
class TrainConfig:
    """Hyper-parameters shared by all training loops."""

    epochs: int = 20
    batch_size: int = 64
    lr: float = 1e-3
    weight_decay: float = 0.0
    patience: int = 5  # early-stopping patience in epochs (0 disables)
    clip_grad: float = 5.0  # global-norm clip (0 disables)
    seed: int = 0
    verbose: bool = False
    # -- optimizer / LR schedule ------------------------------------------
    optimizer: str = "adam"  # one of OPTIMIZERS
    scheduler: str = "none"  # one of SCHEDULERS
    #: Positive-class weight for the BCE losses of the seq2seq / weak-MIL
    #: loops (``None`` keeps unweighted BCE).  NILM status labels are
    #: heavily OFF-skewed; weighting by ~1/positive-rate keeps the sigmoid
    #: outputs calibrated around the 0.5 decision threshold.
    pos_weight: Optional[float] = None
    warmup_epochs: int = 0  # linear-warmup epochs (warmup_cosine only)
    step_size: int = 10  # StepLR period
    gamma: float = 0.1  # StepLR decay factor
    eta_min: float = 0.0  # cosine floor
    # -- checkpoint / resume ----------------------------------------------
    checkpoint_path: Optional[str] = None  # .npz path; None disables
    checkpoint_every: int = 1  # save every k completed epochs
    resume: bool = True  # resume from checkpoint_path if it exists

    def __post_init__(self) -> None:
        if self.optimizer not in OPTIMIZERS:
            raise ValueError(
                f"unknown optimizer {self.optimizer!r}; known: {OPTIMIZERS}"
            )
        if self.scheduler not in SCHEDULERS:
            raise ValueError(
                f"unknown scheduler {self.scheduler!r}; known: {SCHEDULERS}"
            )
        if self.checkpoint_every <= 0:
            raise ValueError(
                f"checkpoint_every must be positive, got {self.checkpoint_every}"
            )


@dataclass
class TrainResult:
    """Outcome of one training run."""

    train_losses: List[float] = field(default_factory=list)
    val_losses: List[float] = field(default_factory=list)
    best_val_loss: float = float("inf")
    best_epoch: int = -1
    wall_time_seconds: float = 0.0
    epoch_times: List[float] = field(default_factory=list)
    resumed_from_epoch: int = 0  # 0 when the run started from scratch

    @property
    def epochs_run(self) -> int:
        return len(self.train_losses)
