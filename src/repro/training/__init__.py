"""``repro.training`` — the training subsystem.

Grown out of the original single-file module into a package:

* :mod:`repro.training.config` — :class:`TrainConfig` (optimizer, LR
  schedule, checkpoint knobs) and :class:`TrainResult`;
* :mod:`repro.training.loops` — the three supervision loops
  (:func:`train_classifier`, :func:`train_seq2seq`,
  :func:`train_weak_mil`) on one resumable epoch engine;
* :mod:`repro.training.checkpoint` — bit-for-bit checkpoint/resume
  (model + optimizer + scheduler + RNG state in one ``.npz``).

Ensemble-level orchestration — including the process-parallel
``train_ensemble_parallel`` that fans Algorithm 1's independent
candidates over worker processes — lives in :mod:`repro.core.ensemble`,
which builds on these loops.

The public API of the old ``repro.training`` module is re-exported here
unchanged; ``from repro.training import train_classifier`` keeps working.
"""

from .checkpoint import (
    CHECKPOINT_FORMAT_VERSION,
    CheckpointCorruptionError,
    TrainingCheckpoint,
    capture_rng_state,
    checkpoint_exists,
    load_checkpoint,
    load_latest_checkpoint,
    restore_rng_state,
    save_checkpoint,
    state_dicts_equal,
)
from .config import OPTIMIZERS, SCHEDULERS, TrainConfig, TrainResult
from .loops import (
    evaluate_classifier_loss,
    evaluate_seq2seq_loss,
    predict_proba,
    predict_proba_seq2seq,
    predict_status_seq2seq,
    train_classifier,
    train_seq2seq,
    train_weak_mil,
)

__all__ = [
    "TrainConfig",
    "TrainResult",
    "OPTIMIZERS",
    "SCHEDULERS",
    "train_classifier",
    "train_seq2seq",
    "train_weak_mil",
    "evaluate_classifier_loss",
    "evaluate_seq2seq_loss",
    "predict_proba",
    "predict_proba_seq2seq",
    "predict_status_seq2seq",
    "TrainingCheckpoint",
    "CHECKPOINT_FORMAT_VERSION",
    "save_checkpoint",
    "load_checkpoint",
    "load_latest_checkpoint",
    "CheckpointCorruptionError",
    "checkpoint_exists",
    "capture_rng_state",
    "restore_rng_state",
    "state_dicts_equal",
]
