"""The three supervision loops, built on one resumable epoch engine.

* :func:`train_classifier` — window-level binary classification (CamAL's
  ResNets, Problem 1), softmax cross-entropy.
* :func:`train_seq2seq` — per-timestamp status prediction (strongly
  supervised NILM baselines, Problem 2), BCE on frame logits.
* :func:`train_weak_mil` — multiple-instance learning (CRNN-weak), BCE on
  the pooled sequence logit only.

All loops share :func:`_run_epochs`: Adam/AdamW/SGD with optional LR
schedule, gradient clipping, early stopping on a validation loss, and
epoch-boundary checkpointing.  Resuming from a checkpoint reproduces the
uninterrupted run's loss trajectory and final weights bit-for-bit — the
optimizer moments, scheduler counters and every RNG stream are restored,
so the remaining epochs replay exactly (see
:mod:`repro.training.checkpoint`).
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Optional

import numpy as np

from .. import nn
from ..nn import functional as F
from ..nn.tensor import Tensor
from .checkpoint import (
    TrainingCheckpoint,
    capture_rng_state,
    load_latest_checkpoint,
    restore_rng_state,
    save_checkpoint,
)
from .config import TrainConfig, TrainResult


def _iterate_batches(
    n: int, batch_size: int, rng: np.random.Generator, shuffle: bool = True
):
    order = rng.permutation(n) if shuffle else np.arange(n)
    for start in range(0, n, batch_size):
        yield order[start : start + batch_size]


def _restore_best(model: nn.Module, best_state: Optional[Dict[str, np.ndarray]]) -> None:
    if best_state is not None:
        model.load_state_dict(best_state)


def _build_optimizer(model: nn.Module, config: TrainConfig) -> nn.Optimizer:
    if config.optimizer == "adam":
        return nn.Adam(model.parameters(), lr=config.lr, weight_decay=config.weight_decay)
    if config.optimizer == "adamw":
        return nn.AdamW(model.parameters(), lr=config.lr, weight_decay=config.weight_decay)
    return nn.SGD(
        model.parameters(), lr=config.lr, momentum=0.9, weight_decay=config.weight_decay
    )


def _build_scheduler(
    optimizer: nn.Optimizer, config: TrainConfig
) -> Optional[nn.LRScheduler]:
    if config.scheduler == "none":
        return None
    if config.scheduler == "step":
        return nn.StepLR(optimizer, step_size=config.step_size, gamma=config.gamma)
    if config.scheduler == "cosine":
        return nn.CosineAnnealingLR(optimizer, t_max=config.epochs, eta_min=config.eta_min)
    return nn.WarmupCosineLR(
        optimizer,
        t_max=config.epochs,
        warmup_epochs=config.warmup_epochs,
        eta_min=config.eta_min,
    )


def _resume_fingerprint(config: TrainConfig) -> Dict[str, object]:
    """The config facets that define the optimization trajectory.

    A checkpoint may only be resumed under a config whose fingerprint
    matches: continuing Adam moments under a different LR, or a cosine
    schedule under a different horizon, would produce weights matching
    neither the checkpointed run nor a fresh one.  ``epochs`` joins the
    fingerprint only when the schedule's shape depends on it (cosine
    variants), so extending a plain run with more epochs stays legal.
    """
    fingerprint: Dict[str, object] = {
        "optimizer": config.optimizer,
        "lr": config.lr,
        "weight_decay": config.weight_decay,
        "batch_size": config.batch_size,
        "patience": config.patience,  # bad_epochs carries over on resume
        "clip_grad": config.clip_grad,
        "seed": config.seed,
        "scheduler": config.scheduler,
        "pos_weight": config.pos_weight,
    }
    if config.scheduler == "step":
        fingerprint.update(step_size=config.step_size, gamma=config.gamma)
    elif config.scheduler == "cosine":
        fingerprint.update(eta_min=config.eta_min, epochs=config.epochs)
    elif config.scheduler == "warmup_cosine":
        fingerprint.update(
            eta_min=config.eta_min,
            warmup_epochs=config.warmup_epochs,
            epochs=config.epochs,
        )
    return fingerprint


def _run_epochs(
    model: nn.Module,
    loss_on_batch: Callable[[np.ndarray], Tensor],
    val_loss: Callable[[], float],
    n_train: int,
    config: TrainConfig,
) -> TrainResult:
    """Generic epoch loop with early stopping; returns the loss history.

    When ``config.checkpoint_path`` is set, a checkpoint is written at
    every ``checkpoint_every``-th epoch boundary (and on early stop and
    completion); with ``config.resume`` an existing checkpoint restarts
    the loop from its last completed epoch with identical state.
    """
    rng = np.random.default_rng(config.seed)
    optimizer = _build_optimizer(model, config)
    scheduler = _build_scheduler(optimizer, config)
    result = TrainResult()
    best_state: Optional[Dict[str, np.ndarray]] = None
    bad_epochs = 0
    start_epoch = 0
    stopped_early = False
    path = config.checkpoint_path
    fingerprint = _resume_fingerprint(config)

    # Resume from the newest *intact* generation: a torn newest archive
    # (crash mid-write, bit rot) falls back to the previous rotation
    # instead of aborting the run.
    loaded = load_latest_checkpoint(path) if path and config.resume else None
    if loaded is not None:
        snapshot, loaded_path = loaded
        if snapshot.config_fingerprint is not None:
            saved = snapshot.config_fingerprint
            drifted = sorted(
                key
                for key in set(saved) | set(fingerprint)
                if saved.get(key) != fingerprint.get(key)
            )
            if drifted:
                raise ValueError(
                    f"checkpoint {loaded_path!r} was written under a different "
                    f"training config (mismatched: {drifted}); resuming "
                    f"would follow a trajectory matching neither run — "
                    f"delete the checkpoint or match the config"
                )
        if snapshot.epoch > config.epochs:
            raise ValueError(
                f"checkpoint {loaded_path!r} already trained {snapshot.epoch} "
                f"epochs but config.epochs={config.epochs}; shrinking a "
                f"finished run is ambiguous — delete the checkpoint or "
                f"raise config.epochs"
            )
        model.load_state_dict(snapshot.model_state)
        try:
            optimizer.load_state_dict(snapshot.optimizer_state)
        except KeyError as exc:
            # Backstop for fingerprint-less (hand-built) checkpoints.
            raise ValueError(
                f"checkpoint {loaded_path!r} was written by a different optimizer "
                f"than config.optimizer={config.optimizer!r} (missing state "
                f"entry {exc}); delete the checkpoint or match the config"
            ) from None
        if scheduler is not None and snapshot.scheduler_state is not None:
            scheduler.load_state_dict(snapshot.scheduler_state)
        restore_rng_state(snapshot.rng_state, rng, model)
        result.train_losses = list(snapshot.train_losses)
        result.val_losses = list(snapshot.val_losses)
        result.epoch_times = list(snapshot.epoch_times)
        result.best_val_loss = snapshot.best_val_loss
        result.best_epoch = snapshot.best_epoch
        best_state = snapshot.best_model_state
        bad_epochs = snapshot.bad_epochs
        start_epoch = min(snapshot.epoch, config.epochs)
        stopped_early = snapshot.stopped_early
        result.resumed_from_epoch = start_epoch

    start_time = time.perf_counter()

    def _save(epochs_completed: int) -> None:
        save_checkpoint(
            path,
            TrainingCheckpoint(
                epoch=epochs_completed,
                model_state=model.state_dict(),
                optimizer_state=optimizer.state_dict(),
                rng_state=capture_rng_state(rng, model),
                scheduler_state=None if scheduler is None else scheduler.state_dict(),
                config_fingerprint=fingerprint,
                train_losses=result.train_losses,
                val_losses=result.val_losses,
                epoch_times=result.epoch_times,
                best_val_loss=result.best_val_loss,
                best_epoch=result.best_epoch,
                bad_epochs=bad_epochs,
                best_model_state=best_state,
                stopped_early=stopped_early,
            ),
        )

    epochs = range(start_epoch, 0 if stopped_early else config.epochs)
    for epoch in epochs:
        epoch_start = time.perf_counter()
        model.train()
        total, batches = 0.0, 0
        for idx in _iterate_batches(n_train, config.batch_size, rng):
            loss = loss_on_batch(idx)
            optimizer.zero_grad()
            loss.backward()
            if config.clip_grad > 0:
                optimizer.clip_grad_norm(config.clip_grad)
            optimizer.step()
            total += loss.item()
            batches += 1
        result.train_losses.append(total / max(batches, 1))

        model.eval()
        current_val = val_loss()
        result.val_losses.append(current_val)
        result.epoch_times.append(time.perf_counter() - epoch_start)
        if config.verbose:
            print(
                f"  epoch {epoch + 1}/{config.epochs} "
                f"train={result.train_losses[-1]:.4f} val={current_val:.4f} "
                f"lr={optimizer.lr:.2e}"
            )

        if current_val < result.best_val_loss - 1e-6:
            result.best_val_loss = current_val
            result.best_epoch = epoch
            best_state = model.state_dict()
            bad_epochs = 0
        else:
            bad_epochs += 1
            if config.patience > 0 and bad_epochs >= config.patience:
                stopped_early = True
        if scheduler is not None:
            scheduler.step()
        if path and (
            (epoch + 1) % config.checkpoint_every == 0
            or stopped_early
            or epoch + 1 == config.epochs
        ):
            _save(epoch + 1)
        if stopped_early:
            break

    _restore_best(model, best_state)
    result.wall_time_seconds = time.perf_counter() - start_time
    return result


# ----------------------------------------------------------------------
# Window-level classification (Problem 1)
# ----------------------------------------------------------------------
def train_classifier(
    model: nn.Module,
    x_train: np.ndarray,
    y_train: np.ndarray,
    x_val: np.ndarray,
    y_val: np.ndarray,
    config: TrainConfig,
) -> TrainResult:
    """Train a binary window classifier with softmax cross-entropy.

    ``model`` maps ``(N, 1, L)`` inputs to ``(N, 2)`` logits; inputs are the
    scaled aggregate windows ``(N, L)`` and labels the weak window labels.
    """
    x_train = np.asarray(x_train, dtype=np.float32)
    y_train = np.asarray(y_train, dtype=np.int64)
    x_val = np.asarray(x_val, dtype=np.float32)
    y_val = np.asarray(y_val, dtype=np.int64)

    def loss_on_batch(idx: np.ndarray) -> Tensor:
        batch = Tensor(x_train[idx][:, None, :])
        return F.cross_entropy(model(batch), y_train[idx])

    def val_loss() -> float:
        return evaluate_classifier_loss(model, x_val, y_val, config.batch_size)

    return _run_epochs(model, loss_on_batch, val_loss, len(x_train), config)


def evaluate_classifier_loss(
    model: nn.Module, x: np.ndarray, y: np.ndarray, batch_size: int = 256
) -> float:
    """Mean cross-entropy of a classifier over a dataset (no grad)."""
    x = np.asarray(x, dtype=np.float32)
    y = np.asarray(y, dtype=np.int64)
    if len(x) == 0:
        return float("inf")
    total, count = 0.0, 0
    with nn.no_grad():
        for start in range(0, len(x), batch_size):
            xb = x[start : start + batch_size]
            yb = y[start : start + batch_size]
            loss = F.cross_entropy(model(Tensor(xb[:, None, :])), yb)
            total += loss.item() * len(xb)
            count += len(xb)
    return total / count


def predict_proba(model: nn.Module, x: np.ndarray, batch_size: int = 256) -> np.ndarray:
    """Positive-class probabilities of a binary classifier, shape ``(N,)``."""
    x = np.asarray(x, dtype=np.float32)
    outputs = []
    with nn.no_grad():
        for start in range(0, len(x), batch_size):
            xb = x[start : start + batch_size]
            logits = model(Tensor(xb[:, None, :]))
            probs = F.softmax(logits, axis=1).data[:, 1]
            outputs.append(probs)
    return np.concatenate(outputs) if outputs else np.zeros(0, dtype=np.float32)


# ----------------------------------------------------------------------
# Per-timestamp sequence-to-sequence training (Problem 2, strong labels)
# ----------------------------------------------------------------------
def train_seq2seq(
    model: nn.Module,
    x_train: np.ndarray,
    s_train: np.ndarray,
    x_val: np.ndarray,
    s_val: np.ndarray,
    config: TrainConfig,
) -> TrainResult:
    """Train a per-timestamp status model with frame-level BCE.

    ``model`` maps ``(N, 1, L)`` to frame logits ``(N, L)``; ``s_*`` are
    per-timestamp binary status labels (the paper's strong labels).
    """
    x_train = np.asarray(x_train, dtype=np.float32)
    s_train = np.asarray(s_train, dtype=np.float32)
    x_val = np.asarray(x_val, dtype=np.float32)
    s_val = np.asarray(s_val, dtype=np.float32)

    def loss_on_batch(idx: np.ndarray) -> Tensor:
        logits = model(Tensor(x_train[idx][:, None, :]))
        return F.binary_cross_entropy_with_logits(
            logits, s_train[idx], pos_weight=config.pos_weight
        )

    def val_loss() -> float:
        return evaluate_seq2seq_loss(
            model, x_val, s_val, config.batch_size, pos_weight=config.pos_weight
        )

    return _run_epochs(model, loss_on_batch, val_loss, len(x_train), config)


def evaluate_seq2seq_loss(
    model: nn.Module,
    x: np.ndarray,
    s: np.ndarray,
    batch_size: int = 256,
    pos_weight: Optional[float] = None,
) -> float:
    x = np.asarray(x, dtype=np.float32)
    s = np.asarray(s, dtype=np.float32)
    if len(x) == 0:
        return float("inf")
    total, count = 0.0, 0
    with nn.no_grad():
        for start in range(0, len(x), batch_size):
            xb = x[start : start + batch_size]
            sb = s[start : start + batch_size]
            loss = F.binary_cross_entropy_with_logits(
                model(Tensor(xb[:, None, :])), sb, pos_weight=pos_weight
            )
            total += loss.item() * len(xb)
            count += len(xb)
    return total / count


def predict_proba_seq2seq(
    model: nn.Module, x: np.ndarray, batch_size: int = 256
) -> np.ndarray:
    """Per-timestamp sigmoid probabilities of a seq2seq model, ``(N, L)``."""
    x = np.asarray(x, dtype=np.float32)
    outputs = []
    with nn.no_grad():
        for start in range(0, len(x), batch_size):
            xb = x[start : start + batch_size]
            logits = model(Tensor(xb[:, None, :])).data
            outputs.append((1.0 / (1.0 + np.exp(-logits))).astype(np.float32))
    return np.concatenate(outputs) if outputs else np.zeros((0, x.shape[1]), dtype=np.float32)


def predict_status_seq2seq(
    model: nn.Module, x: np.ndarray, batch_size: int = 256, threshold: float = 0.5
) -> np.ndarray:
    """Binary per-timestamp predictions of a seq2seq model, ``(N, L)``."""
    probs = predict_proba_seq2seq(model, x, batch_size)
    return (probs >= threshold).astype(np.float32)


# ----------------------------------------------------------------------
# Weak multiple-instance training (CRNN-weak)
# ----------------------------------------------------------------------
def train_weak_mil(
    model: nn.Module,
    x_train: np.ndarray,
    y_train: np.ndarray,
    x_val: np.ndarray,
    y_val: np.ndarray,
    config: TrainConfig,
) -> TrainResult:
    """Train a MIL model on weak (per-window) labels only.

    ``model.forward_weak`` maps ``(N, 1, L)`` to a pooled sequence logit
    ``(N,)``; frame-level predictions remain available through the model's
    ``forward`` for localization at test time.
    """
    x_train = np.asarray(x_train, dtype=np.float32)
    y_train = np.asarray(y_train, dtype=np.float32)
    x_val = np.asarray(x_val, dtype=np.float32)
    y_val = np.asarray(y_val, dtype=np.float32)

    def loss_on_batch(idx: np.ndarray) -> Tensor:
        seq_logits = model.forward_weak(Tensor(x_train[idx][:, None, :]))
        return F.binary_cross_entropy_with_logits(
            seq_logits, y_train[idx], pos_weight=config.pos_weight
        )

    def val_loss() -> float:
        if len(x_val) == 0:
            return float("inf")
        total, count = 0.0, 0
        with nn.no_grad():
            for start in range(0, len(x_val), config.batch_size):
                xb = x_val[start : start + config.batch_size]
                yb = y_val[start : start + config.batch_size]
                loss = F.binary_cross_entropy_with_logits(
                    model.forward_weak(Tensor(xb[:, None, :])), yb,
                    pos_weight=config.pos_weight,
                )
                total += loss.item() * len(xb)
                count += len(xb)
        return total / count

    return _run_epochs(model, loss_on_batch, val_loss, len(x_train), config)
