"""CamAL step 2: appliance pattern localization (§IV-B, Fig. 3).

Given a trained detection ensemble, localization proceeds per window:

1. ensemble detection probability ``P_ens = mean_i P_i``;
2. if ``P_ens <= threshold`` the status is all-zeros;
3. otherwise extract each member's class-1 CAM,
4. normalize each to [0, 1] and average them into ``CAM_ens``,
5. apply ``CAM_ens`` as an attention mask on the input:
   ``s(t) = sigmoid(CAM_ens(t) * x(t))``,
6. round at 0.5 into the binary status ``ŝ(t)``.

The paper's introduction additionally describes a post-processing of the
aggregated CAM "to refine the prediction".  We implement it as a *power
gate*: a timestamp can only be ON if the aggregate itself reaches the
appliance's ON-power threshold — a direct consequence of Eq. 2
(``x(t) >= s_a(t) * a(t)``, so an appliance drawing at least its threshold
cannot be ON while the whole-house reading sits below it).  The gate is
what gives short spiky appliances (kettle) usable precision; disabling it
recovers the literal formula (see the ablation benchmark).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..simdata.preprocessing import SCALE_DIVISOR
from .cam import ensemble_cam
from .ensemble import ResNetEnsemble


def _sigmoid(z: np.ndarray) -> np.ndarray:
    # Clip to keep float32 exp() finite; sigmoid saturates long before 60.
    return 1.0 / (1.0 + np.exp(-np.clip(z, -60.0, 60.0)))


@dataclass
class LocalizationOutput:
    """Everything CamAL produces for a batch of windows."""

    detection_proba: np.ndarray  # (N,) ensemble probability P_ens
    detected: np.ndarray  # (N,) boolean detection decision
    cam: np.ndarray  # (N, L) averaged normalized CAM (zero when undetected)
    soft_status: np.ndarray  # (N, L) sigmoid attention output in [0, 1]
    status: np.ndarray  # (N, L) binary ŝ(t)

    @property
    def detected_float(self) -> np.ndarray:
        """Float view of ``detected`` for numeric post-processing."""
        return self.detected.astype(np.float32)


class CamAL:
    """The CamAL pipeline: a detection ensemble + CAM-based localization.

    Args:
        ensemble: trained :class:`ResNetEnsemble` for the target appliance.
        detection_threshold: minimum ensemble probability to localize.
        use_attention: if ``False``, skip the attention-sigmoid module and
            threshold the averaged CAM directly (the "w/o Attention module"
            ablation of Table IV).
        power_gate_watts: if set, a timestamp is only marked ON when the
            unscaled aggregate reaches this many Watts (usually the
            appliance's Table-I ON threshold).  ``None`` disables the gate
            and keeps the literal §IV-B formula.
        status_threshold: soft-score level at which a timestamp rounds to
            ON (the paper's 0.5 in §IV-B step 6).  The pipeline owns this
            value — consumers such as the serving engine's stitcher default
            to it rather than imposing their own.
    """

    def __init__(
        self,
        ensemble: ResNetEnsemble,
        detection_threshold: float = 0.5,
        use_attention: bool = True,
        power_gate_watts: Optional[float] = None,
        status_threshold: float = 0.5,
    ):
        self.ensemble = ensemble
        self.detection_threshold = detection_threshold
        self.use_attention = use_attention
        self.power_gate_watts = power_gate_watts
        self.status_threshold = status_threshold

    # -- Problem 1 --------------------------------------------------------
    def detect(self, x: np.ndarray, batch_size: int = 256) -> np.ndarray:
        """Window-level detection probabilities ``(N,)``."""
        return self.ensemble.predict_proba(
            np.asarray(x, dtype=np.float32), batch_size
        )

    # -- Problem 2 --------------------------------------------------------
    def localize(self, x: np.ndarray, batch_size: int = 256) -> LocalizationOutput:
        """Run the full localization pipeline on windows ``(N, L)``.

        Detection probability, CAM, soft status and binary status all come
        from exactly **one** forward pass per ensemble member
        (:meth:`ResNetEnsemble.forward_fused`): the CAM is a contraction of
        the same feature maps that produce the logits, so detected windows
        no longer pay a second trip through the conv stack.
        """
        x = np.asarray(x, dtype=np.float32)
        if x.ndim != 2:
            raise ValueError(f"expected (N, L) windows, got shape {x.shape}")
        fused = self.ensemble.forward_fused(x, batch_size)
        proba = fused.proba
        detected = proba > self.detection_threshold

        mask = detected[:, None]
        cam = np.where(mask, fused.cam, 0.0).astype(np.float32)
        if self.use_attention:
            soft = np.where(mask, _sigmoid(cam * x), 0.0).astype(np.float32)
        else:
            # Ablation: threshold the raw averaged CAM directly.
            soft = cam
        status = ((soft >= self.status_threshold) & mask).astype(np.float32)
        if self.power_gate_watts is not None:
            # x is the /1000-scaled aggregate; compare in the same unit.
            status *= (x >= self.power_gate_watts / SCALE_DIVISOR).astype(np.float32)

        return LocalizationOutput(
            detection_proba=proba,
            detected=detected,
            cam=cam,
            soft_status=soft,
            status=status,
        )

    def predict_status(self, x: np.ndarray, batch_size: int = 256) -> np.ndarray:
        """Binary per-timestamp status ``ŝ(t)``, shape ``(N, L)``."""
        return self.localize(x, batch_size).status

    def eval(self) -> "CamAL":
        """Switch every ensemble member to inference mode."""
        self.ensemble.eval()
        return self


def localize_double_forward(
    camal: CamAL, x: np.ndarray, batch_size: int = 256
) -> LocalizationOutput:
    """Reference implementation: the pre-fusion two-pass localization.

    Runs detection (one full forward per member) and then recomputes the
    conv features of detected windows through :func:`ensemble_cam` (a
    second full pass).  Kept as the ground truth for the fused path's
    equivalence tests and as the baseline of
    ``benchmarks/bench_serving_throughput.py``; production code should call
    :meth:`CamAL.localize`.
    """
    x = np.asarray(x, dtype=np.float32)
    if x.ndim != 2:
        raise ValueError(f"expected (N, L) windows, got shape {x.shape}")
    n, length = x.shape
    proba = camal.ensemble.predict_proba(x, batch_size)
    detected = proba > camal.detection_threshold

    cam = np.zeros((n, length), dtype=np.float32)
    soft = np.zeros((n, length), dtype=np.float32)
    status = np.zeros((n, length), dtype=np.float32)
    idx = np.flatnonzero(detected)
    for start in range(0, len(idx), batch_size):
        chunk = idx[start : start + batch_size]
        cam_chunk = ensemble_cam(camal.ensemble.models, x[chunk])
        cam[chunk] = cam_chunk
        if camal.use_attention:
            soft_chunk = _sigmoid(cam_chunk * x[chunk])
        else:
            soft_chunk = cam_chunk
        soft[chunk] = soft_chunk
        status_chunk = (soft_chunk >= camal.status_threshold).astype(np.float32)
        if camal.power_gate_watts is not None:
            gate = x[chunk] >= camal.power_gate_watts / SCALE_DIVISOR
            status_chunk *= gate.astype(np.float32)
        status[chunk] = status_chunk

    return LocalizationOutput(
        detection_proba=proba,
        detected=detected,
        cam=cam,
        soft_status=soft,
        status=status,
    )
