"""Soft-label generation for data augmentation (RQ5, §V-I).

A trained CamAL produces per-timestamp predictions on *unlabeled* windows;
those predictions can then substitute for, or be mixed with, scarce strong
labels when training strongly supervised NILM baselines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from .localization import CamAL


@dataclass
class SoftLabelSet:
    """Windows plus the labels CamAL generated for them."""

    inputs: np.ndarray  # (N, L) scaled aggregate windows
    soft_status: np.ndarray  # (N, L) CamAL binary status used as labels
    detection_proba: np.ndarray  # (N,) window-level confidence

    def __len__(self) -> int:
        return len(self.inputs)


def generate_soft_labels(
    camal: CamAL,
    inputs: np.ndarray,
    min_confidence: float = 0.0,
) -> SoftLabelSet:
    """Label ``inputs`` with CamAL's predicted status (the paper's soft labels).

    Args:
        camal: trained CamAL pipeline.
        inputs: scaled aggregate windows ``(N, L)``.
        min_confidence: drop windows whose detection probability lies inside
            ``(min_confidence, 1 - min_confidence)`` — i.e. keep only
            confidently ON or confidently OFF windows.  ``0`` keeps all.

    Returns:
        A :class:`SoftLabelSet` ready to feed ``train_seq2seq``.
    """
    inputs = np.asarray(inputs, dtype=np.float32)
    output = camal.localize(inputs)
    if min_confidence > 0.0:
        confident = (output.detection_proba >= 1.0 - min_confidence) | (
            output.detection_proba <= min_confidence
        )
        keep = np.flatnonzero(confident)
    else:
        keep = np.arange(len(inputs))
    return SoftLabelSet(
        inputs=inputs[keep],
        soft_status=output.status[keep],
        detection_proba=output.detection_proba[keep],
    )


def mix_strong_and_soft(
    strong_inputs: np.ndarray,
    strong_status: np.ndarray,
    soft: SoftLabelSet,
) -> Tuple[np.ndarray, np.ndarray]:
    """Concatenate ground-truth windows with soft-labeled windows (§V-I).

    Either side may be empty; the result is a training pool where soft
    labels compensate for strong-label scarcity.
    """
    strong_inputs = np.asarray(strong_inputs, dtype=np.float32)
    strong_status = np.asarray(strong_status, dtype=np.float32)
    if len(strong_inputs) == 0:
        return soft.inputs, soft.soft_status
    if len(soft) == 0:
        return strong_inputs, strong_status
    if strong_inputs.shape[1] != soft.inputs.shape[1]:
        raise ValueError("strong and soft windows have different lengths")
    x = np.concatenate([strong_inputs, soft.inputs])
    s = np.concatenate([strong_status, soft.soft_status])
    return x, s
