"""Saving and loading trained CamAL pipelines.

A trained pipeline is a directory containing one ``member_<i>.npz`` state
archive per ensemble ResNet plus a ``manifest.json`` describing each
member's architecture and the pipeline's localization settings, so a
pipeline can be reloaded without re-running Algorithm 1.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Optional

from ..nn.serialization import load_state, save_state
from .ensemble import ResNetEnsemble
from .localization import CamAL
from .resnet import ResNetConfig, ResNetTSC

MANIFEST_NAME = "manifest.json"
_FORMAT_VERSION = 1


def save_camal(camal: CamAL, directory: str) -> None:
    """Persist a trained CamAL pipeline into ``directory``.

    Writes ``manifest.json`` plus one ``member_<i>.npz`` per ensemble
    member.  The directory is created if needed; existing member files are
    overwritten.
    """
    os.makedirs(directory, exist_ok=True)
    members = []
    for i, model in enumerate(camal.ensemble.models):
        filename = f"member_{i}.npz"
        save_state(model, os.path.join(directory, filename))
        config = model.config
        members.append(
            {
                "file": filename,
                "kernel_size": config.kernel_size,
                "filters": list(config.filters),
                "in_channels": config.in_channels,
                "n_classes": config.n_classes,
                "seed": config.seed,
            }
        )
    manifest = {
        "format_version": _FORMAT_VERSION,
        "detection_threshold": camal.detection_threshold,
        "use_attention": camal.use_attention,
        "power_gate_watts": camal.power_gate_watts,
        "status_threshold": camal.status_threshold,
        "members": members,
    }
    with open(os.path.join(directory, MANIFEST_NAME), "w") as handle:
        json.dump(manifest, handle, indent=2)


def load_camal(directory: str) -> CamAL:
    """Reload a pipeline saved by :func:`save_camal`."""
    manifest_path = os.path.join(directory, MANIFEST_NAME)
    if not os.path.exists(manifest_path):
        raise FileNotFoundError(f"no {MANIFEST_NAME} in {directory!r}")
    with open(manifest_path) as handle:
        manifest = json.load(handle)
    version = manifest.get("format_version")
    if version != _FORMAT_VERSION:
        raise ValueError(f"unsupported manifest format_version {version!r}")

    models = []
    for member in manifest["members"]:
        config = ResNetConfig(
            kernel_size=int(member["kernel_size"]),
            filters=tuple(member["filters"]),
            in_channels=int(member["in_channels"]),
            n_classes=int(member["n_classes"]),
            seed=int(member["seed"]),
        )
        model = ResNetTSC(config)
        load_state(model, os.path.join(directory, member["file"]))
        model.eval()
        models.append(model)

    gate: Optional[float] = manifest["power_gate_watts"]
    return CamAL(
        ResNetEnsemble(models),
        detection_threshold=float(manifest["detection_threshold"]),
        use_attention=bool(manifest["use_attention"]),
        power_gate_watts=None if gate is None else float(gate),
        # Older manifests predate per-pipeline soft-status thresholds.
        status_threshold=float(manifest.get("status_threshold", 0.5)),
    )


def save_pipelines(pipelines: Dict[str, CamAL], root: str) -> None:
    """Persist a fleet of per-appliance pipelines under ``root/<appliance>/``."""
    for appliance, camal in pipelines.items():
        save_camal(camal, os.path.join(root, appliance))


def load_pipelines(root: str) -> Dict[str, CamAL]:
    """Load every ``save_camal`` directory under ``root`` keyed by its name.

    This is the deployment layout consumed by
    :meth:`repro.serving.InferenceEngine.load`: one subdirectory per
    appliance, each holding a ``manifest.json`` plus member archives.
    Non-pipeline entries (files, directories without a manifest) are
    skipped.
    """
    if not os.path.isdir(root):
        raise FileNotFoundError(f"no pipeline directory at {root!r}")
    pipelines: Dict[str, CamAL] = {}
    for name in sorted(os.listdir(root)):
        directory = os.path.join(root, name)
        if os.path.isfile(os.path.join(directory, MANIFEST_NAME)):
            pipelines[name] = load_camal(directory)
    return pipelines
