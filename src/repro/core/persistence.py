"""Saving and loading trained CamAL pipelines.

A trained pipeline is a directory containing one ``member_<i>.npz`` state
archive per ensemble ResNet plus a ``manifest.json`` describing each
member's architecture and the pipeline's localization settings, so a
pipeline can be reloaded without re-running Algorithm 1.

.. deprecated::
    ``save_camal`` / ``load_camal`` are legacy entry points kept as thin
    shims.  New code should go through :mod:`repro.api.persistence`
    (``save_estimator`` / ``load_estimator``), which handles CamAL *and*
    every registered baseline behind one manifest format.
"""

from __future__ import annotations

import json
import os
import warnings
from typing import Dict, List, Optional, Tuple

from ..nn.serialization import load_state, save_state
from .ensemble import ResNetEnsemble
from .localization import CamAL
from .resnet import ResNetConfig, ResNetTSC

MANIFEST_NAME = "manifest.json"
_FORMAT_VERSION = 1


def _write_camal(camal: CamAL, directory: str, n_labels: int = 0) -> None:
    """Persist a trained CamAL pipeline into ``directory``.

    Writes ``manifest.json`` plus one ``member_<i>.npz`` per ensemble
    member.  The directory is created if needed; existing member files are
    overwritten.  The manifest carries ``model: "camal"`` so the generic
    :func:`repro.api.persistence.load_estimator` can dispatch on it, while
    ``format_version`` stays 1 for the legacy loader; ``n_labels`` records
    the estimator's label consumption so a reloaded pipeline keeps its
    annotation accounting.
    """
    os.makedirs(directory, exist_ok=True)
    members = []
    for i, model in enumerate(camal.ensemble.models):
        filename = f"member_{i}.npz"
        save_state(model, os.path.join(directory, filename))
        config = model.config
        members.append(
            {
                "file": filename,
                "kernel_size": config.kernel_size,
                "filters": list(config.filters),
                "in_channels": config.in_channels,
                "n_classes": config.n_classes,
                "seed": config.seed,
            }
        )
    manifest = {
        "format_version": _FORMAT_VERSION,
        "model": "camal",
        "detection_threshold": camal.detection_threshold,
        "use_attention": camal.use_attention,
        "power_gate_watts": camal.power_gate_watts,
        "status_threshold": camal.status_threshold,
        "n_labels": int(n_labels),
        "members": members,
    }
    with open(os.path.join(directory, MANIFEST_NAME), "w") as handle:
        json.dump(manifest, handle, indent=2)


def _read_camal(directory: str) -> CamAL:
    """Reload a pipeline saved by :func:`_write_camal` / ``save_camal``."""
    manifest_path = os.path.join(directory, MANIFEST_NAME)
    if not os.path.exists(manifest_path):
        raise FileNotFoundError(f"no {MANIFEST_NAME} in {directory!r}")
    with open(manifest_path) as handle:
        manifest = json.load(handle)
    version = manifest.get("format_version")
    if version != _FORMAT_VERSION:
        raise ValueError(f"unsupported manifest format_version {version!r}")

    models = []
    for member in manifest["members"]:
        config = ResNetConfig(
            kernel_size=int(member["kernel_size"]),
            filters=tuple(member["filters"]),
            in_channels=int(member["in_channels"]),
            n_classes=int(member["n_classes"]),
            seed=int(member["seed"]),
        )
        model = ResNetTSC(config)
        load_state(model, os.path.join(directory, member["file"]))
        model.eval()
        models.append(model)

    gate: Optional[float] = manifest["power_gate_watts"]
    return CamAL(
        ResNetEnsemble(models),
        detection_threshold=float(manifest["detection_threshold"]),
        use_attention=bool(manifest["use_attention"]),
        power_gate_watts=None if gate is None else float(gate),
        # Older manifests predate per-pipeline soft-status thresholds.
        status_threshold=float(manifest.get("status_threshold", 0.5)),
    )


def save_camal(camal: CamAL, directory: str) -> None:
    """Deprecated shim for :func:`repro.api.persistence.save_estimator`.

    Behavior is identical to the original ``save_camal``; only the entry
    point moved.
    """
    warnings.warn(
        "save_camal is deprecated; use repro.api.save_estimator (or the "
        "estimator's own .save()) instead",
        DeprecationWarning,
        stacklevel=2,
    )
    _write_camal(camal, directory)


def load_camal(directory: str) -> CamAL:
    """Deprecated shim for :func:`repro.api.persistence.load_estimator`.

    Still returns the raw :class:`CamAL`; the generic loader returns a
    :class:`repro.api.CamALLocalizer` wrapping the same pipeline.
    """
    warnings.warn(
        "load_camal is deprecated; use repro.api.load_estimator instead",
        DeprecationWarning,
        stacklevel=2,
    )
    return _read_camal(directory)


def save_pipelines(pipelines: Dict[str, CamAL], root: str) -> None:
    """Persist a fleet of per-appliance pipelines under ``root/<appliance>/``.

    Accepts raw :class:`CamAL` pipelines; for mixed-model fleets use the
    generic :func:`repro.api.persistence.save_pipelines`.
    """
    for appliance, camal in pipelines.items():
        _write_camal(camal, os.path.join(root, appliance))


def scan_pipeline_root(root: str) -> Tuple[List[Tuple[str, str]], List[str]]:
    """Find the loadable estimator directories under a fleet root.

    Returns ``(entries, skipped)`` where ``entries`` is a sorted list of
    ``(name, directory)`` pairs holding a ``manifest.json`` and
    ``skipped`` describes every stray file or manifest-less directory.
    Shared by this module's :func:`load_pipelines` and the generic
    :func:`repro.api.persistence.load_pipelines`.
    """
    if not os.path.isdir(root):
        raise FileNotFoundError(f"no pipeline directory at {root!r}")
    entries: List[Tuple[str, str]] = []
    skipped: List[str] = []
    for name in sorted(os.listdir(root)):
        directory = os.path.join(root, name)
        if not os.path.isdir(directory):
            skipped.append(f"{name} (not a directory)")
            continue
        if not os.path.isfile(os.path.join(directory, MANIFEST_NAME)):
            skipped.append(f"{name} (no {MANIFEST_NAME})")
            continue
        entries.append((name, directory))
    return entries, skipped


def warn_skipped_pipelines(root: str, skipped: List[str]) -> None:
    """Report (once) what :func:`scan_pipeline_root` refused to load."""
    if skipped:
        warnings.warn(
            f"load_pipelines skipped {len(skipped)} non-pipeline "
            f"entr{'y' if len(skipped) == 1 else 'ies'} under {root!r}: "
            + ", ".join(skipped),
            UserWarning,
            stacklevel=3,
        )


def load_pipelines(root: str) -> Dict[str, CamAL]:
    """Load every CamAL directory under ``root`` keyed by its name.

    This is the deployment layout consumed by
    :meth:`repro.serving.InferenceEngine.load`: one subdirectory per
    appliance, each holding a ``manifest.json`` plus member archives.
    Stray files and manifest-less directories are skipped and reported
    with a single ``UserWarning`` instead of aborting mid-load.  Fleets
    that mix in non-CamAL estimators load through the generic
    :func:`repro.api.persistence.load_pipelines` instead.
    """
    entries, skipped = scan_pipeline_root(root)
    pipelines: Dict[str, CamAL] = {}
    for name, directory in entries:
        try:
            pipelines[name] = _read_camal(directory)
        except (KeyError, ValueError, OSError) as exc:
            # Unsupported format, corrupt manifest/archive: report and
            # keep loading the rest of the fleet.
            skipped.append(f"{name} ({exc})")
    warn_skipped_pipelines(root, skipped)
    return pipelines
