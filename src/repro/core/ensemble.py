"""Algorithm 1: training and selecting the CamAL ResNet ensemble.

For each kernel size ``k_p`` in the kernel set, train ``n_trials`` ResNets
on an 80/20 split of the training windows (the 20 % sub-split monitors
training / early stopping), evaluate every candidate on the *separate*
validation set, and keep the ``n`` models with the lowest validation loss.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from .. import nn
from ..nn import functional as F
from ..nn.tensor import Tensor
from ..training import TrainConfig, evaluate_classifier_loss, predict_proba, train_classifier
from .cam import cam_from_features, normalize_cam
from .resnet import DEFAULT_FILTERS, DEFAULT_KERNEL_SET, ResNetConfig, ResNetTSC


@dataclass
class EnsembleConfig:
    """Hyper-parameters of Algorithm 1."""

    kernel_set: Tuple[int, ...] = DEFAULT_KERNEL_SET
    n_trials: int = 3  # trials per kernel size (Algorithm 1, line 3)
    n_models: int = 5  # ensemble size n (paper default)
    filters: Tuple[int, int, int] = DEFAULT_FILTERS
    train_sub_fraction: float = 0.8  # D_train-sub share (Algorithm 1, line 1)
    train: TrainConfig = field(default_factory=TrainConfig)
    seed: int = 0


@dataclass
class TrainedCandidate:
    """One trained candidate with its selection score."""

    model: ResNetTSC
    kernel_size: int
    trial: int
    val_loss: float
    wall_time_seconds: float


@dataclass
class FusedForwardOutput:
    """Detection probabilities and ensemble CAM from one pass per member."""

    proba: np.ndarray  # (N,) ensemble detection probability P_ens
    cam: np.ndarray  # (N, L) mean of per-member normalized class CAMs


class ResNetEnsemble:
    """Container for the selected models; implements steps 1-2 of CamAL."""

    def __init__(self, models: Sequence[ResNetTSC]):
        if not models:
            raise ValueError("ensemble needs at least one model")
        self.models: List[ResNetTSC] = list(models)

    def __len__(self) -> int:
        return len(self.models)

    @property
    def kernel_sizes(self) -> List[int]:
        return [m.kernel_size for m in self.models]

    def predict_proba(self, x: np.ndarray, batch_size: int = 256) -> np.ndarray:
        """Ensemble detection probability: mean of member probabilities."""
        probs = np.stack([predict_proba(m, x, batch_size) for m in self.models])
        return probs.mean(axis=0)

    def predict_detection(
        self, x: np.ndarray, threshold: float = 0.5, batch_size: int = 256
    ) -> np.ndarray:
        """Binary appliance-detection decision per window (Problem 1)."""
        return self.predict_proba(x, batch_size) > threshold

    def forward_fused(
        self, x: np.ndarray, batch_size: int = 256, class_index: int = 1
    ) -> FusedForwardOutput:
        """Detection probability *and* ensemble CAM in one forward per member.

        Equivalent to ``predict_proba`` followed by
        :func:`repro.core.cam.ensemble_cam`, but the conv stack of each
        member runs only once per window: the logits come from GAP + head
        on the same feature maps that yield the CAM, so the serving hot
        path pays a single forward instead of two (paper Table II's
        inference-cost story).
        """
        x = np.asarray(x, dtype=np.float32)
        if x.ndim != 2:
            raise ValueError(f"expected (N, L) windows, got shape {x.shape}")
        n, length = x.shape
        proba = np.zeros(n, dtype=np.float32)
        cam = np.zeros((n, length), dtype=np.float32)
        inv_members = 1.0 / len(self.models)
        with nn.no_grad():
            for start in range(0, n, batch_size):
                batch = Tensor(x[start : start + batch_size][:, None, :])
                for model in self.models:
                    logits, feats = model.forward_with_features(batch)
                    member_proba = F.softmax(logits, axis=1).data[:, 1]
                    member_cam = normalize_cam(
                        cam_from_features(
                            feats.data, model.head.weight.data[class_index]
                        )
                    )
                    proba[start : start + len(member_proba)] += member_proba * inv_members
                    cam[start : start + len(member_cam)] += member_cam * inv_members
        return FusedForwardOutput(proba=proba, cam=cam)

    def num_parameters(self) -> int:
        return sum(m.num_parameters() for m in self.models)

    def eval(self) -> "ResNetEnsemble":
        for model in self.models:
            model.eval()
        return self


def _split_train_sub(
    x: np.ndarray, y: np.ndarray, fraction: float, rng: np.random.Generator
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Random 80/20 split of the training windows (Algorithm 1, line 1)."""
    n = len(x)
    order = rng.permutation(n)
    cut = max(1, int(round(fraction * n)))
    cut = min(cut, n - 1) if n > 1 else 1
    train_idx, monitor_idx = order[:cut], order[cut:]
    if len(monitor_idx) == 0:
        monitor_idx = train_idx[-1:]
    return x[train_idx], y[train_idx], x[monitor_idx], y[monitor_idx]


def train_ensemble(
    x_train: np.ndarray,
    y_train: np.ndarray,
    x_val: np.ndarray,
    y_val: np.ndarray,
    config: Optional[EnsembleConfig] = None,
) -> Tuple[ResNetEnsemble, List[TrainedCandidate]]:
    """Run Algorithm 1 and return (selected ensemble, all candidates).

    Args:
        x_train / y_train: training windows ``(N, L)`` and weak labels.
        x_val / y_val: the separate validation set used for model selection
            (Algorithm 1's ``D_validation``).
        config: ensemble and training hyper-parameters.
    """
    config = config or EnsembleConfig()
    rng = np.random.default_rng(config.seed)
    x_sub, y_sub, x_mon, y_mon = _split_train_sub(
        np.asarray(x_train, dtype=np.float32),
        np.asarray(y_train, dtype=np.int64),
        config.train_sub_fraction,
        rng,
    )

    candidates: List[TrainedCandidate] = []
    for kernel_index, kernel_size in enumerate(config.kernel_set):
        for trial in range(config.n_trials):
            # The index term keeps seeds distinct even when the ablation
            # passes the same kernel size several times.
            model_seed = (
                config.seed * 10_000 + kernel_index * 1_000 + kernel_size * 10 + trial
            )
            model = ResNetTSC(
                ResNetConfig(
                    kernel_size=kernel_size, filters=config.filters, seed=model_seed
                )
            )
            train_cfg = replace(config.train, seed=model_seed)
            result = train_classifier(model, x_sub, y_sub, x_mon, y_mon, train_cfg)
            model.eval()
            val_loss = evaluate_classifier_loss(model, x_val, y_val)
            candidates.append(
                TrainedCandidate(
                    model=model,
                    kernel_size=kernel_size,
                    trial=trial,
                    val_loss=val_loss,
                    wall_time_seconds=result.wall_time_seconds,
                )
            )

    # Algorithm 1, line 9: keep the n models with lowest validation loss.
    ranked = sorted(candidates, key=lambda c: c.val_loss)
    selected = [c.model for c in ranked[: config.n_models]]
    return ResNetEnsemble(selected), candidates
