"""Algorithm 1: training and selecting the CamAL ResNet ensemble.

For each kernel size ``k_p`` in the kernel set, train ``n_trials`` ResNets
on an 80/20 split of the training windows (the 20 % sub-split monitors
training / early stopping), evaluate every candidate on the *separate*
validation set, and keep the ``n`` models with the lowest validation loss.

The candidates are fully independent — each is seeded by a deterministic
function of ``(seed, kernel, trial)`` — so :func:`train_ensemble` can fan
them out over a ``ProcessPoolExecutor`` (``n_workers > 1``, or the
:func:`train_ensemble_parallel` convenience wrapper) and produce results
bit-identical to the serial order.  With ``checkpoint_dir`` set, every
candidate writes a resumable per-candidate checkpoint (see
:mod:`repro.training.checkpoint`), so an interrupted ensemble run picks up
where it left off instead of retraining finished members.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from .. import nn
from ..nn import functional as F
from ..nn.tensor import Tensor
from ..training import TrainConfig, evaluate_classifier_loss, predict_proba, train_classifier
from .cam import cam_from_features, normalize_cam
from .resnet import DEFAULT_FILTERS, DEFAULT_KERNEL_SET, ResNetConfig, ResNetTSC


@dataclass
class EnsembleConfig:
    """Hyper-parameters of Algorithm 1."""

    kernel_set: Tuple[int, ...] = DEFAULT_KERNEL_SET
    n_trials: int = 3  # trials per kernel size (Algorithm 1, line 3)
    n_models: int = 5  # ensemble size n (paper default)
    filters: Tuple[int, int, int] = DEFAULT_FILTERS
    train_sub_fraction: float = 0.8  # D_train-sub share (Algorithm 1, line 1)
    train: TrainConfig = field(default_factory=TrainConfig)
    seed: int = 0


@dataclass
class TrainedCandidate:
    """One trained candidate with its selection score."""

    model: ResNetTSC
    kernel_size: int
    trial: int
    val_loss: float
    wall_time_seconds: float


@dataclass
class FusedForwardOutput:
    """Detection probabilities and ensemble CAM from one pass per member."""

    proba: np.ndarray  # (N,) ensemble detection probability P_ens
    cam: np.ndarray  # (N, L) mean of per-member normalized class CAMs


class ResNetEnsemble:
    """Container for the selected models; implements steps 1-2 of CamAL."""

    def __init__(self, models: Sequence[ResNetTSC]):
        if not models:
            raise ValueError("ensemble needs at least one model")
        self.models: List[ResNetTSC] = list(models)
        #: Arena recycling conv scratch/outputs across fused micro-batches;
        #: created on first use so a freshly loaded ensemble carries none.
        self._pool: Optional[nn.backend.BufferPool] = None
        #: Traced grouped-GEMM plans per (batch, window, backend) signature
        #: (see :mod:`repro.core.grouped`); lazy like the pool.
        self._plan_cache: Optional[nn.PlanCache] = None
        self._plan_unsupported: set = set()

    @property
    def buffer_pool(self) -> nn.backend.BufferPool:
        """The pool :meth:`forward_fused` recycles buffers through."""
        if self._pool is None:
            self._pool = nn.backend.BufferPool()
        return self._pool

    @property
    def plan_cache(self) -> nn.PlanCache:
        """Cache of traced grouped execution plans (+ trace/replay counters)."""
        if self._plan_cache is None:
            self._plan_cache = nn.PlanCache()
        return self._plan_cache

    def __len__(self) -> int:
        return len(self.models)

    @property
    def kernel_sizes(self) -> List[int]:
        return [m.kernel_size for m in self.models]

    def _plan_outputs(
        self, xb: np.ndarray, class_index: int, with_cam: bool
    ) -> Optional[Tuple[np.ndarray, Optional[np.ndarray]]]:
        """One micro-batch through the traced grouped plan, or ``None``.

        ``None`` means "take the untraced member loop" — plan layer
        disabled (``REPRO_NN_PLAN=off``), members in training mode, an
        untraceable structure, or a failed trace-time validation.  Every
        fallback is counted in :attr:`plan_cache` so it shows up in
        ``engine.plan_stats()`` and the benchmark JSON.  Must run inside
        the ``no_grad`` + ``use_pool`` context of the caller.
        """
        from .grouped import PlanUnsupported, compile_ensemble_plan

        cache = self.plan_cache
        if not nn.plan_enabled() or any(m.training for m in self.models):
            cache.record_fallback()
            return None
        n, length = xb.shape
        signature = (
            n, length, class_index, with_cam, nn.backend.get_backend(), len(self.models),
        )
        plan = cache.get(signature)
        if plan is None:
            if signature in self._plan_unsupported:
                cache.record_fallback()
                return None
            try:
                plan = compile_ensemble_plan(
                    self.models, self.buffer_pool, n, length,
                    class_index=class_index, with_cam=with_cam,
                )
            except PlanUnsupported:
                self._plan_unsupported.add(signature)
                cache.record_fallback()
                return None
            np.copyto(plan.inputs["x"], xb)
            plan.run()
            proba = plan.outputs["proba"].copy()
            cam = plan.outputs["cam"].copy() if with_cam else None
            # Validate the trace against the untraced loop once, then keep
            # the plan.  Returning the *plan* output here keeps the first
            # call bit-consistent with every replay (the serving cache's
            # bit-identity contract).
            check_proba = np.zeros(n, dtype=np.float32)
            check_cam = np.zeros((n, length), dtype=np.float32)
            self._forward_fused_loop(xb, check_proba, check_cam, 0, class_index)
            ok = np.allclose(proba, check_proba, atol=1e-4)
            if with_cam:
                ok = ok and np.allclose(cam, check_cam, atol=1e-4)
            if not ok:
                self._plan_unsupported.add(signature)
                cache.record_fallback()
                return None
            cache.put(signature, plan)
            return proba, cam
        np.copyto(plan.inputs["x"], xb)
        plan.run()
        cache.record_replay()
        return (
            plan.outputs["proba"].copy(),
            plan.outputs["cam"].copy() if with_cam else None,
        )

    def predict_proba(self, x: np.ndarray, batch_size: int = 256) -> np.ndarray:
        """Ensemble detection probability: mean of member probabilities."""
        x = np.asarray(x, dtype=np.float32)
        if x.ndim != 2:
            probs = np.stack([predict_proba(m, x, batch_size) for m in self.models])
            return probs.mean(axis=0)
        n = len(x)
        out = np.empty(n, dtype=np.float32)
        pool = self.buffer_pool
        with nn.no_grad(), nn.backend.use_pool(pool):
            for start in range(0, n, batch_size):
                pool.step()
                xb = x[start : start + batch_size]
                got = self._plan_outputs(xb, class_index=1, with_cam=False)
                if got is not None:
                    out[start : start + len(xb)] = got[0]
                else:
                    batch = Tensor(xb[:, None, :])
                    member = np.stack(
                        [F.softmax(m(batch), axis=1).data[:, 1] for m in self.models]
                    )
                    out[start : start + len(xb)] = member.mean(axis=0)
            pool.step()
        return out

    def predict_detection(
        self, x: np.ndarray, threshold: float = 0.5, batch_size: int = 256
    ) -> np.ndarray:
        """Binary appliance-detection decision per window (Problem 1)."""
        return self.predict_proba(x, batch_size) > threshold

    def forward_fused(
        self, x: np.ndarray, batch_size: int = 256, class_index: int = 1
    ) -> FusedForwardOutput:
        """Detection probability *and* ensemble CAM in one forward per member.

        Equivalent to ``predict_proba`` followed by
        :func:`repro.core.cam.ensemble_cam`, but the conv stack of each
        member runs only once per window: the logits come from GAP + head
        on the same feature maps that yield the CAM, so the serving hot
        path pays a single forward instead of two (paper Table II's
        inference-cost story).
        """
        x = np.asarray(x, dtype=np.float32)
        if x.ndim != 2:
            raise ValueError(f"expected (N, L) windows, got shape {x.shape}")
        n, length = x.shape
        proba = np.zeros(n, dtype=np.float32)
        cam = np.zeros((n, length), dtype=np.float32)
        # The micro-batch loop runs through the ensemble's buffer pool.
        # Each batch goes through the traced grouped-GEMM plan (one batched
        # matmul per layer group, zero module dispatch — repro.core.grouped)
        # when one is available, and through the per-member loop otherwise;
        # pool.step() then recycles that batch's conv scratch, so
        # steady-state scoring performs no large allocations.
        pool = self.buffer_pool
        with nn.no_grad(), nn.backend.use_pool(pool):
            for start in range(0, n, batch_size):
                pool.step()
                xb = x[start : start + batch_size]
                got = self._plan_outputs(xb, class_index, with_cam=True)
                if got is not None:
                    proba[start : start + len(xb)] = got[0]
                    cam[start : start + len(xb)] = got[1]
                else:
                    self._forward_fused_loop(xb, proba, cam, start, class_index)
            pool.step()
        return FusedForwardOutput(proba=proba, cam=cam)

    def _forward_fused_loop(
        self,
        xb: np.ndarray,
        proba: np.ndarray,
        cam: np.ndarray,
        start: int,
        class_index: int,
    ) -> None:
        """The untraced per-member micro-batch: fallback and trace validator."""
        inv_members = 1.0 / len(self.models)
        batch = Tensor(xb[:, None, :])
        for model in self.models:
            logits, feats = model.forward_with_features(batch)
            member_proba = F.softmax(logits, axis=1).data[:, 1]
            member_cam = normalize_cam(
                cam_from_features(feats.data, model.head.weight.data[class_index])
            )
            proba[start : start + len(member_proba)] += member_proba * inv_members
            cam[start : start + len(member_cam)] += member_cam * inv_members

    def num_parameters(self) -> int:
        return sum(m.num_parameters() for m in self.models)

    def eval(self) -> "ResNetEnsemble":
        for model in self.models:
            model.eval()
        return self


def _split_train_sub(
    x: np.ndarray, y: np.ndarray, fraction: float, rng: np.random.Generator
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Random 80/20 split of the training windows (Algorithm 1, line 1)."""
    n = len(x)
    order = rng.permutation(n)
    cut = max(1, int(round(fraction * n)))
    cut = min(cut, n - 1) if n > 1 else 1
    train_idx, monitor_idx = order[:cut], order[cut:]
    if len(monitor_idx) == 0:
        monitor_idx = train_idx[-1:]
    return x[train_idx], y[train_idx], x[monitor_idx], y[monitor_idx]


#: One row of Algorithm 1's candidate grid: (kernel_index, kernel_size,
#: trial, model_seed, checkpoint_path).  Plain tuple so it pickles cheaply.
_CandidatePlan = Tuple[int, int, int, int, Optional[str]]

#: Shared training data stashed per worker process by the pool initializer
#: (fork-safe and pickled once per worker instead of once per candidate).
_WORKER_DATA: Optional[Tuple] = None


def _training_digest(
    config: EnsembleConfig, arrays: Sequence[np.ndarray]
) -> str:
    """Short content hash of the training task (data + architecture).

    Folded into candidate checkpoint filenames so sharing one
    ``checkpoint_dir`` across appliances, corpora or presets can never
    silently resume another task's weights — a different task simply gets
    different filenames and trains fresh.
    """
    digest = hashlib.blake2b(digest_size=8)
    for array in arrays:
        array = np.ascontiguousarray(array)
        digest.update(str(array.shape).encode())
        digest.update(array.tobytes())
    digest.update(repr(config.filters).encode())
    return digest.hexdigest()


def _candidate_plans(
    config: EnsembleConfig, checkpoint_dir: Optional[str], task_digest: str
) -> List[_CandidatePlan]:
    """The deterministic candidate grid of Algorithm 1, lines 2-3."""
    plans: List[_CandidatePlan] = []
    for kernel_index, kernel_size in enumerate(config.kernel_set):
        for trial in range(config.n_trials):
            # The index term keeps seeds distinct even when the ablation
            # passes the same kernel size several times.
            model_seed = (
                config.seed * 10_000 + kernel_index * 1_000 + kernel_size * 10 + trial
            )
            path = None
            if checkpoint_dir is not None:
                # model_seed isolates runs with different ensemble seeds;
                # the task digest isolates different data/architectures.
                # (TrainConfig drift inside a matching file is caught by the
                # checkpoint's own config fingerprint on resume.)
                path = os.path.join(
                    checkpoint_dir,
                    f"candidate_i{kernel_index}_k{kernel_size}_t{trial}"
                    f"_s{model_seed}_d{task_digest}.npz",
                )
            plans.append((kernel_index, kernel_size, trial, model_seed, path))
    return plans


def _train_candidate(
    plan: _CandidatePlan, data: Tuple
) -> Tuple[_CandidatePlan, Dict[str, np.ndarray], float, float]:
    """Train one candidate; returns its state dict instead of the model so
    the result crosses process boundaries without pickling live modules."""
    filters, train_config, x_sub, y_sub, x_mon, y_mon, x_val, y_val = data
    _, kernel_size, _, model_seed, checkpoint_path = plan
    model = ResNetTSC(
        ResNetConfig(kernel_size=kernel_size, filters=filters, seed=model_seed)
    )
    train_cfg = replace(
        train_config, seed=model_seed, checkpoint_path=checkpoint_path
    )
    result = train_classifier(model, x_sub, y_sub, x_mon, y_mon, train_cfg)
    model.eval()
    val_loss = evaluate_classifier_loss(model, x_val, y_val)
    return plan, model.state_dict(), float(val_loss), result.wall_time_seconds


def _init_worker(data: Tuple) -> None:
    global _WORKER_DATA
    _WORKER_DATA = data


def _train_candidate_in_worker(plan: _CandidatePlan):
    return _train_candidate(plan, _WORKER_DATA)


def train_ensemble(
    x_train: np.ndarray,
    y_train: np.ndarray,
    x_val: np.ndarray,
    y_val: np.ndarray,
    config: Optional[EnsembleConfig] = None,
    n_workers: int = 1,
    checkpoint_dir: Optional[str] = None,
) -> Tuple[ResNetEnsemble, List[TrainedCandidate]]:
    """Run Algorithm 1 and return (selected ensemble, all candidates).

    Args:
        x_train / y_train: training windows ``(N, L)`` and weak labels.
        x_val / y_val: the separate validation set used for model selection
            (Algorithm 1's ``D_validation``).
        config: ensemble and training hyper-parameters.
        n_workers: worker processes to train candidates on.  ``1`` (the
            default) trains serially in-process; any value is safe — the
            candidates are seed-isolated, so the selected ensemble is
            identical regardless of worker count.
        checkpoint_dir: when set, each candidate checkpoints its epochs to
            ``<dir>/candidate_i<ki>_k<ks>_t<trial>_s<seed>_d<digest>.npz``
            (digest = hash of the training data + architecture) and
            resumes from an existing checkpoint (honouring
            ``config.train.resume``).
    """
    config = config or EnsembleConfig()
    if n_workers < 1:
        raise ValueError(f"n_workers must be >= 1, got {n_workers}")
    rng = np.random.default_rng(config.seed)
    x_sub, y_sub, x_mon, y_mon = _split_train_sub(
        np.asarray(x_train, dtype=np.float32),
        np.asarray(y_train, dtype=np.int64),
        config.train_sub_fraction,
        rng,
    )
    x_val = np.asarray(x_val, dtype=np.float32)
    y_val = np.asarray(y_val, dtype=np.int64)

    task_digest = ""
    if checkpoint_dir is not None:
        task_digest = _training_digest(config, (x_sub, y_sub, x_mon, y_mon))
    plans = _candidate_plans(config, checkpoint_dir, task_digest)
    data = (config.filters, config.train, x_sub, y_sub, x_mon, y_mon, x_val, y_val)
    if n_workers > 1 and len(plans) > 1:
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(
            max_workers=min(n_workers, len(plans)),
            initializer=_init_worker,
            initargs=(data,),
        ) as pool:
            # executor.map preserves submission order, so the merge below is
            # independent of which worker finishes first.
            outcomes = list(pool.map(_train_candidate_in_worker, plans))
    else:
        outcomes = [_train_candidate(plan, data) for plan in plans]

    candidates: List[TrainedCandidate] = []
    for (_, kernel_size, trial, model_seed, _), state, val_loss, wall in outcomes:
        model = ResNetTSC(
            ResNetConfig(
                kernel_size=kernel_size, filters=config.filters, seed=model_seed
            )
        )
        model.load_state_dict(state)
        model.eval()
        candidates.append(
            TrainedCandidate(
                model=model,
                kernel_size=kernel_size,
                trial=trial,
                val_loss=val_loss,
                wall_time_seconds=wall,
            )
        )

    # Algorithm 1, line 9: keep the n models with lowest validation loss.
    # sorted() is stable, so equal losses keep grid order and the selection
    # matches the serial path exactly.
    ranked = sorted(candidates, key=lambda c: c.val_loss)
    selected = [c.model for c in ranked[: config.n_models]]
    return ResNetEnsemble(selected), candidates


def train_ensemble_parallel(
    x_train: np.ndarray,
    y_train: np.ndarray,
    x_val: np.ndarray,
    y_val: np.ndarray,
    config: Optional[EnsembleConfig] = None,
    n_workers: Optional[int] = None,
    checkpoint_dir: Optional[str] = None,
) -> Tuple[ResNetEnsemble, List[TrainedCandidate]]:
    """Process-parallel Algorithm 1: :func:`train_ensemble` across workers.

    ``n_workers`` defaults to the machine's CPU count.  Because every
    candidate derives its own seed, the returned ensemble and candidate
    list are bit-identical to a serial :func:`train_ensemble` run.
    """
    if n_workers is None:
        n_workers = os.cpu_count() or 1
    return train_ensemble(
        x_train,
        y_train,
        x_val,
        y_val,
        config,
        n_workers=max(n_workers, 1),
        checkpoint_dir=checkpoint_dir,
    )
