"""ResNet time-series classifier — the CamAL ensemble backbone (Fig. 4).

Architecture (Wang et al. 2016, as adapted by the paper):

* three stacked residual units with ``{64, 128, 128}`` filters;
* each unit contains three ConvBlocks (Conv1d -> BatchNorm -> ReLU) with
  kernel sizes ``{k_p, 5, 3}`` — ``k_p`` is the ensemble-member-specific
  kernel that diversifies receptive fields;
* a residual (shortcut) connection around each unit, with a 1x1 conv when
  the channel count changes;
* Global Average Pooling over time, then a linear layer to 2 classes.

The GAP + linear head is exactly the structure required for CAM
(Definition II.1): the CAM for class ``c`` is the linear layer's weights
applied to the last conv feature maps before pooling.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from .. import nn
from ..analysis import hot_path
from ..nn.tensor import Tensor, is_grad_enabled

#: Kernel sizes k_p used by the CamAL ensemble (paper §IV-A1).
DEFAULT_KERNEL_SET: Tuple[int, ...] = (5, 7, 9, 15, 25)

#: Filters of the three residual units (paper: {64, 128, 128}).
DEFAULT_FILTERS: Tuple[int, int, int] = (64, 128, 128)


@dataclass(frozen=True)
class ResNetConfig:
    """Hyper-parameters of one ensemble member."""

    kernel_size: int = 7  # k_p
    filters: Tuple[int, int, int] = DEFAULT_FILTERS
    in_channels: int = 1
    n_classes: int = 2
    seed: int = 0


class ConvBlock(nn.Module):
    """Conv1d -> BatchNorm -> ReLU (the paper's ConvBlock).

    In inference mode (``eval()`` + gradients disabled) the batch norm is
    folded into the convolution weights — ``w' = w * gamma * inv_std`` and
    ``b' = beta - running_mean * scale (+ b * scale)`` — so the block runs
    as a single conv + ReLU with no separate normalization pass over the
    feature maps.  The fold is recomputed from the live parameters on each
    call (it is O(C_out * C_in * K), negligible next to the conv itself),
    so it can never serve stale statistics after ``load_state_dict`` or a
    train/eval round-trip.
    """

    def __init__(self, in_channels: int, out_channels: int, kernel_size: int, seed: int):
        super().__init__()
        self.conv = nn.Conv1d(in_channels, out_channels, kernel_size, seed=seed)
        self.norm = nn.BatchNorm1d(out_channels)

    def forward(self, x: Tensor) -> Tensor:
        if not self.training and not is_grad_enabled():
            return self._forward_folded(x)
        return self.norm(self.conv(x)).relu()

    @hot_path
    def _forward_folded(self, x: Tensor) -> Tensor:
        norm, conv = self.norm, self.conv
        inv_std = 1.0 / np.sqrt(norm.running_var + norm.eps)
        scale = norm.gamma.data * inv_std
        shift = norm.beta.data - norm.running_mean * scale
        # The folded weight is only read inside the conv call, so it can
        # come from the active buffer pool like the conv scratch does —
        # steady-state fused serving re-folds into a recycled buffer.
        folded = nn.backend.scratch(conv.weight.shape, conv.weight.dtype)
        np.multiply(conv.weight.data, scale[:, None, None], out=folded)
        if conv.bias is not None:
            shift = shift + conv.bias.data * scale
        if os.environ.get("REPRO_NN_FUSE", "").lower() in ("off", "0", "false"):
            # Escape hatch (mirrors REPRO_NN_PLAN=off): stage conv, shift
            # and ReLU as separate passes — the pre-fusion eval path, kept
            # as an A/B baseline for the fused epilogue below.
            return nn.functional.conv1d(
                x,
                Tensor(folded),
                Tensor(shift),
                stride=conv.stride,
                padding=conv.padding,
            ).relu()
        # Single fused backend call: the conv GEMM applies the folded
        # scale/shift and the ReLU in its epilogue, in the pooled output
        # buffer — same bits as conv + bias + relu staged separately.
        out = nn.backend.conv1d_fused(
            x.data, folded, shift=shift, stride=conv.stride, padding=conv.padding
        )
        return Tensor(out)


class ResUnit(nn.Module):
    """Residual unit: three ConvBlocks with kernels (k_p, 5, 3) + shortcut."""

    def __init__(self, in_channels: int, out_channels: int, kernel_size: int, seed: int):
        super().__init__()
        self.block1 = ConvBlock(in_channels, out_channels, kernel_size, seed)
        self.block2 = ConvBlock(out_channels, out_channels, 5, seed + 1)
        self.block3 = ConvBlock(out_channels, out_channels, 3, seed + 2)
        if in_channels != out_channels:
            self.shortcut: Optional[nn.Conv1d] = nn.Conv1d(
                in_channels, out_channels, 1, seed=seed + 3
            )
        else:
            self.shortcut = None

    def forward(self, x: Tensor) -> Tensor:
        out = self.block3(self.block2(self.block1(x)))
        residual = self.shortcut(x) if self.shortcut is not None else x
        return (out + residual).relu()


class ResNetTSC(nn.Module):
    """The full classifier: 3 residual units -> GAP -> linear -> logits.

    :meth:`features` exposes the pre-GAP feature maps so that
    :mod:`repro.core.cam` can compute class activation maps.
    """

    def __init__(self, config: ResNetConfig = ResNetConfig()):
        super().__init__()
        self.config = config
        f1, f2, f3 = config.filters
        base = config.seed * 100
        self.unit1 = ResUnit(config.in_channels, f1, config.kernel_size, base + 10)
        self.unit2 = ResUnit(f1, f2, config.kernel_size, base + 20)
        self.unit3 = ResUnit(f2, f3, config.kernel_size, base + 30)
        self.head = nn.Linear(f3, config.n_classes, seed=base + 40)

    @property
    def kernel_size(self) -> int:
        return self.config.kernel_size

    def features(self, x: Tensor) -> Tensor:
        """Last conv feature maps, shape ``(N, C, L)``."""
        return self.unit3(self.unit2(self.unit1(x)))

    def forward(self, x: Tensor) -> Tensor:
        """Class logits ``(N, n_classes)`` from input ``(N, 1, L)``."""
        logits, _ = self.forward_with_features(x)
        return logits

    def forward_with_features(self, x: Tensor) -> Tuple[Tensor, Tensor]:
        """Return ``(logits, feature_maps)`` in one pass.

        This is the fused entry point of the serving hot path: the feature
        maps feed the CAM (Definition II.1) while the logits feed the
        detection probability, so localization never has to run the conv
        stack twice per window.
        """
        feats = self.features(x)
        pooled = nn.functional.global_avg_pool1d(feats)
        return self.head(pooled), feats


def ensemble_conv_shapes(
    filters: Sequence[int] = DEFAULT_FILTERS,
    kernel_set: Sequence[int] = DEFAULT_KERNEL_SET,
    in_channels: int = 1,
) -> List[Tuple[int, int, int]]:
    """Distinct ``(C_in, C_out, K)`` conv signatures of an Algorithm-1 ensemble.

    Enumerates every convolution executed by a CamAL ensemble built from
    ``kernel_set`` members with the given residual-unit ``filters`` — the
    member-specific ``k_p`` blocks, the fixed kernel-5/kernel-3 blocks and
    the 1x1 shortcuts.  ``benchmarks/bench_nn_ops.py`` uses the paper
    preset's inventory as its Table-II workload, and it is the natural
    warm-up set for the backend autotuner.
    """
    f1, f2, f3 = filters
    shapes = set()
    for k_p in kernel_set:
        for c_in, c_out in ((in_channels, f1), (f1, f2), (f2, f3)):
            shapes.add((c_in, c_out, k_p))  # block1 of each unit
            shapes.add((c_out, c_out, 5))  # block2
            shapes.add((c_out, c_out, 3))  # block3
            if c_in != c_out:
                shapes.add((c_in, c_out, 1))  # shortcut
    return sorted(shapes)
