"""Class Activation Maps for the ResNet classifier (Definition II.1).

For a classifier with a GAP layer between the final convolution and the
linear classification head, the CAM for class ``c`` at timestep ``t`` is

    CAM_c(t) = sum_k  w_c^k * f_k(t)

where ``f_k`` is the k-th feature map of the last conv layer and ``w_c^k``
the head weight connecting filter ``k`` to class ``c``.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..nn.tensor import Tensor
from .resnet import ResNetTSC


def cam_from_features(feats: np.ndarray, class_weights: np.ndarray) -> np.ndarray:
    """Raw CAM from precomputed feature maps ``(N, C, L)`` and head weights.

    This is the shared kernel behind :func:`compute_cam` and the fused
    single-forward path (:meth:`repro.core.ensemble.ResNetEnsemble.forward_fused`):
    once the last conv feature maps exist, the CAM is just a contraction
    with the classification head's weights for the target class.
    """
    return np.tensordot(class_weights, feats, axes=([0], [1])).astype(np.float32)


def compute_cam(model: ResNetTSC, x: np.ndarray, class_index: int = 1) -> np.ndarray:
    """Raw CAM of ``model`` for ``class_index`` over inputs ``(N, L)``.

    Returns an array of shape ``(N, L_feat)``.  With same-padded stride-1
    convolutions ``L_feat == L``, so the map aligns with input timestamps.
    """
    x = np.asarray(x, dtype=np.float32)
    if x.ndim != 2:
        raise ValueError(f"expected (N, L) windows, got shape {x.shape}")
    with nn.no_grad():
        feats = model.features(Tensor(x[:, None, :])).data  # (N, C, L)
    return cam_from_features(feats, model.head.weight.data[class_index])


def normalize_cam(cam: np.ndarray, eps: float = 1e-8) -> np.ndarray:
    """Normalize each CAM to ``[0, 1]`` by dividing by its per-window max.

    The paper divides each CAM by its maximum value.  When the maximum is
    not positive (appliance absent or a degenerate map), dividing would
    flip signs, so we return zeros for those windows instead (DESIGN.md §5).
    Values below zero after scaling are kept (they encode "evidence
    against" and are suppressed by the downstream sigmoid attention).
    """
    cam = np.asarray(cam, dtype=np.float32)
    maxima = cam.max(axis=-1, keepdims=True)
    positive = maxima > eps
    safe = np.where(positive, maxima, 1.0)
    out = cam / safe
    return np.where(positive, out, 0.0).astype(np.float32)


def ensemble_cam(models, x: np.ndarray, class_index: int = 1) -> np.ndarray:
    """Average of the normalized CAMs of all ensemble members (step 4).

    ``CAM_ens(t) = (1/n) * sum_i  norm(CAM_i(t))``
    """
    models = list(models)
    if not models:
        raise ValueError("ensemble_cam needs at least one model")
    total = None
    for model in models:
        normalized = normalize_cam(compute_cam(model, x, class_index))
        total = normalized if total is None else total + normalized
    return (total / len(models)).astype(np.float32)
