"""``repro.core`` — CamAL, the paper's primary contribution.

* :mod:`repro.core.resnet` — the ResNet time-series classifier (Fig. 4);
* :mod:`repro.core.ensemble` — Algorithm 1 ensemble training/selection;
* :mod:`repro.core.cam` — class activation maps (Definition II.1);
* :mod:`repro.core.localization` — the CAM-attention localization pipeline;
* :mod:`repro.core.energy` — binary status -> power estimation (§IV-C);
* :mod:`repro.core.soft_labels` — soft-label augmentation (RQ5, §V-I).
"""

from .cam import cam_from_features, compute_cam, ensemble_cam, normalize_cam
from .energy import estimate_power, estimate_power_adaptive
from .ensemble import (
    EnsembleConfig,
    FusedForwardOutput,
    ResNetEnsemble,
    TrainedCandidate,
    train_ensemble,
    train_ensemble_parallel,
)
from .localization import CamAL, LocalizationOutput, localize_double_forward
from .persistence import load_camal, load_pipelines, save_camal, save_pipelines
from .report import (
    Activation,
    ApplianceReport,
    analyze_series,
    household_report,
    merge_close_segments,
    report_from_status,
    segments_from_status,
)
from .resnet import (
    DEFAULT_FILTERS,
    DEFAULT_KERNEL_SET,
    ConvBlock,
    ResNetConfig,
    ResNetTSC,
    ResUnit,
)
from .soft_labels import SoftLabelSet, generate_soft_labels, mix_strong_and_soft

__all__ = [
    "ResNetTSC",
    "ResNetConfig",
    "ResUnit",
    "ConvBlock",
    "DEFAULT_KERNEL_SET",
    "DEFAULT_FILTERS",
    "compute_cam",
    "cam_from_features",
    "normalize_cam",
    "ensemble_cam",
    "EnsembleConfig",
    "FusedForwardOutput",
    "ResNetEnsemble",
    "TrainedCandidate",
    "train_ensemble",
    "train_ensemble_parallel",
    "CamAL",
    "LocalizationOutput",
    "localize_double_forward",
    "estimate_power",
    "estimate_power_adaptive",
    "save_camal",
    "load_camal",
    "save_pipelines",
    "load_pipelines",
    "Activation",
    "ApplianceReport",
    "analyze_series",
    "household_report",
    "report_from_status",
    "segments_from_status",
    "merge_close_segments",
    "SoftLabelSet",
    "generate_soft_labels",
    "mix_strong_and_soft",
]
