"""``repro.core`` — CamAL, the paper's primary contribution.

* :mod:`repro.core.resnet` — the ResNet time-series classifier (Fig. 4);
* :mod:`repro.core.ensemble` — Algorithm 1 ensemble training/selection;
* :mod:`repro.core.cam` — class activation maps (Definition II.1);
* :mod:`repro.core.localization` — the CAM-attention localization pipeline;
* :mod:`repro.core.energy` — binary status -> power estimation (§IV-C);
* :mod:`repro.core.soft_labels` — soft-label augmentation (RQ5, §V-I).
"""

from .cam import compute_cam, ensemble_cam, normalize_cam
from .energy import estimate_power, estimate_power_adaptive
from .ensemble import (
    EnsembleConfig,
    ResNetEnsemble,
    TrainedCandidate,
    train_ensemble,
)
from .localization import CamAL, LocalizationOutput
from .persistence import load_camal, save_camal
from .report import (
    Activation,
    ApplianceReport,
    analyze_series,
    household_report,
    merge_close_segments,
    segments_from_status,
)
from .resnet import (
    DEFAULT_FILTERS,
    DEFAULT_KERNEL_SET,
    ConvBlock,
    ResNetConfig,
    ResNetTSC,
    ResUnit,
)
from .soft_labels import SoftLabelSet, generate_soft_labels, mix_strong_and_soft

__all__ = [
    "ResNetTSC",
    "ResNetConfig",
    "ResUnit",
    "ConvBlock",
    "DEFAULT_KERNEL_SET",
    "DEFAULT_FILTERS",
    "compute_cam",
    "normalize_cam",
    "ensemble_cam",
    "EnsembleConfig",
    "ResNetEnsemble",
    "TrainedCandidate",
    "train_ensemble",
    "CamAL",
    "LocalizationOutput",
    "estimate_power",
    "estimate_power_adaptive",
    "save_camal",
    "load_camal",
    "Activation",
    "ApplianceReport",
    "analyze_series",
    "household_report",
    "segments_from_status",
    "merge_close_segments",
    "SoftLabelSet",
    "generate_soft_labels",
    "mix_strong_and_soft",
]
