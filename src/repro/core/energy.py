"""From binary status to per-appliance power estimates.

The paper's §IV-C method is :func:`estimate_power`:

    p̂_a(t) = min( ŝ(t) * P_a ,  x(t) )

where ``P_a`` is the appliance's average power (Table I) and the clip
guarantees the estimate never exceeds the observed aggregate.

§V-I closes by noting that "more advanced post-processing methods are
needed to refine the estimated consumption further".
:func:`estimate_power_adaptive` implements that extension: instead of a
constant ``P_a``, each window's OFF-timestamp aggregate estimates the
household baseline, and the appliance draw inside ON segments becomes the
baseline-subtracted aggregate (still clipped by both ``x(t)`` and a
plausibility ceiling).
"""

from __future__ import annotations

import numpy as np


def estimate_power(
    status: np.ndarray, avg_power_watts: float, aggregate_watts: np.ndarray
) -> np.ndarray:
    """Rebuild the appliance power from binary status (paper §IV-C).

    Args:
        status: binary ŝ(t), any shape.
        avg_power_watts: the appliance's mean active power ``P_a``.
        aggregate_watts: unscaled aggregate x(t), same shape as ``status``.

    Returns:
        Estimated appliance power in Watts, clipped so that
        ``p̂(t) <= x(t)`` everywhere.
    """
    status = np.asarray(status, dtype=np.float32)
    aggregate = np.asarray(aggregate_watts, dtype=np.float32)
    if status.shape != aggregate.shape:
        raise ValueError(
            f"status {status.shape} and aggregate {aggregate.shape} differ"
        )
    if avg_power_watts < 0:
        raise ValueError("avg_power_watts must be non-negative")
    initial = status * avg_power_watts
    return np.minimum(initial, aggregate)


def estimate_power_adaptive(
    status: np.ndarray,
    aggregate_watts: np.ndarray,
    max_power_watts: float,
    baseline_quantile: float = 0.25,
) -> np.ndarray:
    """Baseline-subtracted power estimate (the §V-I refinement).

    For each window (row), the household baseline is estimated as the
    ``baseline_quantile`` of the aggregate over predicted-OFF timestamps;
    the appliance draw at ON timestamps is ``x(t) - baseline``, clipped to
    ``[0, min(x(t), max_power_watts)]``.

    Args:
        status: binary ŝ(t) of shape ``(N, L)`` (or 1-D, treated as one
            window).
        aggregate_watts: unscaled aggregate, same shape.
        max_power_watts: plausibility ceiling (e.g. 2-3x the appliance's
            average power); prevents co-occurring loads from being fully
            attributed to the target appliance.
        baseline_quantile: quantile of the OFF-region aggregate used as
            the baseline (robust to other appliances cycling).

    Returns:
        Estimated appliance power in Watts, zero where ``status`` is 0.
    """
    status = np.asarray(status, dtype=np.float32)
    aggregate = np.asarray(aggregate_watts, dtype=np.float32)
    if status.shape != aggregate.shape:
        raise ValueError(
            f"status {status.shape} and aggregate {aggregate.shape} differ"
        )
    if max_power_watts <= 0:
        raise ValueError("max_power_watts must be positive")
    if not 0.0 <= baseline_quantile <= 1.0:
        raise ValueError("baseline_quantile must be in [0, 1]")

    squeeze = status.ndim == 1
    if squeeze:
        status = status[None, :]
        aggregate = aggregate[None, :]

    power = np.zeros_like(aggregate)
    for i in range(len(status)):
        off = aggregate[i][status[i] == 0]
        baseline = float(np.quantile(off, baseline_quantile)) if off.size else 0.0
        draw = np.clip(aggregate[i] - baseline, 0.0, max_power_watts)
        power[i] = status[i] * np.minimum(draw, aggregate[i])
    return power[0] if squeeze else power
