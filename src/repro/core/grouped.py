"""Grouped ensemble execution: the CamAL ensemble as one traced plan.

:func:`compile_ensemble_plan` records the entire eval-mode forward of a
:class:`~repro.core.ensemble.ResNetEnsemble` — every member, every layer,
detection head and CAM — as a single :class:`repro.nn.plan.ExecutionPlan`.
Two fusions happen during the trace:

* **ensemble batching**: members are permuted so equal conv signatures
  are contiguous (only ``block1``'s member-specific ``k_p`` differs; the
  kernel-5/kernel-3 blocks and the 1x1 shortcuts are shape-identical
  across members), their folded weights are stacked per group, and each
  group executes as **one** batched GEMM —
  ``(G, C_out, C_in*K) @ (G, C_in*K, N*L)`` — instead of a Python
  loop over members.  The plan keeps every activation **channel-major**
  (``(M, C, N, L)``), so the whole micro-batch collapses into the GEMM's
  column dimension: one fat BLAS call per layer group per batch, instead
  of the untraced path's one GEMM *slice* per (member, window, layer).
  Each output column is still the same ``(C_in*K)``-long dot product the
  im2col kernel computes per sample, so per-window float32 bits are
  preserved (the trace-time validation enforces this);
* **conv -> folded-BN -> ReLU**: the batch-norm fold (recomputed from the
  *live* parameters on every replay, so a ``load_state_dict`` can never
  serve stale statistics) lands in stacked weight/shift slots, and the
  scale/shift + ReLU run in the GEMM epilogue.

All large buffers are plan-owned ``BufferPool.take_persistent`` slots,
recycled across layers by the builder's arena (the tracer knows every
lifetime), so an im2col-mode replay performs **zero** new large
allocations — only the O(C_out) fold temporaries.  Under the ``fft`` or
``reference`` backends (or an ``auto`` choice thereof) a group falls back
to per-member fused-conv steps inside the plan, keeping that backend's
numerics; the FFT kernel's internal transform temporaries still allocate.

Numerics vs the untraced member loop: the GAP (``sum * 1/L``), softmax
and probability/CAM accumulation mirror the untraced ops bit-for-bit;
the conv, head and CAM GEMMs compute the identical per-element dot
products but with the batch folded into the GEMM column dimension
(``(C_out, C_in*K) @ (C_in*K, N*L)`` instead of one ``(C_in*K, L)``
GEMM per window), so their bits can in principle reassociate within
BLAS — bounded ≤1e-5 and typically exactly zero (each output column's
K-loop is blocked identically regardless of the column count).  The
first call per signature validates the plan against the untraced loop
before caching it, so a violation falls back rather than serving.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from .. import nn
from ..nn.backend import counters
from ..nn.plan import ExecutionPlan, PlanBuilder

DTYPE = np.float32

#: normalize_cam's default epsilon, mirrored exactly (repro.core.cam).
_CAM_EPS = 1e-8


class PlanUnsupported(Exception):
    """The ensemble's structure cannot be traced; callers fall back."""


def _group_kernel_name(
    n: int, c_in: int, l_pad: int, stride: int, weight: np.ndarray
) -> str:
    """Backend kernel executing this conv signature under the active mode.

    In ``auto`` mode this consults (and, on first sight, populates) the
    same shape-keyed autotune table the untraced path uses — the
    representative operand is a compile-time temporary, never a replay
    allocation.
    """
    mode = nn.backend.get_backend()
    if mode != "auto":
        return mode
    # repro: waive[HOT001] compile-time autotune probe, never a replay allocation
    x_tmp = np.zeros((n, c_in, l_pad), dtype=DTYPE)
    return nn.backend.resolve_conv(x_tmp, weight, stride).NAME


def _make_fold_step(conv, norm, w_dst: np.ndarray, s_dst: np.ndarray) -> Callable:
    """Step folding the live BN statistics into stacked weight/shift slots.

    Reads ``conv``/``norm`` parameters at **replay** time — the fold is
    O(C_out * C_in * K), negligible next to the conv GEMM, and re-running
    it every replay is what keeps a plan correct across
    ``load_state_dict`` and parameter updates.  Mirrors
    ``ConvBlock._forward_folded`` operation-for-operation.
    """

    def fold() -> None:
        weight = conv.weight.data
        if norm is None:
            np.copyto(w_dst, weight.reshape(w_dst.shape))
            if conv.bias is not None:
                np.copyto(s_dst, conv.bias.data)
            else:
                s_dst.fill(0.0)
            return
        inv_std = 1.0 / np.sqrt(norm.running_var + norm.eps)
        scale = norm.gamma.data * inv_std
        shift = norm.beta.data - norm.running_mean * scale
        if conv.bias is not None:
            shift = shift + conv.bias.data * scale
        np.multiply(weight.reshape(w_dst.shape), scale[:, None], out=w_dst)
        np.copyto(s_dst, shift)

    return fold


def _emit_conv_column(
    builder: PlanBuilder,
    blocks: Sequence[Tuple[object, Optional[object]]],
    x_src: np.ndarray,
    shared: bool,
    length: int,
    act_out: np.ndarray,
    relu: bool,
    zbuf: Callable,
) -> None:
    """Emit one conv "column" (the same block of every member) into the plan.

    ``blocks`` lists ``(conv, norm-or-None)`` in permuted member order;
    contiguous runs with equal ``(K, padding, C_in, C_out)`` become one
    grouped GEMM each.  ``x_src`` is channel-major ``(M, C_in, N, L)`` —
    or ``(1, C_in, N, L)`` when ``shared`` (the raw input, broadcast
    across members inside the batched matmul).
    """
    n = x_src.shape[2]
    m = len(blocks)
    g0 = 0
    while g0 < m:
        conv0 = blocks[g0][0]
        key = (conv0.kernel_size, conv0.padding, conv0.in_channels, conv0.out_channels)
        g1 = g0 + 1
        while g1 < m:
            c = blocks[g1][0]
            if (c.kernel_size, c.padding, c.in_channels, c.out_channels) != key:
                break
            g1 += 1
        _emit_conv_group(
            builder, blocks[g0:g1], x_src, shared, g0, g1, length, act_out, relu, zbuf
        )
        g0 = g1


def _emit_conv_group(
    builder: PlanBuilder,
    group: Sequence[Tuple[object, Optional[object]]],
    x_src: np.ndarray,
    shared: bool,
    g0: int,
    g1: int,
    length: int,
    act_out: np.ndarray,
    relu: bool,
    zbuf: Callable,
) -> None:
    conv0 = group[0][0]
    kernel, pad = conv0.kernel_size, conv0.padding
    c_in, c_out = conv0.in_channels, conv0.out_channels
    stride = conv0.stride
    n = x_src.shape[2]
    l_pad = length + 2 * pad
    gm = g1 - g0
    mi = 1 if shared else gm

    kern_name = _group_kernel_name(n, c_in, l_pad, stride, conv0.weight.data)
    if kern_name != "im2col":
        # Keep this backend's numerics: per-member fused conv steps (the
        # plan still skips all module dispatch; only the grouping is
        # lost).  The backend kernels are batch-major, so the channel-
        # major activations go through strided swapaxes views.
        for gi, (conv, norm) in enumerate(group):
            w_m = zbuf((c_out, c_in, kernel))
            s_m = zbuf((c_out,))
            builder.emit(
                _make_fold_step(conv, norm, w_m.reshape(c_out, -1), s_m),
                label=f"fold[m{g0 + gi}]",
                writes=(w_m, s_m),
            )
            src_m = x_src[0] if shared else x_src[g0 + gi]
            out_m = act_out[g0 + gi]

            def conv_step(src=src_m, w=w_m, s=s_m, o=out_m, st=stride, p=pad, r=relu):
                res = nn.backend.conv1d_fused(
                    src.swapaxes(0, 1), w, shift=s, stride=st, padding=p, relu=r
                )
                np.copyto(o, res.swapaxes(0, 1))

            builder.emit(
                conv_step,
                label=f"conv[m{g0 + gi}:{kern_name}]",
                reads=(src_m, w_m, s_m),
                writes=(out_m,),
            )
            builder.release(w_m)
            builder.release(s_m)
        return

    # -- grouped im2col GEMM ----------------------------------------------
    src_view = x_src[:1] if shared else x_src[g0:g1]
    w_stack = zbuf((gm, c_out, c_in * kernel))
    shift_stack = zbuf((gm, c_out))
    for gi, (conv, norm) in enumerate(group):
        builder.emit(
            _make_fold_step(conv, norm, w_stack[gi], shift_stack[gi]),
            label=f"fold[m{g0 + gi}]",
            writes=(w_stack[gi], shift_stack[gi]),
        )

    l_out = (l_pad - kernel) // stride + 1
    if kernel == 1 and pad == 0:
        # The input *is* the column block: (mi, C_in*1, N*L).
        cols = src_view.reshape(mi, c_in, n * l_out)
    else:
        cols = zbuf((mi, c_in * kernel, n * l_out))
        cols5 = cols.reshape(mi, c_in, kernel, n, l_out)

        def fill_step(c5=cols5, src=src_view, k=kernel, lo=l_out, st=stride,
                      p=pad, L=length):
            # Gather straight from the *unpadded* source: tap ``j`` reads
            # padded positions ``j, j+st, ...`` = unpadded ``j-p + i*st``;
            # the (at most ``k-1``) out-of-range columns are the zero
            # margins, rewritten every replay because the slot may have
            # been recycled into (and clobbered by) another buffer since.
            for j in range(k):
                a = j - p
                i0 = -(-(-a) // st) if a < 0 else 0  # ceil(-a / st)
                i1 = min(lo, (L - 1 - a) // st + 1)
                dst = c5[:, :, j, :, :]
                if i0 > 0:
                    dst[..., :i0] = 0.0
                if i1 < lo:
                    dst[..., i1:] = 0.0
                np.copyto(
                    dst[..., i0:i1],
                    src[..., a + i0 * st : a + (i1 - 1) * st + 1 : st],
                )

        builder.emit(
            fill_step,
            label=f"im2col[m{g0}:{g1}]",
            reads=(src_view,),
            writes=(cols,),
        )

    out_view = act_out[g0:g1].reshape(gm, c_out, n * l_out)

    def gemm_step(w=w_stack, c=cols, o=out_view, s=shift_stack, r=relu):
        np.matmul(w, c, out=o)
        counters.record("fused_conv_calls")
        counters.record("fused_conv_gemms")
        o += s[:, :, None]
        if r:
            np.maximum(o, 0.0, out=o)

    builder.emit(
        gemm_step,
        label=f"gemm[m{g0}:{g1}]",
        reads=(cols, w_stack, shift_stack),
        writes=(out_view,),
    )
    builder.release(w_stack)
    builder.release(shift_stack)
    if kernel != 1 or pad > 0:
        builder.release(cols)


def _emit_unit(
    builder: PlanBuilder,
    units: Sequence[object],
    x_src: np.ndarray,
    shared: bool,
    length: int,
    zbuf: Callable,
    release_input: bool,
) -> np.ndarray:
    """Emit one residual unit (all members) and return its output buffer."""
    n = x_src.shape[2]
    m = len(units)
    c_out = units[0].block1.conv.out_channels

    act_a = zbuf((m, c_out, n, length))
    _emit_conv_column(
        builder, [(u.block1.conv, u.block1.norm) for u in units],
        x_src, shared, length, act_a, relu=True, zbuf=zbuf,
    )
    act_b = zbuf((m, c_out, n, length))
    _emit_conv_column(
        builder, [(u.block2.conv, u.block2.norm) for u in units],
        act_a, False, length, act_b, relu=True, zbuf=zbuf,
    )
    builder.release(act_a)
    act_c = zbuf((m, c_out, n, length))
    _emit_conv_column(
        builder, [(u.block3.conv, u.block3.norm) for u in units],
        act_b, False, length, act_c, relu=True, zbuf=zbuf,
    )
    builder.release(act_b)

    if units[0].shortcut is not None:
        shortcut = zbuf((m, c_out, n, length))
        _emit_conv_column(
            builder, [(u.shortcut, None) for u in units],
            x_src, shared, length, shortcut, relu=False, zbuf=zbuf,
        )
        residual: np.ndarray = shortcut
    else:
        shortcut = None
        residual = x_src[:1] if shared else x_src  # identity, broadcast if shared

    act_out = zbuf((m, c_out, n, length))

    def add_relu_step(a=act_c, r=residual, o=act_out):
        np.add(a, r, out=o)
        np.maximum(o, 0.0, out=o)

    builder.emit(
        add_relu_step,
        label="add_relu",
        reads=(act_c, residual),
        writes=(act_out,),
    )
    builder.release(act_c)
    if shortcut is not None:
        builder.release(shortcut)
    if release_input:
        builder.release(x_src)
    return act_out


def _check_supported(models: Sequence[object], length: int) -> None:
    """Raise :class:`PlanUnsupported` unless the tracer handles this ensemble."""
    if not models:
        raise PlanUnsupported("empty ensemble")
    for model in models:
        if getattr(model, "training", True):
            raise PlanUnsupported("plan tracing requires eval-mode members")
    try:
        units_by_pos = [
            [getattr(model, f"unit{i}") for model in models] for i in (1, 2, 3)
        ]
        heads = [model.head for model in models]
    except AttributeError as exc:
        raise PlanUnsupported(f"not a ResNetTSC ensemble: {exc}") from exc
    head_shape = heads[0].weight.shape
    if any(h.weight.shape != head_shape for h in heads):
        raise PlanUnsupported("heads disagree on shape")
    for units in units_by_pos:
        if len({u.shortcut is not None for u in units}) != 1:
            raise PlanUnsupported("shortcut presence differs across members")
        for unit in units:
            convs = [unit.block1.conv, unit.block2.conv, unit.block3.conv]
            if unit.shortcut is not None:
                # repro: waive[HOT002] trace-time structure validation, not replay code
                convs.append(unit.shortcut)
            for conv in convs:
                if conv.stride != 1:
                    raise PlanUnsupported("strided conv not traceable")
                # Residual adds need L_out == L ("same" padding).
                if length + 2 * conv.padding - conv.kernel_size + 1 != length:
                    raise PlanUnsupported("non-length-preserving conv")
        ref = units[0]
        for unit in units:
            for name in ("block1", "block2", "block3"):
                a, b = getattr(unit, name).conv, getattr(ref, name).conv
                if (a.in_channels, a.out_channels) != (b.in_channels, b.out_channels):
                    raise PlanUnsupported("channel counts differ across members")


def compile_ensemble_plan(
    models: Sequence[object],
    pool,
    n: int,
    length: int,
    class_index: int = 1,
    with_cam: bool = True,
) -> ExecutionPlan:
    """Trace the full grouped ensemble forward into an :class:`ExecutionPlan`.

    Inputs: ``plan.inputs["x"]`` — an ``(n, length)`` window batch slot.
    Outputs: ``plan.outputs["proba"]`` (``(n,)`` ensemble detection
    probability) and, when ``with_cam``, ``plan.outputs["cam"]`` (``(n,
    length)`` averaged normalized CAM).  Probability and CAM accumulate in
    the *original* member order (the permutation is internal), matching
    the untraced loop's accumulation bit-for-bit.
    """
    _check_supported(models, length)
    m = len(models)
    # Stable sort by k_p makes equal-kernel members contiguous, so block1
    # splits into as few groups as the kernel set allows; every other
    # column is shape-identical and groups to a single GEMM.
    order = sorted(range(m), key=lambda i: models[i].kernel_size)
    perm_models = [models[i] for i in order]
    pos_of = {orig: pos for pos, orig in enumerate(order)}

    builder = PlanBuilder(pool)

    def zbuf(shape, dtype=DTYPE) -> np.ndarray:
        # Zeroing at compile time keeps auto-mode kernel timing (which may
        # touch not-yet-written slots) off NaN/Inf garbage; replays always
        # fully rewrite a slot before reading it.
        buf = builder.buffer(shape, dtype)
        buf.fill(0)
        return buf

    x_in = zbuf((n, length))
    # Channel-major throughout: C_in = 1 makes the raw (N, L) batch already
    # the (1, C, N, L) layout — no input transpose.
    act = x_in.reshape(1, 1, n, length)
    shared = True
    for unit_index in (1, 2, 3):
        units = [getattr(model, f"unit{unit_index}") for model in perm_models]
        act = _emit_unit(
            builder, units, act, shared, length, zbuf, release_input=not shared
        )
        shared = False
    feats = act  # (M, C3, N, L) — the last conv feature maps of every member

    c3 = feats.shape[1]
    n_classes = perm_models[0].head.weight.shape[0]
    inv_members = 1.0 / m

    # GAP mirrors Tensor.mean: sum over time, then * (1/L).
    pooled = zbuf((m, c3, n))

    def gap_step(f=feats, p=pooled, inv=1.0 / length):
        np.sum(f, axis=3, out=p)
        np.multiply(p, inv, out=p)

    builder.emit(gap_step, label="gap", reads=(feats,), writes=(pooled,))

    # Head weights re-read from the live modules each replay (tiny copies).
    w_head = zbuf((m, n_classes, c3))
    b_head = zbuf((m, n_classes))

    def head_load_step(ms=perm_models, w=w_head, b=b_head):
        for mi, model in enumerate(ms):
            np.copyto(w[mi], model.head.weight.data)
            if model.head.bias is not None:
                np.copyto(b[mi], model.head.bias.data)
            else:
                b[mi].fill(0.0)

    builder.emit(head_load_step, label="head_load", writes=(w_head, b_head))
    logits = zbuf((m, n_classes, n))

    def head_step(p=pooled, w=w_head, b=b_head, o=logits):
        np.matmul(w, p, out=o)
        o += b[:, :, None]

    builder.emit(
        head_step,
        label="head",
        reads=(pooled, w_head, b_head),
        writes=(logits,),
    )
    builder.release(pooled)
    builder.release(w_head)
    builder.release(b_head)

    lmax = zbuf((m, 1, n))
    soft = zbuf((m, n_classes, n))
    ssum = zbuf((m, 1, n))

    def softmax_step(lg=logits, mx=lmax, sf=soft, sm=ssum):
        np.max(lg, axis=1, keepdims=True, out=mx)
        np.subtract(lg, mx, out=sf)
        np.exp(sf, out=sf)
        np.sum(sf, axis=1, keepdims=True, out=sm)
        sf /= sm

    builder.emit(
        softmax_step,
        label="softmax",
        reads=(logits,),
        writes=(lmax, soft, ssum),
    )
    builder.release(logits)
    builder.release(lmax)
    builder.release(ssum)

    out_proba = builder.buffer((n,))
    builder.emit(
        lambda o=out_proba: o.fill(0.0), label="zero:proba", writes=(out_proba,)
    )
    tmp_n = zbuf((n,))
    for orig in range(m):  # accumulate in original member order (bit parity)
        def acc_proba(sf=soft, p=pos_of[orig], t=tmp_n, o=out_proba, inv=inv_members):
            np.multiply(sf[p, 1, :], inv, out=t)
            np.add(o, t, out=o)

        builder.emit(
            acc_proba,
            label=f"acc_proba[m{orig}]",
            reads=(soft, out_proba),
            writes=(tmp_n, out_proba),
        )
    builder.release(soft)
    builder.release(tmp_n)
    outputs = {"proba": out_proba}

    if with_cam:
        cam_w = zbuf((m, 1, c3))

        def cam_w_step(ms=perm_models, w=cam_w, ci=class_index):
            for mi, model in enumerate(ms):
                np.copyto(w[mi, 0], model.head.weight.data[ci])

        builder.emit(cam_w_step, label="cam_w", writes=(cam_w,))
        cam_raw = zbuf((m, 1, n * length))
        feats_flat = feats.reshape(m, c3, n * length)

        def cam_step(w=cam_w, f=feats_flat, o=cam_raw):
            np.matmul(w, f, out=o)  # one (1,C3)@(C3,N*L) GEMM per member

        builder.emit(
            cam_step,
            label="cam_gemm",
            reads=(cam_w, feats_flat),
            writes=(cam_raw,),
        )
        builder.release(cam_w)

        cam = cam_raw.reshape(m, n, length)
        maxima = zbuf((m, n, 1))
        notpos = zbuf((m, n, 1), dtype=bool)

        def norm_step(c=cam, mx=maxima, np_=notpos, eps=_CAM_EPS):
            # normalize_cam, slot-for-slot: divide by the per-window max,
            # zero windows whose max is not positive.
            np.max(c, axis=2, keepdims=True, out=mx)
            np.greater(mx, eps, out=np_)
            np.logical_not(np_, out=np_)
            np.copyto(mx, 1.0, where=np_)
            c /= mx
            np.copyto(c, 0.0, where=np_)

        builder.emit(
            norm_step,
            label="cam_norm",
            reads=(cam_raw,),
            writes=(cam_raw, maxima, notpos),
        )
        builder.release(maxima)
        builder.release(notpos)

        out_cam = builder.buffer((n, length))
        builder.emit(
            lambda o=out_cam: o.fill(0.0), label="zero:cam", writes=(out_cam,)
        )
        tmp_l = zbuf((n, length))
        for orig in range(m):
            def acc_cam(c=cam, p=pos_of[orig], t=tmp_l, o=out_cam, inv=inv_members):
                np.multiply(c[p], inv, out=t)
                np.add(o, t, out=o)

            builder.emit(
                acc_cam,
                label=f"acc_cam[m{orig}]",
                reads=(cam_raw, out_cam),
                writes=(tmp_l, out_cam),
            )
        builder.release(tmp_l)
        builder.release(cam_raw)
        outputs["cam"] = out_cam
    builder.release(feats)

    signature = (n, length, class_index, with_cam, nn.backend.get_backend(), m)
    return builder.build(signature, {"x": x_in}, outputs)
