"""DeviceScope-style household reports from CamAL predictions.

The paper's companion demo (Petralia et al., "DeviceScope", ICDE 2025)
turns CamAL outputs into consumer-facing summaries: *when* and *how often*
an appliance ran, and *how much energy* it used.  This module reproduces
that reporting layer on top of :class:`repro.core.CamAL`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..simdata.appliances import get_spec
from .energy import estimate_power
from .localization import CamAL


@dataclass(frozen=True)
class Activation:
    """One contiguous detected run of an appliance."""

    start_index: int  # sample index within the full series
    stop_index: int  # exclusive
    energy_wh: float

    @property
    def duration_samples(self) -> int:
        return self.stop_index - self.start_index


@dataclass
class ApplianceReport:
    """Usage summary for one appliance over one household series."""

    appliance: str
    dt_seconds: float
    n_samples: int
    activations: List[Activation] = field(default_factory=list)
    hourly_histogram: np.ndarray = field(default_factory=lambda: np.zeros(24))

    @property
    def n_activations(self) -> int:
        return len(self.activations)

    @property
    def total_on_hours(self) -> float:
        samples = sum(a.duration_samples for a in self.activations)
        return samples * self.dt_seconds / 3600.0

    @property
    def total_energy_kwh(self) -> float:
        return sum(a.energy_wh for a in self.activations) / 1000.0

    @property
    def activations_per_day(self) -> float:
        days = self.n_samples * self.dt_seconds / 86400.0
        return self.n_activations / days if days > 0 else 0.0

    @property
    def peak_hour(self) -> Optional[int]:
        if self.hourly_histogram.sum() == 0:
            return None
        return int(self.hourly_histogram.argmax())

    def render(self) -> str:
        lines = [f"Appliance report — {self.appliance}"]
        lines.append(f"  activations        : {self.n_activations} "
                     f"({self.activations_per_day:.2f}/day)")
        lines.append(f"  total ON time      : {self.total_on_hours:.2f} h")
        lines.append(f"  estimated energy   : {self.total_energy_kwh:.2f} kWh")
        peak = self.peak_hour
        lines.append(f"  peak usage hour    : "
                     f"{'-' if peak is None else f'{peak:02d}:00'}")
        return "\n".join(lines)


def segments_from_status(status: np.ndarray, min_length: int = 1) -> List[Tuple[int, int]]:
    """Contiguous ON runs [(start, stop), ...] from a binary 1-D status."""
    status = np.asarray(status).ravel().astype(bool)
    if status.size == 0:
        return []
    padded = np.concatenate([[False], status, [False]])
    diff = np.diff(padded.astype(np.int8))
    starts = np.flatnonzero(diff == 1)
    stops = np.flatnonzero(diff == -1)
    return [(int(a), int(b)) for a, b in zip(starts, stops) if b - a >= min_length]


def merge_close_segments(
    segments: Sequence[Tuple[int, int]], max_gap: int
) -> List[Tuple[int, int]]:
    """Merge ON runs separated by gaps of at most ``max_gap`` samples.

    Smooths over single-sample dropouts in the predicted status (an
    appliance cycle briefly dipping below its duty threshold).
    """
    if not segments:
        return []
    merged = [list(segments[0])]
    for start, stop in segments[1:]:
        if start - merged[-1][1] <= max_gap:
            merged[-1][1] = stop
        else:
            merged.append([start, stop])
    return [(a, b) for a, b in merged]


def report_from_status(
    appliance: str,
    status: np.ndarray,
    aggregate_watts: np.ndarray,
    dt_seconds: float,
    min_activation_samples: int = 1,
    merge_gap_samples: int = 0,
    start_hour: float = 0.0,
) -> ApplianceReport:
    """Summarize a per-timestamp binary status into an :class:`ApplianceReport`.

    The status and the aggregate must be aligned 1-D series of the same
    length; this is the pure reporting half of :func:`analyze_series`,
    reused by the serving engine's callers.
    """
    status = np.asarray(status, dtype=np.float32).ravel()
    aggregate_watts = np.asarray(aggregate_watts, dtype=np.float32).ravel()
    if status.shape != aggregate_watts.shape:
        raise ValueError(
            f"status {status.shape} and aggregate {aggregate_watts.shape} differ"
        )
    spec = get_spec(appliance)
    n = len(status)
    power = estimate_power(status, spec.avg_power_watts, aggregate_watts)

    segments = segments_from_status(status)
    if merge_gap_samples > 0:
        segments = merge_close_segments(segments, merge_gap_samples)
    segments = [(a, b) for a, b in segments if b - a >= min_activation_samples]

    report = ApplianceReport(
        appliance=appliance, dt_seconds=dt_seconds, n_samples=n
    )
    hours = (start_hour + np.arange(n) * dt_seconds / 3600.0) % 24.0
    for start, stop in segments:
        energy_wh = float(power[start:stop].sum() * dt_seconds / 3600.0)
        report.activations.append(Activation(start, stop, energy_wh))
        hist, _ = np.histogram(hours[start:stop], bins=24, range=(0.0, 24.0))
        report.hourly_histogram = report.hourly_histogram + hist
    return report


def analyze_series(
    camal: CamAL,
    aggregate_watts: np.ndarray,
    appliance: str,
    dt_seconds: float,
    window: int,
    min_activation_samples: int = 1,
    merge_gap_samples: int = 0,
    start_hour: float = 0.0,
    stride: Optional[int] = None,
) -> ApplianceReport:
    """Run CamAL over a full household series and summarize usage.

    The series is windowed by a :class:`repro.serving.InferenceEngine`:
    the trailing partial window is edge-padded and scored (not dropped),
    so the report covers every input timestamp, and ``stride < window``
    enables overlap-stitched status without boundary artifacts.

    Args:
        camal: trained pipeline for ``appliance``.
        aggregate_watts: the raw 1-D aggregate series (NaN-free).
        dt_seconds: sampling period of the series.
        window: slicing window length.
        min_activation_samples: discard shorter detected runs.
        merge_gap_samples: merge runs separated by at most this many samples.
        start_hour: hour-of-day of the first sample (for the histogram).
        stride: hop between windows (default ``window``, non-overlapping).
    """
    reports = household_report(
        {appliance: camal},
        aggregate_watts,
        dt_seconds,
        window,
        min_activation_samples=min_activation_samples,
        merge_gap_samples=merge_gap_samples,
        start_hour=start_hour,
        stride=stride,
    )
    return reports[appliance]


def household_report(
    pipelines: Dict[str, CamAL],
    aggregate_watts: np.ndarray,
    dt_seconds: float,
    window: int,
    min_activation_samples: int = 1,
    merge_gap_samples: int = 0,
    start_hour: float = 0.0,
    stride: Optional[int] = None,
) -> Dict[str, ApplianceReport]:
    """Analyze one household with several per-appliance pipelines.

    The aggregate is scaled and windowed **once** and every pipeline runs
    over the shared window batch (see :mod:`repro.serving.engine`), instead
    of re-windowing the series per appliance.
    """
    # Local import: repro.serving sits on top of repro.core.
    from ..serving.engine import EngineConfig, InferenceEngine

    engine = InferenceEngine(EngineConfig(window=window, stride=stride))
    for appliance, camal in pipelines.items():
        engine.register(appliance, camal)
    inference = engine.run(aggregate_watts)
    return {
        appliance: report_from_status(
            appliance,
            inference.status(appliance),
            aggregate_watts,
            dt_seconds,
            min_activation_samples=min_activation_samples,
            merge_gap_samples=merge_gap_samples,
            start_hour=start_hour,
        )
        for appliance in pipelines
    }
