"""Shared training loops for classifiers and sequence-to-sequence models.

Three supervision regimes cover every method in the paper:

* :func:`train_classifier` — window-level binary classification (CamAL's
  ResNets, Problem 1), softmax cross-entropy.
* :func:`train_seq2seq` — per-timestamp status prediction (strongly
  supervised NILM baselines, Problem 2), BCE on frame logits.
* :func:`train_weak_mil` — multiple-instance learning (CRNN-weak), BCE on
  the pooled sequence logit only.

All loops use Adam, optional gradient clipping, and early stopping on a
validation loss.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from . import nn
from .nn import functional as F
from .nn.tensor import Tensor


@dataclass
class TrainConfig:
    """Hyper-parameters shared by all training loops."""

    epochs: int = 20
    batch_size: int = 64
    lr: float = 1e-3
    weight_decay: float = 0.0
    patience: int = 5  # early-stopping patience in epochs (0 disables)
    clip_grad: float = 5.0  # global-norm clip (0 disables)
    seed: int = 0
    verbose: bool = False


@dataclass
class TrainResult:
    """Outcome of one training run."""

    train_losses: List[float] = field(default_factory=list)
    val_losses: List[float] = field(default_factory=list)
    best_val_loss: float = float("inf")
    best_epoch: int = -1
    wall_time_seconds: float = 0.0
    epoch_times: List[float] = field(default_factory=list)

    @property
    def epochs_run(self) -> int:
        return len(self.train_losses)


def _iterate_batches(
    n: int, batch_size: int, rng: np.random.Generator, shuffle: bool = True
):
    order = rng.permutation(n) if shuffle else np.arange(n)
    for start in range(0, n, batch_size):
        yield order[start : start + batch_size]


def _restore_best(model: nn.Module, best_state: Optional[Dict[str, np.ndarray]]) -> None:
    if best_state is not None:
        model.load_state_dict(best_state)


def _run_epochs(
    model: nn.Module,
    loss_on_batch: Callable[[np.ndarray], Tensor],
    val_loss: Callable[[], float],
    n_train: int,
    config: TrainConfig,
) -> TrainResult:
    """Generic epoch loop with early stopping; returns the loss history."""
    rng = np.random.default_rng(config.seed)
    optimizer = nn.Adam(model.parameters(), lr=config.lr, weight_decay=config.weight_decay)
    result = TrainResult()
    best_state: Optional[Dict[str, np.ndarray]] = None
    bad_epochs = 0
    start_time = time.perf_counter()

    for epoch in range(config.epochs):
        epoch_start = time.perf_counter()
        model.train()
        total, batches = 0.0, 0
        for idx in _iterate_batches(n_train, config.batch_size, rng):
            loss = loss_on_batch(idx)
            optimizer.zero_grad()
            loss.backward()
            if config.clip_grad > 0:
                optimizer.clip_grad_norm(config.clip_grad)
            optimizer.step()
            total += loss.item()
            batches += 1
        result.train_losses.append(total / max(batches, 1))

        model.eval()
        current_val = val_loss()
        result.val_losses.append(current_val)
        result.epoch_times.append(time.perf_counter() - epoch_start)
        if config.verbose:
            print(
                f"  epoch {epoch + 1}/{config.epochs} "
                f"train={result.train_losses[-1]:.4f} val={current_val:.4f}"
            )

        if current_val < result.best_val_loss - 1e-6:
            result.best_val_loss = current_val
            result.best_epoch = epoch
            best_state = model.state_dict()
            bad_epochs = 0
        else:
            bad_epochs += 1
            if config.patience > 0 and bad_epochs >= config.patience:
                break

    _restore_best(model, best_state)
    result.wall_time_seconds = time.perf_counter() - start_time
    return result


# ----------------------------------------------------------------------
# Window-level classification (Problem 1)
# ----------------------------------------------------------------------
def train_classifier(
    model: nn.Module,
    x_train: np.ndarray,
    y_train: np.ndarray,
    x_val: np.ndarray,
    y_val: np.ndarray,
    config: TrainConfig,
) -> TrainResult:
    """Train a binary window classifier with softmax cross-entropy.

    ``model`` maps ``(N, 1, L)`` inputs to ``(N, 2)`` logits; inputs are the
    scaled aggregate windows ``(N, L)`` and labels the weak window labels.
    """
    x_train = np.asarray(x_train, dtype=np.float32)
    y_train = np.asarray(y_train, dtype=np.int64)
    x_val = np.asarray(x_val, dtype=np.float32)
    y_val = np.asarray(y_val, dtype=np.int64)

    def loss_on_batch(idx: np.ndarray) -> Tensor:
        batch = Tensor(x_train[idx][:, None, :])
        return F.cross_entropy(model(batch), y_train[idx])

    def val_loss() -> float:
        return evaluate_classifier_loss(model, x_val, y_val, config.batch_size)

    return _run_epochs(model, loss_on_batch, val_loss, len(x_train), config)


def evaluate_classifier_loss(
    model: nn.Module, x: np.ndarray, y: np.ndarray, batch_size: int = 256
) -> float:
    """Mean cross-entropy of a classifier over a dataset (no grad)."""
    x = np.asarray(x, dtype=np.float32)
    y = np.asarray(y, dtype=np.int64)
    if len(x) == 0:
        return float("inf")
    total, count = 0.0, 0
    with nn.no_grad():
        for start in range(0, len(x), batch_size):
            xb = x[start : start + batch_size]
            yb = y[start : start + batch_size]
            loss = F.cross_entropy(model(Tensor(xb[:, None, :])), yb)
            total += loss.item() * len(xb)
            count += len(xb)
    return total / count


def predict_proba(model: nn.Module, x: np.ndarray, batch_size: int = 256) -> np.ndarray:
    """Positive-class probabilities of a binary classifier, shape ``(N,)``."""
    x = np.asarray(x, dtype=np.float32)
    outputs = []
    with nn.no_grad():
        for start in range(0, len(x), batch_size):
            xb = x[start : start + batch_size]
            logits = model(Tensor(xb[:, None, :]))
            probs = F.softmax(logits, axis=1).data[:, 1]
            outputs.append(probs)
    return np.concatenate(outputs) if outputs else np.zeros(0, dtype=np.float32)


# ----------------------------------------------------------------------
# Per-timestamp sequence-to-sequence training (Problem 2, strong labels)
# ----------------------------------------------------------------------
def train_seq2seq(
    model: nn.Module,
    x_train: np.ndarray,
    s_train: np.ndarray,
    x_val: np.ndarray,
    s_val: np.ndarray,
    config: TrainConfig,
) -> TrainResult:
    """Train a per-timestamp status model with frame-level BCE.

    ``model`` maps ``(N, 1, L)`` to frame logits ``(N, L)``; ``s_*`` are
    per-timestamp binary status labels (the paper's strong labels).
    """
    x_train = np.asarray(x_train, dtype=np.float32)
    s_train = np.asarray(s_train, dtype=np.float32)
    x_val = np.asarray(x_val, dtype=np.float32)
    s_val = np.asarray(s_val, dtype=np.float32)

    def loss_on_batch(idx: np.ndarray) -> Tensor:
        logits = model(Tensor(x_train[idx][:, None, :]))
        return F.binary_cross_entropy_with_logits(logits, s_train[idx])

    def val_loss() -> float:
        return evaluate_seq2seq_loss(model, x_val, s_val, config.batch_size)

    return _run_epochs(model, loss_on_batch, val_loss, len(x_train), config)


def evaluate_seq2seq_loss(
    model: nn.Module, x: np.ndarray, s: np.ndarray, batch_size: int = 256
) -> float:
    x = np.asarray(x, dtype=np.float32)
    s = np.asarray(s, dtype=np.float32)
    if len(x) == 0:
        return float("inf")
    total, count = 0.0, 0
    with nn.no_grad():
        for start in range(0, len(x), batch_size):
            xb = x[start : start + batch_size]
            sb = s[start : start + batch_size]
            loss = F.binary_cross_entropy_with_logits(model(Tensor(xb[:, None, :])), sb)
            total += loss.item() * len(xb)
            count += len(xb)
    return total / count


def predict_status_seq2seq(
    model: nn.Module, x: np.ndarray, batch_size: int = 256, threshold: float = 0.5
) -> np.ndarray:
    """Binary per-timestamp predictions of a seq2seq model, ``(N, L)``."""
    x = np.asarray(x, dtype=np.float32)
    outputs = []
    with nn.no_grad():
        for start in range(0, len(x), batch_size):
            xb = x[start : start + batch_size]
            logits = model(Tensor(xb[:, None, :])).data
            outputs.append((1.0 / (1.0 + np.exp(-logits)) >= threshold).astype(np.float32))
    return np.concatenate(outputs) if outputs else np.zeros((0, x.shape[1]), dtype=np.float32)


# ----------------------------------------------------------------------
# Weak multiple-instance training (CRNN-weak)
# ----------------------------------------------------------------------
def train_weak_mil(
    model: nn.Module,
    x_train: np.ndarray,
    y_train: np.ndarray,
    x_val: np.ndarray,
    y_val: np.ndarray,
    config: TrainConfig,
) -> TrainResult:
    """Train a MIL model on weak (per-window) labels only.

    ``model.forward_weak`` maps ``(N, 1, L)`` to a pooled sequence logit
    ``(N,)``; frame-level predictions remain available through the model's
    ``forward`` for localization at test time.
    """
    x_train = np.asarray(x_train, dtype=np.float32)
    y_train = np.asarray(y_train, dtype=np.float32)
    x_val = np.asarray(x_val, dtype=np.float32)
    y_val = np.asarray(y_val, dtype=np.float32)

    def loss_on_batch(idx: np.ndarray) -> Tensor:
        seq_logits = model.forward_weak(Tensor(x_train[idx][:, None, :]))
        return F.binary_cross_entropy_with_logits(seq_logits, y_train[idx])

    def val_loss() -> float:
        if len(x_val) == 0:
            return float("inf")
        total, count = 0.0, 0
        with nn.no_grad():
            for start in range(0, len(x_val), config.batch_size):
                xb = x_val[start : start + config.batch_size]
                yb = y_val[start : start + config.batch_size]
                loss = F.binary_cross_entropy_with_logits(
                    model.forward_weak(Tensor(xb[:, None, :])), yb
                )
                total += loss.item() * len(xb)
                count += len(xb)
        return total / count

    return _run_epochs(model, loss_on_batch, val_loss, len(x_train), config)
