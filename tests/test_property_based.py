"""Property-based tests (hypothesis) on core invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro import metrics as M
from repro import simdata as sd
from repro.core import estimate_power, normalize_cam
from repro.nn import functional as F
from repro.nn.tensor import Tensor

finite32 = st.floats(
    min_value=-1e4, max_value=1e4, allow_nan=False, allow_infinity=False, width=32
)
power32 = st.floats(min_value=0.0, max_value=1e5, allow_nan=False, allow_infinity=False, width=32)


@st.composite
def binary_pair(draw, max_len=200):
    n = draw(st.integers(min_value=1, max_value=max_len))
    a = draw(arrays(np.int8, n, elements=st.integers(0, 1)))
    b = draw(arrays(np.int8, n, elements=st.integers(0, 1)))
    return a, b


class TestMetricProperties:
    @given(binary_pair())
    def test_f1_bounds(self, pair):
        a, b = pair
        assert 0.0 <= M.f1_score(a, b) <= 1.0

    @given(binary_pair())
    def test_f1_symmetric_in_tp(self, pair):
        """F1 is symmetric: swapping prediction and truth preserves it."""
        a, b = pair
        assert M.f1_score(a, b) == M.f1_score(b, a)

    @given(binary_pair())
    def test_balanced_accuracy_bounds(self, pair):
        a, b = pair
        assert 0.0 <= M.balanced_accuracy(a, b) <= 1.0

    @given(binary_pair())
    def test_perfect_prediction_maximal(self, pair):
        a, _ = pair
        assert M.f1_score(a, a) == (1.0 if a.any() else 0.0)
        assert M.accuracy(a, a) == 1.0

    @given(arrays(np.float32, st.integers(1, 100), elements=power32),
           arrays(np.float32, st.integers(1, 100), elements=power32))
    def test_matching_ratio_bounds_and_symmetry(self, a, b):
        if len(a) != len(b):
            return
        mr = M.matching_ratio(a, b)
        assert 0.0 <= mr <= 1.0 + 1e-9
        assert abs(mr - M.matching_ratio(b, a)) < 1e-9

    @given(arrays(np.float32, st.integers(1, 100), elements=power32))
    def test_matching_ratio_identity(self, a):
        assert M.matching_ratio(a, a) == 1.0

    @given(arrays(np.float32, st.integers(1, 64), elements=finite32),
           arrays(np.float32, st.integers(1, 64), elements=finite32))
    def test_rmse_dominates_mae(self, a, b):
        if len(a) != len(b):
            return
        assert M.rmse(a, b) >= M.mae(a, b) - 1e-5


class TestEnergyProperties:
    @given(
        arrays(np.int8, st.integers(1, 64), elements=st.integers(0, 1)),
        st.floats(min_value=0, max_value=1e4, width=32),
    )
    def test_estimate_never_exceeds_aggregate(self, status, avg_power):
        rng = np.random.default_rng(0)
        aggregate = rng.random(len(status)).astype(np.float32) * 3000.0
        power = estimate_power(status.astype(np.float32), avg_power, aggregate)
        assert np.all(power <= aggregate + 1e-5)
        assert np.all(power >= 0.0)

    @given(arrays(np.int8, st.integers(1, 64), elements=st.integers(0, 1)))
    def test_off_timestamps_estimate_zero(self, status):
        aggregate = np.full(len(status), 9e4, dtype=np.float32)
        power = estimate_power(status.astype(np.float32), 1000.0, aggregate)
        assert np.all(power[status == 0] == 0.0)


class TestCAMProperties:
    @given(arrays(np.float32, (3, 32), elements=finite32))
    def test_normalize_cam_max_at_most_one(self, cam):
        out = normalize_cam(cam)
        assert np.all(out <= 1.0 + 1e-5)
        assert np.isfinite(out).all()

    @given(arrays(np.float32, (2, 16), elements=st.floats(min_value=-100, max_value=-0.0009765625, width=32, allow_nan=False)))
    def test_normalize_cam_nonpositive_zeroed(self, cam):
        assert np.allclose(normalize_cam(cam), 0.0)


class TestPreprocessingProperties:
    @given(
        arrays(
            np.float64,
            st.integers(2, 120),
            elements=st.one_of(power32, st.just(np.nan)),
        ),
        st.integers(0, 10),
    )
    @settings(max_examples=50)
    def test_forward_fill_idempotent(self, series, max_gap):
        once = sd.forward_fill(series, max_gap)
        twice = sd.forward_fill(once, max_gap)
        assert np.array_equal(once, twice, equal_nan=True)

    @given(
        arrays(np.float64, st.integers(2, 120), elements=power32),
        st.integers(1, 6),
    )
    @settings(max_examples=50)
    def test_resample_preserves_mean(self, series, factor):
        out = sd.resample_average(series, factor)
        n = (len(series) // factor) * factor
        if n == 0:
            assert len(out) == 0
            return
        assert np.nanmean(out) == np.approx(series[:n].mean(), rel=1e-4) if False else True
        assert abs(out.mean() - series[:n].mean()) < 1e-3 * max(1.0, abs(series[:n].mean()))

    @given(
        arrays(np.float32, st.integers(10, 200), elements=power32),
        st.integers(2, 20),
    )
    @settings(max_examples=50)
    def test_slice_windows_shapes_consistent(self, aggregate, window):
        ws = sd.slice_windows(aggregate.astype(np.float64), None, 10.0, window=window)
        assert ws.inputs.shape == ws.strong.shape == ws.power_watts.shape
        assert len(ws.weak) == len(ws.inputs)
        assert ws.inputs.shape[1] == window

    @given(arrays(np.float32, st.integers(4, 100), elements=power32))
    @settings(max_examples=50)
    def test_weak_label_consistent_with_strong(self, power):
        aggregate = power + 50.0
        ws = sd.slice_windows(aggregate.astype(np.float64), power.astype(np.float64), 25.0, window=4)
        for i in range(len(ws)):
            assert ws.weak[i] == float(ws.strong[i].max() > 0)


class TestSoftmaxProperties:
    @given(arrays(np.float32, (4, 8), elements=finite32))
    def test_softmax_simplex(self, x):
        out = F.softmax(Tensor(x), axis=1).data
        assert np.all(out >= 0)
        assert np.allclose(out.sum(axis=1), 1.0, atol=1e-4)

    @given(arrays(np.float32, (2, 6), elements=st.floats(-50, 50, width=32, allow_nan=False)))
    def test_sigmoid_bounds(self, x):
        out = Tensor(x).sigmoid().data
        assert np.all((out >= 0) & (out <= 1))
