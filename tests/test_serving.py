"""Tests for the serving subsystem: windowing, stitching, engine, fusion."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import save_estimator
from repro.core import (
    CamAL,
    ResNetConfig,
    ResNetEnsemble,
    ResNetTSC,
    load_pipelines,
    localize_double_forward,
    save_pipelines,
)
from repro.core.resnet import ResNetTSC as _ResNetTSC
from repro.serving import (
    EngineConfig,
    InferenceEngine,
    plan_windows,
    slice_windows,
    stitch_mean,
    stitch_windows,
)

TINY = ResNetConfig(kernel_size=3, filters=(4, 8, 8), seed=0)


def _camal(n_models=2, **kwargs):
    models = [
        ResNetTSC(ResNetConfig(kernel_size=k, filters=(4, 8, 8), seed=i))
        for i, k in enumerate((3, 5, 7)[:n_models])
    ]
    for model in models:
        model.eval()
    return CamAL(ResNetEnsemble(models), **kwargs)


def _windows(n=6, length=32, seed=0, scale=2.0):
    return (np.random.default_rng(seed).random((n, length)) * scale).astype(
        np.float32
    )


class _PointwisePipeline:
    """CamAL stand-in whose scores depend only on each sample's value.

    Real ResNet CAMs vary near window edges (conv zero-padding), so exact
    stride invariance is a property of the *stitching* layer, checked here
    with a pointwise scorer rather than a trained conv stack.
    """

    detection_threshold = 0.5
    power_gate_watts = None
    use_attention = True

    class _Ensemble:
        def eval(self):
            return self

    def __init__(self):
        self.ensemble = self._Ensemble()

    def localize(self, x, batch_size=256):
        from repro.core import LocalizationOutput

        x = np.asarray(x, dtype=np.float32)
        proba = np.clip(x.mean(axis=1), 0.0, 1.0)
        detected = proba > self.detection_threshold
        soft = 1.0 / (1.0 + np.exp(-(x - 0.5)))
        soft = np.where(detected[:, None], soft, 0.0).astype(np.float32)
        status = (soft >= 0.5).astype(np.float32)
        return LocalizationOutput(
            detection_proba=proba.astype(np.float32),
            detected=detected,
            cam=soft.copy(),
            soft_status=soft,
            status=status,
        )


class TestSlidingWindowPlan:
    def test_non_overlapping_exact_fit(self):
        plan = plan_windows(128, 32)
        assert plan.n_windows == 4
        assert plan.pad_right == 0
        assert plan.stride == 32

    def test_tail_is_padded_not_dropped(self):
        plan = plan_windows(100, 32)
        assert plan.n_windows == 4  # ceil((100-32)/32)+1
        assert plan.padded_length == 128
        assert plan.pad_right == 28

    def test_series_shorter_than_window(self):
        plan = plan_windows(10, 32)
        assert plan.n_windows == 1
        assert plan.pad_right == 22

    def test_full_coverage_any_stride(self):
        for stride in (1, 3, 16, 32):
            plan = plan_windows(101, 32, stride)
            assert plan.coverage_counts().min() >= 1

    def test_invalid_args_raise(self):
        with pytest.raises(ValueError):
            plan_windows(0, 32)
        with pytest.raises(ValueError):
            plan_windows(100, 0)
        with pytest.raises(ValueError):
            plan_windows(100, 32, 0)
        with pytest.raises(ValueError):
            plan_windows(100, 32, 33)  # gaps

    def test_slice_windows_values(self):
        series = np.arange(9, dtype=np.float32)
        plan = plan_windows(9, 4, 2)
        windows = slice_windows(series, plan)
        assert windows.shape == (plan.n_windows, 4)
        assert np.array_equal(windows[0], [0, 1, 2, 3])
        assert np.array_equal(windows[1], [2, 3, 4, 5])
        # Tail window is edge-padded with the last real sample.
        assert plan.pad_right == 1
        assert np.array_equal(windows[-1], [6, 7, 8, 8])

    def test_slice_rejects_wrong_length(self):
        with pytest.raises(ValueError):
            slice_windows(np.zeros(5), plan_windows(10, 4))

    def test_stitch_mean_non_overlapping_is_concat(self):
        series = np.random.default_rng(0).random(96).astype(np.float32)
        plan = plan_windows(96, 32)
        windows = slice_windows(series, plan)
        assert np.allclose(stitch_mean(windows, plan), series)

    def test_stitch_mean_averages_overlaps(self):
        plan = plan_windows(6, 4, 2)
        values = np.zeros((plan.n_windows, 4), dtype=np.float32)
        values[0] = 1.0  # covers samples 0..3
        stitched = stitch_mean(values, plan)
        assert stitched[0] == pytest.approx(1.0)  # only window 0
        assert stitched[2] == pytest.approx(0.5)  # windows 0 and 1
        assert stitched[4] == pytest.approx(0.0)

    def test_stitch_identity_roundtrip_overlapping(self):
        """Stitching windows cut from a series recovers the series."""
        series = np.random.default_rng(1).random(50).astype(np.float32)
        plan = plan_windows(50, 16, 8)
        assert np.allclose(
            stitch_mean(slice_windows(series, plan), plan), series, atol=1e-6
        )

    def test_stitch_windows_threshold(self):
        plan = plan_windows(8, 4)
        soft = np.array([[0.4, 0.6, 0.5, 0.2], [0.9, 0.1, 0.5, 0.49]], np.float32)
        binary = stitch_windows(soft, plan, threshold=0.5)
        assert binary.tolist() == [0, 1, 1, 0, 1, 0, 1, 0]


class TestStrideInvariance:
    @given(
        length=st.integers(min_value=8, max_value=200),
        stride=st.integers(min_value=1, max_value=16),
        value=st.floats(min_value=0.0, max_value=5.0, allow_nan=False, width=32),
    )
    @settings(max_examples=40, deadline=None)
    def test_constant_series_stitch_invariant_to_stride(self, length, stride, value):
        """Windows of a constant series all score alike, so the stitched
        score equals the per-window score regardless of stride/overlap."""
        window = 16
        stride = min(stride, window)
        series = np.full(length, value, dtype=np.float32)
        plan = plan_windows(length, window, stride)
        windows = slice_windows(series, plan)
        # A deterministic per-timestamp "model": score = tanh(x).
        scores = np.tanh(windows)
        stitched = stitch_mean(scores, plan)
        assert stitched.shape == (length,)
        assert np.allclose(stitched, np.tanh(value), atol=1e-6)

    @given(
        stride=st.integers(min_value=1, max_value=32),
        value=st.floats(min_value=0.0, max_value=3000.0, allow_nan=False, width=32),
        length=st.integers(min_value=8, max_value=150),
    )
    @settings(max_examples=30, deadline=None)
    def test_engine_status_invariant_to_stride_on_constant_series(
        self, stride, value, length
    ):
        """Every window of a constant series is identical, so the stitched
        engine status cannot depend on the stride/overlap choice."""
        camal = _PointwisePipeline()
        series = np.full(length, value, dtype=np.float32)
        engine = InferenceEngine(EngineConfig(window=32, stride=stride))
        engine.register("kettle", camal)
        status = engine.run(series).status("kettle")
        reference = (
            InferenceEngine(EngineConfig(window=32, stride=32))
            .register("kettle", camal)
            .run(series)
            .status("kettle")
        )
        assert status.shape == (length,)
        assert np.array_equal(status, reference)


class TestFusedLocalization:
    def test_fused_matches_double_forward(self):
        for gate, attention in [(None, True), (500.0, True), (None, False)]:
            camal = _camal(power_gate_watts=gate, use_attention=attention)
            x = _windows(seed=3)
            fused = camal.localize(x)
            legacy = localize_double_forward(camal, x)
            assert np.allclose(
                fused.detection_proba, legacy.detection_proba, atol=1e-5
            )
            assert np.array_equal(fused.detected, legacy.detected)
            assert np.allclose(fused.cam, legacy.cam, atol=1e-5)
            assert np.allclose(fused.soft_status, legacy.soft_status, atol=1e-5)
            assert np.array_equal(fused.status, legacy.status)

    def test_localize_single_forward_per_member_per_batch(self, monkeypatch):
        """The untraced conv stack (``features``) runs exactly once per member
        per micro-batch — no separate recomputation for the CAM.  Plans are
        disabled: the traced path never dispatches ``features`` at all (see
        ``test_planned_localize_skips_module_dispatch``)."""
        monkeypatch.setenv("REPRO_NN_PLAN", "off")
        camal = _camal(n_models=2, detection_threshold=0.0)  # all detected
        x = _windows(n=10, length=24)
        calls = {"features": 0}
        original = _ResNetTSC.features

        def counting_features(self, inputs):
            calls["features"] += 1
            return original(self, inputs)

        _ResNetTSC.features = counting_features
        try:
            camal.localize(x, batch_size=4)
        finally:
            _ResNetTSC.features = original
        n_batches = 3  # ceil(10 / 4)
        assert calls["features"] == len(camal.ensemble) * n_batches

    def test_planned_localize_skips_module_dispatch(self):
        """After the one-time trace, a planned localize replays without a
        single ``nn.Module.__call__`` — the whole point of the plan layer."""
        from repro import nn as _nn

        camal = _camal(n_models=2, detection_threshold=0.0)
        x = _windows(n=8, length=24)
        first = camal.localize(x, batch_size=8)  # traces + validates
        cache = camal.ensemble.plan_cache
        assert cache.traces >= 1
        before = _nn.module_calls()
        second = camal.localize(x, batch_size=8)  # pure replay
        assert _nn.module_calls() == before
        assert cache.replays >= 1
        # Replays are bit-identical to the traced first call (the serving
        # LRU cache's bit-identity contract rides on this).
        assert np.array_equal(first.detection_proba, second.detection_proba)
        assert np.array_equal(first.cam, second.cam)
        assert np.array_equal(first.status, second.status)

    def test_plan_off_env_matches_planned_outputs(self, monkeypatch):
        """`REPRO_NN_PLAN=off` falls back to the member loop with equal
        results (proba/CAM within 1e-5; conv GEMMs are bit-identical, the
        CAM contraction may reassociate)."""
        camal = _camal(n_models=3, detection_threshold=0.0)
        x = _windows(n=6, length=24)
        planned = camal.localize(x, batch_size=8)
        monkeypatch.setenv("REPRO_NN_PLAN", "off")
        loop = camal.localize(x, batch_size=8)
        assert camal.ensemble.plan_cache.fallbacks >= 1
        assert np.allclose(planned.detection_proba, loop.detection_proba, atol=1e-5)
        assert np.allclose(planned.cam, loop.cam, atol=1e-5)

    def test_double_forward_costs_twice_as_many_passes(self):
        camal = _camal(n_models=2, detection_threshold=0.0)
        x = _windows(n=8, length=24)
        calls = {"features": 0}
        original = _ResNetTSC.features

        def counting_features(self, inputs):
            calls["features"] += 1
            return original(self, inputs)

        _ResNetTSC.features = counting_features
        try:
            localize_double_forward(camal, x, batch_size=8)
        finally:
            _ResNetTSC.features = original
        assert calls["features"] == 2 * len(camal.ensemble)

    def test_detected_is_bool(self):
        camal = _camal()
        out = camal.localize(_windows())
        assert out.detected.dtype == np.bool_
        assert out.detected_float.dtype == np.float32

    def test_predict_detection_forwards_batch_size(self):
        ens = _camal().ensemble
        x = _windows(n=5)
        full = ens.predict_detection(x, batch_size=256)
        batched = ens.predict_detection(x, batch_size=2)
        assert batched.dtype == np.bool_
        assert np.array_equal(full, batched)

    def test_forward_fused_matches_separate_calls(self):
        from repro.core import ensemble_cam

        ens = _camal(n_models=3).ensemble
        x = _windows(n=4)
        fused = ens.forward_fused(x, batch_size=3)
        assert np.allclose(fused.proba, ens.predict_proba(x), atol=1e-5)
        assert np.allclose(fused.cam, ensemble_cam(ens.models, x), atol=1e-5)


class TestInferenceEngine:
    def _series(self, n=300, seed=0, scale=2000.0):
        return (np.random.default_rng(seed).random(n) * scale).astype(np.float32)

    def test_multi_appliance_full_coverage(self):
        engine = InferenceEngine(EngineConfig(window=32, stride=16))
        engine.register("kettle", _camal(n_models=1))
        engine.register("dishwasher", _camal(n_models=2))
        series = self._series(n=317)  # not a multiple of the window
        result = engine.run(series)
        assert set(dict(result)) == {"kettle", "dishwasher"}
        for _, appliance_result in result:
            assert appliance_result.status.shape == (317,)
            assert appliance_result.soft_status.shape == (317,)
            assert set(np.unique(appliance_result.status)) <= {0.0, 1.0}

    def test_run_subset_of_appliances(self):
        engine = InferenceEngine(EngineConfig(window=32))
        engine.register("kettle", _camal())
        engine.register("dishwasher", _camal())
        result = engine.run(self._series(), appliances=["kettle"])
        assert list(dict(result)) == ["kettle"]

    def test_unknown_appliance_raises(self):
        engine = InferenceEngine(EngineConfig(window=32))
        with pytest.raises(KeyError):
            engine.run(self._series(), appliances=["toaster"])

    def test_rejects_nan_and_2d(self):
        engine = InferenceEngine(EngineConfig(window=32))
        engine.register("kettle", _camal())
        with pytest.raises(ValueError, match="1-D"):
            engine.run(np.zeros((4, 8)))
        bad = self._series()
        bad[7] = np.nan
        with pytest.raises(ValueError, match="NaN"):
            engine.run(bad)

    def test_cache_hits_on_repeat_and_results_identical(self):
        engine = InferenceEngine(EngineConfig(window=32, cache_size=1024))
        engine.register("kettle", _camal())
        series = self._series()
        first = engine.run(series)
        second = engine.run(series)
        assert first.per_appliance["kettle"].cache_hits == 0
        n_windows = first.plan.n_windows
        assert second.per_appliance["kettle"].cache_hits == n_windows
        assert np.array_equal(first.status("kettle"), second.status("kettle"))
        assert np.allclose(
            first.per_appliance["kettle"].windows.detection_proba,
            second.per_appliance["kettle"].windows.detection_proba,
        )

    def test_cache_is_per_appliance(self):
        engine = InferenceEngine(EngineConfig(window=32, cache_size=1024))
        engine.register("a", _camal(n_models=1))
        engine.register("b", _camal(n_models=2))
        series = self._series()
        engine.run(series)
        result = engine.run(series)
        # Both appliances hit their own entries; outputs differ because the
        # ensembles differ.
        assert result.per_appliance["a"].cache_hits == result.plan.n_windows
        assert result.per_appliance["b"].cache_hits == result.plan.n_windows

    def test_reregister_invalidates_appliance_cache(self):
        """A retrained pipeline must not be served the old model's scores."""
        engine = InferenceEngine(EngineConfig(window=32, cache_size=1024))
        engine.register("kettle", _camal(n_models=1))
        series = self._series()
        engine.run(series)
        assert engine.cache_entries > 0
        engine.register("kettle", _camal(n_models=2))
        result = engine.run(series)
        assert result.per_appliance["kettle"].cache_hits == 0

    def test_cache_eviction_respects_capacity(self):
        engine = InferenceEngine(EngineConfig(window=32, cache_size=4))
        engine.register("kettle", _camal(n_models=1))
        engine.run(self._series(n=320))  # 10 distinct windows
        assert engine.cache_entries <= 4

    def test_cached_equals_uncached(self):
        series = self._series(n=640, seed=5)
        camal = _camal()
        cached = InferenceEngine(EngineConfig(window=32, cache_size=1024))
        cached.register("kettle", camal)
        plain = InferenceEngine(EngineConfig(window=32))
        plain.register("kettle", camal)
        cached.run(series)  # warm the cache
        a = cached.run(series).status("kettle")
        b = plain.run(series).status("kettle")
        assert np.array_equal(a, b)

    @pytest.mark.parametrize("detection_threshold", [0.4, 0.5, 0.55])
    def test_cached_run_bit_identical_to_uncached(self, detection_threshold):
        """Regression: every output array — including ``detected`` — of a
        cached run must be *bit-identical* to an uncached run, on the cold
        pass and on the all-hits pass.  The cache rows therefore carry the
        detection decision instead of recomputing it from the cached
        probability against whatever threshold the pipeline has later."""
        series = self._series(n=640, seed=11)
        camal = _camal(
            power_gate_watts=500.0, detection_threshold=detection_threshold
        )
        cached = InferenceEngine(EngineConfig(window=32, stride=16, cache_size=4096))
        cached.register("kettle", camal)
        plain = InferenceEngine(EngineConfig(window=32, stride=16))
        plain.register("kettle", camal)

        reference = plain.run(series).per_appliance["kettle"]
        cold = cached.run(series).per_appliance["kettle"]
        warm = cached.run(series).per_appliance["kettle"]
        assert cold.cache_hits == 0
        assert warm.cache_hits == cached.run(series).plan.n_windows

        for run in (cold, warm):
            assert run.windows.detected.dtype == reference.windows.detected.dtype
            assert np.array_equal(run.windows.detected, reference.windows.detected)
            assert np.array_equal(
                run.windows.detection_proba, reference.windows.detection_proba
            )
            assert np.array_equal(run.windows.cam, reference.windows.cam)
            assert np.array_equal(run.windows.soft_status, reference.windows.soft_status)
            assert np.array_equal(run.windows.status, reference.windows.status)
            assert np.array_equal(run.soft_status, reference.soft_status)
            assert np.array_equal(run.status, reference.status)

    def test_engine_defaults_to_pipeline_status_threshold(self):
        """A pipeline trained with a non-0.5 soft-status threshold must be
        stitched at *its* threshold, not a global engine default."""
        series = self._series(n=320, seed=9)
        camal = _camal(detection_threshold=0.0, status_threshold=0.7)

        default_cfg = InferenceEngine(EngineConfig(window=32, stride=16))
        default_cfg.register("kettle", camal)
        explicit_same = InferenceEngine(
            EngineConfig(window=32, stride=16, status_threshold=0.7)
        )
        explicit_same.register("kettle", camal)
        old_global = InferenceEngine(
            EngineConfig(window=32, stride=16, status_threshold=0.5)
        )
        old_global.register("kettle", camal)

        status_default = default_cfg.run(series).status("kettle")
        status_same = explicit_same.run(series).status("kettle")
        status_old = old_global.run(series).status("kettle")
        assert np.array_equal(status_default, status_same)
        # The soft scores straddle 0.7, so imposing the old 0.5 global
        # genuinely changes the answer — this is what used to happen.
        assert not np.array_equal(status_default, status_old)

    def test_engine_config_threshold_is_explicit_override(self):
        series = self._series(n=320, seed=9)
        camal = _camal(detection_threshold=0.0, status_threshold=0.7)
        overridden = InferenceEngine(
            EngineConfig(window=32, stride=16, status_threshold=0.9)
        )
        overridden.register("kettle", camal)
        soft = overridden.run(series).per_appliance["kettle"].soft_status
        expected = (soft >= 0.9).astype(np.float32)
        assert np.array_equal(
            overridden.run(series).status("kettle"), expected
        )

    def test_matches_direct_localize_when_aligned(self):
        """Non-overlapping stride on an exact-multiple series reproduces
        CamAL.localize + reshape exactly."""
        camal = _camal(power_gate_watts=500.0)
        series = self._series(n=320, seed=7)
        engine = InferenceEngine(EngineConfig(window=32))
        engine.register("kettle", camal)
        engine_status = engine.run(series).status("kettle")
        from repro.simdata.preprocessing import SCALE_DIVISOR

        direct = camal.predict_status(
            series.reshape(-1, 32) / SCALE_DIVISOR
        ).reshape(-1)
        assert np.array_equal(engine_status, direct)


class TestEnginePersistence:
    def test_save_load_roundtrip_identical_outputs(self, tmp_path):
        camal = _camal(power_gate_watts=500.0, detection_threshold=0.4)
        series = (
            np.random.default_rng(3).random(200).astype(np.float32) * 2500.0
        )
        direct = InferenceEngine(EngineConfig(window=32, stride=16))
        direct.register("kettle", camal)
        expected = direct.run(series)

        save_estimator(camal, str(tmp_path / "kettle"))
        loaded = InferenceEngine(EngineConfig(window=32, stride=16))
        loaded.load("kettle", str(tmp_path / "kettle"))
        got = loaded.run(series)

        assert np.allclose(
            expected.per_appliance["kettle"].soft_status,
            got.per_appliance["kettle"].soft_status,
            atol=1e-6,
        )
        assert np.array_equal(expected.status("kettle"), got.status("kettle"))

    def test_save_load_pipelines_fleet(self, tmp_path):
        pipelines = {"kettle": _camal(n_models=1), "dishwasher": _camal(n_models=2)}
        save_pipelines(pipelines, str(tmp_path))
        loaded = load_pipelines(str(tmp_path))
        assert set(loaded) == {"kettle", "dishwasher"}
        series = np.random.default_rng(4).random(96).astype(np.float32) * 2000
        engine = InferenceEngine(EngineConfig(window=32))
        for name, camal in loaded.items():
            engine.register(name, camal)
        result = engine.run(series)
        for name in pipelines:
            assert result.status(name).shape == (96,)

    def test_load_pipelines_missing_root_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_pipelines(str(tmp_path / "nope"))


class TestEngineThreadSafety:
    """Concurrent `run` calls must match serial runs bit for bit.

    The engine serializes forwards on an internal lock because the
    buffer pool and traced plans are per-ensemble single-writer; this is
    the regression test keeping that contract honest (the serving daemon
    depends on it from many connection threads at once).
    """

    def test_concurrent_run_bit_identical_to_serial(self):
        import threading

        camal = _camal(n_models=2)
        shared = InferenceEngine(
            EngineConfig(window=32, stride=16, cache_size=16, backend="im2col")
        )
        shared.register("kettle", camal)
        serial = InferenceEngine(
            EngineConfig(window=32, stride=16, cache_size=0, backend="im2col")
        )
        serial.register("kettle", camal)

        n_threads = 8
        rng = np.random.default_rng(11)
        series = [
            (rng.random(96 + 16 * i).astype(np.float32) * 2000)
            for i in range(n_threads)
        ]
        expected = [serial.run(s).per_appliance["kettle"] for s in series]

        results = [None] * n_threads
        errors = []
        barrier = threading.Barrier(n_threads)

        def worker(i):
            try:
                barrier.wait()
                for _ in range(3):  # repeats exercise the shared LRU cache
                    results[i] = shared.run(series[i]).per_appliance["kettle"]
            except Exception as exc:  # noqa: BLE001 - surfaced below
                errors.append((i, exc))

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        assert not errors, errors
        for i in range(n_threads):
            assert results[i] is not None
            assert np.array_equal(results[i].soft_status, expected[i].soft_status)
            assert np.array_equal(results[i].status, expected[i].status)
