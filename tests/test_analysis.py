"""Tests for repro.analysis: lint rules (good/bad fixture pairs per rule),
waiver semantics, the runtime sanitizer, and the repo tree's own cleanliness."""

import os
import textwrap

import numpy as np
import pytest

from repro.analysis import envvars, sanitize
from repro.analysis.lint import run_lint
from repro.nn.backend.pool import BufferPool
from repro.nn.plan import PlanBuilder

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def lint_snippet(tmp_path, source, relpath="src/snippet.py", project_rules=False):
    """Write ``source`` at ``relpath`` under a tmp root and lint that file."""
    path = tmp_path / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source))
    return run_lint([str(path)], root=tmp_path, project_rules=project_rules)


def rules_of(report):
    return sorted(v.rule for v in report.violations)


# ----------------------------------------------------------------------
# HOT001 / HOT002 — hot-path allocation ban
# ----------------------------------------------------------------------
class TestHotPathRules:
    def test_hot001_bad_allocation_in_decorated_function(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            import numpy as np
            from repro.analysis import hot_path

            @hot_path
            def replay(n):
                return np.zeros(n, dtype=np.float32)
            """,
        )
        assert rules_of(report) == ["HOT001"]

    def test_hot001_good_pool_acquisition(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            import numpy as np
            from repro.analysis import hot_path
            from repro.nn.backend import scratch

            @hot_path
            def replay(n):
                return scratch((n,), np.float32)

            def cold(n):
                return np.zeros(n)  # not hot: allowed
            """,
        )
        assert rules_of(report) == []

    def test_hot001_by_location_in_replay_module(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            import numpy as np

            def helper(n):
                return np.empty(n)
            """,
            relpath="src/repro/nn/plan.py",
        )
        assert rules_of(report) == ["HOT001"]

    def test_hot001_nested_function_inherits_hotness(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            import numpy as np
            from repro.analysis import hot_path

            @hot_path
            def outer(n):
                def inner():
                    return np.concatenate([np.empty(n)])
                return inner
            """,
        )
        assert rules_of(report) == ["HOT001", "HOT001"]

    def test_hot002_bad_list_growth_in_loop(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            from repro.analysis import hot_path

            @hot_path
            def replay(items):
                out = []
                for item in items:
                    out.append(item * 2)
                return out
            """,
        )
        assert rules_of(report) == ["HOT002"]

    def test_hot002_good_growth_outside_loop_or_cold(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            from repro.analysis import hot_path

            @hot_path
            def replay(out, item):
                out.append(item)  # no loop: one bounded append

            def cold(items):
                out = []
                for item in items:
                    out.append(item)
                return out
            """,
        )
        assert rules_of(report) == []


# ----------------------------------------------------------------------
# DET001 / DET002 / DET003 — determinism rules
# ----------------------------------------------------------------------
class TestDeterminismRules:
    def test_det001_bad_global_rng(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            import random
            import numpy as np

            def sample(n):
                random.shuffle(list(range(n)))
                return np.random.rand(n)
            """,
        )
        assert rules_of(report) == ["DET001", "DET001"]

    def test_det001_good_generator_and_blessed_helper(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            import random
            import numpy as np

            def sample(n, seed):
                rng = np.random.default_rng(seed)
                local = random.Random(seed)
                return rng.random(n), local.random()

            def seed_everything(seed):
                random.seed(seed)
                return np.random.default_rng(seed)
            """,
        )
        assert rules_of(report) == []

    def test_det002_bad_wall_clock(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            import time

            def stamp():
                return time.time()
            """,
        )
        assert rules_of(report) == ["DET002"]

    def test_det002_good_perf_counter(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            import time

            def measure(fn):
                start = time.perf_counter()
                fn()
                return time.perf_counter() - start
            """,
        )
        assert rules_of(report) == []

    def test_det003_bad_fit_without_seed_param(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            def fit(x, y):
                return x + y

            def train_model(data):
                return data
            """,
        )
        assert rules_of(report) == ["DET003", "DET003"]

    def test_det003_good_seed_config_or_method(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            def fit(x, y, seed=0):
                return x + y

            def train_model(data, config):
                return data

            class Estimator:
                def fit(self, x, y):  # methods route seeds via their config
                    return x
            """,
        )
        assert rules_of(report) == []


# ----------------------------------------------------------------------
# ENV001 / ENV002 — env-var registry
# ----------------------------------------------------------------------
class TestEnvVarRules:
    def test_env001_bad_unregistered_literal(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            import os

            def flag():
                return os.environ.get("REPRO_BOGUS_KNOB", "")
            """,
        )
        assert rules_of(report) == ["ENV001"]

    def test_env001_good_registered_literal(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            import os

            def flag():
                return os.environ.get("REPRO_NN_PLAN", "")
            """,
        )
        assert rules_of(report) == []

    def test_env002_docs_coverage(self, tmp_path):
        docs = tmp_path / "docs"
        docs.mkdir()
        names = sorted(envvars.ENV_VARS)
        complete = "\n".join(f"`{name}`" for name in names)
        (docs / "config.md").write_text(complete)
        report = run_lint([], root=tmp_path)
        assert rules_of(report) == []

        (docs / "config.md").write_text(
            "\n".join(f"`{name}`" for name in names if name != "REPRO_SMOKE")
        )
        report = run_lint([], root=tmp_path)
        assert rules_of(report) == ["ENV002"]
        assert "REPRO_SMOKE" in report.violations[0].message

    def test_registry_table_renders_every_entry(self):
        table = envvars.render_table()
        for name in envvars.ENV_VARS:
            assert name in table


# ----------------------------------------------------------------------
# BCK001 — backend kernel contract
# ----------------------------------------------------------------------
class TestBackendContractRule:
    BAD = """
        NAME = "partial"

        def forward(x):
            return x
        """
    GOOD = """
        NAME = "whole"

        def forward(x):
            return x

        def forward_fused(x):
            return x

        def grad_weight(ctx, g):
            return g

        def grad_input(ctx, g):
            return g
        """

    def test_bck001_bad_missing_kernels(self, tmp_path):
        report = lint_snippet(
            tmp_path, self.BAD, relpath="src/repro/nn/backend/partial.py"
        )
        assert rules_of(report) == ["BCK001"]
        assert "grad_input" in report.violations[0].message

    def test_bck001_good_full_contract(self, tmp_path):
        report = lint_snippet(
            tmp_path, self.GOOD, relpath="src/repro/nn/backend/whole.py"
        )
        assert rules_of(report) == []

    def test_bck001_ignores_non_kernel_modules(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "def helper():\n    return 1\n",
            relpath="src/repro/nn/backend/util.py",
        )
        assert rules_of(report) == []


# ----------------------------------------------------------------------
# CNT001 — counter discipline
# ----------------------------------------------------------------------
class TestCounterRule:
    def _make_tree(self, tmp_path, counters, test_body):
        counters_py = tmp_path / "src" / "repro" / "nn" / "backend" / "counters.py"
        counters_py.parent.mkdir(parents=True)
        keys = ", ".join(f'"{k}": 0' for k in counters)
        counters_py.write_text(f"_COUNTS = {{{keys}}}\n")
        tests = tmp_path / "tests"
        tests.mkdir()
        (tests / "test_counters.py").write_text(test_body)

    def test_cnt001_bad_unasserted_counter(self, tmp_path):
        self._make_tree(
            tmp_path,
            ["gemms", "orphan_counter"],
            'def test_gemms():\n    assert counts["gemms"] == 1\n',
        )
        report = run_lint([], root=tmp_path)
        assert rules_of(report) == ["CNT001"]
        assert "orphan_counter" in report.violations[0].message

    def test_cnt001_good_all_asserted(self, tmp_path):
        self._make_tree(
            tmp_path,
            ["gemms"],
            'def test_gemms():\n    assert counts["gemms"] == 1\n',
        )
        report = run_lint([], root=tmp_path)
        assert rules_of(report) == []

    def test_cnt001_handles_annotated_assignment(self, tmp_path):
        # The real counters.py uses `_COUNTS: Dict[str, int] = {...}`.
        counters_py = tmp_path / "src" / "repro" / "nn" / "backend" / "counters.py"
        counters_py.parent.mkdir(parents=True)
        counters_py.write_text(
            "from typing import Dict\n"
            '_COUNTS: Dict[str, int] = {"tagged": 0}\n'
        )
        (tmp_path / "tests").mkdir()
        (tmp_path / "tests" / "test_none.py").write_text("def test_x():\n    pass\n")
        report = run_lint([], root=tmp_path)
        assert rules_of(report) == ["CNT001"]


# ----------------------------------------------------------------------
# Waivers + SYN001
# ----------------------------------------------------------------------
class TestWaivers:
    def test_waiver_with_justification_suppresses(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            import numpy as np
            from repro.analysis import hot_path

            @hot_path
            def replay(n):
                # repro: waive[HOT001] setup-time allocation, measured cold
                return np.zeros(n)
            """,
        )
        assert rules_of(report) == []
        assert [v.rule for v in report.waived] == ["HOT001"]

    def test_waiver_on_same_line(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            import numpy as np
            from repro.analysis import hot_path

            @hot_path
            def replay(n):
                return np.zeros(n)  # repro: waive[HOT001] cold setup path
            """,
        )
        assert rules_of(report) == []

    def test_wvr001_waiver_without_justification_is_error(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            import numpy as np
            from repro.analysis import hot_path

            @hot_path
            def replay(n):
                # repro: waive[HOT001]
                return np.zeros(n)
            """,
        )
        # The bare waiver does not suppress, and is itself an error.
        assert rules_of(report) == ["HOT001", "WVR001"]

    def test_wvr002_unused_waiver_is_warning(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            def quiet():
                # repro: waive[HOT001] nothing here actually allocates
                return 1
            """,
        )
        assert rules_of(report) == ["WVR002"]
        assert report.errors == []
        assert len(report.warnings) == 1

    def test_multi_rule_waiver(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            import numpy as np
            from repro.analysis import hot_path

            @hot_path
            def replay(items):
                out = []
                for item in items:
                    # repro: waive[HOT001,HOT002] bounded warmup, runs once
                    out.append(np.zeros(item))
                return out
            """,
        )
        assert rules_of(report) == []
        assert sorted(v.rule for v in report.waived) == ["HOT001", "HOT002"]

    def test_syn001_unparseable_file(self, tmp_path):
        report = lint_snippet(tmp_path, "def broken(:\n    pass\n")
        assert rules_of(report) == ["SYN001"]


# ----------------------------------------------------------------------
# ERR001 — no silent error swallowing
# ----------------------------------------------------------------------
class TestErrorSwallowRule:
    def test_err001_bare_except(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            def load(path):
                try:
                    return open(path).read()
                except:
                    return None
            """,
        )
        assert rules_of(report) == ["ERR001"]
        assert "SystemExit" in report.violations[0].message

    def test_err001_exception_wide_pass(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            def close(handle):
                try:
                    handle.close()
                except Exception:
                    pass

            def close2(handle):
                try:
                    handle.close()
                except (ValueError, BaseException):
                    ...
            """,
        )
        assert rules_of(report) == ["ERR001", "ERR001"]

    def test_err001_good_typed_or_handled(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            def close(handle):
                try:
                    handle.close()
                except OSError:
                    pass  # narrow best-effort close stays legal

            def guard(fn):
                try:
                    return fn()
                except Exception as exc:
                    raise RuntimeError(f"wrapped: {exc}") from exc
            """,
        )
        assert rules_of(report) == []

    def test_err001_waivable(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            def reap(children):
                for child in children:
                    try:
                        child.kill()
                    # repro: waive[ERR001] teardown must survive any child state
                    except Exception:
                        pass
            """,
        )
        assert rules_of(report) == []
        assert [v.rule for v in report.waived] == ["ERR001"]


# ----------------------------------------------------------------------
# The repo's own tree + CLI
# ----------------------------------------------------------------------
class TestRepoTree:
    def test_src_and_benchmarks_lint_clean(self):
        report = run_lint(["src", "benchmarks"], root=REPO_ROOT)
        assert report.errors == [], report.format()
        assert report.warnings == [], report.format()
        # Every waiver in the tree carries a justification (else WVR001
        # would have fired); keep the count pinned so new waivers are a
        # conscious review decision, not drive-by suppression.
        assert len(report.waived) == 7, report.format(verbose=True)

    def test_cli_lint_exit_codes(self, tmp_path):
        from repro.cli import main

        assert main(["lint", "src", "--root", REPO_ROOT]) == 0

        bad = tmp_path / "bad.py"
        bad.write_text("import time\n\ndef stamp():\n    return time.time()\n")
        assert main(["lint", str(bad), "--root", str(tmp_path)]) == 1

    def test_cli_lint_envvars_table(self, capsys):
        from repro.cli import main

        assert main(["lint", "--envvars"]) == 0
        out = capsys.readouterr().out
        assert "REPRO_NN_SANITIZE" in out


# ----------------------------------------------------------------------
# Runtime sanitizer
# ----------------------------------------------------------------------
class TestSanitizer:
    def test_disabled_by_default(self):
        assert sanitize.pool_tracker() is None
        assert sanitize.plan_tracker() is None

    def test_pool_poisons_released_buffers_when_enabled(self):
        with sanitize.force(True):
            pool = BufferPool()
            buf = pool.take((4,))
            buf[:] = 1.0
            pool.step()
        assert np.isnan(buf).all()
        assert pool.tracker.generation(buf) == 1

    def test_pool_untouched_when_disabled(self):
        with sanitize.force(False):
            pool = BufferPool()
            buf = pool.take((4,))
            buf[:] = 1.0
            pool.step()
        assert pool.tracker is None
        np.testing.assert_array_equal(buf, np.ones(4, dtype=np.float32))

    def test_plan_use_after_release_names_offending_step(self):
        """The seeded use-after-release regression: a deliberate read of a
        released slot must raise at trace time, naming the reading step and
        the releasing step.  Without the sanitizer's tracking (disabled
        builder below) the same trace records silently."""
        with sanitize.force(True):
            builder = PlanBuilder()
            slot = builder.buffer((8,))
            builder.emit(lambda: None, label="produce", writes=(slot,))
            builder.release(slot)
            with pytest.raises(sanitize.PlanSanitizeError) as exc:
                builder.emit(lambda: None, label="consume-freed", reads=(slot,))
        assert "consume-freed" in str(exc.value)
        assert "use-after-release" in str(exc.value)

        # Same deliberate bug, sanitizer off: no tracking, no error — the
        # detection genuinely comes from the generation tags, not from the
        # plan layer itself.
        with sanitize.force(False):
            builder = PlanBuilder()
            slot = builder.buffer((8,))
            builder.emit(lambda: None, label="produce", writes=(slot,))
            builder.release(slot)
            builder.emit(lambda: None, label="consume-freed", reads=(slot,))

    def test_plan_stale_read_through_recycled_slot(self):
        """Reading a recycled slot before any step rewrote it is the same
        use-after-release one recycle later — only the generation tag can
        see it (the array object is identical)."""
        with sanitize.force(True):
            builder = PlanBuilder()
            a = builder.buffer((8,))
            builder.emit(lambda: None, label="w1", writes=(a,))
            builder.release(a)
            b = builder.buffer((8,))  # recycles the same slot: generation 1
            assert b is a
            with pytest.raises(sanitize.PlanSanitizeError) as exc:
                builder.emit(lambda: None, label="stale-reader", reads=(b,))
            assert "stale-reader" in str(exc.value)
            # After a write at the new generation the read is legal.
            builder.emit(lambda: None, label="w2", writes=(b,))
            builder.emit(lambda: None, label="reader", reads=(b,))

    def test_plan_write_to_released_slot_is_aliasing(self):
        with sanitize.force(True):
            builder = PlanBuilder()
            slot = builder.buffer((8,))
            builder.emit(lambda: None, label="produce", writes=(slot,))
            builder.release(slot)
            with pytest.raises(sanitize.PlanSanitizeError) as exc:
                builder.emit(lambda: None, label="alias-writer", writes=(slot,))
            assert "alias" in str(exc.value)

    def test_plan_views_resolve_to_owning_slot(self):
        with sanitize.force(True):
            builder = PlanBuilder()
            slot = builder.buffer((4, 8))
            view = slot.reshape(2, 16)[1:]
            builder.emit(lambda: None, label="produce", writes=(view,))
            builder.release(slot)
            with pytest.raises(sanitize.PlanSanitizeError):
                builder.emit(lambda: None, label="view-reader", reads=(view,))

    def test_external_arrays_are_ignored(self):
        with sanitize.force(True):
            builder = PlanBuilder()
            param = np.zeros(3, dtype=np.float32)  # not a plan slot
            builder.emit(lambda: None, label="uses-param", reads=(param,))

    def test_freeze_gated_by_flag(self):
        with sanitize.force(True):
            frozen = sanitize.freeze(np.zeros(3))
            assert not frozen.flags.writeable
            with pytest.raises(ValueError):
                frozen[0] = 1.0
        with sanitize.force(False):
            untouched = sanitize.freeze(np.zeros(3))
            assert untouched.flags.writeable

    def test_store_reads_frozen_under_sanitizer(self, tmp_path):
        from repro.data import MeterStore, ingest_corpus
        from repro.simdata import ukdale_like

        corpus = ukdale_like(days=0.25, n_houses=1, seed=0)
        store_dir = tmp_path / "store"
        ingest_corpus(corpus, str(store_dir))
        with sanitize.force(True):
            store = MeterStore(str(store_dir))
            house = store.house_ids[0]
            mask = store.read_mask(house, 0, 64)
            assert not mask.flags.writeable
            gaps = store.read_channel(house, "aggregate", 0, 64, nan_gaps=True)
            assert not gaps.flags.writeable

    def test_ensemble_plan_passes_sanitizer_with_identical_outputs(self):
        """The real grouped trace must satisfy its own declared read/write
        discipline, and sanitizing must not change a single output bit."""
        from repro.core import ResNetConfig, ResNetEnsemble, ResNetTSC

        def build():
            models = [
                ResNetTSC(
                    ResNetConfig(kernel_size=k, filters=(2, 4, 4), seed=i)
                ).eval()
                for i, k in enumerate((3, 5))
            ]
            return ResNetEnsemble(models)

        x = np.random.default_rng(7).random((6, 32)).astype(np.float32)
        with sanitize.force(False):
            plain = build().forward_fused(x, batch_size=4)
        with sanitize.force(True):
            checked = build().forward_fused(x, batch_size=4)
        np.testing.assert_array_equal(plain.proba, checked.proba)
        np.testing.assert_array_equal(plain.cam, checked.cam)

    def test_stats_counters_move(self):
        sanitize.reset_stats()
        with sanitize.force(True):
            pool = BufferPool()
            pool.take((4,))
            pool.step()
        stats = sanitize.stats()
        assert stats["poison_fills"] == 1
        assert stats["generation_bumps"] == 1
        sanitize.reset_stats()
        assert sanitize.stats()["poison_fills"] == 0

    def test_poison_fill_dtypes(self):
        f = np.ones(3, dtype=np.float32)
        sanitize.poison_fill(f)
        assert np.isnan(f).all()
        i = np.ones(3, dtype=np.int32)
        sanitize.poison_fill(i)
        assert (i == np.iinfo(np.int32).min).all()
        b = np.zeros(3, dtype=bool)
        sanitize.poison_fill(b)
        assert b.all()
