"""The conv backend layer: kernels, autotuner, inference mode, buffer pool.

Covers the contract of ``repro.nn.backend``:

* finite-difference gradient checks for the im2col and FFT kernels across
  the same stride/padding grid that ``tests/test_gradients.py`` pins for
  ``reference``;
* cross-backend forward equivalence at paper (Table-II ResNet) shapes;
* the shape-keyed autotuner and its persisted cache;
* inference mode building zero graph nodes, engine outputs independent of
  the backend choice, and the buffer pool's allocation-free steady state.
"""

import numpy as np
import pytest

from repro import nn
from repro.nn import backend, check_gradients
from repro.nn import functional as F
from repro.nn.tensor import Tensor, graph_nodes_created

RNG = np.random.default_rng(7)


def _t(shape, scale=1.0):
    return Tensor(RNG.normal(size=shape).astype(np.float32) * scale, requires_grad=True)


def _mask(shape):
    return Tensor(RNG.normal(size=shape).astype(np.float32))


@pytest.fixture(params=["im2col", "fft"])
def fast_backend(request):
    with backend.use_backend(request.param):
        yield request.param


class TestBackendGradients:
    """The im2col/FFT backward contractions match finite differences."""

    def test_conv1d_basic(self, fast_backend):
        x, w, b = _t((2, 3, 12)), _t((4, 3, 3), 0.4), _t((4,), 0.1)
        m = _mask((2, 4, 12))
        check_gradients(lambda: (F.conv1d(x, w, b, padding=1) * m).sum(), [x, w, b])

    def test_conv1d_stride2(self, fast_backend):
        x, w = _t((1, 2, 11)), _t((3, 2, 5), 0.4)
        m = _mask((1, 3, 5))  # (11 + 2 - 5) // 2 + 1
        check_gradients(
            lambda: (F.conv1d(x, w, None, stride=2, padding=1) * m).sum(), [x, w]
        )

    def test_conv1d_no_padding(self, fast_backend):
        x, w = _t((2, 1, 9)), _t((2, 1, 4), 0.5)
        m = _mask((2, 2, 6))
        check_gradients(lambda: (F.conv1d(x, w, None) * m).sum(), [x, w])

    def test_conv1d_stride3_uneven(self, fast_backend):
        x, w = _t((1, 1, 13)), _t((2, 1, 3), 0.5)
        out_len = (13 - 3) // 3 + 1
        m = _mask((1, 2, out_len))
        check_gradients(lambda: (F.conv1d(x, w, None, stride=3) * m).sum(), [x, w])


#: Representative Table-II ResNet conv signatures: the C_in=1 entry layers
#: (one per member kernel), mid-stack and the widest long-kernel block.
PAPER_SHAPES = [
    (1, 64, 5),
    (1, 64, 25),
    (64, 128, 7),
    (128, 128, 5),
    (128, 128, 25),
]


class TestCrossBackendEquivalence:
    @pytest.mark.parametrize("c_in,c_out,kernel", PAPER_SHAPES)
    def test_forward_matches_reference(self, c_in, c_out, kernel):
        x = Tensor(RNG.normal(size=(4, c_in, 128)).astype(np.float32))
        w = Tensor(RNG.normal(size=(c_out, c_in, kernel)).astype(np.float32) * 0.1)
        b = Tensor(RNG.normal(size=(c_out,)).astype(np.float32) * 0.1)
        pad = (kernel - 1) // 2
        outs = {}
        for name in ("reference", "im2col", "fft"):
            with backend.use_backend(name):
                outs[name] = F.conv1d(x, w, b, padding=pad).data
        scale = np.abs(outs["reference"]).max()
        for name in ("im2col", "fft"):
            rel = np.abs(outs[name] - outs["reference"]).max() / scale
            assert rel < 1e-5, f"{name} diverges from reference: rel={rel}"

    def test_strided_forward_matches_reference(self):
        x = Tensor(RNG.normal(size=(3, 8, 57)).astype(np.float32))
        w = Tensor(RNG.normal(size=(6, 8, 5)).astype(np.float32) * 0.2)
        outs = {}
        for name in ("reference", "im2col", "fft"):
            with backend.use_backend(name):
                outs[name] = F.conv1d(x, w, stride=3, padding=2).data
        for name in ("im2col", "fft"):
            np.testing.assert_allclose(
                outs[name], outs["reference"], rtol=1e-4, atol=1e-5
            )

    def test_im2col_is_batch_size_invariant(self):
        """The serving cache's bit-identity contract: a window scored alone
        must produce the same bits as inside any batch."""
        x = RNG.normal(size=(16, 8, 32)).astype(np.float32)
        w = Tensor(RNG.normal(size=(12, 8, 5)).astype(np.float32) * 0.2)
        with backend.use_backend("im2col"):
            full = F.conv1d(Tensor(x), w, padding=2).data
            for sl in (slice(3, 4), slice(0, 7), slice(10, 16)):
                sub = F.conv1d(Tensor(np.ascontiguousarray(x[sl])), w, padding=2).data
                assert np.array_equal(full[sl], sub)


class TestAutotuner:
    def test_auto_tunes_and_caches_by_signature(self):
        backend.clear_autotune_cache()
        x = Tensor(RNG.normal(size=(2, 4, 40)).astype(np.float32))
        w = Tensor(RNG.normal(size=(3, 4, 5)).astype(np.float32))
        with backend.use_backend("auto"):
            F.conv1d(x, w, padding=2)
        choices = backend.autotune_choices()
        assert (2, 4, 3, 5, 44, 1) in choices
        assert choices[(2, 4, 3, 5, 44, 1)] in ("reference", "im2col", "fft")
        # Second call reuses the cached choice (no new entries).
        with backend.use_backend("auto"):
            F.conv1d(x, w, padding=2)
        assert backend.autotune_choices() == choices

    def test_cache_round_trips_through_json(self, tmp_path):
        backend.clear_autotune_cache()
        x = Tensor(RNG.normal(size=(1, 2, 24)).astype(np.float32))
        w = Tensor(RNG.normal(size=(2, 2, 3)).astype(np.float32))
        with backend.use_backend("auto"):
            F.conv1d(x, w)
        before = backend.autotune_choices()
        assert backend.autotune_cache_dirty()  # tuned but not yet persisted
        path = str(tmp_path / "autotune.json")
        backend.save_autotune_cache(path)
        assert not backend.autotune_cache_dirty()  # persisted => clean
        backend.clear_autotune_cache()
        assert backend.autotune_choices() == {}
        assert backend.load_autotune_cache(path) == len(before)
        assert backend.autotune_choices() == before

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown nn backend"):
            backend.set_backend("winograd")
        with pytest.raises(ValueError):
            with backend.use_backend("nope"):
                pass  # pragma: no cover


class TestInferenceMode:
    def _tiny_model(self, seed=0):
        from repro.core import ResNetConfig, ResNetTSC

        model = ResNetTSC(ResNetConfig(kernel_size=5, filters=(4, 8, 8), seed=seed))
        model.eval()
        return model

    def test_no_grad_builds_zero_graph_nodes(self):
        model = self._tiny_model()
        x = RNG.normal(size=(3, 1, 32)).astype(np.float32)
        before = graph_nodes_created()
        with nn.no_grad():
            out = model(Tensor(x, requires_grad=True))
        assert graph_nodes_created() == before
        assert out._backward is None and out._parents == ()
        # The same forward with gradients enabled does record the graph.
        model.train()
        out = model(Tensor(x, requires_grad=True))
        assert graph_nodes_created() > before
        assert out.requires_grad

    def test_max_pool_inference_matches_grad_path(self):
        x_data = RNG.normal(size=(2, 3, 17)).astype(np.float32)
        ref = F.max_pool1d(Tensor(x_data, requires_grad=True), 4).data
        with nn.no_grad():
            fast = F.max_pool1d(Tensor(x_data), 4).data
        assert np.array_equal(ref, fast)

    def test_batch_norm_fold_matches_reference_path(self):
        x_data = RNG.normal(size=(4, 5, 16)).astype(np.float32)
        g = Tensor(RNG.normal(size=5).astype(np.float32))
        b = Tensor(RNG.normal(size=5).astype(np.float32))
        rm = RNG.normal(size=5).astype(np.float32)
        rv = RNG.random(5).astype(np.float32) + 0.5
        ref = F.batch_norm(
            Tensor(x_data, requires_grad=True), g, b, rm.copy(), rv.copy(),
            training=False,
        ).data
        with nn.no_grad():
            fold = F.batch_norm(
                Tensor(x_data), g, b, rm.copy(), rv.copy(), training=False
            ).data
        np.testing.assert_allclose(fold, ref, rtol=1e-5, atol=1e-6)

    def test_conv_block_fold_matches_training_graph_path(self):
        """Eval-mode conv+BN folding stays on the normalize-then-affine values."""
        from repro.core.resnet import ConvBlock

        block = ConvBlock(3, 6, 5, seed=1)
        # Non-trivial running stats, as after real training.
        block.norm.running_mean[...] = RNG.normal(size=6).astype(np.float32)
        block.norm.running_var[...] = RNG.random(6).astype(np.float32) + 0.5
        block.eval()
        x_data = RNG.normal(size=(2, 3, 24)).astype(np.float32)
        unfolded = block(Tensor(x_data, requires_grad=True)).data  # graph path
        with nn.no_grad():
            folded = block(Tensor(x_data)).data
        np.testing.assert_allclose(folded, unfolded, rtol=1e-4, atol=1e-5)

    def test_buffer_pool_steady_state_allocates_nothing(self):
        """Plan replays perform zero new large allocations: the warm-up run
        takes persistent slots from the pool (trace) plus recycling scratch
        (the validation loop); afterwards the counter stays flat."""
        from repro.core import ResNetEnsemble

        ensemble = ResNetEnsemble([self._tiny_model(seed=s) for s in (0, 1)])
        x = RNG.random((24, 32)).astype(np.float32)
        first = ensemble.forward_fused(x, batch_size=8)
        warm = ensemble.buffer_pool.fresh_allocations
        assert warm > 0  # the warm-up run did populate the pool
        second = ensemble.forward_fused(x, batch_size=8)
        assert ensemble.buffer_pool.fresh_allocations == warm  # zero new
        assert ensemble.plan_cache.replays > 0  # the second run replayed
        np.testing.assert_array_equal(first.proba, second.proba)
        np.testing.assert_array_equal(first.cam, second.cam)

    def test_buffer_pool_steady_state_loop_path_reuses(self, monkeypatch):
        """With plans disabled, the member loop recycles pool buffers across
        micro-batches (the pre-plan steady-state guarantee still holds)."""
        from repro.core import ResNetEnsemble

        monkeypatch.setenv("REPRO_NN_PLAN", "off")
        ensemble = ResNetEnsemble([self._tiny_model(seed=s) for s in (0, 1)])
        x = RNG.random((24, 32)).astype(np.float32)
        first = ensemble.forward_fused(x, batch_size=8)
        warm = ensemble.buffer_pool.fresh_allocations
        assert warm > 0
        second = ensemble.forward_fused(x, batch_size=8)
        assert ensemble.buffer_pool.fresh_allocations == warm  # zero new
        assert ensemble.buffer_pool.reuses > 0
        np.testing.assert_array_equal(first.proba, second.proba)
        np.testing.assert_array_equal(first.cam, second.cam)

    def test_grouped_plan_one_gemm_per_layer_group_at_paper_shapes(self):
        """At the paper preset (5 members, distinct kernels {5,7,9,15,25}),
        a planned forward issues exactly one batched GEMM per layer group —
        23 in total (per unit: 5 member-specific block1 groups + block2 +
        block3 [+ shortcut in units 1-2]) — where the member loop issues one
        GEMM per member per layer (55)."""
        from repro.core import ResNetConfig, ResNetEnsemble, ResNetTSC
        from repro.core.resnet import DEFAULT_KERNEL_SET

        models = [
            ResNetTSC(ResNetConfig(kernel_size=k, filters=(4, 8, 8), seed=i)).eval()
            for i, k in enumerate(DEFAULT_KERNEL_SET)
        ]
        ensemble = ResNetEnsemble(models)
        x = RNG.random((4, 64)).astype(np.float32)
        ensemble.forward_fused(x, batch_size=8)  # trace + validate
        backend.reset_op_counts()
        ensemble.forward_fused(x, batch_size=8)  # pure replay
        counts = backend.op_counts()
        assert counts["fused_conv_gemms"] == 23
        assert counts["fused_conv_gemms"] < 5 * 11  # vs one GEMM per member
        # Every grouped GEMM is one fused-conv entry call, so the two
        # counters move in lockstep on a pure im2col replay.
        assert counts["fused_conv_calls"] == counts["fused_conv_gemms"]

    def test_plan_replay_zero_module_dispatch_and_pool_traffic(self):
        from repro.core import ResNetEnsemble

        ensemble = ResNetEnsemble([self._tiny_model(seed=s) for s in (0, 1)])
        x = RNG.random((8, 32)).astype(np.float32)
        ensemble.forward_fused(x, batch_size=8)  # trace
        pool = ensemble.buffer_pool
        before_fresh, before_reuse = pool.fresh_allocations, pool.reuses
        calls_before = nn.module_calls()
        ensemble.forward_fused(x, batch_size=8)  # replay
        assert nn.module_calls() == calls_before
        assert pool.fresh_allocations == before_fresh
        assert pool.reuses == before_reuse  # replay touches no pooled scratch


class TestEngineBackendChoice:
    def _engine(self, backend_name=None):
        from repro.core import CamAL, ResNetConfig, ResNetEnsemble, ResNetTSC
        from repro.serving import EngineConfig, InferenceEngine

        models = [
            ResNetTSC(ResNetConfig(kernel_size=k, filters=(4, 8, 8), seed=i))
            for i, k in enumerate((5, 7))
        ]
        camal = CamAL(ResNetEnsemble(models), detection_threshold=0.0)
        engine = InferenceEngine(
            EngineConfig(window=32, stride=16, batch_size=16, backend=backend_name)
        )
        engine.register("kettle", camal)
        return engine

    def test_outputs_unchanged_by_backend_choice(self):
        series = (RNG.random(500) * 2000.0).astype(np.float32)
        results = {}
        for name in ("reference", "im2col", "fft"):
            results[name] = self._engine(name).run(series).per_appliance["kettle"]
        ref = results["reference"]
        for name in ("im2col", "fft"):
            got = results[name]
            np.testing.assert_allclose(
                got.soft_status, ref.soft_status, rtol=1e-5, atol=1e-5
            )
            # Binary status may only differ where the soft score sits within
            # float tolerance of the 0.5 rounding threshold.
            disagree = got.status != ref.status
            assert np.all(np.abs(ref.soft_status[disagree] - 0.5) < 1e-4)

    def test_engine_rejects_unknown_backend(self):
        from repro.serving import EngineConfig, InferenceEngine

        with pytest.raises(ValueError, match="unknown backend"):
            InferenceEngine(EngineConfig(window=32, backend="cudnn"))

    def test_engine_persists_autotune_cache(self, tmp_path):
        import json
        import os

        backend.clear_autotune_cache()
        path = str(tmp_path / "autotune.json")
        engine = self._engine("auto")
        engine.config = type(engine.config)(
            window=32, stride=16, batch_size=16, backend="auto", autotune_cache=path
        )
        series = (RNG.random(200) * 2000.0).astype(np.float32)
        engine.run(series)
        assert os.path.exists(path)
        with open(path) as fh:
            saved = json.load(fh)
        assert saved  # at least the engine's conv shapes were tuned
        assert set(saved.values()) <= {"reference", "im2col", "fft"}

    def test_buffer_pool_stats_surface(self):
        engine = self._engine()
        series = (RNG.random(200) * 2000.0).astype(np.float32)
        engine.run(series)
        stats = engine.buffer_pool_stats()
        assert "kettle" in stats
        assert stats["kettle"]["fresh_allocations"] > 0

    def test_plan_stats_surface_and_warmup(self):
        engine = self._engine()
        assert engine.plan_stats() == {}  # nothing traced yet
        engine.warmup()  # primes the plan cache with a (batch, window) batch
        stats = engine.plan_stats()
        assert stats["kettle"]["traces"] >= 1
        replays_before = stats["kettle"]["replays"]
        series = np.full(16 * 16 + 16, 800.0, dtype=np.float32)
        engine.run(series)  # full batches replay the warmed plan
        assert engine.plan_stats()["kettle"]["replays"] > replays_before

    def test_autotune_off_env_serves_default_kernel(self, monkeypatch):
        monkeypatch.setenv(backend.AUTOTUNE_ENV, "off")
        backend.clear_autotune_cache()
        x = RNG.random((2, 3, 40)).astype(np.float32)
        w = RNG.random((4, 3, 5)).astype(np.float32)
        with backend.use_backend("auto"):
            out = backend.conv1d_fused(x, w, stride=1, padding=2, relu=False)
        with backend.use_backend("im2col"):
            ref = backend.conv1d_fused(x, w, stride=1, padding=2, relu=False)
        np.testing.assert_array_equal(out, ref)
        # The untimed default must not be cached as if it had been tuned.
        assert not backend.autotune_cache_dirty()


class TestUpsampleSegmentSum:
    """Oracle test: the bincount backward equals the old ``np.add.at`` path."""

    @staticmethod
    def _old_backward(x_data, idx, grad):
        d_x = np.zeros_like(x_data)
        np.add.at(d_x, (slice(None), slice(None), idx), grad)
        return d_x

    @pytest.mark.parametrize("length,target", [(5, 13), (10, 4), (7, 7), (3, 50)])
    def test_matches_add_at_oracle(self, length, target):
        x = Tensor(RNG.normal(size=(2, 3, length)).astype(np.float32), requires_grad=True)
        out = F.upsample_to1d(x, target)
        upstream = RNG.normal(size=out.shape).astype(np.float32)
        out.backward(upstream)
        idx = np.minimum((np.arange(target) * length) // target, length - 1)
        oracle = self._old_backward(x.data, idx, upstream)
        np.testing.assert_allclose(x.grad, oracle, rtol=1e-5, atol=1e-6)
