"""Tests for the §V-B preprocessing pipeline."""

import numpy as np
import pytest

from repro import simdata as sd


class TestResample:
    def test_averages_blocks(self):
        x = np.array([1.0, 3.0, 5.0, 7.0])
        assert np.allclose(sd.resample_average(x, 2), [2.0, 6.0])

    def test_factor_one_is_copy(self):
        x = np.array([1.0, 2.0])
        out = sd.resample_average(x, 1)
        assert np.array_equal(out, x)
        out[0] = 99
        assert x[0] == 1.0

    def test_drops_trailing_partial_block(self):
        x = np.arange(7.0)
        assert len(sd.resample_average(x, 3)) == 2

    def test_partial_nan_block_averages_valid(self):
        x = np.array([2.0, np.nan, 4.0, 6.0])
        out = sd.resample_average(x, 2)
        assert out[0] == pytest.approx(2.0)
        assert out[1] == pytest.approx(5.0)

    def test_all_nan_block_stays_nan(self):
        x = np.array([np.nan, np.nan, 1.0, 1.0])
        out = sd.resample_average(x, 2)
        assert np.isnan(out[0]) and out[1] == 1.0

    def test_invalid_factor(self):
        with pytest.raises(ValueError):
            sd.resample_average(np.zeros(4), 0)

    def test_keep_tail_averages_partial_block(self):
        x = np.arange(7.0)  # tail block = [6.0]
        out = sd.resample_average(x, 3, keep_tail=True)
        assert np.allclose(out, [1.0, 4.0, 6.0])

    def test_keep_tail_mean_of_tail_samples(self):
        x = np.array([2.0, 4.0, 10.0, 20.0, 30.0])
        out = sd.resample_average(x, 2, keep_tail=True)
        assert out[-1] == pytest.approx(30.0)
        out = sd.resample_average(np.append(x, 40.0), 4, keep_tail=True)
        assert out[-1] == pytest.approx(35.0)

    def test_keep_tail_noop_on_aligned_length(self):
        x = np.arange(6.0)
        assert np.array_equal(
            sd.resample_average(x, 3, keep_tail=True), sd.resample_average(x, 3)
        )

    def test_keep_tail_nan_handling(self):
        x = np.array([1.0, 1.0, np.nan, 3.0])
        out = sd.resample_average(x, 3, keep_tail=True)
        assert out[0] == pytest.approx(1.0)
        assert out[1] == pytest.approx(3.0)
        all_nan_tail = sd.resample_average(
            np.array([1.0, 1.0, np.nan]), 2, keep_tail=True
        )
        assert np.isnan(all_nan_tail[-1])

    def test_keep_tail_preserves_dtype(self):
        x = np.arange(5, dtype=np.float32)
        assert sd.resample_average(x, 2, keep_tail=True).dtype == np.float32


class TestForwardFill:
    def test_fills_short_gaps(self):
        x = np.array([1.0, np.nan, np.nan, 4.0])
        out = sd.forward_fill(x, max_gap=2)
        assert np.allclose(out, [1.0, 1.0, 1.0, 4.0])

    def test_leaves_long_gaps(self):
        x = np.array([1.0, np.nan, np.nan, np.nan, 5.0])
        out = sd.forward_fill(x, max_gap=2)
        assert np.isnan(out[1:4]).all()

    def test_leading_gap_never_filled(self):
        x = np.array([np.nan, 2.0, 3.0])
        out = sd.forward_fill(x, max_gap=5)
        assert np.isnan(out[0])

    def test_max_gap_zero_noop(self):
        x = np.array([1.0, np.nan, 3.0])
        out = sd.forward_fill(x, max_gap=0)
        assert np.isnan(out[1])

    def test_idempotent(self):
        x = np.array([1.0, np.nan, np.nan, np.nan, np.nan, 2.0, np.nan, 3.0])
        once = sd.forward_fill(x, max_gap=2)
        twice = sd.forward_fill(once, max_gap=2)
        assert np.array_equal(once, twice, equal_nan=True)

    def test_does_not_mutate_input(self):
        x = np.array([1.0, np.nan])
        sd.forward_fill(x, max_gap=1)
        assert np.isnan(x[1])

    def test_negative_gap_raises(self):
        with pytest.raises(ValueError):
            sd.forward_fill(np.zeros(3), -1)

    @staticmethod
    def _forward_fill_reference(series, max_gap):
        """Pre-vectorization per-sample implementation, kept as the oracle."""
        out = series.copy()
        isnan = np.isnan(out)
        if not isnan.any() or max_gap == 0:
            return out
        n = len(out)
        i = 0
        while i < n:
            if not isnan[i]:
                i += 1
                continue
            start = i
            while i < n and isnan[i]:
                i += 1
            if i - start <= max_gap and start > 0:
                out[start:i] = out[start - 1]
        return out

    @pytest.mark.parametrize("max_gap", [1, 2, 3, 7])
    def test_matches_reference_on_random_nan_runs(self, max_gap):
        """The vectorized fill is sample-identical to the per-sample loop."""
        rng = np.random.default_rng(42 + max_gap)
        for trial in range(20):
            n = int(rng.integers(1, 400))
            x = rng.normal(300.0, 150.0, n).astype(np.float32)
            # Knock out NaN runs of varied lengths, straddling max_gap.
            for _ in range(int(rng.integers(0, 12))):
                start = int(rng.integers(0, n))
                span = int(rng.integers(1, 2 * max_gap + 3))
                x[start : start + span] = np.nan
            got = sd.forward_fill(x, max_gap)
            want = self._forward_fill_reference(x, max_gap)
            assert np.array_equal(got, want, equal_nan=True)
            assert got.dtype == want.dtype

    def test_matches_reference_edge_patterns(self):
        patterns = [
            np.array([np.nan]),
            np.array([np.nan, np.nan, np.nan]),
            np.array([1.0]),
            np.array([np.nan, 1.0, np.nan]),
            np.array([1.0, np.nan]),
            np.array([np.nan, np.nan, 2.0, np.nan, np.nan, 3.0, np.nan]),
        ]
        for x in patterns:
            for max_gap in (0, 1, 2, 5):
                got = sd.forward_fill(x, max_gap)
                want = self._forward_fill_reference(x, max_gap)
                assert np.array_equal(got, want, equal_nan=True), (x, max_gap)

    def test_trailing_gap_within_bound_filled(self):
        x = np.array([1.0, 2.0, np.nan, np.nan])
        out = sd.forward_fill(x, max_gap=2)
        assert np.allclose(out, [1.0, 2.0, 2.0, 2.0])


class TestStatusAndScaling:
    def test_on_status_threshold(self):
        power = np.array([0.0, 299.0, 300.0, 2000.0])
        assert np.allclose(sd.on_status(power, 300.0), [0, 0, 1, 1])

    def test_on_status_nan_is_off(self):
        assert sd.on_status(np.array([np.nan]), 10.0)[0] == 0.0

    def test_scale_divides_by_1000(self):
        assert sd.scale_aggregate(np.array([2500.0]))[0] == pytest.approx(2.5)
        assert sd.SCALE_DIVISOR == 1000.0


class TestSliceWindows:
    def test_window_count_and_shape(self):
        agg = np.arange(100.0)
        power = np.zeros(100)
        ws = sd.slice_windows(agg, power, 10.0, window=30)
        assert len(ws) == 3
        assert ws.inputs.shape == (3, 30)
        assert ws.window == 30

    def test_nan_windows_discarded(self):
        agg = np.ones(90)
        agg[35] = np.nan  # poisons the second window of three
        ws = sd.slice_windows(agg, None, 10.0, window=30)
        assert len(ws) == 2

    def test_weak_label_is_any_on(self):
        agg = np.full(60, 100.0)
        power = np.zeros(60)
        power[40] = 500.0
        ws = sd.slice_windows(agg, power, 300.0, window=30)
        assert np.allclose(ws.weak, [0.0, 1.0])

    def test_strong_labels_align(self):
        agg = np.full(30, 600.0)
        power = np.zeros(30)
        power[5:10] = 400.0
        ws = sd.slice_windows(agg, power, 300.0, window=30)
        assert ws.strong[0, 5:10].sum() == 5
        assert ws.strong.sum() == 5

    def test_no_power_channel_gives_zero_labels(self):
        ws = sd.slice_windows(np.ones(40), None, 10.0, window=20)
        assert ws.strong.sum() == 0
        assert ws.weak.sum() == 0

    def test_label_counts(self):
        ws = sd.slice_windows(np.ones(100), None, 10.0, window=25)
        assert ws.n_weak_labels == 4
        assert ws.n_strong_labels == 100

    def test_invalid_window_raises(self):
        with pytest.raises(ValueError):
            sd.slice_windows(np.ones(10), None, 1.0, window=0)

    def test_inputs_scaled_aggregate_unscaled_kept(self):
        agg = np.full(20, 2000.0)
        ws = sd.slice_windows(agg, None, 1.0, window=10)
        assert ws.inputs.max() == pytest.approx(2.0)
        assert ws.aggregate_watts.max() == pytest.approx(2000.0)


class TestConcatWindowSets:
    def _ws(self, n, w=10, house="a"):
        return sd.slice_windows(np.ones(n * w), None, 1.0, window=w, house_id=house)

    def test_concat(self):
        merged = sd.concat_window_sets([self._ws(2, house="a"), self._ws(3, house="b")])
        assert len(merged) == 5
        assert "a" in merged.house_id and "b" in merged.house_id

    def test_empty_sets_skipped(self):
        empty = sd.slice_windows(np.ones(5), None, 1.0, window=10)  # 0 windows
        merged = sd.concat_window_sets([empty, self._ws(2)])
        assert len(merged) == 2

    def test_all_empty_raises(self):
        empty = sd.slice_windows(np.ones(5), None, 1.0, window=10)
        with pytest.raises(ValueError):
            sd.concat_window_sets([empty])

    def test_mixed_window_lengths_raise(self):
        with pytest.raises(ValueError):
            sd.concat_window_sets([self._ws(2, w=10), self._ws(2, w=20)])


class TestLabels:
    def test_budgets(self):
        ws = sd.slice_windows(np.ones(100), None, 1.0, window=25)
        assert sd.strong_budget(ws).n_labels == 100
        assert sd.weak_budget(ws).n_labels == 4
        assert sd.possession_budget(7).n_labels == 7

    def test_unknown_scheme_raises(self):
        budget = sd.LabelBudget(1, 1, "bogus")
        with pytest.raises(ValueError):
            budget.n_labels

    def test_subset_windows_stratified(self):
        rng = np.random.default_rng(0)
        agg = np.ones(1000)
        power = np.zeros(1000)
        power[::100] = 10.0  # every 100th sample ON -> every window positive?
        ws = sd.slice_windows(agg, power, 5.0, window=10)
        # make a mixed-label set manually
        ws.weak[: len(ws) // 2] = 0.0
        sub = sd.subset_windows(ws, 10, rng)
        assert len(sub) == 10
        assert 0 < sub.weak.sum() < 10  # both classes present

    def test_subset_not_larger_than_source(self):
        rng = np.random.default_rng(0)
        ws = sd.slice_windows(np.ones(40), None, 1.0, window=10)
        assert len(sd.subset_windows(ws, 100, rng)) == 4

    def test_replicate_possession_label(self):
        ws = sd.slice_windows(np.ones(40), None, 1.0, window=10)
        owned = sd.replicate_possession_label(ws, True)
        assert owned.weak.min() == 1.0
        not_owned = sd.replicate_possession_label(ws, False)
        assert not_owned.weak.max() == 0.0

    def test_label_sweep_sizes_monotone(self):
        sizes = sd.label_sweep_sizes(1000, points=5)
        assert sizes == sorted(sizes)
        assert sizes[-1] == 1000

    def test_label_sweep_small_total(self):
        assert sd.label_sweep_sizes(5) == [5]


class TestSplits:
    def test_ukdale_fixed_train(self):
        c = sd.ukdale_like(days=1.0, seed=0)
        split = sd.split_houses(c, seed=0)
        assert set(split.train) == {"ukdale_h1", "ukdale_h3", "ukdale_h4"}
        assert {*split.val, *split.test} == {"ukdale_h2", "ukdale_h5"}

    def test_refit_counts(self):
        c = sd.refit_like(days=1.0, seed=0)
        split = sd.split_houses(c, seed=1)
        assert len(split.test) == 2 and len(split.val) == 2
        assert len(split.train) == 16

    def test_no_overlap_enforced(self):
        with pytest.raises(ValueError):
            sd.HouseSplit(train=("a",), val=("a",), test=("b",))

    def test_possession_split_fractions(self):
        c = sd.edf_weak_like(days=2.0, n_houses=20, seed=0)
        split = sd.possession_split(c, seed=0)
        assert len(split.train) == 14
        assert len(split.val) == 2
        assert len(split.test) == 4

    def test_possession_split_bad_fractions(self):
        c = sd.edf_weak_like(days=2.0, n_houses=10, seed=0)
        with pytest.raises(ValueError):
            sd.possession_split(c, fractions=(0.5, 0.2, 0.2))

    def test_split_deterministic(self):
        c = sd.refit_like(days=1.0, seed=0)
        assert sd.split_houses(c, seed=5) == sd.split_houses(c, seed=5)
