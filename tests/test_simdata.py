"""Tests for the synthetic smart-meter substrate (signatures, households,
corpora)."""

import numpy as np
import pytest

from repro import simdata as sd


class TestApplianceSpecs:
    def test_registry_matches_table1(self):
        assert sd.get_spec("kettle").on_threshold_watts == 500.0
        assert sd.get_spec("kettle").avg_power_watts == 2000.0
        assert sd.get_spec("dishwasher").on_threshold_watts == 300.0
        assert sd.get_spec("dishwasher").avg_power_watts == 800.0
        assert sd.get_spec("microwave").on_threshold_watts == 200.0
        assert sd.get_spec("shower").avg_power_watts == 8000.0
        assert sd.get_spec("electric_vehicle").avg_power_watts == 4000.0
        assert sd.get_spec("washing_machine").avg_power_watts == 500.0

    def test_unknown_appliance_helpful_error(self):
        with pytest.raises(KeyError, match="known:"):
            sd.get_spec("toaster")

    def test_hour_weights_are_24(self):
        for spec in sd.APPLIANCES.values():
            assert len(spec.hour_weights) == 24

    def test_bad_spec_validation(self):
        with pytest.raises(ValueError):
            sd.ApplianceSpec("x", 1, 1, 1, (5.0, 2.0))


class TestSignatures:
    @pytest.mark.parametrize("name", sorted(sd.SIGNATURES))
    def test_nonnegative_and_right_length(self, name):
        rng = np.random.default_rng(0)
        trace = sd.generate_activation(name, duration_minutes=10.0, dt_seconds=60.0, rng=rng)
        assert len(trace) == 10
        assert (trace >= 0).all()

    def test_kettle_power_band(self):
        rng = np.random.default_rng(1)
        trace = sd.generate_activation("kettle", 4.0, 60.0, rng)
        assert 1500 < trace.max() < 2800

    def test_shower_is_high_power(self):
        rng = np.random.default_rng(2)
        trace = sd.generate_activation("shower", 8.0, 60.0, rng)
        assert trace.min() > 6000

    def test_dishwasher_has_heat_and_motor_phases(self):
        rng = np.random.default_rng(3)
        trace = sd.generate_activation("dishwasher", 100.0, 60.0, rng)
        assert trace.max() > 1800  # heating
        assert trace.min() < 300  # motor-only phases

    def test_ev_taper(self):
        rng = np.random.default_rng(4)
        trace = sd.generate_activation("electric_vehicle", 240.0, 1800.0, rng)
        assert trace[-1] < trace[0]  # constant-voltage taper

    def test_unknown_signature_raises(self):
        with pytest.raises(KeyError):
            sd.generate_activation("laser", 5.0, 60.0, np.random.default_rng(0))

    def test_respects_sampling_period(self):
        rng = np.random.default_rng(5)
        fine = sd.generate_activation("kettle", 10.0, 60.0, rng)
        coarse = sd.generate_activation("kettle", 10.0, 600.0, rng)
        assert len(fine) == 10 and len(coarse) == 1


class TestHouseholdSimulation:
    def make_trace(self, **overrides):
        config = sd.HouseholdConfig(
            house_id="h1",
            owned={"kettle": 1.0, "dishwasher": 1.0},
            submetered=["kettle", "dishwasher"],
            days=3.0,
            dt_seconds=60.0,
            **overrides,
        )
        return sd.simulate_household(config, np.random.default_rng(0))

    def test_basic_shapes(self):
        trace = self.make_trace()
        assert trace.n_samples == 3 * 1440
        assert set(trace.appliance_power) == {"kettle", "dishwasher"}
        assert trace.duration_days == pytest.approx(3.0)

    def test_possession_flags(self):
        trace = self.make_trace()
        assert trace.possession["kettle"] is True
        assert trace.possession["shower"] is False

    def test_aggregate_contains_appliances(self):
        """Where the kettle is ON the aggregate must be at least near its draw."""
        trace = self.make_trace(noise_watts=1.0)
        kettle = trace.appliance_power["kettle"]
        on = kettle > 1500
        if on.any():
            assert (trace.aggregate[on] >= kettle[on] * 0.9).all()

    def test_status_uses_threshold(self):
        trace = self.make_trace()
        status = trace.status("kettle")
        power = trace.appliance_power["kettle"]
        assert np.array_equal(status, (power >= 500.0).astype(np.float32))

    def test_status_missing_submeter_raises(self):
        trace = self.make_trace()
        with pytest.raises(KeyError):
            trace.status("shower")

    def test_missing_rate_injects_nans(self):
        trace = self.make_trace(missing_rate=0.05)
        assert np.isnan(trace.aggregate).any()

    def test_deterministic_given_seed(self):
        a = self.make_trace()
        b = self.make_trace()
        assert np.array_equal(a.aggregate, b.aggregate, equal_nan=True)

    def test_unowned_appliance_not_simulated(self):
        config = sd.HouseholdConfig(
            house_id="h", owned={}, submetered=["kettle"], days=1.0
        )
        trace = sd.simulate_household(config, np.random.default_rng(0))
        assert trace.appliance_power == {}


class TestCorpora:
    def test_ukdale_structure(self):
        c = sd.ukdale_like(days=2.0, seed=0)
        assert len(c) == 5
        assert c.dt_seconds == 60.0
        assert c.max_ffill_samples == 3
        assert "kettle" in c.target_appliances

    def test_refit_structure(self):
        c = sd.refit_like(days=2.0, seed=0)
        assert len(c) == 20
        assert "washing_machine" in c.target_appliances

    def test_ideal_possession_only_houses(self):
        c = sd.ideal_like(days=2.0, n_submetered=5, n_possession_only=7, seed=0)
        assert len(c) == 12
        assert len(c.submetered_house_ids) == 5
        # possession-only houses have no channels
        extra = c.houses[-1]
        assert extra.appliance_power == {}
        assert extra.possession  # but they do answer the questionnaire

    def test_edf_ev_sampling_rate(self):
        c = sd.edf_ev_like(days=10.0, n_houses=3, seed=0)
        assert c.dt_seconds == 1800.0
        assert c.houses[0].n_samples == 10 * 48

    def test_edf_weak_has_no_submeters(self):
        c = sd.edf_weak_like(days=5.0, n_houses=6, seed=0)
        assert c.submetered_house_ids == []
        assert all(h.appliance_power == {} for h in c.houses)

    def test_house_lookup(self):
        c = sd.ukdale_like(days=1.0, seed=0)
        assert c.house("ukdale_h2").house_id == "ukdale_h2"
        with pytest.raises(KeyError):
            c.house("nope")

    def test_possession_labels_dict(self):
        c = sd.edf_weak_like(days=5.0, n_houses=10, seed=0)
        labels = c.possession_labels("electric_vehicle")
        assert len(labels) == 10
        assert any(labels.values()) and not all(labels.values())

    def test_corpus_builders_registry(self):
        assert set(sd.CORPUS_BUILDERS) == {"ukdale", "refit", "ideal", "edf_ev", "edf_weak"}
