"""Finite-difference gradient checks for every fused primitive.

These are the correctness bedrock of the NumPy substrate: each primitive's
hand-derived backward pass is compared against central differences.
"""

import numpy as np
import pytest

from repro.nn import check_gradients
from repro.nn import functional as F
from repro.nn.tensor import Tensor

RNG = np.random.default_rng(42)


def _t(shape, scale=1.0):
    return Tensor(RNG.normal(size=shape).astype(np.float32) * scale, requires_grad=True)


def _mask(shape):
    return Tensor(RNG.normal(size=shape).astype(np.float32))


class TestConvGradients:
    def test_conv1d_basic(self):
        x, w, b = _t((2, 3, 12)), _t((4, 3, 3), 0.4), _t((4,), 0.1)
        m = _mask((2, 4, 12))
        check_gradients(lambda: (F.conv1d(x, w, b, padding=1) * m).sum(), [x, w, b])

    def test_conv1d_stride2(self):
        x, w = _t((1, 2, 11)), _t((3, 2, 5), 0.4)
        m = _mask((1, 3, 5))  # (11 + 2 - 5) // 2 + 1
        check_gradients(lambda: (F.conv1d(x, w, None, stride=2, padding=1) * m).sum(), [x, w])

    def test_conv1d_no_padding(self):
        x, w = _t((2, 1, 9)), _t((2, 1, 4), 0.5)
        m = _mask((2, 2, 6))
        check_gradients(lambda: (F.conv1d(x, w, None) * m).sum(), [x, w])

    def test_conv1d_stride3_uneven(self):
        x, w = _t((1, 1, 13)), _t((2, 1, 3), 0.5)
        out_len = (13 - 3) // 3 + 1
        m = _mask((1, 2, out_len))
        check_gradients(lambda: (F.conv1d(x, w, None, stride=3) * m).sum(), [x, w])


class TestPoolingGradients:
    def test_max_pool(self):
        x = _t((2, 2, 12))
        m = _mask((2, 2, 4))
        check_gradients(lambda: (F.max_pool1d(x, 3) * m).sum(), [x])

    def test_max_pool_with_padding(self):
        x = _t((1, 2, 10))
        m = _mask((1, 2, 4))
        check_gradients(lambda: (F.max_pool1d(x, 3) * m).sum(), [x])

    def test_avg_pool(self):
        x = _t((2, 3, 8))
        m = _mask((2, 3, 4))
        check_gradients(lambda: (F.avg_pool1d(x, 2) * m).sum(), [x])

    def test_avg_pool_ragged_length(self):
        """Count-exclude-pad backward: the tail's gradient is grad/remainder
        on the real samples and nothing leaks onto the padding."""
        x = _t((2, 3, 7))
        m = _mask((2, 3, 3))
        check_gradients(lambda: (F.avg_pool1d(x, 3) * m).sum(), [x])

    def test_global_avg_pool(self):
        x = _t((2, 3, 7))
        m = _mask((2, 3))
        check_gradients(lambda: (F.global_avg_pool1d(x) * m).sum(), [x])

    def test_upsample_nearest(self):
        x = _t((1, 2, 5))
        m = _mask((1, 2, 15))
        check_gradients(lambda: (F.upsample_nearest1d(x, 3) * m).sum(), [x])

    def test_upsample_to_arbitrary(self):
        x = _t((1, 2, 5))
        m = _mask((1, 2, 13))
        check_gradients(lambda: (F.upsample_to1d(x, 13) * m).sum(), [x])

    def test_upsample_to_shrink(self):
        x = _t((1, 2, 10))
        m = _mask((1, 2, 4))
        check_gradients(lambda: (F.upsample_to1d(x, 4) * m).sum(), [x])


class TestNormGradients:
    def test_batch_norm_training(self):
        x, g, b = _t((4, 3, 6)), _t((3,), 0.5), _t((3,), 0.5)
        m = _mask((4, 3, 6))

        def f():
            return (
                F.batch_norm(
                    x, g, b, np.zeros(3, np.float32), np.ones(3, np.float32), training=True
                )
                * m
            ).sum()

        check_gradients(f, [x, g, b])

    def test_batch_norm_eval(self):
        x, g, b = _t((4, 3, 6)), _t((3,), 0.5), _t((3,), 0.5)
        rm = RNG.normal(size=3).astype(np.float32)
        rv = (RNG.random(3).astype(np.float32) + 0.5)
        m = _mask((4, 3, 6))

        def f():
            return (F.batch_norm(x, g, b, rm, rv, training=False) * m).sum()

        check_gradients(f, [x, g, b])

    def test_batch_norm_2d_input(self):
        x, g, b = _t((8, 5)), _t((5,), 0.5), _t((5,), 0.5)
        m = _mask((8, 5))

        def f():
            return (
                F.batch_norm(
                    x, g, b, np.zeros(5, np.float32), np.ones(5, np.float32), training=True
                )
                * m
            ).sum()

        check_gradients(f, [x, g, b])

    def test_layer_norm(self):
        x, g, b = _t((3, 4, 6)), _t((6,), 0.5), _t((6,), 0.5)
        m = _mask((3, 4, 6))
        check_gradients(lambda: (F.layer_norm(x, g, b) * m).sum(), [x, g, b])


class TestSoftmaxGradients:
    def test_softmax(self):
        x = _t((3, 5))
        m = _mask((3, 5))
        check_gradients(lambda: (F.softmax(x, axis=1) * m).sum(), [x])

    def test_softmax_other_axis(self):
        x = _t((2, 3, 4))
        m = _mask((2, 3, 4))
        check_gradients(lambda: (F.softmax(x, axis=1) * m).sum(), [x])

    def test_log_softmax(self):
        x = _t((3, 5))
        m = _mask((3, 5))
        check_gradients(lambda: (F.log_softmax(x, axis=1) * m).sum(), [x])


class TestLossGradients:
    def test_cross_entropy(self):
        logits = _t((6, 3))
        targets = RNG.integers(0, 3, size=6)
        check_gradients(lambda: F.cross_entropy(logits, targets), [logits])

    def test_bce_with_logits(self):
        logits = _t((4, 7))
        targets = (RNG.random((4, 7)) > 0.5).astype(np.float32)
        check_gradients(
            lambda: F.binary_cross_entropy_with_logits(logits, targets), [logits]
        )

    def test_bce_with_pos_weight(self):
        logits = _t((4, 7))
        targets = (RNG.random((4, 7)) > 0.5).astype(np.float32)
        check_gradients(
            lambda: F.binary_cross_entropy_with_logits(logits, targets, pos_weight=3.0),
            [logits],
        )

    def test_mse(self):
        pred = _t((5, 3))
        target = RNG.normal(size=(5, 3)).astype(np.float32)
        check_gradients(lambda: F.mse_loss(pred, target), [pred])


class TestElementwiseGradients:
    @pytest.mark.parametrize(
        "op",
        ["exp", "log", "sqrt", "tanh", "sigmoid", "relu", "abs"],
    )
    def test_unary(self, op):
        # log/sqrt need positive inputs; shift accordingly.
        base = RNG.random((3, 4)).astype(np.float32) + 0.5
        if op in ("tanh", "sigmoid", "relu", "abs", "exp"):
            base = RNG.normal(size=(3, 4)).astype(np.float32)
            if op == "relu":
                base += 0.1 * np.sign(base)  # keep away from the kink
        x = Tensor(base, requires_grad=True)
        m = _mask((3, 4))
        check_gradients(lambda: (getattr(x, op)() * m).sum(), [x])

    def test_matmul_grad(self):
        a, b = _t((3, 4)), _t((4, 2))
        m = _mask((3, 2))
        check_gradients(lambda: ((a @ b) * m).sum(), [a, b])

    def test_batched_matmul_grad(self):
        a, b = _t((2, 3, 4)), _t((2, 4, 2))
        m = _mask((2, 3, 2))
        check_gradients(lambda: ((a @ b) * m).sum(), [a, b])
