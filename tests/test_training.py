"""Tests for the shared training loops (classifier / seq2seq / MIL)."""

import numpy as np
import pytest

from repro import nn
from repro.baselines import CRNN, CRNNConfig, TPNILM, TPNILMConfig
from repro.core import ResNetConfig, ResNetTSC
from repro.training import (
    TrainConfig,
    evaluate_classifier_loss,
    evaluate_seq2seq_loss,
    predict_proba,
    predict_status_seq2seq,
    train_classifier,
    train_seq2seq,
    train_weak_mil,
)


def _spike_windows(n=80, w=32, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.random((n, w)).astype(np.float32) * 0.2
    strong = np.zeros((n, w), dtype=np.float32)
    y = (rng.random(n) > 0.5).astype(np.float32)
    for i in np.flatnonzero(y == 1):
        start = rng.integers(0, w - 5)
        x[i, start : start + 4] += 2.0
        strong[i, start : start + 4] = 1.0
    return x, strong, y


class TestClassifierLoop:
    def test_loss_decreases_and_learns(self):
        x, _, y = _spike_windows()
        model = ResNetTSC(ResNetConfig(kernel_size=3, filters=(8, 16, 16), seed=0))
        cfg = TrainConfig(epochs=10, batch_size=16, patience=0, lr=3e-3, seed=0)
        result = train_classifier(model, x, y, x, y, cfg)
        assert result.epochs_run == 10
        assert result.val_losses[-1] < result.val_losses[0]
        model.eval()
        proba = predict_proba(model, x)
        acc = ((proba > 0.5) == (y == 1)).mean()
        assert acc > 0.8

    def test_early_stopping_restores_best(self):
        x, _, y = _spike_windows(n=40)
        model = ResNetTSC(ResNetConfig(kernel_size=3, filters=(4, 4, 4), seed=1))
        cfg = TrainConfig(epochs=20, batch_size=16, patience=2, lr=5e-2, seed=0)
        result = train_classifier(model, x, y, x, y, cfg)
        model.eval()
        final = evaluate_classifier_loss(model, x, y)
        assert final == pytest.approx(result.best_val_loss, rel=0.2)

    def test_history_lengths_match(self):
        x, _, y = _spike_windows(n=30)
        model = ResNetTSC(ResNetConfig(kernel_size=3, filters=(4, 4, 4), seed=2))
        result = train_classifier(model, x, y, x, y, TrainConfig(epochs=3, patience=0))
        assert len(result.train_losses) == len(result.val_losses) == len(result.epoch_times)
        assert result.wall_time_seconds > 0

    def test_empty_val_set_inf_loss(self):
        model = ResNetTSC(ResNetConfig(kernel_size=3, filters=(4, 4, 4)))
        loss = evaluate_classifier_loss(model, np.zeros((0, 16)), np.zeros(0))
        assert loss == float("inf")


class TestSeq2SeqLoop:
    def test_learns_spike_localization(self):
        x, strong, _ = _spike_windows(n=100)
        model = TPNILM(TPNILMConfig(channels=(8, 16, 16), seed=0))
        cfg = TrainConfig(epochs=15, batch_size=16, patience=0, lr=5e-3, seed=0)
        result = train_seq2seq(model, x, strong, x, strong, cfg)
        assert result.val_losses[-1] < result.val_losses[0]
        model.eval()
        status = predict_status_seq2seq(model, x)
        from repro.metrics import f1_score

        assert f1_score(strong, status) > 0.5

    def test_predict_status_binary_and_shaped(self):
        model = TPNILM(TPNILMConfig(channels=(4, 8, 8), seed=1))
        model.eval()
        status = predict_status_seq2seq(model, np.zeros((3, 32), dtype=np.float32))
        assert status.shape == (3, 32)
        assert set(np.unique(status)) <= {0.0, 1.0}

    def test_seq2seq_eval_loss(self):
        model = TPNILM(TPNILMConfig(channels=(4, 8, 8), seed=2))
        x = np.zeros((4, 32), dtype=np.float32)
        s = np.zeros((4, 32), dtype=np.float32)
        loss = evaluate_seq2seq_loss(model, x, s)
        assert np.isfinite(loss)


class TestWeakMILLoop:
    def test_weak_training_improves_detection(self):
        x, _, y = _spike_windows(n=100)
        model = CRNN(CRNNConfig(conv_channels=(4, 8, 8), hidden_size=8, seed=0))
        cfg = TrainConfig(epochs=5, batch_size=16, patience=0, lr=3e-3, seed=0)
        result = train_weak_mil(model, x, y, x, y, cfg)
        assert result.val_losses[-1] < result.val_losses[0]

    def test_weak_loop_uses_only_window_labels(self):
        """The MIL loop must run without any strong labels at all."""
        x, _, y = _spike_windows(n=30)
        model = CRNN(CRNNConfig(conv_channels=(4, 4, 4), hidden_size=4, seed=1))
        result = train_weak_mil(model, x, y, x, y, TrainConfig(epochs=1, patience=0))
        assert result.epochs_run == 1
