"""Tests for the training subsystem: loops, checkpoint/resume, parallel."""

import os

import numpy as np
import pytest

from repro import nn
from repro.baselines import CRNN, CRNNConfig, TPNILM, TPNILMConfig
from repro.core import (
    EnsembleConfig,
    ResNetConfig,
    ResNetTSC,
    train_ensemble,
    train_ensemble_parallel,
)
from repro.training import (
    TrainConfig,
    checkpoint_exists,
    evaluate_classifier_loss,
    evaluate_seq2seq_loss,
    load_checkpoint,
    predict_proba,
    predict_status_seq2seq,
    state_dicts_equal,
    train_classifier,
    train_seq2seq,
    train_weak_mil,
)


def _spike_windows(n=80, w=32, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.random((n, w)).astype(np.float32) * 0.2
    strong = np.zeros((n, w), dtype=np.float32)
    y = (rng.random(n) > 0.5).astype(np.float32)
    for i in np.flatnonzero(y == 1):
        start = rng.integers(0, w - 5)
        x[i, start : start + 4] += 2.0
        strong[i, start : start + 4] = 1.0
    return x, strong, y


class TestClassifierLoop:
    def test_loss_decreases_and_learns(self):
        x, _, y = _spike_windows()
        model = ResNetTSC(ResNetConfig(kernel_size=3, filters=(8, 16, 16), seed=0))
        cfg = TrainConfig(epochs=10, batch_size=16, patience=0, lr=3e-3, seed=0)
        result = train_classifier(model, x, y, x, y, cfg)
        assert result.epochs_run == 10
        assert result.val_losses[-1] < result.val_losses[0]
        model.eval()
        proba = predict_proba(model, x)
        acc = ((proba > 0.5) == (y == 1)).mean()
        assert acc > 0.8

    def test_early_stopping_restores_best(self):
        x, _, y = _spike_windows(n=40)
        model = ResNetTSC(ResNetConfig(kernel_size=3, filters=(4, 4, 4), seed=1))
        cfg = TrainConfig(epochs=20, batch_size=16, patience=2, lr=5e-2, seed=0)
        result = train_classifier(model, x, y, x, y, cfg)
        model.eval()
        final = evaluate_classifier_loss(model, x, y)
        assert final == pytest.approx(result.best_val_loss, rel=0.2)

    def test_history_lengths_match(self):
        x, _, y = _spike_windows(n=30)
        model = ResNetTSC(ResNetConfig(kernel_size=3, filters=(4, 4, 4), seed=2))
        result = train_classifier(model, x, y, x, y, TrainConfig(epochs=3, patience=0))
        assert len(result.train_losses) == len(result.val_losses) == len(result.epoch_times)
        assert result.wall_time_seconds > 0

    def test_empty_val_set_inf_loss(self):
        model = ResNetTSC(ResNetConfig(kernel_size=3, filters=(4, 4, 4)))
        loss = evaluate_classifier_loss(model, np.zeros((0, 16)), np.zeros(0))
        assert loss == float("inf")


class TestSeq2SeqLoop:
    def test_learns_spike_localization(self):
        x, strong, _ = _spike_windows(n=100)
        model = TPNILM(TPNILMConfig(channels=(8, 16, 16), seed=0))
        # Class-balanced BCE (pos_weight ~ 1/positive-rate): without it the
        # sparse ON labels leave the sigmoid outputs hovering just under
        # the 0.5 decision threshold, and the f1 assertion measures float
        # rounding luck instead of whether the loop learned localization.
        pos_weight = float(1.0 / max(strong.mean(), 1e-6))
        cfg = TrainConfig(
            epochs=15, batch_size=16, patience=0, lr=5e-3, seed=0,
            pos_weight=pos_weight,
        )
        result = train_seq2seq(model, x, strong, x, strong, cfg)
        assert result.val_losses[-1] < result.val_losses[0]
        model.eval()
        status = predict_status_seq2seq(model, x)
        from repro.metrics import f1_score

        assert f1_score(strong, status) > 0.5

    def test_predict_status_binary_and_shaped(self):
        model = TPNILM(TPNILMConfig(channels=(4, 8, 8), seed=1))
        model.eval()
        status = predict_status_seq2seq(model, np.zeros((3, 32), dtype=np.float32))
        assert status.shape == (3, 32)
        assert set(np.unique(status)) <= {0.0, 1.0}

    def test_seq2seq_eval_loss(self):
        model = TPNILM(TPNILMConfig(channels=(4, 8, 8), seed=2))
        x = np.zeros((4, 32), dtype=np.float32)
        s = np.zeros((4, 32), dtype=np.float32)
        loss = evaluate_seq2seq_loss(model, x, s)
        assert np.isfinite(loss)


class TestWeakMILLoop:
    def test_weak_training_improves_detection(self):
        x, _, y = _spike_windows(n=100)
        model = CRNN(CRNNConfig(conv_channels=(4, 8, 8), hidden_size=8, seed=0))
        cfg = TrainConfig(epochs=5, batch_size=16, patience=0, lr=3e-3, seed=0)
        result = train_weak_mil(model, x, y, x, y, cfg)
        assert result.val_losses[-1] < result.val_losses[0]

    def test_weak_loop_uses_only_window_labels(self):
        """The MIL loop must run without any strong labels at all."""
        x, _, y = _spike_windows(n=30)
        model = CRNN(CRNNConfig(conv_channels=(4, 4, 4), hidden_size=4, seed=1))
        result = train_weak_mil(model, x, y, x, y, TrainConfig(epochs=1, patience=0))
        assert result.epochs_run == 1


TINY_RESNET = dict(kernel_size=3, filters=(4, 8, 8), seed=0)


def _tiny_model():
    return ResNetTSC(ResNetConfig(**TINY_RESNET))


_states_equal = state_dicts_equal


class _KilledMidEpoch(RuntimeError):
    """Raised by the flaky model to simulate a crash inside an epoch."""


class _FlakyResNet(ResNetTSC):
    """ResNet whose forward dies after a fixed number of calls."""

    def __init__(self, config, fail_after_calls):
        super().__init__(config)
        self.fail_after_calls = fail_after_calls
        self.calls = 0

    def forward(self, x):
        self.calls += 1
        if self.calls > self.fail_after_calls:
            raise _KilledMidEpoch(f"simulated crash at forward #{self.calls}")
        return super().forward(x)


class TestCheckpointResume:
    """Resume must replay the uninterrupted run bit-for-bit."""

    def _config(self, path=None, **overrides):
        base = dict(epochs=5, batch_size=16, patience=0, lr=3e-3, seed=0)
        base.update(overrides)
        return TrainConfig(checkpoint_path=path, **base)

    def test_kill_mid_epoch_then_resume_reproduces_run(self, tmp_path):
        """Kill a run inside epoch 3, resume from its epoch-2 checkpoint in
        a *fresh* process-like state (new model object): the loss history
        and the final weights must match the uninterrupted run exactly."""
        x, _, y = _spike_windows(n=48)
        path = str(tmp_path / "ck.npz")

        uninterrupted = _tiny_model()
        full = train_classifier(uninterrupted, x, y, x, y, self._config())

        # 48 windows / batch 16 = 3 train + 3 val forwards per epoch; dying
        # at call 15 is mid-way through epoch 3's training batches.
        flaky = _FlakyResNet(ResNetConfig(**TINY_RESNET), fail_after_calls=14)
        with pytest.raises(_KilledMidEpoch):
            train_classifier(flaky, x, y, x, y, self._config(path))
        assert checkpoint_exists(path)
        assert load_checkpoint(path).epoch == 2

        resumed_model = _tiny_model()
        resumed = train_classifier(resumed_model, x, y, x, y, self._config(path))
        assert resumed.resumed_from_epoch == 2
        assert resumed.train_losses == full.train_losses
        assert resumed.val_losses == full.val_losses
        assert resumed.best_epoch == full.best_epoch
        assert _states_equal(uninterrupted.state_dict(), resumed_model.state_dict())

    def test_resume_with_optimizer_and_scheduler_state(self, tmp_path):
        """AdamW moments + warmup-cosine counters survive the round trip.

        The interruption is a mid-run kill under the *same* config — with a
        cosine-family schedule the horizon shapes the LR curve, so resuming
        under a different ``epochs`` is (correctly) refused instead.
        """
        x, _, y = _spike_windows(n=32)
        cfg = dict(
            optimizer="adamw",
            weight_decay=1e-2,
            scheduler="warmup_cosine",
            warmup_epochs=2,
            epochs=6,
            batch_size=16,
        )
        uninterrupted = _tiny_model()
        full = train_classifier(uninterrupted, x, y, x, y, self._config(**cfg))

        path = str(tmp_path / "ck.npz")
        # 32 windows / batch 16 = 2 train + 2 val forwards per epoch; call
        # 13 is epoch 4's first batch, so the kill lands after 3 epochs.
        flaky = _FlakyResNet(ResNetConfig(**TINY_RESNET), fail_after_calls=12)
        with pytest.raises(_KilledMidEpoch):
            train_classifier(flaky, x, y, x, y, self._config(path, **cfg))
        resumed_model = _tiny_model()
        resumed = train_classifier(resumed_model, x, y, x, y, self._config(path, **cfg))
        assert resumed.resumed_from_epoch == 3
        assert resumed.train_losses == full.train_losses
        assert resumed.val_losses == full.val_losses
        assert _states_equal(uninterrupted.state_dict(), resumed_model.state_dict())

    def test_resume_under_different_cosine_horizon_refused(self, tmp_path):
        """epochs is part of the cosine schedule's shape: a checkpoint from
        a t_max=3 run must not continue a t_max=6 trajectory."""
        x, _, y = _spike_windows(n=32)
        path = str(tmp_path / "ck.npz")
        train_classifier(
            _tiny_model(), x, y, x, y,
            self._config(path, scheduler="cosine", epochs=3),
        )
        with pytest.raises(ValueError, match="epochs"):
            train_classifier(
                _tiny_model(), x, y, x, y,
                self._config(path, scheduler="cosine", epochs=6),
            )

    def test_resume_with_fewer_epochs_than_trained_refused(self, tmp_path):
        x, _, y = _spike_windows(n=32)
        path = str(tmp_path / "ck.npz")
        train_classifier(_tiny_model(), x, y, x, y, self._config(path, epochs=5))
        with pytest.raises(ValueError, match="already trained 5 epochs"):
            train_classifier(_tiny_model(), x, y, x, y, self._config(path, epochs=3))

    def test_resume_preserves_dropout_stream(self, tmp_path):
        """Models with Dropout resume on the same mask sequence."""
        x, strong, _ = _spike_windows(n=32)
        cfg = dict(epochs=4, batch_size=16, patience=0, seed=0)

        uninterrupted = TPNILM(TPNILMConfig(channels=(4, 8, 8), seed=0))
        full = train_seq2seq(uninterrupted, x, strong, x, strong, TrainConfig(**cfg))

        path = str(tmp_path / "ck.npz")
        half = TPNILM(TPNILMConfig(channels=(4, 8, 8), seed=0))
        train_seq2seq(
            half, x, strong, x, strong,
            TrainConfig(checkpoint_path=path, **dict(cfg, epochs=2)),
        )
        resumed_model = TPNILM(TPNILMConfig(channels=(4, 8, 8), seed=0))
        resumed = train_seq2seq(
            resumed_model, x, strong, x, strong, TrainConfig(checkpoint_path=path, **cfg)
        )
        assert resumed.train_losses == full.train_losses
        assert _states_equal(uninterrupted.state_dict(), resumed_model.state_dict())

    def test_early_stop_state_travels_with_checkpoint(self, tmp_path):
        """Resuming a run that already early-stopped must not train more."""
        x, _, y = _spike_windows(n=32)
        path = str(tmp_path / "ck.npz")
        config = self._config(path, epochs=20, patience=2, lr=5e-2)
        model = _tiny_model()
        result = train_classifier(model, x, y, x, y, config)
        assert result.epochs_run < 20  # must actually early-stop at this LR

        resumed_model = _tiny_model()
        resumed = train_classifier(resumed_model, x, y, x, y, config)
        assert resumed.epochs_run == result.epochs_run  # nothing re-trained
        assert resumed.train_losses == result.train_losses
        assert _states_equal(model.state_dict(), resumed_model.state_dict())

    def test_resume_false_ignores_checkpoint(self, tmp_path):
        x, _, y = _spike_windows(n=32)
        path = str(tmp_path / "ck.npz")
        model = _tiny_model()
        train_classifier(model, x, y, x, y, self._config(path, epochs=2))
        fresh = _tiny_model()
        result = train_classifier(
            fresh, x, y, x, y, self._config(path, epochs=2, resume=False)
        )
        assert result.resumed_from_epoch == 0
        assert result.epochs_run == 2

    def test_checkpoint_every_skips_epochs(self, tmp_path):
        x, _, y = _spike_windows(n=32)
        path = str(tmp_path / "ck.npz")
        train_classifier(
            _tiny_model(), x, y, x, y,
            self._config(path, epochs=3, checkpoint_every=2),
        )
        # Saved at epoch 2 (cadence) and at completion (epoch 3).
        assert load_checkpoint(path).epoch == 3

    def test_unknown_scheduler_or_optimizer_rejected(self):
        with pytest.raises(ValueError, match="scheduler"):
            TrainConfig(scheduler="linear")
        with pytest.raises(ValueError, match="optimizer"):
            TrainConfig(optimizer="rmsprop")


class TestParallelEnsemble:
    """Worker fan-out must be invisible in the trained ensemble."""

    def _data(self):
        x, _, y = _spike_windows(n=48)
        return x, y.astype(np.int64)

    def _config(self):
        return EnsembleConfig(
            kernel_set=(3, 5),
            n_trials=1,
            n_models=2,
            filters=(4, 8, 8),
            train=TrainConfig(epochs=2, batch_size=16, patience=0),
            seed=0,
        )

    def test_parallel_matches_serial_bitwise(self):
        x, y = self._data()
        serial, serial_candidates = train_ensemble(x, y, x, y, self._config())
        parallel, parallel_candidates = train_ensemble_parallel(
            x, y, x, y, self._config(), n_workers=2
        )
        assert [c.val_loss for c in serial_candidates] == [
            c.val_loss for c in parallel_candidates
        ]
        assert serial.kernel_sizes == parallel.kernel_sizes
        for member_s, member_p in zip(serial.models, parallel.models):
            assert _states_equal(member_s.state_dict(), member_p.state_dict())

    def test_checkpoint_dir_resumes_candidates(self, tmp_path):
        x, y = self._data()
        directory = str(tmp_path / "ensemble")
        first, _ = train_ensemble(x, y, x, y, self._config(), checkpoint_dir=directory)
        files = sorted(
            name for name in os.listdir(directory) if name.endswith(".npz")
        )
        # candidate_i<ki>_k<ks>_t<trial>_s<seed>_d<task digest>.npz
        assert [name.split("_d")[0] for name in files] == [
            "candidate_i0_k3_t0_s30",
            "candidate_i1_k5_t0_s1050",
        ]
        # Second run finds complete per-candidate checkpoints: no epochs are
        # re-trained and the selected ensemble is identical.
        second, candidates = train_ensemble(
            x, y, x, y, self._config(), checkpoint_dir=directory
        )
        for member_a, member_b in zip(first.models, second.models):
            assert _states_equal(member_a.state_dict(), member_b.state_dict())

    def test_invalid_worker_count_rejected(self):
        x, y = self._data()
        with pytest.raises(ValueError, match="n_workers"):
            train_ensemble(x, y, x, y, self._config(), n_workers=0)

    def test_stale_checkpoint_dir_not_reused_across_seeds(self, tmp_path):
        """A different ensemble seed must never resume another seed's
        candidates: its checkpoint filenames embed the derived seed."""
        import dataclasses

        x, y = self._data()
        directory = str(tmp_path / "ensemble")
        seed0, _ = train_ensemble(x, y, x, y, self._config(), checkpoint_dir=directory)
        config1 = dataclasses.replace(self._config(), seed=1)
        seed1, _ = train_ensemble(x, y, x, y, config1, checkpoint_dir=directory)
        current = [n for n in os.listdir(directory) if n.endswith(".npz")]
        assert len(current) == 4  # two fresh files, not reuse
        differs = any(
            not _states_equal(a.state_dict(), b.state_dict())
            for a, b in zip(seed0.models, seed1.models)
        )
        assert differs  # seed 1 really trained its own candidates

    def test_stale_checkpoint_dir_not_reused_across_datasets(self, tmp_path):
        """Same seed, different training data (e.g. another appliance):
        the task digest in the filename prevents silent weight reuse."""
        x, y = self._data()
        x2, _, y2 = _spike_windows(n=48, seed=7)
        directory = str(tmp_path / "ensemble")
        first, _ = train_ensemble(x, y, x, y, self._config(), checkpoint_dir=directory)
        second, _ = train_ensemble(
            x2, y2.astype(np.int64), x2, y2.astype(np.int64),
            self._config(), checkpoint_dir=directory,
        )
        current = [n for n in os.listdir(directory) if n.endswith(".npz")]
        assert len(current) == 4  # no filename collision
        differs = any(
            not _states_equal(a.state_dict(), b.state_dict())
            for a, b in zip(first.models, second.models)
        )
        assert differs  # the second task trained on its own data

    def test_scheduler_mismatch_on_resume_is_clear_error(self, tmp_path):
        x, _, y = _spike_windows(n=32)
        path = str(tmp_path / "ck.npz")
        train_classifier(
            _tiny_model(), x, y, x, y,
            TrainConfig(
                epochs=1, batch_size=16, patience=0,
                scheduler="cosine", checkpoint_path=path,
            ),
        )
        with pytest.raises(ValueError, match="scheduler"):
            train_classifier(
                _tiny_model(), x, y, x, y,
                TrainConfig(
                    epochs=2, batch_size=16, patience=0, checkpoint_path=path,
                ),
            )

    def test_optimizer_mismatch_on_resume_is_clear_error(self, tmp_path):
        x, _, y = _spike_windows(n=32)
        path = str(tmp_path / "ck.npz")
        train_classifier(
            _tiny_model(), x, y, x, y,
            TrainConfig(epochs=1, batch_size=16, patience=0, checkpoint_path=path),
        )
        with pytest.raises(ValueError, match="optimizer"):
            train_classifier(
                _tiny_model(), x, y, x, y,
                TrainConfig(
                    epochs=2, batch_size=16, patience=0,
                    optimizer="sgd", checkpoint_path=path,
                ),
            )
