"""Statistical sanity checks on the simulated corpora.

These guard the *difficulty ordering* that drives the paper's results:
short low-power appliances must stay rare and hard, long high-power
appliances frequent enough to learn from (DESIGN.md §2).
"""

import numpy as np
import pytest

from repro import simdata as sd


@pytest.fixture(scope="module")
def ukdale():
    return sd.ukdale_like(days=6.0, seed=0)


class TestDutyCycles:
    """ON-fraction bands per appliance across a whole corpus."""

    def _on_fraction(self, corpus, appliance):
        fractions = []
        for house in corpus.houses:
            power = house.appliance_power.get(appliance)
            if power is None:
                continue
            spec = sd.get_spec(appliance)
            fractions.append((power >= spec.on_threshold_watts).mean())
        return np.mean(fractions) if fractions else None

    def test_kettle_sparse(self, ukdale):
        frac = self._on_fraction(ukdale, "kettle")
        assert frac is not None
        assert 0.001 < frac < 0.05  # a few minutes, a few times a day

    def test_dishwasher_moderate(self, ukdale):
        frac = self._on_fraction(ukdale, "dishwasher")
        assert frac is not None
        assert 0.005 < frac < 0.15

    def test_microwave_rarest(self, ukdale):
        micro = self._on_fraction(ukdale, "microwave")
        dish = self._on_fraction(ukdale, "dishwasher")
        if micro is not None and dish is not None:
            assert micro < dish  # microwave is the hard, rare case


class TestAggregateComposition:
    def test_aggregate_never_negative(self, ukdale):
        for house in ukdale.houses:
            valid = house.aggregate[~np.isnan(house.aggregate)]
            assert (valid >= 0).all()

    def test_base_load_present(self, ukdale):
        """Even at night the aggregate stays above zero (base + fridge)."""
        for house in ukdale.houses:
            valid = house.aggregate[~np.isnan(house.aggregate)]
            assert np.quantile(valid, 0.05) > 20.0

    def test_appliance_peaks_visible_in_aggregate(self, ukdale):
        house = ukdale.houses[0]
        for appliance, power in house.appliance_power.items():
            spec = sd.get_spec(appliance)
            on = power >= spec.on_threshold_watts
            if on.any():
                # At ON timestamps the aggregate includes the appliance draw.
                assert (house.aggregate[on] >= power[on] * 0.8).mean() > 0.9

    def test_distinct_houses_distinct_signals(self, ukdale):
        a, b = ukdale.houses[0].aggregate, ukdale.houses[1].aggregate
        n = min(len(a), len(b))
        assert not np.allclose(np.nan_to_num(a[:n]), np.nan_to_num(b[:n]))


class TestHourOfDayUsage:
    def test_kettle_morning_bias(self):
        """Kettle events concentrate around the configured peak hours."""
        spec = sd.get_spec("kettle")
        rng = np.random.default_rng(0)
        n = int(10 * 86400 / 60)  # 10 days at 1-minute
        channel = sd.simulate_appliance_channel("kettle", n, 60.0, rng, usage_scale=2.0)
        on_idx = np.flatnonzero(channel >= spec.on_threshold_watts)
        if len(on_idx) < 10:
            pytest.skip("too few events sampled")
        hours = (on_idx * 60.0 / 3600.0) % 24
        morning = ((hours >= 6) & (hours <= 9)).mean()
        night = ((hours >= 1) & (hours <= 4)).mean()
        assert morning > night

    def test_ev_overnight_bias(self):
        spec = sd.get_spec("electric_vehicle")
        rng = np.random.default_rng(1)
        n = int(30 * 86400 / 1800)  # 30 days at 30-minute
        channel = sd.simulate_appliance_channel(
            "electric_vehicle", n, 1800.0, rng, usage_scale=2.0
        )
        on_idx = np.flatnonzero(channel >= spec.on_threshold_watts)
        if len(on_idx) < 10:
            pytest.skip("too few events sampled")
        hours = (on_idx * 1800.0 / 3600.0) % 24
        evening_night = ((hours >= 19) | (hours <= 6)).mean()
        assert evening_night > 0.5
