"""Tests for the §V-D evaluation metrics and the Fig. 9 cost model."""

import numpy as np
import pytest

from repro import metrics as M


class TestConfusionAndF1:
    def test_perfect_prediction(self):
        y = np.array([1, 0, 1, 1])
        assert M.f1_score(y, y) == 1.0
        assert M.precision_score(y, y) == 1.0
        assert M.recall_score(y, y) == 1.0

    def test_all_wrong(self):
        y = np.array([1, 0])
        assert M.f1_score(y, 1 - y) == 0.0

    def test_known_values(self):
        y_true = np.array([1, 1, 0, 0, 1])
        y_pred = np.array([1, 0, 1, 0, 1])
        c = M.confusion(y_true, y_pred)
        assert (c.tp, c.fp, c.fn, c.tn) == (2, 1, 1, 1)
        assert c.precision == pytest.approx(2 / 3)
        assert c.recall == pytest.approx(2 / 3)
        assert c.f1 == pytest.approx(2 / 3)

    def test_no_positives_predicted(self):
        y_true = np.array([1, 1])
        y_pred = np.array([0, 0])
        assert M.f1_score(y_true, y_pred) == 0.0
        assert M.precision_score(y_true, y_pred) == 0.0

    def test_accepts_2d_arrays(self):
        y = np.ones((3, 4))
        assert M.f1_score(y, y) == 1.0

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            M.f1_score(np.ones(3), np.ones(4))


class TestBalancedAccuracy:
    def test_perfect(self):
        y = np.array([1, 0, 1])
        assert M.balanced_accuracy(y, y) == 1.0

    def test_always_positive_predictor(self):
        y_true = np.array([1, 1, 0, 0])
        y_pred = np.ones(4)
        assert M.balanced_accuracy(y_true, y_pred) == pytest.approx(0.5)

    def test_imbalance_insensitive(self):
        # A predictor that nails the minority class scores the same
        # regardless of class frequency.
        y_true = np.array([1] + [0] * 99)
        y_pred = y_true.copy()
        assert M.balanced_accuracy(y_true, y_pred) == 1.0

    def test_accuracy_plain(self):
        assert M.accuracy(np.array([1, 0]), np.array([1, 1])) == 0.5

    def test_detection_f1(self):
        y = np.array([1, 0, 1])
        assert M.detection_f1(y, y) == 1.0


class TestEnergyMetrics:
    def test_mae_rmse_known(self):
        t = np.array([0.0, 0.0])
        p = np.array([3.0, 4.0])
        assert M.mae(t, p) == pytest.approx(3.5)
        assert M.rmse(t, p) == pytest.approx(np.sqrt(12.5))

    def test_rmse_at_least_mae(self):
        rng = np.random.default_rng(0)
        t, p = rng.random(50), rng.random(50)
        assert M.rmse(t, p) >= M.mae(t, p) - 1e-12

    def test_matching_ratio_perfect(self):
        x = np.array([100.0, 0.0, 50.0])
        assert M.matching_ratio(x, x) == 1.0

    def test_matching_ratio_disjoint(self):
        t = np.array([100.0, 0.0])
        p = np.array([0.0, 100.0])
        assert M.matching_ratio(t, p) == 0.0

    def test_matching_ratio_half(self):
        t = np.array([100.0])
        p = np.array([50.0])
        assert M.matching_ratio(t, p) == pytest.approx(0.5)

    def test_matching_ratio_symmetric(self):
        rng = np.random.default_rng(1)
        t, p = rng.random(20) * 100, rng.random(20) * 100
        assert M.matching_ratio(t, p) == pytest.approx(M.matching_ratio(p, t))

    def test_matching_ratio_both_zero(self):
        z = np.zeros(5)
        assert M.matching_ratio(z, z) == 1.0

    def test_matching_ratio_clips_negative(self):
        t = np.array([-5.0, 10.0])
        p = np.array([0.0, 10.0])
        assert M.matching_ratio(t, p) == 1.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            M.mae(np.ones(2), np.ones(3))


class TestCostModel:
    def test_strong_is_most_expensive(self):
        strong = M.strong_label_cost(1000)
        weak = M.weak_label_cost(1000)
        possession = M.possession_label_cost(1000)
        assert strong.dollars_per_household > weak.dollars_per_household > possession.dollars_per_household
        assert strong.gco2_per_household > weak.gco2_per_household >= possession.gco2_per_household

    def test_possession_is_one_questionnaire(self):
        c = M.possession_label_cost(10)
        assert c.dollars_per_household == 10.0
        assert c.gco2_per_household == pytest.approx(4.62)

    def test_storage_ratio_is_paper_6x(self):
        assert M.storage_ratio_strong_vs_possession(5) == pytest.approx(6.0, rel=0.01)

    def test_storage_scales_with_households(self):
        a = M.strong_label_cost(1)
        b = M.strong_label_cost(10)
        assert b.storage_bytes == pytest.approx(10 * a.storage_bytes)

    def test_one_million_households_terabytes(self):
        # Paper: ~15 TB/year order of magnitude for 1M households at 1-min.
        c = M.strong_label_cost(1_000_000, n_appliances=5)
        assert 10.0 < c.storage_terabytes < 40.0

    def test_validation(self):
        with pytest.raises(ValueError):
            M.strong_label_cost(0)
        with pytest.raises(ValueError):
            M.weak_label_cost(5, n_appliances=0)
        with pytest.raises(ValueError):
            M.possession_label_cost(5, years=0)
