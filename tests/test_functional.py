"""Behavioural tests for fused primitives (shapes, values, edge cases)."""

import numpy as np
import pytest

from repro.nn import functional as F
from repro.nn.tensor import Tensor


class TestConv1d:
    def test_same_padding_preserves_length(self):
        x = Tensor(np.zeros((2, 1, 20), dtype=np.float32))
        w = Tensor(np.zeros((4, 1, 5), dtype=np.float32))
        out = F.conv1d(x, w, None, padding=2)
        assert out.shape == (2, 4, 20)

    def test_output_length_formula(self):
        x = Tensor(np.zeros((1, 1, 17), dtype=np.float32))
        w = Tensor(np.zeros((1, 1, 4), dtype=np.float32))
        out = F.conv1d(x, w, None, stride=3, padding=1)
        assert out.shape[2] == (17 + 2 - 4) // 3 + 1

    def test_identity_kernel(self):
        x = np.random.default_rng(0).normal(size=(1, 1, 8)).astype(np.float32)
        w = Tensor(np.ones((1, 1, 1), dtype=np.float32))
        out = F.conv1d(Tensor(x), w, None)
        assert np.allclose(out.data, x)

    def test_matches_manual_correlation(self):
        x = np.array([[[1.0, 2.0, 3.0, 4.0]]], dtype=np.float32)
        w = np.array([[[1.0, 0.0, -1.0]]], dtype=np.float32)
        out = F.conv1d(Tensor(x), Tensor(w), None)
        # correlation: x[t]*1 + x[t+2]*(-1)
        assert np.allclose(out.data, [[[1 - 3, 2 - 4]]])

    def test_bias_added_per_channel(self):
        x = Tensor(np.zeros((1, 1, 5), dtype=np.float32))
        w = Tensor(np.zeros((2, 1, 3), dtype=np.float32))
        b = Tensor(np.array([1.5, -2.0], dtype=np.float32), requires_grad=True)
        out = F.conv1d(x, w, b, padding=1)
        assert np.allclose(out.data[0, 0], 1.5)
        assert np.allclose(out.data[0, 1], -2.0)

    def test_channel_mismatch_raises(self):
        x = Tensor(np.zeros((1, 3, 5), dtype=np.float32))
        w = Tensor(np.zeros((2, 4, 3), dtype=np.float32))
        with pytest.raises(ValueError, match="channel mismatch"):
            F.conv1d(x, w, None)

    def test_wrong_ndim_raises(self):
        with pytest.raises(ValueError, match="conv1d expects"):
            F.conv1d(Tensor(np.zeros((3, 5))), Tensor(np.zeros((1, 1, 3))), None)

    def test_too_short_input_raises(self):
        x = Tensor(np.zeros((1, 1, 2), dtype=np.float32))
        w = Tensor(np.zeros((1, 1, 5), dtype=np.float32))
        with pytest.raises(ValueError, match="shorter than kernel"):
            F.conv1d(x, w, None)


class TestPooling:
    def test_max_pool_values(self):
        x = Tensor(np.array([[[1.0, 3.0, 2.0, 8.0]]], dtype=np.float32))
        out = F.max_pool1d(x, 2)
        assert np.allclose(out.data, [[[3.0, 8.0]]])

    def test_max_pool_pads_with_neg_inf(self):
        x = Tensor(np.array([[[-5.0, -1.0, -9.0]]], dtype=np.float32))
        out = F.max_pool1d(x, 2)
        assert np.allclose(out.data, [[[-1.0, -9.0]]])

    def test_avg_pool_values(self):
        x = Tensor(np.array([[[2.0, 4.0, 6.0, 8.0]]], dtype=np.float32))
        out = F.avg_pool1d(x, 2)
        assert np.allclose(out.data, [[[3.0, 7.0]]])

    def test_avg_pool_ragged_tail_is_true_mean(self):
        """Count-exclude-pad: the tail block averages only real samples
        instead of being dragged toward zero by the padding."""
        x = Tensor(np.array([[[2.0, 4.0, 6.0, 8.0, 10.0]]], dtype=np.float32))
        out = F.avg_pool1d(x, 2)
        assert np.allclose(out.data, [[[3.0, 7.0, 10.0]]])

    def test_avg_pool_ragged_two_sample_tail(self):
        x = Tensor(np.arange(1, 9, dtype=np.float32).reshape(1, 1, 8))
        out = F.avg_pool1d(x, 3)
        # Blocks: (1,2,3), (4,5,6), (7,8) -> means 2, 5, 7.5.
        assert np.allclose(out.data, [[[2.0, 5.0, 7.5]]])

    def test_global_avg_pool(self):
        x = Tensor(np.arange(6, dtype=np.float32).reshape(1, 2, 3))
        out = F.global_avg_pool1d(x)
        assert out.shape == (1, 2)
        assert np.allclose(out.data, [[1.0, 4.0]])

    def test_upsample_nearest_repeats(self):
        x = Tensor(np.array([[[1.0, 2.0]]], dtype=np.float32))
        out = F.upsample_nearest1d(x, 3)
        assert np.allclose(out.data, [[[1, 1, 1, 2, 2, 2]]])

    def test_upsample_to_exact_multiple_matches_repeat(self):
        x = Tensor(np.array([[[1.0, 2.0]]], dtype=np.float32))
        assert np.allclose(
            F.upsample_to1d(x, 6).data, F.upsample_nearest1d(x, 3).data
        )

    def test_upsample_to_identity(self):
        x = Tensor(np.random.default_rng(0).normal(size=(1, 2, 7)).astype(np.float32))
        assert np.allclose(F.upsample_to1d(x, 7).data, x.data)


class TestNorms:
    def test_batch_norm_normalizes_training(self):
        rng = np.random.default_rng(0)
        x = Tensor(rng.normal(3.0, 2.0, size=(16, 4, 10)).astype(np.float32))
        g = Tensor(np.ones(4, np.float32), requires_grad=True)
        b = Tensor(np.zeros(4, np.float32), requires_grad=True)
        out = F.batch_norm(x, g, b, np.zeros(4, np.float32), np.ones(4, np.float32), True)
        assert abs(out.data.mean()) < 1e-3
        assert abs(out.data.std() - 1.0) < 1e-2

    def test_batch_norm_updates_running_stats(self):
        rng = np.random.default_rng(1)
        x = Tensor(rng.normal(5.0, 1.0, size=(8, 2, 4)).astype(np.float32))
        g = Tensor(np.ones(2, np.float32), requires_grad=True)
        b = Tensor(np.zeros(2, np.float32), requires_grad=True)
        rm, rv = np.zeros(2, np.float32), np.ones(2, np.float32)
        F.batch_norm(x, g, b, rm, rv, training=True, momentum=0.5)
        assert np.all(rm > 1.0)  # moved toward the batch mean of ~5

    def test_batch_norm_eval_uses_running_stats(self):
        x = Tensor(np.full((2, 1, 3), 10.0, dtype=np.float32))
        g = Tensor(np.ones(1, np.float32), requires_grad=True)
        b = Tensor(np.zeros(1, np.float32), requires_grad=True)
        rm = np.array([10.0], np.float32)
        rv = np.array([4.0], np.float32)
        out = F.batch_norm(x, g, b, rm, rv, training=False)
        assert np.allclose(out.data, 0.0, atol=1e-5)

    def test_batch_norm_rejects_4d(self):
        x = Tensor(np.zeros((1, 2, 3, 4), dtype=np.float32))
        g = Tensor(np.ones(2, np.float32), requires_grad=True)
        b = Tensor(np.zeros(2, np.float32), requires_grad=True)
        with pytest.raises(ValueError):
            F.batch_norm(x, g, b, np.zeros(2), np.ones(2), True)

    def test_layer_norm_last_axis(self):
        rng = np.random.default_rng(2)
        x = Tensor(rng.normal(size=(3, 5, 8)).astype(np.float32))
        g = Tensor(np.ones(8, np.float32), requires_grad=True)
        b = Tensor(np.zeros(8, np.float32), requires_grad=True)
        out = F.layer_norm(x, g, b)
        assert np.allclose(out.data.mean(axis=-1), 0.0, atol=1e-4)
        assert np.allclose(out.data.std(axis=-1), 1.0, atol=1e-2)


class TestSoftmax:
    def test_rows_sum_to_one(self):
        x = Tensor(np.random.default_rng(0).normal(size=(4, 7)).astype(np.float32))
        out = F.softmax(x, axis=1)
        assert np.allclose(out.data.sum(axis=1), 1.0, atol=1e-5)

    def test_shift_invariance(self):
        x = np.random.default_rng(1).normal(size=(2, 5)).astype(np.float32)
        a = F.softmax(Tensor(x), axis=1).data
        b = F.softmax(Tensor(x + 100.0), axis=1).data
        assert np.allclose(a, b, atol=1e-5)

    def test_log_softmax_consistent(self):
        x = Tensor(np.random.default_rng(2).normal(size=(3, 4)).astype(np.float32))
        assert np.allclose(
            np.exp(F.log_softmax(x, axis=1).data), F.softmax(x, axis=1).data, atol=1e-5
        )

    def test_extreme_logits_stable(self):
        x = Tensor(np.array([[1000.0, -1000.0]], dtype=np.float32))
        out = F.softmax(x, axis=1)
        assert np.isfinite(out.data).all()
        assert out.data[0, 0] == pytest.approx(1.0)


class TestDropout:
    def test_identity_in_eval(self):
        x = Tensor(np.ones((4, 4), dtype=np.float32))
        out = F.dropout(x, 0.5, training=False, rng=np.random.default_rng(0))
        assert out is x

    def test_identity_when_p_zero(self):
        x = Tensor(np.ones((4, 4), dtype=np.float32))
        out = F.dropout(x, 0.0, training=True, rng=np.random.default_rng(0))
        assert out is x

    def test_scales_surviving_units(self):
        x = Tensor(np.ones((1000,), dtype=np.float32))
        out = F.dropout(x, 0.5, training=True, rng=np.random.default_rng(0))
        kept = out.data[out.data > 0]
        assert np.allclose(kept, 2.0)
        assert 0.35 < (out.data > 0).mean() < 0.65

    def test_p_one_raises(self):
        x = Tensor(np.ones((4,), dtype=np.float32))
        with pytest.raises(ValueError):
            F.dropout(x, 1.0, training=True, rng=np.random.default_rng(0))


class TestLosses:
    def test_cross_entropy_perfect_prediction(self):
        logits = Tensor(np.array([[100.0, 0.0], [0.0, 100.0]], dtype=np.float32))
        loss = F.cross_entropy(logits, np.array([0, 1]))
        assert loss.item() == pytest.approx(0.0, abs=1e-5)

    def test_cross_entropy_uniform(self):
        logits = Tensor(np.zeros((4, 3), dtype=np.float32))
        loss = F.cross_entropy(logits, np.array([0, 1, 2, 0]))
        assert loss.item() == pytest.approx(np.log(3), abs=1e-5)

    def test_bce_matches_manual(self):
        z = np.array([[0.3, -1.2]], dtype=np.float32)
        t = np.array([[1.0, 0.0]], dtype=np.float32)
        loss = F.binary_cross_entropy_with_logits(Tensor(z), t)
        p = 1 / (1 + np.exp(-z))
        manual = -(t * np.log(p) + (1 - t) * np.log(1 - p)).mean()
        assert loss.item() == pytest.approx(manual, abs=1e-5)

    def test_bce_extreme_logits_finite(self):
        z = Tensor(np.array([[500.0, -500.0]], dtype=np.float32))
        t = np.array([[0.0, 1.0]], dtype=np.float32)
        loss = F.binary_cross_entropy_with_logits(z, t)
        assert np.isfinite(loss.item())

    def test_mse_zero_for_equal(self):
        x = np.random.default_rng(0).normal(size=(3, 3)).astype(np.float32)
        assert F.mse_loss(Tensor(x), x).item() == pytest.approx(0.0)

    def test_mse_value(self):
        pred = Tensor(np.array([2.0, 0.0], dtype=np.float32))
        loss = F.mse_loss(pred, np.array([0.0, 0.0], dtype=np.float32))
        assert loss.item() == pytest.approx(2.0)
