"""Unit tests for the autograd Tensor engine."""

import numpy as np
import pytest

from repro.nn.tensor import (
    Tensor,
    concat,
    no_grad,
    ones,
    stack,
    tensor,
    where,
    zeros,
    _unbroadcast,
)


class TestConstruction:
    def test_from_list(self):
        t = Tensor([1.0, 2.0, 3.0])
        assert t.shape == (3,)
        assert t.dtype == np.float32

    def test_from_numpy_casts_to_float32(self):
        t = Tensor(np.arange(4, dtype=np.float64))
        assert t.dtype == np.float32

    def test_from_tensor_shares_nothing_grad(self):
        a = Tensor([1.0], requires_grad=True)
        b = Tensor(a)
        assert not b.requires_grad

    def test_scalar(self):
        t = tensor(3.5)
        assert t.item() == pytest.approx(3.5)

    def test_zeros_ones(self):
        assert np.all(zeros((2, 3)).data == 0)
        assert np.all(ones((2, 3)).data == 1)

    def test_repr_mentions_grad(self):
        assert "requires_grad" in repr(Tensor([1.0], requires_grad=True))
        assert "requires_grad" not in repr(Tensor([1.0]))

    def test_len_and_size(self):
        t = Tensor(np.zeros((4, 5)))
        assert len(t) == 4
        assert t.size == 20
        assert t.ndim == 2


class TestArithmetic:
    def test_add(self):
        c = Tensor([1.0, 2.0]) + Tensor([3.0, 4.0])
        assert np.allclose(c.data, [4.0, 6.0])

    def test_add_scalar_right_and_left(self):
        t = Tensor([1.0])
        assert (t + 2.0).data[0] == 3.0
        assert (2.0 + t).data[0] == 3.0

    def test_sub_rsub(self):
        t = Tensor([5.0])
        assert (t - 2.0).data[0] == 3.0
        assert (2.0 - t).data[0] == -3.0

    def test_mul_div(self):
        t = Tensor([6.0])
        assert (t * 2.0).data[0] == 12.0
        assert (t / 2.0).data[0] == 3.0
        assert (12.0 / t).data[0] == 2.0

    def test_neg_pow(self):
        t = Tensor([2.0])
        assert (-t).data[0] == -2.0
        assert (t ** 3).data[0] == 8.0

    def test_pow_requires_scalar(self):
        with pytest.raises(TypeError):
            Tensor([2.0]) ** Tensor([2.0])


class TestBackwardBasics:
    def test_add_grad(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([3.0, 4.0], requires_grad=True)
        (a + b).sum().backward()
        assert np.allclose(a.grad, [1.0, 1.0])
        assert np.allclose(b.grad, [1.0, 1.0])

    def test_mul_grad(self):
        a = Tensor([2.0, 3.0], requires_grad=True)
        b = Tensor([5.0, 7.0], requires_grad=True)
        (a * b).sum().backward()
        assert np.allclose(a.grad, [5.0, 7.0])
        assert np.allclose(b.grad, [2.0, 3.0])

    def test_div_grad(self):
        a = Tensor([4.0], requires_grad=True)
        b = Tensor([2.0], requires_grad=True)
        (a / b).backward()
        assert a.grad[0] == pytest.approx(0.5)
        assert b.grad[0] == pytest.approx(-1.0)

    def test_chain_rule(self):
        x = Tensor([3.0], requires_grad=True)
        y = (x * x + 2.0 * x).sum()  # dy/dx = 2x + 2 = 8
        y.backward()
        assert x.grad[0] == pytest.approx(8.0)

    def test_grad_accumulates_across_backward_calls(self):
        x = Tensor([1.0], requires_grad=True)
        (x * 2.0).sum().backward()
        (x * 2.0).sum().backward()
        assert x.grad[0] == pytest.approx(4.0)

    def test_reused_tensor_accumulates_within_graph(self):
        x = Tensor([2.0], requires_grad=True)
        y = x * x  # uses x twice: dy/dx = 2x = 4
        y.backward()
        assert x.grad[0] == pytest.approx(4.0)

    def test_backward_requires_scalar_without_grad_arg(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(RuntimeError):
            (x * 2.0).backward()

    def test_backward_on_non_grad_tensor_raises(self):
        with pytest.raises(RuntimeError):
            Tensor([1.0]).backward()

    def test_backward_with_explicit_grad(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        (x * 3.0).backward(np.array([1.0, 10.0], dtype=np.float32))
        assert np.allclose(x.grad, [3.0, 30.0])

    def test_diamond_graph(self):
        x = Tensor([2.0], requires_grad=True)
        a = x * 3.0
        b = x * 4.0
        (a + b).backward()
        assert x.grad[0] == pytest.approx(7.0)


class TestBroadcastingGrads:
    def test_add_broadcast_bias(self):
        x = Tensor(np.ones((4, 3)), requires_grad=True)
        b = Tensor(np.zeros(3), requires_grad=True)
        (x + b).sum().backward()
        assert np.allclose(b.grad, [4.0, 4.0, 4.0])

    def test_mul_broadcast_scalar_tensor(self):
        x = Tensor(np.ones((2, 2)), requires_grad=True)
        s = Tensor(2.0, requires_grad=True)
        (x * s).sum().backward()
        assert s.grad == pytest.approx(4.0)

    def test_unbroadcast_helper(self):
        grad = np.ones((4, 3))
        assert _unbroadcast(grad, (3,)).shape == (3,)
        assert _unbroadcast(grad, (1, 3)).shape == (1, 3)
        assert np.all(_unbroadcast(grad, (3,)) == 4.0)


class TestMatmul:
    def test_2d(self):
        a = Tensor(np.eye(3), requires_grad=True)
        b = Tensor(np.arange(9.0).reshape(3, 3), requires_grad=True)
        c = a.matmul(b)
        assert np.allclose(c.data, b.data)
        c.sum().backward()
        assert a.grad.shape == (3, 3)
        assert b.grad.shape == (3, 3)

    def test_batched(self):
        a = Tensor(np.random.default_rng(0).normal(size=(2, 3, 4)), requires_grad=True)
        b = Tensor(np.random.default_rng(1).normal(size=(2, 4, 5)), requires_grad=True)
        c = a @ b
        assert c.shape == (2, 3, 5)
        c.sum().backward()
        assert a.grad.shape == (2, 3, 4)
        assert b.grad.shape == (2, 4, 5)

    def test_broadcast_batch(self):
        a = Tensor(np.random.default_rng(0).normal(size=(2, 2, 3, 4)), requires_grad=True)
        b = Tensor(np.random.default_rng(1).normal(size=(4, 5)), requires_grad=True)
        c = a @ b
        assert c.shape == (2, 2, 3, 5)
        c.sum().backward()
        assert b.grad.shape == (4, 5)

    def test_matmul_matches_numpy(self):
        rng = np.random.default_rng(2)
        a_np = rng.normal(size=(3, 4)).astype(np.float32)
        b_np = rng.normal(size=(4, 2)).astype(np.float32)
        c = Tensor(a_np) @ Tensor(b_np)
        assert np.allclose(c.data, a_np @ b_np, atol=1e-6)


class TestReductions:
    def test_sum_axis_keepdims(self):
        x = Tensor(np.ones((2, 3, 4)), requires_grad=True)
        s = x.sum(axis=(0, 2), keepdims=True)
        assert s.shape == (1, 3, 1)
        s.sum().backward()
        assert np.all(x.grad == 1.0)

    def test_mean(self):
        x = Tensor([2.0, 4.0], requires_grad=True)
        m = x.mean()
        assert m.item() == pytest.approx(3.0)
        m.backward()
        assert np.allclose(x.grad, [0.5, 0.5])

    def test_mean_axis(self):
        x = Tensor(np.arange(6.0).reshape(2, 3))
        assert np.allclose(x.mean(axis=0).data, [1.5, 2.5, 3.5])

    def test_max_grad_routes_to_argmax(self):
        x = Tensor([1.0, 5.0, 3.0], requires_grad=True)
        x.max().backward()
        assert np.allclose(x.grad, [0.0, 1.0, 0.0])

    def test_max_axis(self):
        x = Tensor(np.array([[1.0, 2.0], [5.0, 0.0]]), requires_grad=True)
        m = x.max(axis=1)
        assert np.allclose(m.data, [2.0, 5.0])
        m.sum().backward()
        assert np.allclose(x.grad, [[0, 1], [1, 0]])

    def test_max_ties_split_gradient(self):
        x = Tensor([2.0, 2.0], requires_grad=True)
        x.max().backward()
        assert np.allclose(x.grad, [0.5, 0.5])

    def test_var(self):
        x = Tensor([1.0, 3.0])
        assert x.var().item() == pytest.approx(1.0)


class TestNonlinearities:
    def test_relu(self):
        x = Tensor([-1.0, 2.0], requires_grad=True)
        y = x.relu()
        assert np.allclose(y.data, [0.0, 2.0])
        y.sum().backward()
        assert np.allclose(x.grad, [0.0, 1.0])

    def test_sigmoid_range(self):
        y = Tensor(np.linspace(-10, 10, 21)).sigmoid()
        assert np.all((y.data > 0) & (y.data < 1))

    def test_tanh_matches_numpy(self):
        x = np.linspace(-2, 2, 9).astype(np.float32)
        assert np.allclose(Tensor(x).tanh().data, np.tanh(x), atol=1e-6)

    def test_exp_log_roundtrip(self):
        x = Tensor([0.5, 1.5])
        assert np.allclose(x.exp().log().data, x.data, atol=1e-6)

    def test_sqrt(self):
        x = Tensor([4.0], requires_grad=True)
        y = x.sqrt()
        assert y.data[0] == pytest.approx(2.0)
        y.backward()
        assert x.grad[0] == pytest.approx(0.25)

    def test_abs_grad_sign(self):
        x = Tensor([-3.0, 2.0], requires_grad=True)
        x.abs().sum().backward()
        assert np.allclose(x.grad, [-1.0, 1.0])

    def test_clip(self):
        x = Tensor([-1.0, 0.5, 2.0], requires_grad=True)
        y = x.clip(0.0, 1.0)
        assert np.allclose(y.data, [0.0, 0.5, 1.0])
        y.sum().backward()
        assert np.allclose(x.grad, [0.0, 1.0, 0.0])


class TestShapeOps:
    def test_reshape_roundtrip_grad(self):
        x = Tensor(np.arange(6.0), requires_grad=True)
        x.reshape(2, 3).sum().backward()
        assert x.grad.shape == (6,)

    def test_transpose_default_reverses(self):
        x = Tensor(np.zeros((2, 3, 4)))
        assert x.transpose().shape == (4, 3, 2)

    def test_transpose_axes_grad(self):
        x = Tensor(np.random.default_rng(0).normal(size=(2, 3, 4)), requires_grad=True)
        x.transpose(1, 0, 2).sum().backward()
        assert x.grad.shape == (2, 3, 4)

    def test_T_property(self):
        x = Tensor(np.zeros((2, 5)))
        assert x.T.shape == (5, 2)

    def test_swapaxes(self):
        x = Tensor(np.zeros((2, 3, 4)), requires_grad=True)
        y = x.swapaxes(1, 2)
        assert y.shape == (2, 4, 3)
        y.sum().backward()
        assert x.grad.shape == (2, 3, 4)

    def test_getitem_grad_scatter(self):
        x = Tensor(np.arange(5.0), requires_grad=True)
        x[1:3].sum().backward()
        assert np.allclose(x.grad, [0, 1, 1, 0, 0])

    def test_pad1d(self):
        x = Tensor(np.ones((1, 2, 3)), requires_grad=True)
        y = x.pad1d(2, 1, value=7.0)
        assert y.shape == (1, 2, 6)
        assert y.data[0, 0, 0] == 7.0
        y.sum().backward()
        assert np.all(x.grad == 1.0)


class TestCombinators:
    def test_concat_grads(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        b = Tensor(np.ones((2, 3)), requires_grad=True)
        c = concat([a, b], axis=1)
        assert c.shape == (2, 5)
        c.sum().backward()
        assert np.all(a.grad == 1.0) and np.all(b.grad == 1.0)

    def test_stack(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([3.0, 4.0], requires_grad=True)
        s = stack([a, b], axis=0)
        assert s.shape == (2, 2)
        s.sum().backward()
        assert np.all(a.grad == 1.0)

    def test_where(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([10.0, 20.0], requires_grad=True)
        y = where(np.array([True, False]), a, b)
        assert np.allclose(y.data, [1.0, 20.0])
        y.sum().backward()
        assert np.allclose(a.grad, [1.0, 0.0])
        assert np.allclose(b.grad, [0.0, 1.0])


class TestNoGrad:
    def test_no_grad_blocks_graph(self):
        x = Tensor([1.0], requires_grad=True)
        with no_grad():
            y = x * 2.0
        assert not y.requires_grad

    def test_no_grad_restores(self):
        x = Tensor([1.0], requires_grad=True)
        with no_grad():
            pass
        assert (x * 2.0).requires_grad

    def test_detach(self):
        x = Tensor([1.0], requires_grad=True)
        assert not x.detach().requires_grad

    def test_interior_grads_freed(self):
        x = Tensor([1.0], requires_grad=True)
        y = x * 2.0
        z = y * 3.0
        z.backward()
        assert y.grad is None  # interior node freed
        assert x.grad is not None
