"""Edge-case tests for the autograd substrate: degenerate shapes, dtype
handling, and numerical corner cases beyond the main unit files."""

import numpy as np
import pytest

from repro import nn
from repro.nn import functional as F
from repro.nn.tensor import Tensor


class TestDegenerateShapes:
    def test_batch_of_one(self):
        net = nn.Sequential(nn.Conv1d(1, 2, 3), nn.BatchNorm1d(2), nn.ReLU())
        out = net(Tensor(np.ones((1, 1, 8), dtype=np.float32)))
        assert out.shape == (1, 2, 8)

    def test_single_timestep_conv(self):
        out = F.conv1d(
            Tensor(np.ones((1, 1, 1), dtype=np.float32)),
            Tensor(np.ones((1, 1, 1), dtype=np.float32)),
            None,
        )
        assert out.shape == (1, 1, 1)

    def test_kernel_equals_length(self):
        x = Tensor(np.arange(4, dtype=np.float32).reshape(1, 1, 4))
        w = Tensor(np.ones((1, 1, 4), dtype=np.float32))
        out = F.conv1d(x, w, None)
        assert out.shape == (1, 1, 1)
        assert out.data[0, 0, 0] == pytest.approx(6.0)

    def test_gru_single_step_sequence(self):
        gru = nn.GRU(2, 3, seed=0)
        out = gru(Tensor(np.zeros((2, 1, 2), dtype=np.float32)))
        assert out.shape == (2, 1, 3)

    def test_empty_batch_linear(self):
        out = nn.Linear(4, 2)(Tensor(np.zeros((0, 4), dtype=np.float32)))
        assert out.shape == (0, 2)

    def test_max_pool_full_length(self):
        x = Tensor(np.arange(6, dtype=np.float32).reshape(1, 1, 6))
        out = F.max_pool1d(x, 6)
        assert out.shape == (1, 1, 1)
        assert out.data[0, 0, 0] == 5.0


class TestDtypeCoercion:
    def test_int_input_becomes_float32(self):
        t = Tensor([1, 2, 3])
        assert t.dtype == np.float32

    def test_float64_ops_stay_float32(self):
        a = Tensor(np.ones(3, dtype=np.float64))
        b = a * np.float64(2.0)
        assert b.dtype == np.float32

    def test_grad_dtype_float32(self):
        x = Tensor([1.0], requires_grad=True)
        (x * 2.0).sum().backward()
        assert x.grad.dtype == np.float32


class TestNumericalCorners:
    def test_softmax_single_class(self):
        out = F.softmax(Tensor(np.zeros((3, 1), dtype=np.float32)), axis=1)
        assert np.allclose(out.data, 1.0)

    def test_log_softmax_never_positive(self):
        x = Tensor(np.random.default_rng(0).normal(size=(5, 7)).astype(np.float32))
        assert np.all(F.log_softmax(x, axis=1).data <= 1e-6)

    def test_bce_all_ones_targets(self):
        logits = Tensor(np.zeros((2, 4), dtype=np.float32))
        loss = F.binary_cross_entropy_with_logits(logits, np.ones((2, 4), dtype=np.float32))
        assert loss.item() == pytest.approx(np.log(2), abs=1e-5)

    def test_layer_norm_constant_input(self):
        g = Tensor(np.ones(4, np.float32), requires_grad=True)
        b = Tensor(np.zeros(4, np.float32), requires_grad=True)
        x = Tensor(np.full((2, 4), 7.0, dtype=np.float32))
        out = F.layer_norm(x, g, b)
        assert np.allclose(out.data, 0.0, atol=1e-2)

    def test_clip_grad_zero_norm(self):
        p = Tensor(np.array([1.0], dtype=np.float32), requires_grad=True)
        opt = nn.SGD([p], lr=0.1)
        p.grad = np.zeros(1, dtype=np.float32)
        assert opt.clip_grad_norm(1.0) == pytest.approx(0.0)

    def test_batchnorm_batch_of_one_training(self):
        """Variance of a single (N*L)=3 sample set is still well-defined."""
        layer = nn.BatchNorm1d(2)
        out = layer(Tensor(np.random.default_rng(0).normal(size=(1, 2, 3)).astype(np.float32)))
        assert np.isfinite(out.data).all()


class TestGraphSemantics:
    def test_no_grad_inside_training_block(self):
        x = Tensor([2.0], requires_grad=True)
        y = x * 3.0
        with nn.no_grad():
            z = y * 10.0  # constant w.r.t. graph
        w = y * 2.0
        w.backward()
        assert x.grad[0] == pytest.approx(6.0)
        assert not z.requires_grad

    def test_mixed_grad_parents(self):
        a = Tensor([1.0], requires_grad=True)
        b = Tensor([2.0])  # no grad
        (a * b).backward()
        assert a.grad[0] == pytest.approx(2.0)
        assert b.grad is None

    def test_long_chain_no_recursion_error(self):
        """Backward uses an iterative topo sort; 5000-node chains are fine."""
        x = Tensor([1.0], requires_grad=True)
        y = x
        for _ in range(5000):
            y = y + 0.001
        y.backward()
        assert x.grad[0] == pytest.approx(1.0)

    def test_stack_then_index_grad(self):
        from repro.nn.tensor import stack

        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([3.0, 4.0], requires_grad=True)
        s = stack([a, b], axis=0)
        s[0].sum().backward()
        assert np.allclose(a.grad, [1.0, 1.0])
        assert b.grad is None or np.allclose(b.grad, 0.0)
