"""Tests for the standard layers."""

import numpy as np
import pytest

from repro import nn
from repro.nn.tensor import Tensor


class TestLinear:
    def test_shapes(self):
        layer = nn.Linear(6, 4)
        out = layer(Tensor(np.zeros((3, 6), dtype=np.float32)))
        assert out.shape == (3, 4)

    def test_applies_on_last_axis(self):
        layer = nn.Linear(6, 4)
        out = layer(Tensor(np.zeros((2, 5, 6), dtype=np.float32)))
        assert out.shape == (2, 5, 4)

    def test_no_bias(self):
        layer = nn.Linear(3, 2, bias=False)
        assert layer.bias is None
        out = layer(Tensor(np.zeros((1, 3), dtype=np.float32)))
        assert np.allclose(out.data, 0.0)

    def test_matches_manual_affine(self):
        layer = nn.Linear(3, 2, seed=0)
        x = np.random.default_rng(1).normal(size=(4, 3)).astype(np.float32)
        expected = x @ layer.weight.data.T + layer.bias.data
        assert np.allclose(layer(Tensor(x)).data, expected, atol=1e-5)

    def test_seeded_determinism(self):
        a, b = nn.Linear(5, 5, seed=3), nn.Linear(5, 5, seed=3)
        assert np.allclose(a.weight.data, b.weight.data)


class TestConv1dLayer:
    def test_default_same_padding(self):
        layer = nn.Conv1d(2, 4, 7)
        out = layer(Tensor(np.zeros((1, 2, 30), dtype=np.float32)))
        assert out.shape == (1, 4, 30)

    def test_explicit_padding_and_stride(self):
        layer = nn.Conv1d(1, 1, 3, stride=2, padding=0)
        out = layer(Tensor(np.zeros((1, 1, 9), dtype=np.float32)))
        assert out.shape == (1, 1, 4)

    def test_weight_shape(self):
        layer = nn.Conv1d(3, 8, 5)
        assert layer.weight.shape == (8, 3, 5)
        assert layer.bias.shape == (8,)


class TestBatchNormLayer:
    def test_train_vs_eval_paths(self):
        layer = nn.BatchNorm1d(2)
        x = Tensor(np.random.default_rng(0).normal(5, 2, size=(8, 2, 4)).astype(np.float32))
        layer.train()
        out_train = layer(x)
        layer.eval()
        out_eval = layer(x)
        assert not np.allclose(out_train.data, out_eval.data)

    def test_running_stats_converge(self):
        layer = nn.BatchNorm1d(1, momentum=0.5)
        rng = np.random.default_rng(0)
        for _ in range(20):
            layer(Tensor(rng.normal(3.0, 1.0, size=(64, 1, 8)).astype(np.float32)))
        assert abs(layer.running_mean[0] - 3.0) < 0.3


class TestActivations:
    def test_relu_module(self):
        assert np.allclose(nn.ReLU()(Tensor([-1.0, 1.0])).data, [0.0, 1.0])

    def test_sigmoid_module(self):
        out = nn.Sigmoid()(Tensor([0.0]))
        assert out.data[0] == pytest.approx(0.5)

    def test_tanh_module(self):
        assert nn.Tanh()(Tensor([0.0])).data[0] == pytest.approx(0.0)

    def test_gelu_reference_values(self):
        # GELU(0) = 0; GELU(large) ~ identity; GELU(-large) ~ 0.
        out = nn.GELU()(Tensor([0.0, 5.0, -5.0]))
        assert out.data[0] == pytest.approx(0.0, abs=1e-6)
        assert out.data[1] == pytest.approx(5.0, abs=1e-2)
        assert out.data[2] == pytest.approx(0.0, abs=1e-2)


class TestDropoutLayer:
    def test_eval_identity(self):
        layer = nn.Dropout(0.9, seed=0)
        layer.eval()
        x = Tensor(np.ones((5, 5), dtype=np.float32))
        assert np.allclose(layer(x).data, 1.0)

    def test_train_masks(self):
        layer = nn.Dropout(0.5, seed=0)
        x = Tensor(np.ones((1000,), dtype=np.float32))
        out = layer(x)
        assert (out.data == 0).any()


class TestPoolLayers:
    def test_max_pool_layer(self):
        out = nn.MaxPool1d(2)(Tensor(np.arange(8, dtype=np.float32).reshape(1, 1, 8)))
        assert np.allclose(out.data, [[[1, 3, 5, 7]]])

    def test_avg_pool_layer(self):
        out = nn.AvgPool1d(4)(Tensor(np.arange(8, dtype=np.float32).reshape(1, 1, 8)))
        assert np.allclose(out.data, [[[1.5, 5.5]]])

    def test_global_avg_pool_layer(self):
        out = nn.GlobalAvgPool1d()(Tensor(np.ones((2, 3, 9), dtype=np.float32)))
        assert out.shape == (2, 3)

    def test_upsample_layer(self):
        out = nn.UpsampleNearest1d(2)(Tensor(np.ones((1, 1, 4), dtype=np.float32)))
        assert out.shape == (1, 1, 8)
