"""Tests for CamAL core: ResNet, CAM, ensemble, localization, energy."""

import numpy as np
import pytest

from repro import nn
from repro.core import (
    CamAL,
    EnsembleConfig,
    ResNetConfig,
    ResNetEnsemble,
    ResNetTSC,
    compute_cam,
    ensemble_cam,
    estimate_power,
    normalize_cam,
    train_ensemble,
)
from repro.nn.tensor import Tensor
from repro.training import TrainConfig

TINY = ResNetConfig(kernel_size=3, filters=(4, 8, 8), seed=0)


class TestResNet:
    def test_logits_shape(self):
        model = ResNetTSC(TINY)
        out = model(Tensor(np.zeros((3, 1, 32), dtype=np.float32)))
        assert out.shape == (3, 2)

    def test_features_shape_matches_input_length(self):
        model = ResNetTSC(TINY)
        feats = model.features(Tensor(np.zeros((2, 1, 40), dtype=np.float32)))
        assert feats.shape == (2, 8, 40)  # stride-1 same padding

    def test_variable_input_length(self):
        """Fully convolutional + GAP: any window length works."""
        model = ResNetTSC(TINY)
        model.eval()
        for length in (16, 50, 127):
            assert model(Tensor(np.zeros((1, 1, length), dtype=np.float32))).shape == (1, 2)

    def test_forward_with_features_consistent(self):
        model = ResNetTSC(TINY)
        model.eval()
        x = Tensor(np.random.default_rng(0).normal(size=(2, 1, 20)).astype(np.float32))
        logits_a = model(x).data
        logits_b, feats = model.forward_with_features(x)
        assert np.allclose(logits_a, logits_b.data, atol=1e-6)

    def test_kernel_size_property(self):
        assert ResNetTSC(ResNetConfig(kernel_size=15, filters=(4, 4, 4))).kernel_size == 15

    def test_paper_scale_parameter_count(self):
        model = ResNetTSC(ResNetConfig(kernel_size=7))
        count = model.num_parameters()
        assert 400_000 < count < 800_000  # Table II: ~570K average

    def test_shortcut_only_when_channels_change(self):
        model = ResNetTSC(TINY)
        assert model.unit1.shortcut is not None  # 1 -> 4
        assert model.unit2.shortcut is not None  # 4 -> 8
        assert model.unit3.shortcut is None  # 8 -> 8


class TestCAM:
    def test_cam_matches_definition(self):
        """CAM_c(t) must equal sum_k w_ck f_k(t) computed by hand."""
        model = ResNetTSC(TINY)
        model.eval()
        x = np.random.default_rng(0).normal(size=(2, 24)).astype(np.float32)
        with nn.no_grad():
            feats = model.features(Tensor(x[:, None, :])).data
        manual = np.einsum("k,nkl->nl", model.head.weight.data[1], feats)
        assert np.allclose(compute_cam(model, x, class_index=1), manual, atol=1e-5)

    def test_cam_shape(self):
        model = ResNetTSC(TINY)
        model.eval()
        cam = compute_cam(model, np.zeros((3, 17), dtype=np.float32))
        assert cam.shape == (3, 17)

    def test_cam_rejects_3d(self):
        model = ResNetTSC(TINY)
        with pytest.raises(ValueError):
            compute_cam(model, np.zeros((1, 1, 17), dtype=np.float32))

    def test_normalize_max_one(self):
        cam = np.array([[0.5, 2.0, -1.0]], dtype=np.float32)
        out = normalize_cam(cam)
        assert out.max() == pytest.approx(1.0)
        assert out[0, 2] == pytest.approx(-0.5)

    def test_normalize_nonpositive_becomes_zero(self):
        cam = np.array([[-3.0, -1.0, 0.0]], dtype=np.float32)
        assert np.allclose(normalize_cam(cam), 0.0)

    def test_normalize_per_window(self):
        cam = np.array([[1.0, 2.0], [10.0, 5.0]], dtype=np.float32)
        out = normalize_cam(cam)
        assert out[0].max() == pytest.approx(1.0)
        assert out[1].max() == pytest.approx(1.0)

    def test_ensemble_cam_is_mean_of_normalized(self):
        models = [ResNetTSC(ResNetConfig(kernel_size=3, filters=(4, 4, 4), seed=s)) for s in (0, 1)]
        for m in models:
            m.eval()
        x = np.random.default_rng(1).normal(size=(2, 16)).astype(np.float32)
        expected = (
            normalize_cam(compute_cam(models[0], x)) + normalize_cam(compute_cam(models[1], x))
        ) / 2
        assert np.allclose(ensemble_cam(models, x), expected, atol=1e-6)

    def test_ensemble_cam_empty_raises(self):
        with pytest.raises(ValueError):
            ensemble_cam([], np.zeros((1, 8), dtype=np.float32))


def _toy_detection_data(n=60, w=32, seed=0):
    """Windows where positives contain an obvious spike."""
    rng = np.random.default_rng(seed)
    x = rng.random((n, w)).astype(np.float32) * 0.2
    y = (rng.random(n) > 0.5).astype(np.float32)
    for i in np.flatnonzero(y == 1):
        start = rng.integers(0, w - 4)
        x[i, start : start + 3] += 2.0
    return x, y


class TestEnsembleTraining:
    def test_algorithm1_candidate_count_and_selection(self):
        x, y = _toy_detection_data()
        config = EnsembleConfig(
            kernel_set=(3, 5),
            n_trials=2,
            n_models=2,
            filters=(4, 8, 8),
            train=TrainConfig(epochs=2, batch_size=16, patience=0),
            seed=0,
        )
        ensemble, candidates = train_ensemble(x, y, x, y, config)
        assert len(candidates) == 4  # |kernels| * trials
        assert len(ensemble) == 2
        selected_losses = sorted(c.val_loss for c in candidates)[:2]
        # the ensemble contains exactly the lowest-val-loss candidates
        kept = sorted(
            c.val_loss for c in candidates if c.model in ensemble.models
        )
        assert kept == pytest.approx(selected_losses)

    def test_candidates_are_distinct_models(self):
        x, y = _toy_detection_data(n=30)
        config = EnsembleConfig(
            kernel_set=(3, 3),  # ablation case: same kernel twice
            n_trials=1,
            n_models=2,
            filters=(4, 4, 4),
            train=TrainConfig(epochs=1, batch_size=16, patience=0),
            seed=0,
        )
        _, candidates = train_ensemble(x, y, x, y, config)
        w0 = candidates[0].model.unit1.block1.conv.weight.data
        w1 = candidates[1].model.unit1.block1.conv.weight.data
        assert not np.allclose(w0, w1)

    def test_predict_proba_is_member_mean(self):
        models = [ResNetTSC(ResNetConfig(kernel_size=3, filters=(4, 4, 4), seed=s)) for s in (0, 1)]
        ens = ResNetEnsemble(models).eval()
        x = np.random.default_rng(0).random((4, 16)).astype(np.float32)
        from repro.training import predict_proba

        expected = np.mean([predict_proba(m, x) for m in models], axis=0)
        assert np.allclose(ens.predict_proba(x), expected, atol=1e-6)

    def test_empty_ensemble_raises(self):
        with pytest.raises(ValueError):
            ResNetEnsemble([])


class TestLocalization:
    def _trained_camal(self, **kwargs):
        x, y = _toy_detection_data(n=80)
        config = EnsembleConfig(
            kernel_set=(3,),
            n_trials=1,
            n_models=1,
            filters=(4, 8, 8),
            train=TrainConfig(epochs=4, batch_size=16, patience=0),
            seed=0,
        )
        ensemble, _ = train_ensemble(x, y, x, y, config)
        return CamAL(ensemble, **kwargs), x, y

    def test_undetected_windows_all_zero(self):
        camal, x, y = self._trained_camal()
        out = camal.localize(x)
        undetected = out.detected == 0
        if undetected.any():
            assert out.status[undetected].sum() == 0
            assert out.cam[undetected].sum() == 0

    def test_status_is_binary(self):
        camal, x, _ = self._trained_camal()
        status = camal.predict_status(x)
        assert set(np.unique(status)) <= {0.0, 1.0}

    def test_detection_threshold_respected(self):
        camal, x, _ = self._trained_camal(detection_threshold=2.0)  # impossible
        out = camal.localize(x)
        assert out.status.sum() == 0

    def test_power_gate_suppresses_low_aggregate(self):
        camal, x, _ = self._trained_camal(power_gate_watts=500.0)
        out = camal.localize(x)
        # scaled input below 0.5 can never be ON
        assert np.all(out.status[x < 0.5] == 0)

    def test_no_attention_thresholds_cam(self):
        camal, x, _ = self._trained_camal(use_attention=False)
        out = camal.localize(x)
        detected = out.detected == 1
        if detected.any():
            assert np.array_equal(
                out.status[detected], (out.cam[detected] >= 0.5).astype(np.float32)
            )

    def test_rejects_1d_input(self):
        camal, x, _ = self._trained_camal()
        with pytest.raises(ValueError):
            camal.localize(x[0])

    def test_detect_returns_probabilities(self):
        camal, x, _ = self._trained_camal()
        proba = camal.detect(x)
        assert proba.shape == (len(x),)
        assert np.all((proba >= 0) & (proba <= 1))


class TestEnergyEstimation:
    def test_clipping_invariant(self):
        status = np.array([[1.0, 1.0, 0.0]])
        aggregate = np.array([[500.0, 3000.0, 100.0]])
        power = estimate_power(status, 2000.0, aggregate)
        assert np.all(power <= aggregate)
        assert power[0, 0] == 500.0  # clipped
        assert power[0, 1] == 2000.0  # full P_a
        assert power[0, 2] == 0.0  # OFF

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            estimate_power(np.ones((1, 3)), 100.0, np.ones((1, 4)))

    def test_negative_power_raises(self):
        with pytest.raises(ValueError):
            estimate_power(np.ones((1, 2)), -5.0, np.ones((1, 2)))
