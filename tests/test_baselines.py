"""Tests for the NILM baseline architectures."""

import numpy as np
import pytest

from repro import baselines as bl
from repro.nn import count_parameters
from repro.nn.tensor import Tensor


def _x(n=2, length=32):
    return Tensor(np.random.default_rng(0).normal(size=(n, 1, length)).astype(np.float32))


TINY_CONFIGS = {
    "CRNN": bl.CRNNConfig(conv_channels=(4, 8, 8), hidden_size=8),
    "BiGRU": bl.BiGRUConfig(conv_channels=4, hidden_size=6),
    "UNet": bl.UNetConfig(channels=(4, 8, 8), bottleneck=16),
    "TPNILM": bl.TPNILMConfig(channels=(4, 8, 8)),
    "TransNILM": bl.TransNILMConfig(embed_dim=8, num_heads=2, num_layers=1, ff_dim=16),
}


def _build(name):
    builders = {
        "CRNN": lambda: bl.CRNN(TINY_CONFIGS["CRNN"]),
        "BiGRU": lambda: bl.BiGRUNILM(TINY_CONFIGS["BiGRU"]),
        "UNet": lambda: bl.UNetNILM(TINY_CONFIGS["UNet"]),
        "TPNILM": lambda: bl.TPNILM(TINY_CONFIGS["TPNILM"]),
        "TransNILM": lambda: bl.TransNILM(TINY_CONFIGS["TransNILM"]),
    }
    return builders[name]()


class TestFrameOutputs:
    @pytest.mark.parametrize("name", sorted(TINY_CONFIGS))
    def test_output_is_frame_logits(self, name):
        model = _build(name)
        out = model(_x(2, 32))
        assert out.shape == (2, 32)

    @pytest.mark.parametrize("name", sorted(TINY_CONFIGS))
    def test_backward_reaches_parameters(self, name):
        model = _build(name)
        model(_x(1, 32)).sum().backward()
        grads = [p.grad for p in model.parameters()]
        assert any(g is not None and np.abs(g).sum() > 0 for g in grads)

    @pytest.mark.parametrize("name", ["CRNN", "BiGRU", "TPNILM", "TransNILM"])
    def test_arbitrary_lengths(self, name):
        model = _build(name)
        model.eval()
        out = model(_x(1, 40))
        assert out.shape == (1, 40)

    def test_unet_requires_divisible_length(self):
        model = _build("UNet")
        with pytest.raises(ValueError, match="divisible"):
            model(_x(1, 30))


class TestCRNNWeakHead:
    def test_pooled_logit_shape(self):
        model = _build("CRNN")
        out = model.forward_weak(_x(3, 32))
        assert out.shape == (3,)

    def test_pooling_bounded_by_frame_probs(self):
        """Linear softmax pooling: min(p) <= p_seq <= max(p)."""
        model = _build("CRNN")
        model.eval()
        x = _x(4, 32)
        frame_p = 1 / (1 + np.exp(-model(x).data))
        pooled_p = 1 / (1 + np.exp(-model.forward_weak(x).data))
        assert np.all(pooled_p <= frame_p.max(axis=1) + 1e-5)
        assert np.all(pooled_p >= frame_p.min(axis=1) - 1e-5)

    def test_weak_backward(self):
        model = _build("CRNN")
        model.forward_weak(_x(2, 32)).sum().backward()
        assert model.head.weight.grad is not None


class TestTableIIParameterCounts:
    """Default configs must land near the paper's published counts."""

    @pytest.mark.parametrize(
        "builder,target_k",
        [
            (bl.CRNN, 1049),
            (bl.BiGRUNILM, 244),
            (bl.UNetNILM, 3197),
            (bl.TPNILM, 328),
            (bl.TransNILM, 12418),
        ],
    )
    def test_within_10_percent(self, builder, target_k):
        count_k = count_parameters(builder()) / 1000.0
        assert abs(count_k - target_k) / target_k < 0.10


class TestCombinatorialOptimization:
    def test_single_appliance_detection(self):
        co = bl.CombinatorialOptimization({"kettle": 2000.0}, base_load_watts=100.0)
        agg = np.array([150.0, 2100.0, 120.0])
        assert np.allclose(co.predict_status(agg, "kettle"), [0, 1, 0])

    def test_disambiguates_by_power(self):
        co = bl.CombinatorialOptimization(
            {"kettle": 2000.0, "microwave": 1000.0}, base_load_watts=0.0
        )
        assert co.predict_status(np.array([1000.0]), "microwave")[0] == 1
        assert co.predict_status(np.array([1000.0]), "kettle")[0] == 0
        # 3000 W is best explained by both running
        assert co.predict_status(np.array([3000.0]), "kettle")[0] == 1
        assert co.predict_status(np.array([3000.0]), "microwave")[0] == 1

    def test_windowed_input_shape(self):
        co = bl.CombinatorialOptimization({"kettle": 2000.0})
        out = co.predict_status(np.zeros((3, 10)), "kettle")
        assert out.shape == (3, 10)

    def test_unknown_appliance_raises(self):
        co = bl.CombinatorialOptimization({"kettle": 2000.0})
        with pytest.raises(KeyError):
            co.predict_status(np.zeros(3), "shower")

    def test_empty_rated_powers_raises(self):
        with pytest.raises(ValueError):
            bl.CombinatorialOptimization({})

    def test_too_many_appliances_raises(self):
        with pytest.raises(ValueError):
            bl.CombinatorialOptimization({f"a{i}": 10.0 * i for i in range(20)})
