"""Tests for the command-line interface."""

import pytest

from repro.cli import COMMANDS, build_parser, main


class TestParser:
    def test_known_experiments(self):
        parser = build_parser()
        args = parser.parse_args(["table2"])
        assert args.experiment == "table2"
        assert args.preset == "bench"

    def test_all_subcommand_accepted(self):
        args = build_parser().parse_args(["all", "--preset", "fast"])
        assert args.experiment == "all"
        assert args.preset == "fast"

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table99"])

    def test_unknown_preset_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table2", "--preset", "huge"])

    def test_seed_parsed(self):
        args = build_parser().parse_args(["fig9", "--seed", "7"])
        assert args.seed == 7

    def test_commands_cover_all_tables_and_figures(self):
        expected = {
            "table2", "table3", "table4",
            "fig5", "fig6a", "fig6b", "fig6c", "fig7", "fig8", "fig9", "fig10",
            "report",
        }
        assert set(COMMANDS) == expected


class TestExecution:
    def test_fig9_runs_fast(self, capsys):
        """fig9 is analytic (no training) so it can run in the test suite."""
        assert main(["fig9"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 9" in out
        assert "strong/weak storage ratio" in out

    def test_table2_runs_fast(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "Table II" in out
        assert "TransNILM" in out
