"""Tests for the command-line interface."""

import pytest

from repro.cli import (
    COMMANDS,
    build_data_parser,
    build_parser,
    build_train_parser,
    main,
)


class TestParser:
    def test_known_experiments(self):
        parser = build_parser()
        args = parser.parse_args(["table2"])
        assert args.experiment == "table2"
        assert args.preset == "bench"

    def test_all_subcommand_accepted(self):
        args = build_parser().parse_args(["all", "--preset", "fast"])
        assert args.experiment == "all"
        assert args.preset == "fast"

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table99"])

    def test_unknown_preset_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table2", "--preset", "huge"])

    def test_seed_parsed(self):
        args = build_parser().parse_args(["fig9", "--seed", "7"])
        assert args.seed == 7

    def test_commands_cover_all_tables_and_figures(self):
        expected = {
            "table2", "table3", "table4",
            "fig5", "fig6a", "fig6b", "fig6c", "fig7", "fig8", "fig9", "fig10",
            "report",
        }
        assert set(COMMANDS) == expected


class TestTrainParser:
    def test_defaults(self):
        args = build_train_parser().parse_args([])
        assert args.corpus == "ukdale"
        assert args.appliance == "kettle"
        assert args.workers == 1
        assert args.scheduler == "none"
        assert args.checkpoint_dir is None
        assert args.out is None
        assert not args.no_resume
        assert not args.progress

    def test_all_flags_parsed(self):
        args = build_train_parser().parse_args(
            [
                "--corpus", "refit", "--appliance", "dishwasher",
                "--preset", "fast", "--seed", "3", "--workers", "4",
                "--epochs", "7", "--scheduler", "warmup_cosine",
                "--warmup-epochs", "2", "--checkpoint-dir", "ckpts",
                "--no-resume", "--out", "models/dw", "--progress",
            ]
        )
        assert args.corpus == "refit"
        assert args.appliance == "dishwasher"
        assert args.preset == "fast"
        assert args.seed == 3
        assert args.workers == 4
        assert args.epochs == 7
        assert args.scheduler == "warmup_cosine"
        assert args.warmup_epochs == 2
        assert args.checkpoint_dir == "ckpts"
        assert args.no_resume
        assert args.out == "models/dw"
        assert args.progress

    def test_unknown_scheduler_rejected(self):
        with pytest.raises(SystemExit):
            build_train_parser().parse_args(["--scheduler", "linear"])

    def test_train_not_in_experiment_commands(self):
        """'train' routes through its own parser, not the experiment table."""
        assert "train" not in COMMANDS
        with pytest.raises(SystemExit):
            build_parser().parse_args(["train"])

    def test_model_spec_parsed(self):
        args = build_train_parser().parse_args(["--model", "crnn@small"])
        assert args.model == "crnn@small"
        args = build_parser().parse_args(["report", "--model", "tpnilm@tiny"])
        assert args.model == "tpnilm@tiny"


class TestModelsCommand:
    def test_models_lists_every_registered_estimator(self, capsys):
        from repro import api

        assert main(["models"]) == 0
        out = capsys.readouterr().out
        for name in api.available_models():
            assert name in out
        assert "Supervision" in out
        assert "paper/small/tiny" in out

    def test_models_not_in_experiment_commands(self):
        assert "models" not in COMMANDS


class TestDataParser:
    def test_ingest_flags_parsed(self):
        args = build_data_parser().parse_args(
            [
                "ingest", "--corpus", "refit", "--out", "stores/refit",
                "--days", "3.5", "--houses", "6", "--seed", "2",
                "--resample", "2", "--max-ffill", "5", "--shard-length", "4096",
                "--workers", "3", "--drop-tail",
            ]
        )
        assert args.action == "ingest"
        assert args.corpus == "refit"
        assert args.out == "stores/refit"
        assert args.days == 3.5
        assert args.houses == 6
        assert args.resample == 2
        assert args.max_ffill == 5
        assert args.shard_length == 4096
        assert args.workers == 3
        assert args.drop_tail

    def test_ingest_requires_one_source(self):
        with pytest.raises(SystemExit):
            build_data_parser().parse_args(["ingest", "--out", "x"])
        with pytest.raises(SystemExit):
            build_data_parser().parse_args(
                ["ingest", "--corpus", "ukdale", "--csv", "d", "--out", "x"]
            )

    def test_info_and_windows_parsed(self):
        args = build_data_parser().parse_args(["info", "stores/ukdale"])
        assert args.action == "info" and args.store == "stores/ukdale"
        args = build_data_parser().parse_args(
            ["windows", "stores/ukdale", "--appliance", "kettle", "--window", "64"]
        )
        assert args.action == "windows"
        assert args.appliance == "kettle"
        assert args.window == 64

    def test_unknown_corpus_rejected(self):
        with pytest.raises(SystemExit):
            build_data_parser().parse_args(
                ["ingest", "--corpus", "nope", "--out", "x"]
            )

    def test_data_not_in_experiment_commands(self):
        assert "data" not in COMMANDS
        with pytest.raises(SystemExit):
            build_parser().parse_args(["data"])


class TestDataExecution:
    def test_ingest_info_windows_end_to_end(self, capsys, tmp_path):
        """`repro data` builds a store that info/windows can read back."""
        store_dir = str(tmp_path / "store")
        argv = [
            "data", "ingest", "--corpus", "ukdale", "--days", "1",
            "--houses", "3", "--out", store_dir, "--shard-length", "512",
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "Ingested 'ukdale'" in out
        assert "samples/s" in out

        assert main(["data", "info", store_dir]) == 0
        out = capsys.readouterr().out
        assert "Store 'ukdale'" in out
        assert "ukdale_h1" in out
        assert "preprocessing" in out

        argv = ["data", "windows", store_dir, "--appliance", "kettle", "--window", "64"]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "Streamable windows" in out
        assert "pooled:" in out

        from repro.data import MeterStore

        store = MeterStore(store_dir)
        assert len(store) == 3
        assert store.shard_length == 512

    def test_csv_ingest_requires_dt_and_ffill(self, tmp_path):
        (tmp_path / "csv" / "h1").mkdir(parents=True)
        (tmp_path / "csv" / "h1" / "aggregate.csv").write_text("1.0\n2.0\n")
        with pytest.raises(SystemExit, match="--dt-seconds"):
            main(["data", "ingest", "--csv", str(tmp_path / "csv"),
                  "--out", str(tmp_path / "s")])


class TestExecution:
    def test_fig9_runs_fast(self, capsys):
        """fig9 is analytic (no training) so it can run in the test suite."""
        assert main(["fig9"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 9" in out
        assert "strong/weak storage ratio" in out

    def test_table2_runs_fast(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "Table II" in out
        assert "TransNILM" in out

    def test_train_end_to_end(self, capsys, tmp_path):
        """`repro train` trains, checkpoints and persists a loadable pipeline."""
        import os

        argv = [
            "train", "--preset", "bench", "--epochs", "1",
            "--checkpoint-dir", str(tmp_path / "ckpts"),
            "--out", str(tmp_path / "pipeline"),
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "Trained camal for kettle on ukdale" in out
        assert "pipeline saved to" in out
        assert os.path.exists(tmp_path / "pipeline" / "manifest.json")
        assert len(list((tmp_path / "ckpts").iterdir())) > 0

        from repro.api import CamALLocalizer, load_estimator

        estimator = load_estimator(str(tmp_path / "pipeline"))
        assert isinstance(estimator, CamALLocalizer)
        assert len(estimator.pipeline.ensemble) >= 1
