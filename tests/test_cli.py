"""Tests for the command-line interface."""

import pytest

from repro.cli import COMMANDS, build_parser, build_train_parser, main


class TestParser:
    def test_known_experiments(self):
        parser = build_parser()
        args = parser.parse_args(["table2"])
        assert args.experiment == "table2"
        assert args.preset == "bench"

    def test_all_subcommand_accepted(self):
        args = build_parser().parse_args(["all", "--preset", "fast"])
        assert args.experiment == "all"
        assert args.preset == "fast"

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table99"])

    def test_unknown_preset_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table2", "--preset", "huge"])

    def test_seed_parsed(self):
        args = build_parser().parse_args(["fig9", "--seed", "7"])
        assert args.seed == 7

    def test_commands_cover_all_tables_and_figures(self):
        expected = {
            "table2", "table3", "table4",
            "fig5", "fig6a", "fig6b", "fig6c", "fig7", "fig8", "fig9", "fig10",
            "report",
        }
        assert set(COMMANDS) == expected


class TestTrainParser:
    def test_defaults(self):
        args = build_train_parser().parse_args([])
        assert args.corpus == "ukdale"
        assert args.appliance == "kettle"
        assert args.workers == 1
        assert args.scheduler == "none"
        assert args.checkpoint_dir is None
        assert args.out is None
        assert not args.no_resume
        assert not args.progress

    def test_all_flags_parsed(self):
        args = build_train_parser().parse_args(
            [
                "--corpus", "refit", "--appliance", "dishwasher",
                "--preset", "fast", "--seed", "3", "--workers", "4",
                "--epochs", "7", "--scheduler", "warmup_cosine",
                "--warmup-epochs", "2", "--checkpoint-dir", "ckpts",
                "--no-resume", "--out", "models/dw", "--progress",
            ]
        )
        assert args.corpus == "refit"
        assert args.appliance == "dishwasher"
        assert args.preset == "fast"
        assert args.seed == 3
        assert args.workers == 4
        assert args.epochs == 7
        assert args.scheduler == "warmup_cosine"
        assert args.warmup_epochs == 2
        assert args.checkpoint_dir == "ckpts"
        assert args.no_resume
        assert args.out == "models/dw"
        assert args.progress

    def test_unknown_scheduler_rejected(self):
        with pytest.raises(SystemExit):
            build_train_parser().parse_args(["--scheduler", "linear"])

    def test_train_not_in_experiment_commands(self):
        """'train' routes through its own parser, not the experiment table."""
        assert "train" not in COMMANDS
        with pytest.raises(SystemExit):
            build_parser().parse_args(["train"])

    def test_model_spec_parsed(self):
        args = build_train_parser().parse_args(["--model", "crnn@small"])
        assert args.model == "crnn@small"
        args = build_parser().parse_args(["report", "--model", "tpnilm@tiny"])
        assert args.model == "tpnilm@tiny"


class TestModelsCommand:
    def test_models_lists_every_registered_estimator(self, capsys):
        from repro import api

        assert main(["models"]) == 0
        out = capsys.readouterr().out
        for name in api.available_models():
            assert name in out
        assert "Supervision" in out
        assert "paper/small/tiny" in out

    def test_models_not_in_experiment_commands(self):
        assert "models" not in COMMANDS


class TestExecution:
    def test_fig9_runs_fast(self, capsys):
        """fig9 is analytic (no training) so it can run in the test suite."""
        assert main(["fig9"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 9" in out
        assert "strong/weak storage ratio" in out

    def test_table2_runs_fast(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "Table II" in out
        assert "TransNILM" in out

    def test_train_end_to_end(self, capsys, tmp_path):
        """`repro train` trains, checkpoints and persists a loadable pipeline."""
        import os

        argv = [
            "train", "--preset", "bench", "--epochs", "1",
            "--checkpoint-dir", str(tmp_path / "ckpts"),
            "--out", str(tmp_path / "pipeline"),
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "Trained camal for kettle on ukdale" in out
        assert "pipeline saved to" in out
        assert os.path.exists(tmp_path / "pipeline" / "manifest.json")
        assert len(list((tmp_path / "ckpts").iterdir())) > 0

        from repro.api import CamALLocalizer, load_estimator

        estimator = load_estimator(str(tmp_path / "pipeline"))
        assert isinstance(estimator, CamALLocalizer)
        assert len(estimator.pipeline.ensemble) >= 1
