"""Tests for :mod:`repro.data`: the sharded meter store, the ingestors,
the streaming window pipeline, and the serving bulk path built on it.

The load-bearing contracts:

* an ingested store round-trips **bit-identically** against the in-memory
  preprocessing of the same corpus;
* :class:`StreamingWindows` produces arrays bit-identical to
  ``concat_window_sets(house_windows(...))``, so training on the store
  reproduces the in-memory run's final weights;
* :meth:`InferenceEngine.score_store` matches :meth:`InferenceEngine.run`
  on every household;
* NaN gaps longer than the fill bound never reach a loss value.
"""

import json
import os

import numpy as np
import pytest

import repro.experiments as ex
from repro import simdata as sd
from repro.core import CamAL, EnsembleConfig, ResNetConfig, ResNetEnsemble, ResNetTSC, train_ensemble
from repro.data import (
    AGGREGATE_CHANNEL,
    IngestConfig,
    MeterStore,
    StreamingWindows,
    ingest_corpus,
    ingest_csv_dir,
)
from repro.nn.data import DataLoader
from repro.serving import EngineConfig, InferenceEngine
from repro.training import TrainConfig, state_dicts_equal, train_classifier

WINDOW = 128
SHARD = 1000  # deliberately misaligned with WINDOW to exercise boundary reads


@pytest.fixture(scope="module")
def corpus():
    # 5 houses: the minimum the fixed UK-DALE house split supports.
    return sd.ukdale_like(days=1.5, n_houses=5, seed=0)


@pytest.fixture(scope="module")
def store(corpus, tmp_path_factory):
    out = tmp_path_factory.mktemp("store")
    return ingest_corpus(corpus, str(out), IngestConfig(shard_length=SHARD))


def _in_memory_pool(corpus, appliance, house_ids, window=WINDOW):
    return sd.concat_window_sets(
        [ex.house_windows(corpus, appliance, hid, window) for hid in house_ids]
    )


class TestShardFormat:
    def test_layout_and_memmap(self, store, corpus):
        house = corpus.house_ids[0]
        meta = store.house_meta(house)
        assert meta.channels[0] == AGGREGATE_CHANNEL
        assert meta.n_shards == -(-meta.n_samples // SHARD)
        shard = store.shard(house, 0)
        assert isinstance(shard, np.memmap)
        assert shard.shape == (len(meta.channels) + 1, SHARD)
        assert shard.dtype == np.dtype("<f4")

    def test_mask_row_padding_zero(self, store, corpus):
        """Tail padding of the final shard is masked out and zero-valued."""
        house = corpus.house_ids[0]
        meta = store.house_meta(house)
        tail = meta.n_samples - (meta.n_shards - 1) * SHARD
        last = store.shard(house, meta.n_shards - 1)
        assert not last[meta.mask_row, tail:].any()
        assert not last[:, tail:].any()

    def test_manifest_written_last(self, corpus, tmp_path):
        store = ingest_corpus(corpus, str(tmp_path / "s"), IngestConfig(shard_length=SHARD))
        with open(os.path.join(store.path, "manifest.json")) as handle:
            manifest = json.load(handle)
        assert manifest["format"] == 1
        assert manifest["preprocessing"]["source"] == "corpus:ukdale"
        for hid, entry in manifest["households"].items():
            for k in range(entry["n_shards"]):
                assert os.path.exists(store.shard_path(hid, k))

    def test_open_non_store_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="not a meter store"):
            MeterStore(str(tmp_path))

    def test_unsupported_format_raises(self, store, tmp_path):
        bad = dict(store.manifest, format=99)
        (tmp_path / "manifest.json").write_text(json.dumps(bad))
        with pytest.raises(ValueError, match="unsupported store format"):
            MeterStore(str(tmp_path))

    def test_unknown_channel_and_ranges(self, store, corpus):
        house = corpus.house_ids[0]
        with pytest.raises(KeyError, match="no channel"):
            store.read_channel(house, "toaster")
        with pytest.raises(IndexError):
            store.read_channel(house, AGGREGATE_CHANNEL, 0, store.n_samples(house) + 1)
        with pytest.raises(IndexError):
            store.shard(house, 99)
        with pytest.raises(KeyError, match="no house"):
            store.n_samples("nope")

    def test_empty_range_reads(self, store, corpus):
        """Empty ranges are empty arrays — including at exact shard
        boundaries and at the end of the series."""
        house = corpus.house_ids[0]
        for pos in (0, SHARD, store.n_samples(house)):
            got = store.read_channel(house, AGGREGATE_CHANNEL, pos, pos)
            assert got.shape == (0,) and got.dtype == np.float32

    def test_empty_range_at_shard_aligned_series_end(self, corpus, tmp_path):
        """Regression: [n, n) must not probe a shard past the last when
        the series length is an exact multiple of the shard length."""
        house = corpus.houses[0]
        store = ingest_corpus(
            corpus, str(tmp_path / "s"),
            IngestConfig(shard_length=house.n_samples // 2),
        )
        got = store.read_channel(
            house.house_id, AGGREGATE_CHANNEL, house.n_samples, house.n_samples
        )
        assert got.shape == (0,)

    def test_cross_shard_read_matches_full(self, store, corpus):
        house = corpus.house_ids[0]
        full = store.read_channel(house, AGGREGATE_CHANNEL)
        lo, hi = SHARD - 7, SHARD + 13  # straddles the first boundary
        assert np.array_equal(full[lo:hi], store.read_channel(house, AGGREGATE_CHANNEL, lo, hi))

    def test_in_shard_read_is_zero_copy(self, store, corpus):
        view = store.read_channel(corpus.house_ids[0], AGGREGATE_CHANNEL, 10, 20)
        base = view
        while isinstance(base, np.ndarray) and base.base is not None:
            base = base.base
        import mmap

        assert isinstance(base, (np.memmap, mmap.mmap))


class TestRoundTrip:
    def test_aggregate_bit_identical(self, store, corpus):
        """ingest -> read == in-memory preprocessing, including NaN gaps."""
        for house in corpus.houses:
            expected = sd.forward_fill(house.aggregate, corpus.max_ffill_samples)
            got = store.aggregate(house.house_id)
            assert got.dtype == np.float32
            assert np.array_equal(expected, got, equal_nan=True)

    def test_power_channels_round_trip(self, store, corpus):
        """Submeter channels round-trip in full — aggregate gaps do not
        discard ground-truth readings."""
        for house in corpus.houses:
            for name, series in house.appliance_power.items():
                got = store.read_channel(house.house_id, name)
                assert np.array_equal(np.nan_to_num(series, nan=0.0), got)

    def test_possession_and_split_compatibility(self, store, corpus):
        assert store.possession_labels("kettle") == corpus.possession_labels("kettle")
        assert store.submetered_house_ids == corpus.submetered_house_ids
        assert sd.split_houses(store, seed=3) == sd.split_houses(corpus, seed=3)

    def test_metadata(self, store, corpus):
        assert store.name == corpus.name
        assert store.dt_seconds == corpus.dt_seconds
        assert store.target_appliances == corpus.target_appliances
        assert store.house_ids == corpus.house_ids
        assert store.total_samples() == sum(h.n_samples for h in corpus.houses)

    def test_resampled_ingest_matches_manual_chain(self, corpus, tmp_path):
        factor = 3
        store = ingest_corpus(
            corpus, str(tmp_path / "s"),
            IngestConfig(shard_length=SHARD, resample_factor=factor),
        )
        house = corpus.houses[0]
        manual = sd.forward_fill(
            sd.resample_average(house.aggregate, factor, keep_tail=True),
            corpus.max_ffill_samples,
        )
        assert np.array_equal(manual, store.aggregate(house.house_id), equal_nan=True)
        assert store.dt_seconds == corpus.dt_seconds * factor
        assert store.preprocessing["resample_factor"] == factor
        # keep_tail: no recorded sample is lost to the resample grid.
        assert store.n_samples(house.house_id) == -(-house.n_samples // factor)

    def test_parallel_ingest_byte_identical(self, corpus, tmp_path):
        serial = ingest_corpus(corpus, str(tmp_path / "a"), IngestConfig(shard_length=SHARD))
        parallel = ingest_corpus(
            corpus, str(tmp_path / "b"), IngestConfig(shard_length=SHARD, n_workers=2)
        )
        assert serial.manifest["households"] == parallel.manifest["households"]
        for hid, meta in serial.households.items():
            for k in range(meta.n_shards):
                with open(serial.shard_path(hid, k), "rb") as fa, open(
                    parallel.shard_path(hid, k), "rb"
                ) as fb:
                    assert fa.read() == fb.read()

    def test_invalid_worker_count(self, corpus, tmp_path):
        with pytest.raises(ValueError, match="n_workers"):
            ingest_corpus(corpus, str(tmp_path / "s"), IngestConfig(n_workers=0))


class TestCSVIngest:
    def _write_csv_layout(self, root):
        h1 = root / "house_1"
        h1.mkdir(parents=True)
        # timestamp,value rows with a header and a NaN gap
        (h1 / "aggregate.csv").write_text(
            "timestamp,power\n"
            + "\n".join(f"{i},{100.0 + i}" for i in range(5))
            + "\n5,\n6,nan\n7,207.0\n"
        )
        (h1 / "kettle.csv").write_text("\n".join(["0.0"] * 6 + ["2000.0", "0.0"]))
        (h1 / "possession.json").write_text('{"kettle": true, "dishwasher": false}')
        h2 = root / "house_2"
        h2.mkdir()
        (h2 / "aggregate.csv").write_text("\n".join(str(50.0 + i) for i in range(8)))
        return root

    def test_csv_round_trip(self, tmp_path):
        src = self._write_csv_layout(tmp_path / "csv")
        store = ingest_csv_dir(
            str(src), str(tmp_path / "store"), dt_seconds=60.0, max_ffill_samples=2,
            config=IngestConfig(shard_length=4),
        )
        assert store.house_ids == ["house_1", "house_2"]
        agg = store.aggregate("house_1")
        # the 2-sample gap at positions 5-6 is inside the fill budget
        assert np.allclose(agg, [100, 101, 102, 103, 104, 104, 104, 207])
        assert np.array_equal(store.read_channel("house_1", "kettle")[6:], [2000.0, 0.0])
        assert store.possession_labels("kettle") == {"house_1": True, "house_2": False}
        assert store.possession_labels("dishwasher") == {"house_1": False, "house_2": False}
        assert store.submetered_house_ids == ["house_1"]
        assert store.target_appliances == ["kettle"]
        assert store.preprocessing["source"].startswith("csv:")

    def test_missing_aggregate_raises(self, tmp_path):
        (tmp_path / "csv" / "house_1").mkdir(parents=True)
        (tmp_path / "csv" / "house_1" / "kettle.csv").write_text("1.0\n")
        with pytest.raises(FileNotFoundError, match="aggregate.csv"):
            ingest_csv_dir(str(tmp_path / "csv"), str(tmp_path / "s"), 60.0, 2)

    def test_bad_value_raises(self, tmp_path):
        house = tmp_path / "csv" / "house_1"
        house.mkdir(parents=True)
        (house / "aggregate.csv").write_text("power\n1.0\nbogus\n")
        with pytest.raises(ValueError, match="not a number"):
            ingest_csv_dir(str(tmp_path / "csv"), str(tmp_path / "s"), 60.0, 2)

    def test_empty_dir_raises(self, tmp_path):
        (tmp_path / "csv").mkdir()
        with pytest.raises(ValueError, match="no household sub-directories"):
            ingest_csv_dir(str(tmp_path / "csv"), str(tmp_path / "s"), 60.0, 2)


class TestStreamingWindows:
    def test_bit_identical_to_in_memory_pool(self, store, corpus):
        for appliance in ("kettle", "dishwasher"):
            streamed = StreamingWindows(store, appliance, window=WINDOW)
            pooled = _in_memory_pool(corpus, appliance, corpus.house_ids)
            assert len(streamed) == len(pooled)
            assert np.array_equal(streamed.inputs, pooled.inputs)
            assert np.array_equal(streamed.strong, pooled.strong)
            assert np.array_equal(streamed.weak, pooled.weak)
            assert np.array_equal(streamed.aggregate_watts, pooled.aggregate_watts)
            assert np.array_equal(streamed.power_watts, pooled.power_watts)
            assert streamed.house_id == pooled.house_id

    def test_getitem_matches_materialized(self, store):
        ws = StreamingWindows(store, "kettle", window=WINDOW)
        for i in (0, len(ws) // 2, len(ws) - 1):
            x, strong, weak = ws[i]
            assert np.array_equal(x, ws.inputs[i])
            assert np.array_equal(strong, ws.strong[i])
            assert weak == ws.weak[i]

    def test_dataloader_batches(self, store):
        ws = StreamingWindows(store, "kettle", window=WINDOW)
        loader = DataLoader(ws, batch_size=8, shuffle=True, seed=0)
        x, strong, weak = next(iter(loader))
        assert x.shape == (8, WINDOW) and x.dtype == np.float32
        assert strong.shape == (8, WINDOW)
        assert weak.shape == (8,)
        total = sum(len(batch[0]) for batch in DataLoader(ws, batch_size=8))
        assert total == len(ws)

    def test_raw_window_zero_copy(self, store):
        import mmap

        ws = StreamingWindows(store, "kettle", window=WINDOW)
        base = ws.raw_window(0)
        while isinstance(base, np.ndarray) and base.base is not None:
            base = base.base
        assert isinstance(base, (np.memmap, mmap.mmap))

    def test_shuffled_indices_deterministic(self, store):
        ws = StreamingWindows(store, "kettle", window=WINDOW)
        a, b = ws.shuffled_indices(7), ws.shuffled_indices(7)
        assert np.array_equal(a, b)
        assert sorted(a) == list(range(len(ws)))
        assert not np.array_equal(a, ws.shuffled_indices(8))

    def test_house_subset_and_order(self, store, corpus):
        ids = [corpus.house_ids[1], corpus.house_ids[0]]
        streamed = StreamingWindows(store, "kettle", house_ids=ids, window=WINDOW)
        pooled = _in_memory_pool(corpus, "kettle", ids)
        assert np.array_equal(streamed.inputs, pooled.inputs)
        assert streamed.window_house(0) == ids[0]

    def test_unsubmetered_appliance_all_off(self, store, corpus):
        """No submeter channel -> zero labels, like the in-memory path."""
        assert all("shower" not in h.appliance_power for h in corpus.houses)
        ws = StreamingWindows(store, "shower", window=WINDOW)
        assert len(ws) > 0
        assert ws.weak.sum() == 0
        assert ws.strong.sum() == 0
        pooled = _in_memory_pool(corpus, "shower", corpus.house_ids)
        assert np.array_equal(ws.strong, pooled.strong)

    def test_label_counts(self, store):
        ws = StreamingWindows(store, "kettle", window=WINDOW)
        assert ws.n_weak_labels == len(ws)
        assert ws.n_strong_labels == len(ws) * WINDOW

    def test_index_errors_and_validation(self, store):
        ws = StreamingWindows(store, "kettle", window=WINDOW)
        with pytest.raises(IndexError):
            ws[len(ws)]
        assert np.array_equal(ws[-1][0], ws[len(ws) - 1][0])
        with pytest.raises(ValueError, match="window must be positive"):
            StreamingWindows(store, "kettle", window=0)


class TestCaseAndTraining:
    def test_case_from_store_bit_identical(self, store, corpus):
        case = ex.case_windows(corpus, "kettle", WINDOW, split_seed=0)
        scase = ex.case_windows_from_store(store, "kettle", WINDOW, split_seed=0)
        assert scase.corpus == case.corpus
        for split in ("train", "val", "test"):
            mem, streamed = getattr(case, split), getattr(scase, split)
            assert np.array_equal(mem.inputs, streamed.inputs)
            assert np.array_equal(mem.strong, streamed.strong)
            assert np.array_equal(mem.weak, streamed.weak)

    def test_labels_for_routes_on_streaming_windows(self, store):
        from repro import api

        scase = ex.case_windows_from_store(store, "kettle", WINDOW, split_seed=0)
        weak_est = api.create("camal", scale="tiny")
        strong_est = api.create("tpnilm", scale="tiny")
        assert weak_est.labels_for(scase.train).shape == (len(scase.train),)
        assert strong_est.labels_for(scase.train).shape == (len(scase.train), WINDOW)

    def test_train_ensemble_reproduces_in_memory_weights(self, store, corpus):
        """Acceptance: training from the store == training in memory."""
        case = ex.case_windows(corpus, "kettle", WINDOW, split_seed=0)
        scase = ex.case_windows_from_store(store, "kettle", WINDOW, split_seed=0)
        config = EnsembleConfig(
            kernel_set=(3,), n_trials=1, n_models=1, filters=(4, 8, 8),
            train=TrainConfig(epochs=2, batch_size=16, patience=0), seed=0,
        )
        mem_ens, _ = train_ensemble(
            case.train.inputs, case.train.weak, case.val.inputs, case.val.weak, config
        )
        store_ens, _ = train_ensemble(
            scase.train.inputs, scase.train.weak, scase.val.inputs, scase.val.weak, config
        )
        assert all(
            state_dicts_equal(a.state_dict(), b.state_dict())
            for a, b in zip(mem_ens.models, store_ens.models)
        )


def _tiny_camal(gate=None):
    models = [
        ResNetTSC(ResNetConfig(kernel_size=k, filters=(4, 8, 8), seed=k)) for k in (3, 5)
    ]
    return CamAL(ResNetEnsemble(models).eval(), power_gate_watts=gate)


class TestScoreStore:
    @pytest.mark.parametrize("stride,cache", [(None, 0), (64, 0), (64, 256), (100, 0)])
    def test_matches_run_on_every_household(self, store, stride, cache):
        def build():
            engine = InferenceEngine(
                EngineConfig(window=WINDOW, stride=stride, batch_size=32, cache_size=cache)
            )
            engine.register("kettle", _tiny_camal(gate=100.0))
            return engine

        streamed = dict(build().score_store(store))
        assert list(streamed) == store.house_ids
        engine = build()
        for hid in store.house_ids:
            series = store.read_channel(hid, AGGREGATE_CHANNEL)  # gaps read as 0 W
            ref = engine.run(np.asarray(series)).per_appliance["kettle"]
            got = streamed[hid].per_appliance["kettle"]
            assert np.array_equal(ref.soft_status, got.soft_status)
            assert np.array_equal(ref.status, got.status)
            assert int(ref.windows.detected.sum()) == got.n_detected
            assert got.n_windows == streamed[hid].plan.n_windows

    def test_explicit_chunking_matches(self, store):
        engine = InferenceEngine(EngineConfig(window=WINDOW, stride=64, batch_size=16))
        engine.register("kettle", _tiny_camal())
        hid = store.house_ids[0]
        baseline = dict(engine.score_store(store, house_ids=[hid]))[hid]
        chunked = dict(engine.score_store(store, house_ids=[hid], chunk_windows=3))[hid]
        assert np.array_equal(
            baseline.status("kettle"), chunked.status("kettle")
        )
        with pytest.raises(ValueError, match="chunk_windows"):
            next(engine.score_store(store, chunk_windows=0))

    def test_unknown_appliance_raises(self, store):
        engine = InferenceEngine(EngineConfig(window=WINDOW))
        engine.register("kettle", _tiny_camal())
        with pytest.raises(KeyError, match="no pipeline registered"):
            next(engine.score_store(store, appliances=["toaster"]))

    def test_result_surface(self, store):
        engine = InferenceEngine(EngineConfig(window=WINDOW, cache_size=128))
        engine.register("kettle", _tiny_camal())
        hid, scores = next(iter(engine.score_store(store)))
        assert scores.house_id == hid
        assert scores.n_samples == store.n_samples(hid)
        appliances = dict(scores)
        assert set(appliances) == {"kettle"}
        result = appliances["kettle"]
        assert 0.0 <= result.detection_rate <= 1.0
        assert result.status.shape == (scores.n_samples,)
        # Second pass over the same household is served from the cache.
        _, again = next(iter(engine.score_store(store)))
        assert again.per_appliance["kettle"].cache_hits > 0


class TestNaNEndToEnd:
    """Satellite: gaps longer than the fill bound never reach a loss."""

    @pytest.fixture()
    def gappy_store(self, tmp_path):
        corpus = sd.ukdale_like(days=1.0, n_houses=5, seed=1)
        rng = np.random.default_rng(0)
        for house in corpus.houses:
            # NaN runs far beyond the 3-sample fill budget.
            for _ in range(4):
                start = int(rng.integers(0, house.n_samples - 60))
                house.aggregate[start : start + 50] = np.nan
        store = ingest_corpus(corpus, str(tmp_path / "s"), IngestConfig(shard_length=SHARD))
        return corpus, store

    def test_long_gaps_survive_as_mask_zeros(self, gappy_store):
        corpus, store = gappy_store
        for house in corpus.houses:
            stored = store.aggregate(house.house_id)
            assert np.isnan(stored).any()  # the long runs were not filled
            assert not store.read_mask(house.house_id).all()

    def test_submeter_readings_survive_aggregate_gaps(self, gappy_store):
        """An aggregate dropout must not blank the submeter ground truth."""
        corpus, store = gappy_store
        for house in corpus.houses:
            mask = store.read_mask(house.house_id)
            for name, series in house.appliance_power.items():
                got = store.read_channel(house.house_id, name)
                assert np.array_equal(series[~mask], got[~mask])

    def test_windows_never_contain_nan(self, gappy_store):
        _, store = gappy_store
        ws = StreamingWindows(store, "kettle", window=WINDOW)
        assert len(ws) > 0
        assert not np.isnan(ws.inputs).any()
        for i in range(len(ws)):
            x, strong, weak = ws[i]
            assert not np.isnan(x).any()
            assert not np.isnan(strong).any()
            assert np.isfinite(weak)

    def test_training_losses_stay_finite(self, gappy_store):
        _, store = gappy_store
        scase = ex.case_windows_from_store(store, "kettle", WINDOW, split_seed=0)
        model = ResNetTSC(ResNetConfig(kernel_size=3, filters=(4, 8, 8), seed=0))
        result = train_classifier(
            model,
            scase.train.inputs,
            scase.train.weak,
            scase.val.inputs,
            scase.val.weak,
            TrainConfig(epochs=2, batch_size=16, patience=0),
        )
        assert np.isfinite(result.train_losses).all()
        assert np.isfinite(result.val_losses).all()
